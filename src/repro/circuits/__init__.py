"""Minimal DC circuit simulation with substrate macromodels (Section 1.1)."""

from .mna import DCSolution, MNASolver
from .netlist import (
    GROUND,
    Circuit,
    CurrentSource,
    Resistor,
    SubstrateMacromodel,
    VoltageSource,
)

__all__ = [
    "GROUND",
    "Circuit",
    "Resistor",
    "CurrentSource",
    "VoltageSource",
    "SubstrateMacromodel",
    "DCSolution",
    "MNASolver",
]
