"""Minimal resistive circuit netlist with substrate macromodels.

The motivation for sparsifying ``G`` (Section 1.1) is to include a substrate
model inside a circuit simulator without paying for a dense ``n x n`` block.
This module provides a small netlist representation — resistors, independent
sources and an ``n``-terminal substrate macromodel — that the MNA solver in
:mod:`repro.circuits.mna` can simulate either with a dense conductance block
or with a sparsified ``Q Gw Q'`` operator applied iteratively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.sparsified import SparsifiedConductance

__all__ = [
    "Resistor",
    "CurrentSource",
    "VoltageSource",
    "SubstrateMacromodel",
    "Circuit",
]

GROUND = "0"


@dataclass(frozen=True)
class Resistor:
    """Two-terminal resistor between ``node_a`` and ``node_b``."""

    node_a: str
    node_b: str
    resistance: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError("resistance must be positive")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance


@dataclass(frozen=True)
class CurrentSource:
    """Independent current source pushing ``current`` from ``node_a`` into ``node_b``."""

    node_a: str
    node_b: str
    current: float
    name: str = ""


@dataclass(frozen=True)
class VoltageSource:
    """Independent voltage source: ``v(node_plus) - v(node_minus) = voltage``."""

    node_plus: str
    node_minus: str
    voltage: float
    name: str = ""


@dataclass
class SubstrateMacromodel:
    """An ``n``-terminal conductance macromodel attached to circuit nodes.

    Parameters
    ----------
    nodes:
        Circuit node names, one per substrate contact, in contact order.
    dense:
        Dense conductance matrix ``G`` (optional).
    sparsified:
        Sparse representation ``Q Gw Q'`` (optional).  At least one of
        ``dense`` / ``sparsified`` must be given; if both are present the MNA
        solver uses whichever the caller selects.
    """

    nodes: Sequence[str]
    dense: np.ndarray | None = None
    sparsified: SparsifiedConductance | None = None
    name: str = "substrate"

    def __post_init__(self) -> None:
        n = len(self.nodes)
        if self.dense is None and self.sparsified is None:
            raise ValueError("provide a dense G or a sparsified representation")
        if self.dense is not None and self.dense.shape != (n, n):
            raise ValueError("dense G shape does not match the number of nodes")
        if self.sparsified is not None and self.sparsified.n_contacts != n:
            raise ValueError("sparsified representation size does not match nodes")

    @property
    def n_terminals(self) -> int:
        return len(self.nodes)

    def apply(self, voltages: np.ndarray, use_sparsified: bool) -> np.ndarray:
        """Terminal currents for terminal voltages."""
        if use_sparsified:
            if self.sparsified is None:
                raise ValueError("no sparsified representation attached")
            return self.sparsified.apply(voltages)
        if self.dense is None:
            raise ValueError("no dense G attached")
        return self.dense @ voltages


@dataclass
class Circuit:
    """A flat netlist of resistive elements, sources and substrate macromodels."""

    resistors: list[Resistor] = field(default_factory=list)
    current_sources: list[CurrentSource] = field(default_factory=list)
    voltage_sources: list[VoltageSource] = field(default_factory=list)
    substrates: list[SubstrateMacromodel] = field(default_factory=list)

    # ------------------------------------------------------------- construction
    def add_resistor(self, node_a: str, node_b: str, resistance: float, name: str = "") -> Resistor:
        r = Resistor(node_a, node_b, resistance, name)
        self.resistors.append(r)
        return r

    def add_current_source(
        self, node_a: str, node_b: str, current: float, name: str = ""
    ) -> CurrentSource:
        s = CurrentSource(node_a, node_b, current, name)
        self.current_sources.append(s)
        return s

    def add_voltage_source(
        self, node_plus: str, node_minus: str, voltage: float, name: str = ""
    ) -> VoltageSource:
        s = VoltageSource(node_plus, node_minus, voltage, name)
        self.voltage_sources.append(s)
        return s

    def add_substrate(self, macromodel: SubstrateMacromodel) -> SubstrateMacromodel:
        self.substrates.append(macromodel)
        return self.substrates[-1]

    # ------------------------------------------------------------------- nodes
    def node_names(self) -> list[str]:
        """All non-ground node names in first-seen order."""
        seen: dict[str, None] = {}

        def visit(name: str) -> None:
            if name != GROUND and name not in seen:
                seen[name] = None

        for r in self.resistors:
            visit(r.node_a)
            visit(r.node_b)
        for s in self.current_sources:
            visit(s.node_a)
            visit(s.node_b)
        for s in self.voltage_sources:
            visit(s.node_plus)
            visit(s.node_minus)
        for sub in self.substrates:
            for node in sub.nodes:
                visit(node)
        return list(seen)
