"""DC modified nodal analysis (MNA) with substrate macromodels.

Stamps resistors, sources and substrate conductance blocks into the MNA
system and solves for node voltages.  Two substrate-stamping modes are
supported:

* ``dense`` — the full ``n x n`` conductance block is stamped (the costly
  approach the paper wants to avoid);
* ``sparsified`` — the substrate contribution is applied through the
  ``Q Gw Q'`` representation inside an iterative (GMRES) solve, so the system
  matrix never holds the dense block, mirroring the intended use discussed in
  Sections 1.1 and 5.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import LinearOperator, gmres, splu

from .netlist import GROUND, Circuit

__all__ = ["DCSolution", "MNASolver"]


@dataclass
class DCSolution:
    """DC operating point: node voltages and voltage-source currents."""

    node_voltages: dict[str, float]
    source_currents: dict[str, float]
    iterations: int = 0

    def voltage(self, node: str) -> float:
        if node == GROUND:
            return 0.0
        return self.node_voltages[node]

    def voltage_between(self, node_a: str, node_b: str) -> float:
        return self.voltage(node_a) - self.voltage(node_b)


class MNASolver:
    """Assemble and solve the DC MNA system of a :class:`Circuit`."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.nodes = circuit.node_names()
        self.node_index = {name: k for k, name in enumerate(self.nodes)}
        self.n_nodes = len(self.nodes)
        self.n_vsources = len(circuit.voltage_sources)
        self.size = self.n_nodes + self.n_vsources

    # ------------------------------------------------------------------ stamps
    def _index(self, node: str) -> int | None:
        if node == GROUND:
            return None
        return self.node_index[node]

    def _base_system(self) -> tuple[sparse.lil_matrix, np.ndarray]:
        a = sparse.lil_matrix((self.size, self.size))
        b = np.zeros(self.size)
        for r in self.circuit.resistors:
            g = r.conductance
            ia, ib = self._index(r.node_a), self._index(r.node_b)
            if ia is not None:
                a[ia, ia] += g
            if ib is not None:
                a[ib, ib] += g
            if ia is not None and ib is not None:
                a[ia, ib] -= g
                a[ib, ia] -= g
        for s in self.circuit.current_sources:
            ia, ib = self._index(s.node_a), self._index(s.node_b)
            if ia is not None:
                b[ia] -= s.current
            if ib is not None:
                b[ib] += s.current
        for k, s in enumerate(self.circuit.voltage_sources):
            row = self.n_nodes + k
            ip, im = self._index(s.node_plus), self._index(s.node_minus)
            if ip is not None:
                a[ip, row] += 1.0
                a[row, ip] += 1.0
            if im is not None:
                a[im, row] -= 1.0
                a[row, im] -= 1.0
            b[row] = s.voltage
        return a, b

    def _substrate_incidence(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per macromodel: (terminal indices into the MNA vector, mask of grounded terminals)."""
        out = []
        for sub in self.circuit.substrates:
            idx = np.array(
                [self.node_index.get(node, -1) if node != GROUND else -1 for node in sub.nodes],
                dtype=int,
            )
            out.append((idx, idx < 0))
        return out

    # ------------------------------------------------------------------ solves
    def solve_dense(self) -> DCSolution:
        """Direct solve with the substrate blocks stamped densely."""
        a, b = self._base_system()
        a = a.toarray()
        for sub, (idx, grounded) in zip(
            self.circuit.substrates, self._substrate_incidence(), strict=True
        ):
            if sub.dense is None:
                g_block = sub.sparsified.to_dense()
            else:
                g_block = sub.dense
            live = np.flatnonzero(~grounded)
            rows = idx[live]
            # several terminals may share one circuit node (e.g. a digital
            # cluster tied together), so accumulate duplicates explicitly
            np.add.at(a, (rows[:, None], rows[None, :]), g_block[np.ix_(live, live)])
        x = np.linalg.solve(a, b)
        return self._package(x, iterations=0)

    def solve_sparsified(self, rtol: float = 1e-10) -> DCSolution:
        """Iterative solve applying the substrate blocks through ``Q Gw Q'``."""
        a, b = self._base_system()
        a_csr = a.tocsr()
        incidence = self._substrate_incidence()

        def matvec(x: np.ndarray) -> np.ndarray:
            y = a_csr @ x
            for sub, (idx, grounded) in zip(self.circuit.substrates, incidence, strict=True):
                v = np.zeros(sub.n_terminals)
                live = np.flatnonzero(~grounded)
                v[live] = x[idx[live]]
                i = sub.apply(v, use_sparsified=sub.sparsified is not None)
                np.add.at(y, idx[live], i[live])
            return y

        op = LinearOperator((self.size, self.size), matvec=matvec, dtype=float)
        # preconditioner: the circuit-only part plus substrate diagonals
        prec_matrix = a.tolil(copy=True)
        for sub, (idx, grounded) in zip(self.circuit.substrates, incidence, strict=True):
            if sub.sparsified is not None:
                diag = sub.sparsified.matmat(np.eye(sub.n_terminals, 1)).ravel()
                approx_diag = np.full(sub.n_terminals, max(abs(diag[0]), 1e-12))
            else:
                approx_diag = np.abs(np.diag(sub.dense))
            live = np.flatnonzero(~grounded)
            for t in live:
                prec_matrix[idx[t], idx[t]] += approx_diag[t]
        lu = splu(prec_matrix.tocsc())
        m = LinearOperator((self.size, self.size), matvec=lu.solve, dtype=float)

        iterations = 0

        def cb(_x: np.ndarray) -> None:
            nonlocal iterations
            iterations += 1

        x, info = gmres(op, b, rtol=rtol, atol=0.0, maxiter=500, M=m, callback=cb,
                        callback_type="pr_norm")
        if info > 0:
            raise RuntimeError("GMRES did not converge in the MNA solve")
        return self._package(x, iterations=iterations)

    # ------------------------------------------------------------------ output
    def _package(self, x: np.ndarray, iterations: int) -> DCSolution:
        node_voltages = {name: float(x[k]) for name, k in self.node_index.items()}
        source_currents = {
            (s.name or f"V{k}"): float(x[self.n_nodes + k])
            for k, s in enumerate(self.circuit.voltage_sources)
        }
        return DCSolution(node_voltages, source_currents, iterations)
