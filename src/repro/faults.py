"""Deterministic fault injection for robustness tests and chaos benchmarks.

The service's failure-domain hardening (supervised worker pools, scheduler
retry with backoff, circuit breakers, admission control) is only trustworthy
if every failure mode it claims to survive can be produced **on demand** —
in a unit test, in the chaos benchmark's gates, and against a live CLI
service.  This module is that trigger: production code calls
:func:`fault_hook` at a handful of named *sites*, and an active
:class:`FaultPlan` decides whether that call raises, kills the process,
sleeps, or asks the caller to drop the operation.  With no plan active the
hook is a dict lookup away from free, and nothing in the package behaves
differently.

Sites wired in this package:

====================  =========================================================
site                  where it fires
====================  =========================================================
``worker.solve``      in a pool worker, at the top of a ``solve_many`` shard
                      (context: ``start``, ``width``) — ``kill`` here breaks
                      the process pool mid-block
``factor.build``      in the scheduler, before an extraction engine is built
                      for a fingerprint group (context: ``kind``)
``shm.attach``        at the top of
                      :func:`~repro.substrate.factor_cache.attach_shared_factor`
                      — ``raise`` here simulates a torn/corrupt segment
``sqlite.write``      in :meth:`SqliteResultBackend.save
                      <repro.service.persistence.SqliteResultBackend.save>`
                      (context: ``op``) — ``delay`` or ``raise`` a durable
                      column write
``dispatch.cycle``    at the top of :meth:`Scheduler.step
                      <repro.service.scheduler.Scheduler.step>` — ``drop``
                      skips the drain cycle, leaving the queue untouched
``rpc.send``          in the cluster leader, before each solve RPC to a
                      worker host (context: ``worker_id``) — ``raise`` here
                      simulates a network partition, exercising dead-host
                      marking and fingerprint re-routing
``rpc.serve``         in a cluster worker, at the top of the
                      ``/v1/cluster/solve`` handler (context: ``worker_id``)
                      — ``kill`` here is the chaos benchmark's host death:
                      the worker dies holding a routed group
``worker.heartbeat``  in a cluster worker's heartbeat thread, before each
                      report to the leader (context: ``worker_id``) —
                      ``drop`` suppresses heartbeats until the lease
                      expires, simulating a hung-but-listening host
====================  =========================================================

A plan is a list of :class:`FaultSpec` entries.  Each names its site, an
``action`` (``raise`` / ``kill`` / ``delay`` / ``drop``), how often it fires
(``times`` per process, ``after`` skipped hits first), an optional ``match``
dict that must equal the hook's context on the named keys, and an optional
``once_key`` — a filesystem token (created ``O_EXCL`` under ``token_dir``)
that makes the fault fire **exactly once across every process**, which is
how "kill one pool worker" stays deterministic when the supervised pool
rebuilds workers with fresh in-memory counters.

Plans activate three ways, strongest first:

* :func:`install_plan` / the :func:`inject` context manager (tests);
* the ``REPRO_FAULTS`` environment variable — either inline JSON or
  ``@/path/to/plan.json`` — read lazily once per process, so worker
  processes (fork *and* spawn inherit the environment) honour the same plan
  (CLI: ``python -m repro.service --faults ...`` sets it for you);
* nothing: the default, with near-zero overhead.

JSON plan format (the env var, ``--faults``, and :meth:`FaultPlan.from_json`
all accept it)::

    {"token_dir": "/tmp/chaos",
     "faults": [{"site": "worker.solve", "action": "kill",
                 "match": {"start": 0}, "once_key": "kill-one-worker"},
                {"site": "factor.build", "action": "raise",
                 "exception": "RuntimeError", "times": 1},
                {"site": "sqlite.write", "action": "delay", "delay_s": 0.01,
                 "times": 8}]}

A bare JSON list is accepted as shorthand for ``{"faults": [...]}``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "fault_hook",
    "active_plan",
    "install_plan",
    "clear_plan",
    "reload_env_plan",
    "inject",
]

#: environment variable naming the process-wide plan (JSON or ``@path``)
ENV_VAR = "REPRO_FAULTS"

#: actions a spec may take when it fires
ACTIONS = ("raise", "kill", "delay", "drop")


class InjectedFault(RuntimeError):
    """Default exception raised by ``action="raise"`` faults."""


#: exception types a JSON plan may name (a plan is data, not code — an
#: arbitrary-import lookup here would turn the env var into an exec vector)
_EXCEPTIONS: dict[str, type[BaseException]] = {
    "InjectedFault": InjectedFault,
    "RuntimeError": RuntimeError,
    "OSError": OSError,
    "IOError": OSError,
    "ValueError": ValueError,
    "MemoryError": MemoryError,
    "TimeoutError": TimeoutError,
    "ConnectionError": ConnectionError,
}


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: where it fires, what it does, how often.

    Parameters
    ----------
    site:
        Hook site name (see the module table).
    action:
        ``"raise"`` the named ``exception``, ``"kill"`` the process with
        ``os._exit(exit_code)``, ``"delay"`` for ``delay_s`` seconds, or
        ``"drop"`` — return ``True`` from the hook so the call site skips
        the guarded operation.
    times:
        Firing budget *per process* (``None`` = unlimited).  Cross-process
        single-shot semantics need ``once_key`` instead.
    after:
        Matching hits skipped before the first firing (``after=2`` fires on
        the third hit).
    match:
        Context keys that must compare equal at the hook for the spec to
        match (e.g. ``{"start": 0}`` targets one shard).
    once_key:
        Filesystem token name: the fault fires only for the process that
        wins the ``O_EXCL`` create of ``<token_dir>/<once_key>.tripped``.
    """

    site: str
    action: str = "raise"
    times: int | None = 1
    after: int = 0
    exception: str = "InjectedFault"
    message: str = "injected fault"
    delay_s: float = 0.0
    exit_code: int = 1
    match: dict[str, Any] = field(default_factory=dict)
    once_key: str | None = None

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"action must be one of {ACTIONS}, got {self.action!r}")
        if self.action == "raise" and self.exception not in _EXCEPTIONS:
            raise ValueError(
                f"exception must be one of {sorted(_EXCEPTIONS)}, got {self.exception!r}"
            )
        if self.times is not None and self.times < 0:
            raise ValueError("times must be >= 0 (or None for unlimited)")
        if self.after < 0:
            raise ValueError("after must be >= 0")

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(f"unknown fault spec keys {sorted(unknown)}")
        if "site" not in doc:
            raise ValueError("fault spec requires a 'site'")
        return cls(**doc)

    def to_dict(self) -> dict:
        doc: dict[str, Any] = {"site": self.site, "action": self.action}
        defaults = FaultSpec(site=self.site)
        for name in (
            "times",
            "after",
            "exception",
            "message",
            "delay_s",
            "exit_code",
            "match",
            "once_key",
        ):
            value = getattr(self, name)
            if value != getattr(defaults, name):
                doc[name] = value
        return doc


class FaultPlan:
    """An active set of :class:`FaultSpec` entries with per-process counters.

    Thread-safe: the scheduler dispatcher, HTTP handler threads and pool
    plumbing may all pass through hooks concurrently.  ``fired`` keeps an
    in-process log of every fault that actually fired (tests assert on it);
    the cross-process evidence for ``kill`` faults is the ``once_key``
    token file itself.
    """

    def __init__(
        self, specs: list[FaultSpec] | tuple[FaultSpec, ...], token_dir: str | None = None
    ) -> None:
        self.specs = tuple(specs)
        self.token_dir = token_dir
        self._lock = threading.Lock()
        self._hits = [0] * len(self.specs)  # reprolint: guarded-by(_lock)
        self._fires = [0] * len(self.specs)  # reprolint: guarded-by(_lock)
        # reprolint: guarded-by(_lock)
        self.fired: list[tuple[str, str]] = []

    # ------------------------------------------------------------------- (de)ser
    @classmethod
    def from_json(cls, text_or_doc: "str | dict | list") -> "FaultPlan":
        """Build a plan from JSON text, a parsed dict, or a bare spec list."""
        doc = text_or_doc
        if isinstance(doc, str):
            doc = json.loads(doc)
        if isinstance(doc, list):
            doc = {"faults": doc}
        if not isinstance(doc, dict):
            raise ValueError("fault plan must be a JSON object or list")
        specs = [FaultSpec.from_dict(dict(entry)) for entry in doc.get("faults", [])]
        return cls(specs, token_dir=doc.get("token_dir"))

    def to_json(self) -> str:
        doc: dict[str, Any] = {"faults": [spec.to_dict() for spec in self.specs]}
        if self.token_dir is not None:
            doc["token_dir"] = self.token_dir
        return json.dumps(doc)

    # ------------------------------------------------------------------ firing
    def _token_path(self, once_key: str) -> str:
        root = self.token_dir or os.environ.get("REPRO_FAULTS_DIR") or tempfile.gettempdir()
        return os.path.join(root, f"{once_key}.tripped")

    def _claim_once(self, once_key: str) -> bool:
        """Atomically claim a cross-process single-shot token; True on win."""
        path = self._token_path(once_key)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return False  # unwritable token dir: fail safe, never fire
        with os.fdopen(fd, "w") as fh:
            fh.write(f"pid={os.getpid()}\n")
        return True

    def once_tripped(self, once_key: str) -> bool:
        """True when a ``once_key`` fault has fired in *any* process."""
        return os.path.exists(self._token_path(once_key))

    def counters(self) -> list[dict]:
        """Per-spec hit/fire counts (this process only; diagnostics/tests)."""
        with self._lock:
            return [
                {"site": spec.site, "action": spec.action, "hits": h, "fires": f}
                for spec, h, f in zip(self.specs, self._hits, self._fires, strict=True)
            ]

    def fire(self, site: str, context: dict[str, Any]) -> bool:
        """Evaluate every matching spec at ``site``; see :func:`fault_hook`."""
        drop = False
        for idx, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if any(context.get(key) != value for key, value in spec.match.items()):
                continue
            with self._lock:
                self._hits[idx] += 1
                if self._hits[idx] <= spec.after:
                    continue
                if spec.times is not None and self._fires[idx] >= spec.times:
                    continue
            if spec.once_key is not None and not self._claim_once(spec.once_key):
                continue
            with self._lock:
                self._fires[idx] += 1
                self.fired.append((site, spec.action))
            if spec.action == "delay":
                time.sleep(spec.delay_s)
            elif spec.action == "drop":
                drop = True
            elif spec.action == "kill":
                os._exit(spec.exit_code)
            else:  # "raise"
                raise _EXCEPTIONS[spec.exception](f"{spec.message} (site={site})")
        return drop


# ------------------------------------------------------------- process state
#: lazily resolved process-wide plan; guarded by _STATE_LOCK
_PLAN: FaultPlan | None = None
#: whether the environment has been consulted yet (once per process)
_ENV_LOADED = False
_STATE_LOCK = threading.Lock()


def _load_env_plan() -> FaultPlan | None:
    value = os.environ.get(ENV_VAR)
    if not value:
        return None
    if value.startswith("@"):
        with open(value[1:], "r", encoding="utf-8") as fh:
            value = fh.read()
    return FaultPlan.from_json(value)


def active_plan() -> FaultPlan | None:
    """The plan in force for this process, if any (env read lazily, once)."""
    global _PLAN, _ENV_LOADED
    with _STATE_LOCK:
        if _PLAN is None and not _ENV_LOADED:
            _ENV_LOADED = True
            _PLAN = _load_env_plan()
        return _PLAN


def install_plan(plan: "FaultPlan | str | dict | list") -> FaultPlan:
    """Activate a plan for this process (overriding any env plan)."""
    global _PLAN, _ENV_LOADED
    if not isinstance(plan, FaultPlan):
        plan = FaultPlan.from_json(plan)
    with _STATE_LOCK:
        _PLAN = plan
        _ENV_LOADED = True
    return plan


def clear_plan() -> None:
    """Deactivate fault injection (the env var is *not* re-read afterwards)."""
    global _PLAN, _ENV_LOADED
    with _STATE_LOCK:
        _PLAN = None
        _ENV_LOADED = True


def reload_env_plan() -> FaultPlan | None:
    """Re-read ``REPRO_FAULTS`` now and activate the result.

    For callers that set the environment variable after import (the service
    CLI's ``--faults``): parses eagerly, so a malformed plan raises here
    instead of inside a worker.  An unset/empty variable deactivates.
    """
    global _PLAN, _ENV_LOADED
    plan = _load_env_plan()
    with _STATE_LOCK:
        _PLAN = plan
        _ENV_LOADED = True
    return plan


@contextmanager
def inject(plan: "FaultPlan | str | dict | list") -> Iterator[FaultPlan]:
    """Context manager: activate a plan, always deactivate on exit.

    Worker *processes* resolve their own plan (from the inherited module
    state under fork, or the ``REPRO_FAULTS`` environment under spawn) — a
    caller that needs faults inside workers started after this block should
    also export the plan via the env var.
    """
    installed = install_plan(plan)
    try:
        yield installed
    finally:
        clear_plan()


def fault_hook(site: str, **context: Any) -> bool:
    """Fire any active faults registered at ``site``.

    Returns ``True`` when a ``drop`` fault fired (the caller should skip the
    guarded operation), ``False`` otherwise.  ``raise`` faults raise out of
    this call; ``kill`` faults never return; ``delay`` faults sleep first.
    With no active plan this is a lock-free constant-time no-op.
    """
    plan = _PLAN
    if plan is None:
        if _ENV_LOADED:
            return False
        plan = active_plan()
        if plan is None:
            return False
    return plan.fire(site, context)
