"""Sparsity-pattern ("spy plot") utilities.

The paper illustrates the structure of ``Gws`` and ``Gwt`` with MATLAB spy
plots (Figures 3-9, 3-10, 4-9, 4-11).  Without a plotting dependency the same
information is exposed here as (i) summary statistics (nonzero counts, block
structure along the diagonal/rays) and (ii) a coarse text rendering suitable
for terminals and log files.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = ["spy_statistics", "spy_text", "bandwidth_profile"]


def spy_statistics(matrix: sparse.spmatrix | np.ndarray) -> dict[str, float]:
    """Summary statistics of the nonzero pattern."""
    m = sparse.csr_matrix(matrix)
    n_rows, n_cols = m.shape
    nnz = int(m.nnz)
    coo = m.tocoo()
    if nnz:
        distance = np.abs(coo.row - coo.col)
        mean_dist = float(distance.mean())
        diag_frac = float(np.count_nonzero(distance == 0) / nnz)
        near_diag_frac = float(
            np.count_nonzero(distance <= max(1, n_rows // 50)) / nnz
        )
    else:
        mean_dist = 0.0
        diag_frac = 0.0
        near_diag_frac = 0.0
    return {
        "shape": float(n_rows),
        "nnz": float(nnz),
        "density": nnz / (n_rows * n_cols) if n_rows and n_cols else 0.0,
        "sparsity_factor": (n_rows * n_cols) / nnz if nnz else float("inf"),
        "mean_distance_from_diagonal": mean_dist,
        "fraction_on_diagonal": diag_frac,
        "fraction_near_diagonal": near_diag_frac,
    }


def spy_text(
    matrix: sparse.spmatrix | np.ndarray, width: int = 64, char: str = "#"
) -> str:
    """Coarse text rendering of the nonzero pattern (rows top to bottom).

    Each character cell aggregates a block of the matrix; the cell is filled
    when the block contains at least one nonzero.
    """
    m = sparse.coo_matrix(matrix)
    n_rows, n_cols = m.shape
    width = min(width, n_cols) or 1
    height = max(1, int(round(width * n_rows / max(n_cols, 1))))
    grid = np.zeros((height, width), dtype=bool)
    if m.nnz:
        r = np.minimum((m.row * height) // max(n_rows, 1), height - 1)
        c = np.minimum((m.col * width) // max(n_cols, 1), width - 1)
        grid[r, c] = True
    lines = ["".join(char if cell else "." for cell in row) for row in grid]
    return "\n".join(lines)


def bandwidth_profile(
    matrix: sparse.spmatrix | np.ndarray, n_bins: int = 16
) -> np.ndarray:
    """Histogram of nonzeros by distance from the diagonal (normalised).

    Captures the "rays" structure described in Section 3.7.1 in a form that
    can be compared numerically between the wavelet and low-rank patterns.
    """
    m = sparse.coo_matrix(matrix)
    if m.nnz == 0:
        return np.zeros(n_bins)
    distance = np.abs(m.row - m.col)
    edges = np.linspace(0, max(int(distance.max()), 1) + 1, n_bins + 1)
    hist, _ = np.histogram(distance, bins=edges)
    return hist / m.nnz
