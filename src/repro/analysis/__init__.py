"""Accuracy/sparsity metrics and sparsity-pattern (spy) utilities."""

from .metrics import (
    AccuracyReport,
    evaluate_against_columns,
    evaluate_against_dense,
    fraction_above,
    max_relative_error,
    naive_threshold_sparsity,
    relative_error_matrix,
)

__all__ = [
    "AccuracyReport",
    "evaluate_against_dense",
    "evaluate_against_columns",
    "relative_error_matrix",
    "max_relative_error",
    "fraction_above",
    "naive_threshold_sparsity",
]
