"""Accuracy and sparsity metrics used in the paper's tables.

The paper reports, for each example and method (Tables 3.1, 4.1, 4.2, 4.3):

* the sparsity factor of ``Gw`` (``n^2 / nnz``),
* the maximum entrywise relative error of ``Q Gw Q'`` versus the exact ``G``,
* the fraction of entries whose relative error exceeds 10% (thresholded case),
* the solve-reduction factor (``n`` / number of black-box solves).

For the largest examples the error is estimated on a random sample of columns
of ``G`` (Section 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.sparsified import SparsifiedConductance

__all__ = [
    "relative_error_matrix",
    "max_relative_error",
    "fraction_above",
    "AccuracyReport",
    "evaluate_against_dense",
    "evaluate_against_columns",
    "naive_threshold_sparsity",
]


def relative_error_matrix(approx: np.ndarray, exact: np.ndarray) -> np.ndarray:
    """Entrywise ``|approx - exact| / |exact|`` (paper's error measure).

    Entries where ``exact`` is exactly zero are measured against the largest
    magnitude of ``exact`` instead, so the result is always finite.
    """
    approx = np.asarray(approx, dtype=float)
    exact = np.asarray(exact, dtype=float)
    denom = np.abs(exact)
    fallback = denom.max() if denom.size else 1.0
    denom = np.where(denom > 0, denom, fallback if fallback > 0 else 1.0)
    return np.abs(approx - exact) / denom


def max_relative_error(approx: np.ndarray, exact: np.ndarray) -> float:
    """Maximum entrywise relative error."""
    return float(relative_error_matrix(approx, exact).max())


def fraction_above(
    approx: np.ndarray, exact: np.ndarray, threshold: float = 0.10
) -> float:
    """Fraction of entries with relative error above ``threshold``."""
    err = relative_error_matrix(approx, exact)
    return float(np.count_nonzero(err > threshold) / err.size)


@dataclass
class AccuracyReport:
    """Sparsity/accuracy summary for one representation against a reference."""

    method: str
    n_contacts: int
    sparsity_factor: float
    q_sparsity_factor: float
    max_relative_error: float
    fraction_above_10pct: float
    n_solves: int
    solve_reduction_factor: float

    def as_dict(self) -> dict[str, float | int | str]:
        return {
            "method": self.method,
            "n_contacts": self.n_contacts,
            "sparsity_factor": self.sparsity_factor,
            "q_sparsity_factor": self.q_sparsity_factor,
            "max_relative_error": self.max_relative_error,
            "fraction_above_10pct": self.fraction_above_10pct,
            "n_solves": self.n_solves,
            "solve_reduction_factor": self.solve_reduction_factor,
        }

    def __str__(self) -> str:
        return (
            f"{self.method:>24s}  n={self.n_contacts:5d}  "
            f"sparsity={self.sparsity_factor:7.1f}  "
            f"maxrel={100 * self.max_relative_error:7.2f}%  "
            f">10%={100 * self.fraction_above_10pct:6.2f}%  "
            f"solves={self.n_solves:5d}  "
            f"reduction={self.solve_reduction_factor:5.1f}x"
        )


def evaluate_against_dense(
    rep: SparsifiedConductance, g_exact: np.ndarray
) -> AccuracyReport:
    """Full accuracy report versus an explicitly known dense ``G``."""
    approx = rep.to_dense()
    return AccuracyReport(
        method=rep.method,
        n_contacts=rep.n_contacts,
        sparsity_factor=rep.sparsity_factor(),
        q_sparsity_factor=rep.q_sparsity_factor(),
        max_relative_error=max_relative_error(approx, g_exact),
        fraction_above_10pct=fraction_above(approx, g_exact),
        n_solves=rep.n_solves,
        solve_reduction_factor=rep.solve_reduction_factor(),
    )


def evaluate_against_columns(
    rep: SparsifiedConductance, columns: np.ndarray, g_columns: np.ndarray
) -> AccuracyReport:
    """Accuracy report from a sample of exact columns of ``G`` (Table 4.3).

    Parameters
    ----------
    columns:
        Indices of the sampled columns.
    g_columns:
        ``(n, len(columns))`` exact columns of ``G``.
    """
    columns = np.asarray(columns, dtype=int)
    basis = np.zeros((rep.n_contacts, columns.size))
    basis[columns, np.arange(columns.size)] = 1.0
    approx = rep.matmat(basis)
    return AccuracyReport(
        method=rep.method,
        n_contacts=rep.n_contacts,
        sparsity_factor=rep.sparsity_factor(),
        q_sparsity_factor=rep.q_sparsity_factor(),
        max_relative_error=max_relative_error(approx, g_columns),
        fraction_above_10pct=fraction_above(approx, g_columns),
        n_solves=rep.n_solves,
        solve_reduction_factor=rep.solve_reduction_factor(),
    )


def naive_threshold_sparsity(
    g_exact: np.ndarray, max_relative_error_allowed: float = 0.10
) -> float:
    """Sparsity achievable by thresholding ``G`` directly in the standard basis.

    The baseline the paper argues against (Section 5.1: both methods "work
    better than the naive method of simply thresholding away small entries in
    the original G").  Returns the best sparsity factor such that every
    dropped entry has relative error 1 (dropped) only if it is smaller than
    ``max_relative_error_allowed`` would allow — i.e. entries can only be
    dropped if dropping them is within the error budget, which for a relative
    measure means no entry can be dropped at all; the function therefore
    reports the sparsity for dropping entries smaller than
    ``max_relative_error_allowed`` times the largest off-diagonal magnitude,
    the natural absolute-threshold baseline.
    """
    g = np.asarray(g_exact, dtype=float)
    n = g.shape[0]
    off = np.abs(g - np.diag(np.diag(g)))
    cutoff = max_relative_error_allowed * off.max()
    nnz = int(np.count_nonzero(np.abs(g) >= cutoff))
    return n * n / max(nnz, 1)
