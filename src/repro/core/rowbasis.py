"""Multilevel row-basis representation of the conductance matrix (Section 4.3).

The coarse-to-fine sweep of the low-rank method builds, for every square
``s`` of the hierarchy, a small orthonormal *row basis* ``V_s`` (at most
``max_rank`` columns) such that the interaction of ``s`` with its interactive
region is captured by the responses ``G_{P_s, s} V_s`` (``P_s`` = interactive
plus local squares).  The row basis is obtained from the SVD of *sampled*
interactions — one random sample vector per square, shared between all the
squares whose interaction lists contain it — so the whole construction needs
only ``O(log n)`` black-box solves thanks to the combine-solves technique of
Section 3.5, refined by the symmetry trick of eq. (4.24).

The finished representation supports an ``O(n log n)`` approximate
matrix-vector product with ``G`` (Section 4.3.2) and is the input to the
fine-to-coarse sweep of :mod:`repro.core.lowrank`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.quadtree import Square, SquareHierarchy
from ..substrate.solver_base import SubstrateSolver

__all__ = ["RowBasisData", "MultilevelRowBasis", "interaction_singular_values"]

SquareKey = tuple[int, int, int]


def _positions(superset: np.ndarray, subset: np.ndarray) -> np.ndarray:
    """Positions of ``subset`` entries inside the sorted array ``superset``."""
    pos = np.searchsorted(superset, subset)
    if pos.size and (pos.max(initial=0) >= superset.size or np.any(superset[pos] != subset)):
        raise ValueError("subset contains indices not present in superset")
    return pos


def interaction_singular_values(
    g: np.ndarray, source: np.ndarray, destination: np.ndarray
) -> np.ndarray:
    """Singular values of the matrix section ``G(destination, source)``.

    Used for Figure 4-3: the self-interaction of a square of contacts has
    slowly decaying singular values while the interaction with a
    well-separated square decays very fast.
    """
    block = np.asarray(g, dtype=float)[np.ix_(destination, source)]
    return np.linalg.svd(block, compute_uv=False)


@dataclass
class RowBasisData:
    """Row basis and responses for one square.

    Attributes
    ----------
    contact_indices:
        Contacts of the square (length ``n_s``).
    v:
        Orthonormal row basis (``n_s x k_s``).
    p_contacts:
        Sorted contacts of ``P_s`` (interactive plus local squares).
    gv_p:
        Approximate responses ``G_{P_s, s} V_s`` (``|P_s| x k_s``).
    """

    key: SquareKey
    contact_indices: np.ndarray
    v: np.ndarray
    p_contacts: np.ndarray
    gv_p: np.ndarray

    @property
    def rank(self) -> int:
        return self.v.shape[1]


class MultilevelRowBasis:
    """Coarse-to-fine construction of the multilevel row-basis representation.

    Parameters
    ----------
    hierarchy:
        Multilevel square hierarchy.
    max_rank:
        Maximum number of row-basis vectors kept per square (the paper uses 6).
    sv_rel_threshold:
        Relative singular-value cut: singular values larger than this fraction
        of the largest are considered "large" (the paper uses 1/100).
    seed:
        Seed of the random sample vectors.
    max_block:
        Largest number of right-hand sides submitted to the black box per
        ``solve_many`` call (memory bound; does not change the attributed
        solve count).
    """

    def __init__(
        self,
        hierarchy: SquareHierarchy,
        max_rank: int = 6,
        sv_rel_threshold: float = 1e-2,
        seed: int = 0,
        max_block: int = 256,
    ) -> None:
        self.hierarchy = hierarchy
        self.max_rank = max_rank
        self.sv_rel_threshold = sv_rel_threshold
        self.max_block = max(int(max_block), 1)
        self.rng = np.random.default_rng(seed)
        self.data: dict[SquareKey, RowBasisData] = {}
        #: finest-level local interaction blocks: key -> (local contacts, block)
        self.local_blocks: dict[SquareKey, tuple[np.ndarray, np.ndarray]] = {}
        #: orthonormal complements of the finest-level row bases
        self.finest_w: dict[SquareKey, np.ndarray] = {}
        self.n_solves = 0
        self.built = False

    # ------------------------------------------------------------------ build
    def build(self, solver: SubstrateSolver) -> "MultilevelRowBasis":
        """Run the coarse-to-fine sweep using the black-box ``solver``."""
        hier = self.hierarchy
        for level in range(2, hier.max_level + 1):
            squares = list(hier.squares_at_level(level))
            if not squares:
                continue
            samples = {
                sq.key: self.rng.standard_normal((sq.n_contacts, 1)) for sq in squares
            }
            sample_resp = self._responses(level, samples, solver)
            self._build_row_bases(level, samples, sample_resp)
            basis_vectors = {
                sq.key: self.data[sq.key].v for sq in squares if self.data[sq.key].rank
            }
            basis_resp = self._responses(level, basis_vectors, solver)
            for sq in squares:
                rb = self.data[sq.key]
                if rb.rank:
                    rb.gv_p = basis_resp[sq.key]
                else:
                    rb.gv_p = np.zeros((rb.p_contacts.size, 0))
        self._build_finest_local_blocks(solver)
        self.built = True
        return self

    # ------------------------------------------------------- response machinery
    def _p_contacts(self, square: Square) -> np.ndarray:
        return self.hierarchy.contacts_in(
            self.hierarchy.interactive_and_local(square)
        )

    def _responses(
        self,
        level: int,
        vectors: dict[SquareKey, np.ndarray],
        solver: SubstrateSolver,
    ) -> dict[SquareKey, np.ndarray]:
        """Approximate ``G_{P_s, s} X_s`` for vectors ``X_s`` supported on each square.

        On the coarsest useful level (2) the responses are obtained with one
        direct black-box call per column; on finer levels the splitting of
        Section 4.3.3 (parent row-basis part + combine-solves for the rest,
        refined via eq. 4.24) is used.
        """
        if level == 2:
            return self._responses_direct(level, vectors, solver)
        return self._responses_split(level, vectors, solver)

    def _responses_direct(
        self,
        level: int,
        vectors: dict[SquareKey, np.ndarray],
        solver: SubstrateSolver,
    ) -> dict[SquareKey, np.ndarray]:
        hier = self.hierarchy
        n = hier.layout.n_contacts
        # one RHS column per (square, sample column), submitted in one block
        rhs_cols: list[np.ndarray] = []
        col_owner: list[tuple[SquareKey, int]] = []
        pcs: dict[SquareKey, np.ndarray] = {}
        for sq in hier.squares_at_level(level):
            x = vectors.get(sq.key)
            if x is None:
                continue
            pcs[sq.key] = self._p_contacts(sq)
            for col in range(x.shape[1]):
                full = np.zeros(n)
                full[sq.contact_indices] = x[:, col]
                rhs_cols.append(full)
                col_owner.append((sq.key, col))
        out: dict[SquareKey, np.ndarray] = {
            key: np.empty((pcs[key].size, vectors[key].shape[1])) for key in pcs
        }
        for start in range(0, len(rhs_cols), self.max_block):
            stop = min(start + self.max_block, len(rhs_cols))
            responses = solver.solve_many(np.column_stack(rhs_cols[start:stop]))
            self.n_solves += stop - start
            for pos in range(stop - start):
                key, col = col_owner[start + pos]
                out[key][:, col] = responses[pcs[key], pos]
        return out

    def _responses_split(
        self,
        level: int,
        vectors: dict[SquareKey, np.ndarray],
        solver: SubstrateSolver,
    ) -> dict[SquareKey, np.ndarray]:
        hier = self.hierarchy
        n = hier.layout.n_contacts
        squares = [
            sq
            for sq in hier.squares_at_level(level)
            if sq.key in vectors and vectors[sq.key].shape[1] > 0
        ]
        results: dict[SquareKey, np.ndarray] = {}
        ortho: dict[SquareKey, np.ndarray] = {}
        parent_of: dict[SquareKey, Square] = {}
        pc_of: dict[SquareKey, np.ndarray] = {}

        for sq in squares:
            parent = hier.parent(sq)
            pdata = self.data[parent.key]
            x = vectors[sq.key]
            x_parent = np.zeros((parent.contact_indices.size, x.shape[1]))
            rows = _positions(parent.contact_indices, sq.contact_indices)
            x_parent[rows, :] = x
            coeff = pdata.v.T @ x_parent
            resid = x_parent - pdata.v @ coeff
            pc = self._p_contacts(sq)
            pos = _positions(pdata.p_contacts, pc)
            results[sq.key] = pdata.gv_p[pos, :] @ coeff
            ortho[sq.key] = resid
            parent_of[sq.key] = parent
            pc_of[sq.key] = pc

        # combine-solves for the parts orthogonal to the parent row bases
        groups: dict[tuple[int, int, int, int, int], list[SquareKey]] = {}
        for sq in squares:
            parent = parent_of[sq.key]
            for col in range(ortho[sq.key].shape[1]):
                gkey = (parent.i % 3, parent.j % 3, sq.i % 2, sq.j % 2, col)
                groups.setdefault(gkey, []).append(sq.key)

        # every group is one combined solve; submit them all in one block
        def contribution(key: SquareKey, col: int) -> tuple[np.ndarray, np.ndarray]:
            return parent_of[key].contact_indices, ortho[key][:, col]

        for gkey, members, y in self._combined_group_responses(
            solver, n, list(groups.items()), contribution
        ):
            col = gkey[-1]
            for key in members:
                parent = parent_of[key]
                o = ortho[key][:, col]
                pc = pc_of[key]
                contrib = np.zeros(pc.size)
                for q in hier.local_squares(parent):
                    qdata = self.data[q.key]
                    raw = y[q.contact_indices]
                    refined = self._refine_local_response(qdata, parent, o, raw)
                    pos_q = _positions(pc, q.contact_indices)
                    contrib[pos_q] = refined
                results[key][:, col] += contrib
        return results

    def _combined_group_responses(
        self,
        solver: SubstrateSolver,
        n: int,
        group_list: list[tuple[tuple, list[SquareKey]]],
        contribution,
    ):
        """Run all combined solves of ``group_list`` as one ``solve_many`` block.

        Each group ``(gkey, members)`` becomes one theta column assembled by
        summing ``contribution(member_key, gkey[-1]) -> (contact_indices,
        values)`` over its members; yields ``(gkey, members, response_column)``
        per group.  One attributed black-box solve per group, exactly as the
        sequential combine-solves technique of Section 3.5; submissions are
        chunked to ``max_block`` columns to bound memory.
        """
        for start in range(0, len(group_list), self.max_block):
            chunk = group_list[start:start + self.max_block]
            thetas = np.zeros((n, len(chunk)))
            for g_idx, (gkey, members) in enumerate(chunk):
                col = gkey[-1]
                for key in members:
                    indices, values = contribution(key, col)
                    thetas[indices, g_idx] += values
            responses = solver.solve_many(thetas)
            self.n_solves += len(chunk)
            for g_idx, (gkey, members) in enumerate(chunk):
                yield gkey, members, responses[:, g_idx]

    def _refine_local_response(
        self,
        qdata: RowBasisData,
        source_square: Square,
        source_vector: np.ndarray,
        raw_response: np.ndarray,
    ) -> np.ndarray:
        """Eq. (4.24): split the response at ``q`` into row-basis and orthogonal parts.

        The row-basis part is reconstructed exactly from the stored responses
        (``G_{source, q} V_q`` by symmetry of ``G``); only the part orthogonal
        to ``V_q`` is taken from the (possibly contaminated) combined solve.
        """
        if qdata.rank == 0:
            return raw_response
        pos = _positions(qdata.p_contacts, source_square.contact_indices)
        g_sq_vq = qdata.gv_p[pos, :]  # responses of V_q at the source square
        term1 = qdata.v @ (g_sq_vq.T @ source_vector)
        term2 = raw_response - qdata.v @ (qdata.v.T @ raw_response)
        return term1 + term2

    # --------------------------------------------------------------- row bases
    def _truncated_basis(self, matrix: np.ndarray) -> np.ndarray:
        """Left singular vectors with large singular values (capped at max_rank)."""
        if matrix.size == 0:
            return np.zeros((matrix.shape[0], 0))
        u, s, _ = np.linalg.svd(matrix, full_matrices=False)
        if s.size == 0 or s[0] == 0.0:
            return np.zeros((matrix.shape[0], 0))
        rank = int(np.count_nonzero(s > self.sv_rel_threshold * s[0]))
        rank = min(rank, self.max_rank, matrix.shape[0])
        return u[:, :rank]

    def _build_row_bases(
        self,
        level: int,
        samples: dict[SquareKey, np.ndarray],
        sample_resp: dict[SquareKey, np.ndarray],
    ) -> None:
        hier = self.hierarchy
        for sq in hier.squares_at_level(level):
            interactive = hier.interactive_squares(sq)
            columns = []
            for d in interactive:
                resp_d = sample_resp.get(d.key)
                if resp_d is None:
                    continue
                pc_d = self._p_contacts(d)
                pos = _positions(pc_d, sq.contact_indices)
                columns.append(resp_d[pos, :])
            if columns:
                sampled = np.hstack(columns)
                v = self._truncated_basis(sampled)
            else:
                # no interactive contacts: keep the whole (small) space
                k = min(self.max_rank, sq.n_contacts)
                v = np.eye(sq.n_contacts)[:, :k]
            pc = self._p_contacts(sq)
            self.data[sq.key] = RowBasisData(
                sq.key, sq.contact_indices, v, pc, np.zeros((pc.size, v.shape[1]))
            )

    # -------------------------------------------------- finest local interactions
    def _orthonormal_complement(self, v: np.ndarray, dim: int) -> np.ndarray:
        """Orthonormal basis of the complement of ``span(v)`` in ``R^dim``."""
        if v.shape[1] >= dim:
            return np.zeros((dim, 0))
        if v.shape[1] == 0:
            return np.eye(dim)
        full = np.hstack([v, np.eye(dim)])
        q, _ = np.linalg.qr(full)
        return q[:, v.shape[1]: dim]

    def _build_finest_local_blocks(self, solver: SubstrateSolver) -> None:
        hier = self.hierarchy
        n = hier.layout.n_contacts
        level = hier.max_level
        squares = list(hier.squares_at_level(level))
        w_resp: dict[SquareKey, np.ndarray] = {}
        local_contacts: dict[SquareKey, np.ndarray] = {}

        for sq in squares:
            rb = self.data[sq.key]
            self.finest_w[sq.key] = self._orthonormal_complement(rb.v, sq.n_contacts)
            local_contacts[sq.key] = hier.contacts_in(hier.local_squares(sq))
            w_resp[sq.key] = np.zeros(
                (local_contacts[sq.key].size, self.finest_w[sq.key].shape[1])
            )

        groups: dict[tuple[int, int, int], list[SquareKey]] = {}
        for sq in squares:
            for col in range(self.finest_w[sq.key].shape[1]):
                groups.setdefault((sq.i % 3, sq.j % 3, col), []).append(sq.key)

        square_by_key = {sq.key: sq for sq in squares}

        def contribution(key: SquareKey, col: int) -> tuple[np.ndarray, np.ndarray]:
            return square_by_key[key].contact_indices, self.finest_w[key][:, col]

        for gkey, members, y in self._combined_group_responses(
            solver, n, list(groups.items()), contribution
        ):
            col = gkey[-1]
            for key in members:
                sq = square_by_key[key]
                w_col = self.finest_w[key][:, col]
                lc = local_contacts[key]
                for q in hier.local_squares(sq):
                    qdata = self.data[q.key]
                    raw = y[q.contact_indices]
                    refined = self._refine_local_response(qdata, sq, w_col, raw)
                    pos_q = _positions(lc, q.contact_indices)
                    w_resp[key][pos_q, col] = refined

        for sq in squares:
            rb = self.data[sq.key]
            lc = local_contacts[sq.key]
            pos = _positions(rb.p_contacts, lc)
            gv_local = rb.gv_p[pos, :]
            block = gv_local @ rb.v.T
            w = self.finest_w[sq.key]
            if w.shape[1]:
                block = block + w_resp[sq.key] @ w.T
            self.local_blocks[sq.key] = (lc, block)

    # ------------------------------------------------------------------- apply
    def apply(self, voltages: np.ndarray) -> np.ndarray:
        """Approximate ``G @ voltages`` using the representation (Section 4.3.2)."""
        return self.apply_block(np.asarray(voltages, dtype=float)[:, None])[:, 0]

    def apply_block(self, voltage_block: np.ndarray) -> np.ndarray:
        """Approximate ``G @ V`` for several voltage vectors at once."""
        if not self.built:
            raise RuntimeError("call build() before apply()")
        hier = self.hierarchy
        v = np.asarray(voltage_block, dtype=float)
        out = np.zeros_like(v)
        for level in range(2, hier.max_level + 1):
            for sq in hier.squares_at_level(level):
                sd = self.data[sq.key]
                v_s = v[sq.contact_indices, :]
                coeff = sd.v.T @ v_s
                resid = v_s - sd.v @ coeff
                for d in hier.interactive_squares(sq):
                    dd = self.data[d.key]
                    pos_d = _positions(sd.p_contacts, d.contact_indices)
                    term = sd.gv_p[pos_d, :] @ coeff
                    if dd.rank:
                        pos_s = _positions(dd.p_contacts, sq.contact_indices)
                        term = term + dd.v @ (dd.gv_p[pos_s, :].T @ resid)
                    out[d.contact_indices, :] += term
        for sq in hier.squares_at_level(hier.max_level):
            lc, block = self.local_blocks[sq.key]
            out[lc, :] += block @ v[sq.contact_indices, :]
        return out

    def to_dense(self) -> np.ndarray:
        """Dense matrix represented by the row-basis approximation (tests only)."""
        n = self.hierarchy.layout.n_contacts
        return self.apply_block(np.eye(n))

    # ------------------------------------------------------------------ report
    def storage_nonzeros(self) -> int:
        """Number of stored floating-point values (memory cost of Section 4.3)."""
        total = 0
        for rb in self.data.values():
            total += rb.v.size + rb.gv_p.size
        for _, block in self.local_blocks.values():
            total += block.size
        return total
