"""Wavelet (vanishing-moment) sparsification of the conductance matrix.

This is the algorithm of Chapter 3 (the DAC 2000 paper): build the multilevel
vanishing-moment basis ``Q`` from contact geometry, then extract the sparse
transformed matrix ``Gws`` with a near-constant number of black-box solves by
*combining solves* — vanishing-moment basis vectors from same-level squares
at least three squares apart are summed into a single solver call, and each
response is attributed to the unique nearby source square (Section 3.5,
Figure 3-5).

Only the entries allowed by the conservative locality assumption are kept:
interactions between vanishing-moment vectors in squares that are *not* well
separated (the finer square's ancestor at the coarser level is the same as or
a neighbour of the coarser square), plus all interactions involving the root
square's non-vanishing vectors.  Further sparsity is obtained by thresholding
(``Gwt``).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..geometry.quadtree import Square, SquareHierarchy
from ..substrate.solver_base import SubstrateSolver
from .sparsified import SparsifiedConductance
from .wavelet_basis import WaveletBasis

__all__ = ["WaveletSparsifier"]


class WaveletSparsifier:
    """Wavelet-basis extraction/sparsification pipeline.

    Parameters
    ----------
    hierarchy:
        Multilevel square hierarchy over the contacts.
    order:
        Vanishing-moment order ``p`` (the paper uses 2).
    rank_tol:
        Relative SVD tolerance of the basis construction.
    max_block:
        Largest number of combined-solve right-hand sides submitted to the
        black box per ``solve_many`` call (memory bound; does not change the
        attributed solve count).
    """

    def __init__(
        self,
        hierarchy: SquareHierarchy,
        order: int = 2,
        rank_tol: float = 1e-10,
        max_block: int = 256,
    ) -> None:
        self.hierarchy = hierarchy
        self.basis = WaveletBasis(hierarchy, order=order, rank_tol=rank_tol)
        self.max_block = max(int(max_block), 1)
        self._targets_cache: dict[tuple[int, int, int], list[Square]] = {}

    # --------------------------------------------------------------- locality
    def _target_squares(self, source: Square) -> list[Square]:
        """Squares whose interactions with ``source`` are kept.

        These are the squares, at the source's level or finer, whose ancestor
        at the source's level is local (same or neighbour) to the source.
        """
        cached = self._targets_cache.get(source.key)
        if cached is not None:
            return cached
        out: list[Square] = []
        frontier = self.hierarchy.local_squares(source)
        while frontier:
            out.extend(frontier)
            nxt: list[Square] = []
            for sq in frontier:
                nxt.extend(self.hierarchy.children(sq))
            frontier = nxt
        self._targets_cache[source.key] = out
        return out

    def kept_pattern(self) -> sparse.csr_matrix:
        """Boolean sparsity pattern of ``Gws`` implied by the locality assumption."""
        basis = self.basis
        ncols = basis.n_columns
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []

        root_cols = basis.root_v_columns()
        if root_cols.size:
            all_cols = np.arange(ncols)
            for j in root_cols:
                rows.append(np.full(ncols, j))
                cols.append(all_cols)
                rows.append(all_cols)
                cols.append(np.full(ncols, j))

        for level in self.hierarchy.levels():
            for source in self.hierarchy.squares_at_level(level):
                source_cols = basis.w_columns(source.key)
                if source_cols.size == 0:
                    continue
                for target in self._target_squares(source):
                    target_cols = basis.w_columns(target.key)
                    if target_cols.size == 0:
                        continue
                    rr, cc = np.meshgrid(target_cols, source_cols, indexing="ij")
                    rows.append(rr.ravel())
                    cols.append(cc.ravel())
                    rows.append(cc.ravel())
                    cols.append(rr.ravel())
        row = np.concatenate(rows) if rows else np.empty(0, dtype=int)
        col = np.concatenate(cols) if cols else np.empty(0, dtype=int)
        pattern = sparse.coo_matrix(
            (np.ones(row.size, dtype=bool), (row, col)), shape=(ncols, ncols)
        ).tocsr()
        pattern.data[:] = True
        return pattern

    # ------------------------------------------------------------- extraction
    def transform_dense(self, g_exact: np.ndarray) -> np.ndarray:
        """Full transformed matrix ``Gw = Q' G Q`` from a known dense ``G``."""
        q = self.basis.q_matrix.toarray()
        return q.T @ np.asarray(g_exact, dtype=float) @ q

    def extract_with_dense(self, g_exact: np.ndarray) -> SparsifiedConductance:
        """``Gws`` from a known dense ``G`` (no black-box solves).

        Applies the locality pattern to the exact ``Q' G Q``; used to isolate
        the basis-quality question from the combine-solves approximation.
        """
        gw_full = self.transform_dense(g_exact)
        pattern = self.kept_pattern().tocoo()
        data = gw_full[pattern.row, pattern.col]
        gws = sparse.coo_matrix((data, (pattern.row, pattern.col)), shape=pattern.shape)
        return SparsifiedConductance(
            self.basis.q_matrix, gws.tocsr(), n_solves=0, method="wavelet(dense)"
        )

    def extract(self, solver: SubstrateSolver) -> SparsifiedConductance:
        """Extract ``Gws`` with the combine-solves technique (Section 3.5)."""
        basis = self.basis
        hier = self.hierarchy
        n = hier.layout.n_contacts
        ncols = basis.n_columns
        q = basis.q_matrix  # csc
        n_solves = 0

        entry_rows: list[np.ndarray] = []
        entry_cols: list[np.ndarray] = []
        entry_vals: list[np.ndarray] = []

        def record(rr: np.ndarray, cc: np.ndarray, vv: np.ndarray) -> None:
            entry_rows.append(np.asarray(rr, dtype=int).ravel())
            entry_cols.append(np.asarray(cc, dtype=int).ravel())
            entry_vals.append(np.asarray(vv, dtype=float).ravel())

        # 1. root non-vanishing vectors: full rows and columns (few solves).
        # All root columns go to the black box as one stacked-RHS submission.
        root_cols = basis.root_v_columns()
        if root_cols.size:
            q_root = np.asarray(q[:, root_cols].todense())
            responses = solver.solve_many(q_root)
            n_solves += int(root_cols.size)
            rows_block = q.T @ responses  # (ncols, n_root)
            all_cols = np.arange(ncols)
            for pos, j in enumerate(root_cols):
                row = np.asarray(rows_block[:, pos]).ravel()
                record(np.full(ncols, j), all_cols, row)
                record(all_cols, np.full(ncols, j), row)

        # 2. combine-solves for the vanishing-moment vectors, level by level.
        # The combined vectors theta of one level are mutually independent, so
        # the whole level is submitted as a single solve_many block; each
        # column is still attributed as one black-box solve (the grouping —
        # which squares share a theta — is unchanged by batching).
        for level in hier.levels():
            squares = [
                sq
                for sq in hier.squares_at_level(level)
                if basis.basis(sq.key).n_vanishing > 0
            ]
            if not squares:
                continue
            thetas: list[np.ndarray] = []
            theta_sources: list[list[Square]] = []
            theta_modes: list[int] = []
            for a in range(3):
                for b in range(3):
                    group = [sq for sq in squares if sq.i % 3 == a and sq.j % 3 == b]
                    if not group:
                        continue
                    max_w = max(basis.basis(sq.key).n_vanishing for sq in group)
                    for m in range(max_w):
                        contributing = [
                            sq for sq in group if m < basis.basis(sq.key).n_vanishing
                        ]
                        if not contributing:
                            continue
                        theta = np.zeros(n)
                        for sq in contributing:
                            sb = basis.basis(sq.key)
                            theta[sb.contact_indices] += sb.W[:, m]
                        thetas.append(theta)
                        theta_sources.append(contributing)
                        theta_modes.append(m)
            if not thetas:
                continue
            # bounded chunks keep the (n, k) submission from growing with the
            # square count on coarse levels of very large layouts
            for start in range(0, len(thetas), self.max_block):
                stop = min(start + self.max_block, len(thetas))
                responses = solver.solve_many(np.column_stack(thetas[start:stop]))
                n_solves += stop - start
                for col in range(stop - start):
                    response = responses[:, col]
                    contributing = theta_sources[start + col]
                    m = theta_modes[start + col]
                    for sq in contributing:
                        source_col = int(basis.w_columns(sq.key)[m])
                        for target in self._target_squares(sq):
                            tb = basis.basis(target.key)
                            if tb.n_vanishing == 0:
                                continue
                            vals = tb.W.T @ response[tb.contact_indices]
                            tcols = basis.w_columns(target.key)
                            record(tcols, np.full(tcols.size, source_col), vals)
                            record(np.full(tcols.size, source_col), tcols, vals)

        gws = self._assemble(entry_rows, entry_cols, entry_vals, ncols)
        return SparsifiedConductance(q, gws, n_solves=n_solves, method="wavelet")

    @staticmethod
    def _assemble(
        rows: list[np.ndarray],
        cols: list[np.ndarray],
        vals: list[np.ndarray],
        ncols: int,
    ) -> sparse.csr_matrix:
        """Assemble entries with assignment semantics (first write wins)."""
        if not rows:
            return sparse.csr_matrix((ncols, ncols))
        r = np.concatenate(rows)
        c = np.concatenate(cols)
        v = np.concatenate(vals)
        flat = r.astype(np.int64) * ncols + c
        _, first = np.unique(flat, return_index=True)
        return sparse.coo_matrix(
            (v[first], (r[first], c[first])), shape=(ncols, ncols)
        ).tocsr()

    # ------------------------------------------------------------ convenience
    def sparsify(
        self,
        solver: SubstrateSolver,
        threshold_sparsity_multiplier: float | None = None,
    ) -> SparsifiedConductance:
        """Extract ``Gws`` and optionally threshold to a sparser ``Gwt``.

        ``threshold_sparsity_multiplier = 6`` reproduces the paper's choice of
        making the thresholded matrix about six times sparser than ``Gws``.
        """
        rep = self.extract(solver)
        if threshold_sparsity_multiplier is None:
            return rep
        target = rep.sparsity_factor() * threshold_sparsity_multiplier
        return rep.threshold_to_sparsity(target)
