"""Multilevel vanishing-moment (wavelet) basis construction (Section 3.4).

For every square of the hierarchy the contact-voltage space is split into a
small *non-vanishing* subspace ``V_s`` (at most ``d = (p+1)(p+2)/2`` vectors)
and a *vanishing-moment* subspace ``W_s`` whose voltage functions have all
polynomial moments of order ``<= p`` equal to zero over the square's contact
area.  Finest-level splits come from an SVD of the contact moment matrix;
coarser-level splits recombine the children's non-vanishing vectors using an
SVD of their (re-centred) moments.  The vanishing-moment vectors of every
square, together with the non-vanishing vectors of the root square, form the
orthogonal change-of-basis matrix ``Q``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..geometry.quadtree import Square, SquareHierarchy
from .moments import contact_moment_matrix, moment_count, moment_shift_matrix

__all__ = ["SquareBasis", "QColumn", "WaveletBasis"]

SquareKey = tuple[int, int, int]


@dataclass
class SquareBasis:
    """Per-square basis data.

    ``V`` spans the non-vanishing-moment subspace (pushed up to the parent),
    ``W`` spans the vanishing-moment subspace (contributed to ``Q``), both
    expressed on the square's own contacts (``contact_indices``), with
    orthonormal columns.  ``moments_V`` holds the moments of the ``V`` columns
    about the square centre, reused by the parent-level construction.
    """

    key: SquareKey
    contact_indices: np.ndarray
    V: np.ndarray
    W: np.ndarray
    moments_V: np.ndarray

    @property
    def n_vanishing(self) -> int:
        return self.W.shape[1]

    @property
    def n_nonvanishing(self) -> int:
        return self.V.shape[1]


@dataclass(frozen=True)
class QColumn:
    """Metadata for one column of ``Q``: which square and basis vector it is."""

    square_key: SquareKey
    kind: str  # "W" (vanishing) or "V0" (root non-vanishing)
    local_index: int


class WaveletBasis:
    """The multilevel wavelet basis and its change-of-basis matrix ``Q``.

    Parameters
    ----------
    hierarchy:
        The multilevel square hierarchy over the contacts.
    order:
        Moment order ``p``; all moments of order <= ``p`` vanish for the
        wavelet basis functions (the paper uses ``p = 2``).
    rank_tol:
        Relative singular-value threshold below which a moment direction is
        treated as already vanishing.
    """

    def __init__(
        self,
        hierarchy: SquareHierarchy,
        order: int = 2,
        rank_tol: float = 1e-10,
    ) -> None:
        self.hierarchy = hierarchy
        self.order = order
        self.rank_tol = rank_tol
        self.n_moments = moment_count(order)
        self.squares: dict[SquareKey, SquareBasis] = {}
        self._build()
        self.q_matrix, self.columns = self._assemble_q()
        self._column_offsets = self._index_columns()

    # ------------------------------------------------------------------ build
    def _split_by_moments(self, moments: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """SVD split of a moment matrix into (V, W, moments_of_V)."""
        n_cols = moments.shape[1]
        if n_cols == 0:
            empty = np.zeros((0, 0))
            return empty, empty, np.zeros((self.n_moments, 0))
        u, s, vh = np.linalg.svd(moments, full_matrices=True)
        if s.size == 0 or s[0] == 0.0:
            rank = 0
        else:
            rank = int(np.count_nonzero(s > self.rank_tol * s[0]))
        v = vh[:rank].T
        w = vh[rank:].T
        moments_v = u[:, :rank] * s[:rank]
        return v, w, moments_v

    def _build(self) -> None:
        hier = self.hierarchy
        layout = hier.layout
        # finest level: split by contact moments
        for square in hier.squares_at_level(hier.max_level):
            center = square.center(hier.size_x, hier.size_y)
            moments = contact_moment_matrix(
                layout, square.contact_indices, center, self.order
            )
            v, w, mv = self._split_by_moments(moments)
            self.squares[square.key] = SquareBasis(
                square.key, square.contact_indices, v, w, mv
            )
        # coarser levels: recombine children's V vectors
        for level in range(hier.max_level - 1, -1, -1):
            for square in hier.squares_at_level(level):
                self.squares[square.key] = self._build_parent(square)

    def _build_parent(self, square: Square) -> SquareBasis:
        hier = self.hierarchy
        parent_center = square.center(hier.size_x, hier.size_y)
        parent_contacts = square.contact_indices
        pos = {int(c): k for k, c in enumerate(parent_contacts)}

        children = hier.children(square)
        blocks: list[np.ndarray] = []
        shifted_moments: list[np.ndarray] = []
        for child in children:
            cb = self.squares[child.key]
            child_center = child.center(hier.size_x, hier.size_y)
            shift = moment_shift_matrix(child_center, parent_center, self.order)
            shifted_moments.append(shift @ cb.moments_V)
            embed = np.zeros((parent_contacts.size, cb.V.shape[1]))
            rows = np.array([pos[int(c)] for c in cb.contact_indices], dtype=int)
            embed[rows, :] = cb.V
            blocks.append(embed)
        v_children = np.hstack(blocks) if blocks else np.zeros((parent_contacts.size, 0))
        moments = (
            np.hstack(shifted_moments)
            if shifted_moments
            else np.zeros((self.n_moments, 0))
        )
        t, r, mv = self._split_by_moments(moments)
        v_parent = v_children @ t if t.size else np.zeros((parent_contacts.size, 0))
        w_parent = v_children @ r if r.size else np.zeros((parent_contacts.size, 0))
        return SquareBasis(square.key, parent_contacts, v_parent, w_parent, mv)

    # -------------------------------------------------------------- assemble Q
    def _quadrant_order_key(self, key: SquareKey) -> int:
        """Quadrant-hierarchical (Morton-style, top-left first) ordering key."""
        level, i, j = key
        jj = (2 ** level - 1) - j  # top quadrants first
        code = 0
        for bit in range(level - 1, -1, -1):
            code = (code << 2) | ((((jj >> bit) & 1) << 1) | ((i >> bit) & 1))
        return code

    def _assemble_q(self) -> tuple[sparse.csc_matrix, list[QColumn]]:
        n = self.hierarchy.layout.n_contacts
        cols: list[QColumn] = []
        data: list[np.ndarray] = []
        rows: list[np.ndarray] = []
        col_ptr: list[int] = [0]

        def add_block(
            contact_indices: np.ndarray, matrix: np.ndarray, key: SquareKey, kind: str
        ) -> None:
            for local in range(matrix.shape[1]):
                column = matrix[:, local]
                nz = np.flatnonzero(np.abs(column) > 0)
                rows.append(contact_indices[nz])
                data.append(column[nz])
                col_ptr.append(col_ptr[-1] + nz.size)
                cols.append(QColumn(key, kind, local))

        # coarsest-level non-vanishing vectors come first (Section 3.7.1)
        root_keys = [sq.key for sq in self.hierarchy.squares_at_level(0)]
        for key in root_keys:
            sb = self.squares[key]
            add_block(sb.contact_indices, sb.V, key, "V0")
        # then W vectors level by level, coarse to fine, quadrant-hierarchical
        for level in range(0, self.hierarchy.max_level + 1):
            squares = sorted(
                self.hierarchy.squares_at_level(level),
                key=lambda s: self._quadrant_order_key(s.key),
            )
            for square in squares:
                sb = self.squares[square.key]
                if sb.n_vanishing:
                    add_block(sb.contact_indices, sb.W, square.key, "W")

        if cols:
            q = sparse.csc_matrix(
                (np.concatenate(data), np.concatenate(rows), np.array(col_ptr)),
                shape=(n, len(cols)),
            )
        else:  # pragma: no cover - degenerate
            q = sparse.csc_matrix((n, 0))
        return q, cols

    def _index_columns(self) -> dict[tuple[SquareKey, str], np.ndarray]:
        offsets: dict[tuple[SquareKey, str], list[int]] = {}
        for idx, col in enumerate(self.columns):
            offsets.setdefault((col.square_key, col.kind), []).append(idx)
        return {k: np.array(v, dtype=int) for k, v in offsets.items()}

    # ------------------------------------------------------------------ access
    @property
    def n_columns(self) -> int:
        return len(self.columns)

    def w_columns(self, key: SquareKey) -> np.ndarray:
        """Q column indices of the vanishing-moment vectors of a square."""
        return self._column_offsets.get((key, "W"), np.empty(0, dtype=int))

    def root_v_columns(self) -> np.ndarray:
        """Q column indices of the root square's non-vanishing vectors."""
        out = [
            self._column_offsets.get((sq.key, "V0"), np.empty(0, dtype=int))
            for sq in self.hierarchy.squares_at_level(0)
        ]
        return np.concatenate(out) if out else np.empty(0, dtype=int)

    def basis(self, key: SquareKey) -> SquareBasis:
        return self.squares[key]

    def max_vanishing_at_level(self, level: int) -> int:
        """Largest number of W columns over squares at ``level``."""
        vals = [
            self.squares[sq.key].n_vanishing
            for sq in self.hierarchy.squares_at_level(level)
        ]
        return max(vals) if vals else 0

    def check_orthogonality(self) -> float:
        """Return ``||Q'Q - I||_max`` (should be ~machine precision)."""
        qtq = (self.q_matrix.T @ self.q_matrix).toarray()
        return float(np.abs(qtq - np.eye(qtq.shape[0])).max())

    def check_completeness(self) -> bool:
        """True when ``Q`` is square (the basis spans the full voltage space)."""
        return self.q_matrix.shape[0] == self.q_matrix.shape[1]
