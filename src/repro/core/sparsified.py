"""Sparse representation ``G ~ Q Gw Q'`` of the conductance matrix.

Both the wavelet method (Chapter 3) and the low-rank method (Chapter 4)
produce the same kind of object: an orthogonal, sparse change-of-basis ``Q``
and a sparse transformed matrix ``Gw``.  This module provides the container
with the operations used throughout the evaluation: applying the represented
operator, measuring sparsity, thresholding small entries (``Gwt``), and
reconstructing dense approximations for error measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

__all__ = ["SparsifiedConductance"]


@dataclass
class SparsifiedConductance:
    """Container for the ``G ~ Q Gw Q'`` representation.

    Attributes
    ----------
    q:
        Sparse orthogonal change-of-basis matrix (``n x m``; square when the
        basis is complete).
    gw:
        Sparse transformed conductance matrix (``m x m``).
    n_solves:
        Number of black-box solver calls spent building the representation
        (0 when built from an explicitly known ``G``).
    method:
        Human-readable tag ("wavelet", "lowrank", ...).
    """

    q: sparse.spmatrix
    gw: sparse.spmatrix
    n_solves: int = 0
    method: str = ""

    def __post_init__(self) -> None:
        self.q = sparse.csr_matrix(self.q)
        self.gw = sparse.csr_matrix(self.gw)
        if self.q.shape[1] != self.gw.shape[0] or self.gw.shape[0] != self.gw.shape[1]:
            raise ValueError("inconsistent Q / Gw shapes")

    # ------------------------------------------------------------------ basics
    @property
    def n_contacts(self) -> int:
        return self.q.shape[0]

    @property
    def nnz_gw(self) -> int:
        return int(self.gw.nnz)

    @property
    def nnz_q(self) -> int:
        return int(self.q.nnz)

    def sparsity_factor(self) -> float:
        """``n^2 / nnz(Gw)`` — the paper's "sparsity" measure for ``Gw``."""
        n = self.n_contacts
        return n * n / max(self.nnz_gw, 1)

    def q_sparsity_factor(self) -> float:
        """``n^2 / nnz(Q)``."""
        n = self.n_contacts
        return n * n / max(self.nnz_q, 1)

    def solve_reduction_factor(self) -> float:
        """``n / (number of black-box solves used)``."""
        if self.n_solves <= 0:
            return float("inf")
        return self.n_contacts / self.n_solves

    # ------------------------------------------------------------------- apply
    def apply(self, voltages: np.ndarray) -> np.ndarray:
        """Apply the represented operator: ``Q (Gw (Q' v))``."""
        v = np.asarray(voltages, dtype=float)
        return self.q @ (self.gw @ (self.q.T @ v))

    def matmat(self, block: np.ndarray) -> np.ndarray:
        """Apply to several voltage vectors (columns of ``block``)."""
        return self.q @ (self.gw @ (self.q.T @ np.asarray(block, dtype=float)))

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense approximation ``Q Gw Q'``."""
        qd = self.q.toarray()
        return qd @ self.gw.toarray() @ qd.T

    # -------------------------------------------------------------- threshold
    def threshold(self, absolute: float) -> "SparsifiedConductance":
        """Drop entries of ``Gw`` with magnitude below ``absolute``."""
        gw = self.gw.tocoo(copy=True)
        keep = np.abs(gw.data) >= absolute
        gwt = sparse.coo_matrix(
            (gw.data[keep], (gw.row[keep], gw.col[keep])), shape=gw.shape
        )
        return SparsifiedConductance(self.q, gwt.tocsr(), self.n_solves, self.method + "+threshold")

    def threshold_to_sparsity(
        self, target_sparsity: float, max_bisections: int = 60
    ) -> "SparsifiedConductance":
        """Threshold so the sparsity factor is (approximately) ``target_sparsity``.

        The paper chooses the threshold by binary search so that ``Gwt`` is
        about 6x sparser than the unthresholded ``Gws`` (Section 4.6).
        """
        n = self.n_contacts
        target_nnz = max(1, int(round(n * n / target_sparsity)))
        data = np.abs(self.gw.tocoo().data)
        if data.size <= target_nnz:
            return SparsifiedConductance(self.q, self.gw, self.n_solves, self.method)
        lo, hi = 0.0, float(data.max())
        for _ in range(max_bisections):
            mid = 0.5 * (lo + hi)
            nnz = int(np.count_nonzero(data >= mid))
            if nnz > target_nnz:
                lo = mid
            else:
                hi = mid
        return self.threshold(hi)

    def threshold_fraction_of_nnz(self, keep_fraction: float) -> "SparsifiedConductance":
        """Keep (approximately) the largest ``keep_fraction`` of the entries."""
        if not 0 < keep_fraction <= 1:
            raise ValueError("keep_fraction must be in (0, 1]")
        data = np.abs(self.gw.tocoo().data)
        k = max(1, int(round(keep_fraction * data.size)))
        cutoff = np.partition(data, data.size - k)[data.size - k]
        return self.threshold(cutoff)

    # ------------------------------------------------------------------ report
    def summary(self) -> dict[str, float]:
        """Headline numbers used in the paper's tables."""
        return {
            "n_contacts": float(self.n_contacts),
            "nnz_gw": float(self.nnz_gw),
            "nnz_q": float(self.nnz_q),
            "sparsity_factor": self.sparsity_factor(),
            "q_sparsity_factor": self.q_sparsity_factor(),
            "n_solves": float(self.n_solves),
            "solve_reduction_factor": self.solve_reduction_factor(),
        }
