"""Low-rank sparsification: fine-to-coarse sweep and the ``Q Gw Q'`` output.

Section 4.4: starting from the multilevel row-basis representation, the
fine-to-coarse sweep recombines the *slow-decaying* basis vectors of the four
children of each square into fast-decaying (``T_p``) and slow-decaying
(``U_p``) vectors of the parent, using the SVD of the interaction
``G_{I_p, p} X_p`` evaluated *through the representation* (no further
black-box solves).  The fast-decaying vectors of every square, plus the
slow-decaying vectors of the coarsest (level-2) squares, form the orthogonal
change-of-basis ``Q``; the transformed matrix ``Gw`` keeps only interactions
between basis functions in squares local to each other (same- or cross-level)
and the coarsest-level slow-decaying interactions with everything, exactly as
in the wavelet representation — which makes the two methods directly
comparable (Tables 4.1 and 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..geometry.quadtree import Square, SquareHierarchy
from ..substrate.solver_base import SubstrateSolver
from .rowbasis import MultilevelRowBasis, _positions
from .sparsified import SparsifiedConductance

__all__ = ["LowRankSparsifier"]

SquareKey = tuple[int, int, int]


@dataclass
class _SquareBasisTU:
    """Fast-decaying (T) and slow-decaying (U) bases of one square."""

    key: SquareKey
    contact_indices: np.ndarray
    t: np.ndarray
    u: np.ndarray


class LowRankSparsifier:
    """The low-rank extraction/sparsification pipeline of Chapter 4.

    Parameters
    ----------
    hierarchy:
        Multilevel square hierarchy over the contacts.
    max_rank:
        Maximum number of slow-decaying vectors kept per square (paper: 6).
    sv_rel_threshold:
        Relative singular-value threshold defining "large" singular values
        (paper: 1/100).
    seed:
        Seed for the random sample vectors of the coarse-to-fine sweep.
    """

    def __init__(
        self,
        hierarchy: SquareHierarchy,
        max_rank: int = 6,
        sv_rel_threshold: float = 1e-2,
        seed: int = 0,
        max_block: int = 256,
    ) -> None:
        self.hierarchy = hierarchy
        self.max_rank = max_rank
        self.sv_rel_threshold = sv_rel_threshold
        self.rowbasis = MultilevelRowBasis(
            hierarchy,
            max_rank=max_rank,
            sv_rel_threshold=sv_rel_threshold,
            seed=seed,
            max_block=max_block,
        )
        self._tu: dict[SquareKey, _SquareBasisTU] = {}
        self._lresp: dict[SquareKey, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._targets_cache: dict[SquareKey, list[Square]] = {}

    # ----------------------------------------------------------------- phase 1
    def build(self, solver: SubstrateSolver) -> "LowRankSparsifier":
        """Run the coarse-to-fine sweep (all the black-box solves happen here)."""
        self.rowbasis.build(solver)
        return self

    @property
    def n_solves(self) -> int:
        return self.rowbasis.n_solves

    # ----------------------------------------------------------------- phase 2
    def _interactive_response(
        self, square: Square, block: np.ndarray, destinations: list[Square]
    ) -> dict[SquareKey, np.ndarray]:
        """Responses ``G_{d, square} block`` for interactive destinations ``d``.

        Evaluated through the row-basis representation with the symmetry
        refinement: ``(G_ds V_s)(V_s' x) + V_d (G_sd V_d)' (x - V_s V_s' x)``.
        """
        rb = self.rowbasis.data[square.key]
        coeff = rb.v.T @ block
        resid = block - rb.v @ coeff
        out: dict[SquareKey, np.ndarray] = {}
        for d in destinations:
            dd = self.rowbasis.data[d.key]
            pos_d = _positions(rb.p_contacts, d.contact_indices)
            term = rb.gv_p[pos_d, :] @ coeff
            if dd.rank:
                pos_s = _positions(dd.p_contacts, square.contact_indices)
                term = term + dd.v @ (dd.gv_p[pos_s, :].T @ resid)
            out[d.key] = term
        return out

    def _split_fast_slow(
        self, interaction: np.ndarray, n_cols: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """SVD split of an interaction matrix into slow (U) / fast (T) coefficients."""
        if interaction.size == 0:
            # nothing to separate against: keep everything as slow-decaying
            return np.eye(n_cols), np.zeros((n_cols, 0))
        _, s, vh = np.linalg.svd(interaction, full_matrices=True)
        if s.size == 0 or s[0] == 0.0:
            rank = 0
        else:
            rank = int(np.count_nonzero(s > self.sv_rel_threshold * s[0]))
            rank = min(rank, self.max_rank)
        u_coef = vh[:rank].T
        t_coef = vh[rank:].T
        return u_coef, t_coef

    def _build_fine_to_coarse(self) -> None:
        hier = self.hierarchy
        rb = self.rowbasis
        # finest level: U = row basis, T = its orthonormal complement
        for sq in hier.squares_at_level(hier.max_level):
            data = rb.data[sq.key]
            t = rb.finest_w[sq.key]
            u = data.v
            self._tu[sq.key] = _SquareBasisTU(sq.key, sq.contact_indices, t, u)
            lc, block = rb.local_blocks[sq.key]
            self._lresp[sq.key] = (lc, block @ t, block @ u)

        for level in range(hier.max_level - 1, 1, -1):
            for parent in hier.squares_at_level(level):
                self._build_parent(parent)

    def _build_parent(self, parent: Square) -> None:
        hier = self.hierarchy
        rb = self.rowbasis
        children = hier.children(parent)
        n_p = parent.contact_indices.size

        blocks: list[np.ndarray] = []
        slices: list[tuple[Square, slice]] = []
        start = 0
        for child in children:
            u_child = self._tu[child.key].u
            embed = np.zeros((n_p, u_child.shape[1]))
            rows = _positions(parent.contact_indices, child.contact_indices)
            embed[rows, :] = u_child
            blocks.append(embed)
            slices.append((child, slice(start, start + u_child.shape[1])))
            start += u_child.shape[1]
        x_p = np.hstack(blocks) if blocks else np.zeros((n_p, 0))
        m = x_p.shape[1]

        # interaction with the interactive region, through the representation
        interactive = hier.interactive_squares(parent)
        if interactive and m:
            responses = self._interactive_response(parent, x_p, interactive)
            interaction = np.vstack([responses[d.key] for d in interactive])
        else:
            interaction = np.zeros((0, m))
        u_coef, t_coef = self._split_fast_slow(interaction, m)
        t_p = x_p @ t_coef
        u_p = x_p @ u_coef
        self._tu[parent.key] = _SquareBasisTU(
            parent.key, parent.contact_indices, t_p, u_p
        )

        # local responses to the X_p columns, assembled from the children
        l_contacts = hier.contacts_in(hier.local_squares(parent))
        resp_x = np.zeros((l_contacts.size, m))
        for child, cols in slices:
            lc_child, _, resp_u_child = self._lresp[child.key]
            pos = _positions(l_contacts, lc_child)
            resp_x[pos, cols] = resp_u_child
            child_interactive = hier.interactive_squares(child)
            if child_interactive:
                u_child = self._tu[child.key].u
                responses = self._interactive_response(
                    child, u_child, child_interactive
                )
                for d in child_interactive:
                    pos_d = _positions(l_contacts, d.contact_indices)
                    resp_x[pos_d, cols] = responses[d.key]
        self._lresp[parent.key] = (l_contacts, resp_x @ t_coef, resp_x @ u_coef)

    # ----------------------------------------------------------- assemble Q/Gw
    def _quadrant_order_key(self, key: SquareKey) -> int:
        level, i, j = key
        jj = (2 ** level - 1) - j
        code = 0
        for bit in range(level - 1, -1, -1):
            code = (code << 2) | ((((jj >> bit) & 1) << 1) | ((i >> bit) & 1))
        return code

    def _assemble_q(self) -> tuple[sparse.csc_matrix, dict[tuple[SquareKey, str], np.ndarray]]:
        hier = self.hierarchy
        n = hier.layout.n_contacts
        data: list[np.ndarray] = []
        rows: list[np.ndarray] = []
        col_ptr: list[int] = [0]
        column_map: dict[tuple[SquareKey, str], list[int]] = {}
        count = 0

        def add_block(contacts: np.ndarray, matrix: np.ndarray, key: SquareKey, kind: str) -> None:
            nonlocal count
            for local in range(matrix.shape[1]):
                column = matrix[:, local]
                nz = np.flatnonzero(np.abs(column) > 0)
                rows.append(contacts[nz])
                data.append(column[nz])
                col_ptr.append(col_ptr[-1] + nz.size)
                column_map.setdefault((key, kind), []).append(count)
                count += 1

        # coarsest slow-decaying vectors first, then fast-decaying level by level
        for sq in sorted(
            hier.squares_at_level(2), key=lambda s: self._quadrant_order_key(s.key)
        ):
            tu = self._tu[sq.key]
            add_block(tu.contact_indices, tu.u, sq.key, "U")
        for level in range(2, hier.max_level + 1):
            for sq in sorted(
                hier.squares_at_level(level),
                key=lambda s: self._quadrant_order_key(s.key),
            ):
                tu = self._tu[sq.key]
                if tu.t.shape[1]:
                    add_block(tu.contact_indices, tu.t, sq.key, "T")

        q = sparse.csc_matrix(
            (
                np.concatenate(data) if data else np.empty(0),
                np.concatenate(rows) if rows else np.empty(0, dtype=int),
                np.array(col_ptr),
            ),
            shape=(n, count),
        )
        cols = {k: np.array(v, dtype=int) for k, v in column_map.items()}
        return q, cols

    def _target_squares(self, source: Square) -> list[Square]:
        """Squares (source level or finer) whose level-``l`` ancestor is local to the source."""
        cached = self._targets_cache.get(source.key)
        if cached is not None:
            return cached
        out: list[Square] = []
        frontier = self.hierarchy.local_squares(source)
        while frontier:
            out.extend(frontier)
            nxt: list[Square] = []
            for sq in frontier:
                nxt.extend(self.hierarchy.children(sq))
            frontier = nxt
        self._targets_cache[source.key] = out
        return out

    def to_sparsified(self) -> SparsifiedConductance:
        """Run the fine-to-coarse sweep and return the ``Q Gw Q'`` representation."""
        if not self.rowbasis.built:
            raise RuntimeError("call build(solver) first")
        if not self._tu:
            self._build_fine_to_coarse()
        hier = self.hierarchy
        q, column_map = self._assemble_q()
        ncols = q.shape[1]

        entry_rows: list[np.ndarray] = []
        entry_cols: list[np.ndarray] = []
        entry_vals: list[np.ndarray] = []

        def record(rr: np.ndarray, cc: np.ndarray, vv: np.ndarray) -> None:
            entry_rows.append(np.asarray(rr, dtype=int).ravel())
            entry_cols.append(np.asarray(cc, dtype=int).ravel())
            entry_vals.append(np.asarray(vv, dtype=float).ravel())

        def record_block(row_idx: np.ndarray, col_idx: np.ndarray, block: np.ndarray) -> None:
            if row_idx.size == 0 or col_idx.size == 0:
                return
            rr, cc = np.meshgrid(row_idx, col_idx, indexing="ij")
            record(rr, cc, block)
            record(cc.T, rr.T, block.T)

        # fast-decaying interactions between local squares (same or finer level)
        for level in range(2, hier.max_level + 1):
            for sq in hier.squares_at_level(level):
                source_cols = column_map.get((sq.key, "T"))
                if source_cols is None or source_cols.size == 0:
                    continue
                lc, resp_t, _ = self._lresp[sq.key]
                for target in self._target_squares(sq):
                    target_cols = column_map.get((target.key, "T"))
                    if target_cols is None or target_cols.size == 0:
                        continue
                    t_target = self._tu[target.key].t
                    pos = _positions(lc, target.contact_indices)
                    block = t_target.T @ resp_t[pos, :]
                    record_block(target_cols, source_cols, block)

        # coarsest-level slow-decaying vectors interact with everything
        n = hier.layout.n_contacts
        for sq in hier.squares_at_level(2):
            u_cols = column_map.get((sq.key, "U"))
            if u_cols is None or u_cols.size == 0:
                continue
            tu = self._tu[sq.key]
            full = np.zeros((n, tu.u.shape[1]))
            full[tu.contact_indices, :] = tu.u
            responses = self.rowbasis.apply_block(full)
            gw_cols = q.T @ responses  # (ncols, r)
            all_rows = np.arange(ncols)
            for k, col in enumerate(u_cols):
                record(all_rows, np.full(ncols, col), gw_cols[:, k])
                record(np.full(ncols, col), all_rows, gw_cols[:, k])

        gw = self._assemble_entries(entry_rows, entry_cols, entry_vals, ncols)
        # the exact Gw is symmetric (Section 2.4); averaging the two
        # independently approximated halves removes the small asymmetry left
        # by the representation.
        gw = 0.5 * (gw + gw.T)
        return SparsifiedConductance(
            q, gw, n_solves=self.rowbasis.n_solves, method="lowrank"
        )

    @staticmethod
    def _assemble_entries(
        rows: list[np.ndarray],
        cols: list[np.ndarray],
        vals: list[np.ndarray],
        ncols: int,
    ) -> sparse.csr_matrix:
        if not rows:
            return sparse.csr_matrix((ncols, ncols))
        r = np.concatenate(rows)
        c = np.concatenate(cols)
        v = np.concatenate(vals)
        flat = r.astype(np.int64) * ncols + c
        _, first = np.unique(flat, return_index=True)
        return sparse.coo_matrix(
            (v[first], (r[first], c[first])), shape=(ncols, ncols)
        ).tocsr()

    # ------------------------------------------------------------- convenience
    def sparsify(
        self,
        solver: SubstrateSolver,
        threshold_sparsity_multiplier: float | None = None,
    ) -> SparsifiedConductance:
        """Build the representation and optionally threshold it (paper: 6x)."""
        if not self.rowbasis.built:
            self.build(solver)
        rep = self.to_sparsified()
        if threshold_sparsity_multiplier is None:
            return rep
        target = rep.sparsity_factor() * threshold_sparsity_multiplier
        return rep.threshold_to_sparsity(target)
