"""Polynomial moments of contact voltage functions (Section 3.2.1).

The wavelet basis is built from the requirement that (most) basis functions
have vanishing polynomial moments up to order ``p`` over the contact area of
their square.  For a voltage function that is constant on each contact, the
moment of order ``(alpha, beta)`` about a centre ``(cx, cy)`` is a linear
function of the contact voltages, with coefficients equal to the moments of
the contact characteristic functions — which have a closed form for
rectangular contacts.
"""

from __future__ import annotations

from math import comb

import numpy as np

from ..geometry.contact import ContactLayout

__all__ = [
    "moment_orders",
    "moment_count",
    "contact_moment_matrix",
    "moment_shift_matrix",
]


def moment_orders(p: int) -> list[tuple[int, int]]:
    """All (alpha, beta) with ``alpha + beta <= p`` in graded order."""
    if p < 0:
        raise ValueError("moment order must be non-negative")
    return [(a, o - a) for o in range(p + 1) for a in range(o + 1)]


def moment_count(p: int) -> int:
    """Number of moments of order <= p, i.e. ``(p+1)(p+2)/2`` (eq. 3.7)."""
    return (p + 1) * (p + 2) // 2


def contact_moment_matrix(
    layout: ContactLayout,
    contact_indices: np.ndarray,
    center: tuple[float, float],
    p: int,
) -> np.ndarray:
    """Moment matrix ``M_s`` of the standard basis vectors of a square.

    Entry ``[(alpha, beta), i]`` is the ``(alpha, beta)`` moment about
    ``center`` of the characteristic function of the ``i``-th listed contact,
    so that for a voltage vector ``v`` on those contacts the moments of the
    associated voltage function are ``M_s v`` (Section 3.4.1).
    """
    orders = moment_orders(p)
    out = np.empty((len(orders), len(contact_indices)))
    for col, idx in enumerate(contact_indices):
        contact = layout.contacts[int(idx)]
        for row, (alpha, beta) in enumerate(orders):
            out[row, col] = contact.moment(alpha, beta, center)
    return out


def moment_shift_matrix(
    old_center: tuple[float, float], new_center: tuple[float, float], p: int
) -> np.ndarray:
    """Matrix mapping moments about ``old_center`` to moments about ``new_center``.

    Section 3.4.2: "the moments in the new center are related to those in the
    old center by a ``d x d`` matrix which can be calculated by expanding out
    ``(x - x0)^alpha (y - y0)^beta``".  With ``(dx, dy) = old - new``,

        (x - X_new)^a (y - Y_new)^b
            = sum_{i<=a, j<=b} C(a,i) C(b,j) dx^(a-i) dy^(b-j)
                               (x - X_old)^i (y - Y_old)^j.
    """
    dx = old_center[0] - new_center[0]
    dy = old_center[1] - new_center[1]
    orders = moment_orders(p)
    index = {o: k for k, o in enumerate(orders)}
    d = len(orders)
    shift = np.zeros((d, d))
    for row, (a, b) in enumerate(orders):
        for i in range(a + 1):
            for j in range(b + 1):
                col = index[(i, j)]
                shift[row, col] = comb(a, i) * comb(b, j) * dx ** (a - i) * dy ** (b - j)
    return shift
