"""Sparsification algorithms: wavelet (Ch. 3) and low-rank (Ch. 4)."""

from .moments import contact_moment_matrix, moment_count, moment_orders, moment_shift_matrix
from .sparsified import SparsifiedConductance
from .wavelet import WaveletSparsifier
from .wavelet_basis import WaveletBasis

__all__ = [
    "moment_orders",
    "moment_count",
    "contact_moment_matrix",
    "moment_shift_matrix",
    "SparsifiedConductance",
    "WaveletBasis",
    "WaveletSparsifier",
]
