"""repro: fast extraction and sparsification of substrate coupling.

Reproduction of Kanapka, Phillips, White (DAC 2000) / Kanapka's MIT thesis:
black-box substrate solvers (finite-difference and eigenfunction-based), the
wavelet (vanishing-moment) sparsification of Chapter 3 and the low-rank
sparsification of Chapter 4, with the combine-solves technique that reduces
the number of black-box solves from ``n`` to ``O(log n)``.
"""

from .geometry import (
    Contact,
    ContactLayout,
    PanelGrid,
    SquareHierarchy,
    alternating_size_grid,
    irregular_same_size,
    mixed_shapes,
    regular_grid,
)
from .substrate import (
    CallableSolver,
    CountingSolver,
    DenseMatrixSolver,
    DispatchDecision,
    DispatchPolicy,
    FactorCache,
    FactorPlane,
    Layer,
    ParallelExtractor,
    SharedFactorHandle,
    SharedSparseLU,
    SolveCostModel,
    SolveStats,
    SolverSpec,
    SubstrateProfile,
    SubstrateSolver,
    TiledCholeskyFactor,
    attach_shared_factor,
    check_conductance_properties,
    extract_columns,
    extract_dense,
    factor_cache,
    factor_cache_clear,
    factor_cache_info,
    resolve_fft_workers,
    set_factor_cache_budget,
    solve_in_subprocess,
)
from .substrate.bem import EigenfunctionSolver
from .substrate.fd import FiniteDifferenceSolver

__version__ = "1.0.0"

__all__ = [
    "Contact",
    "ContactLayout",
    "PanelGrid",
    "SquareHierarchy",
    "regular_grid",
    "irregular_same_size",
    "alternating_size_grid",
    "mixed_shapes",
    "Layer",
    "SubstrateProfile",
    "SubstrateSolver",
    "CallableSolver",
    "CountingSolver",
    "DenseMatrixSolver",
    "DispatchDecision",
    "DispatchPolicy",
    "SolveCostModel",
    "SolveStats",
    "resolve_fft_workers",
    "EigenfunctionSolver",
    "FiniteDifferenceSolver",
    "extract_dense",
    "extract_columns",
    "check_conductance_properties",
    "FactorCache",
    "FactorPlane",
    "SharedFactorHandle",
    "SharedSparseLU",
    "attach_shared_factor",
    "TiledCholeskyFactor",
    "factor_cache",
    "factor_cache_clear",
    "factor_cache_info",
    "set_factor_cache_budget",
    "ParallelExtractor",
    "SolverSpec",
    "solve_in_subprocess",
    "__version__",
]
