"""Aggregated operational metrics of the extraction service.

One :class:`ServiceMetrics` instance rides along with each
:class:`~repro.service.scheduler.Scheduler` and folds together everything an
operator (or the ``/stats`` endpoint) wants in one snapshot:

* job lifecycle counters (submitted / done / failed / cancelled / timed out)
  and end-to-end latency percentiles over a bounded recent window;
* coalescing counters — how many batches ran, how many jobs shared a batch,
  and where the columns came from (fresh solves vs. the
  :class:`~repro.service.result_store.ResultStore`);
* the merged :class:`~repro.substrate.solver_base.SolveStats` of every solve
  the scheduler ran (iterative/direct split, factor attach/rebuild
  provenance), via the same ``merge`` contract the parallel engine uses;
* the process-wide factor-cache counters
  (:func:`~repro.substrate.factor_cache.factor_cache_info`).

All methods are thread-safe; the scheduler's dispatcher, the HTTP handler
threads and test code may record and snapshot concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from ..substrate.factor_cache import factor_cache_info
from ..substrate.solver_base import SolveStats
from .jobs import SCHEMA_VERSION

__all__ = ["ServiceMetrics", "latency_percentiles"]

#: latency window length: large enough for stable percentiles, small enough
#: that a long-lived service never grows without bound
DEFAULT_WINDOW = 1024


def latency_percentiles(
    latencies: "deque[float] | list[float]",
    percentiles: tuple[float, ...] = (50.0, 90.0, 99.0),
) -> dict[str, float | None]:
    """``{"p50": ..., "p90": ..., "p99": ...}`` over the recent window."""
    out: dict[str, float | None] = {}
    values = np.asarray(latencies, dtype=float)
    for p in percentiles:
        key = f"p{p:g}"
        out[key] = float(np.percentile(values, p)) if values.size else None
    return out


class ServiceMetrics:
    """Thread-safe counters + latency window for one scheduler."""

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.RLock()
        #: write-once at construction, read lock-free by uptime consumers
        self.started_at = time.monotonic()
        self.jobs_submitted = 0  # reprolint: guarded-by(_lock)
        self.jobs_done = 0  # reprolint: guarded-by(_lock)
        self.jobs_failed = 0  # reprolint: guarded-by(_lock)
        self.jobs_cancelled = 0  # reprolint: guarded-by(_lock)
        self.jobs_timeout = 0  # reprolint: guarded-by(_lock)
        #: queued jobs displaced by admission control (terminal "shed" state)
        self.jobs_shed = 0  # reprolint: guarded-by(_lock)
        #: submissions refused outright by admission control (HTTP 429)
        self.submits_rejected = 0  # reprolint: guarded-by(_lock)
        #: journaled jobs re-queued at startup
        self.jobs_replayed = 0  # reprolint: guarded-by(_lock)
        #: failed batch attempts that were retried (backoff) instead of failed
        self.retries = 0  # reprolint: guarded-by(_lock)
        #: circuit-breaker trips (closed/half-open -> open transitions)
        self.breaker_open = 0  # reprolint: guarded-by(_lock)
        #: broken worker pools torn down and rebuilt mid-batch
        self.pool_rebuilds = 0  # reprolint: guarded-by(_lock)
        #: columns served by inline degradation after pool resurrection failed
        self.degraded_solves = 0  # reprolint: guarded-by(_lock)
        #: coalescing bookkeeping
        self.batches = 0  # reprolint: guarded-by(_lock)
        #: jobs served across all batches
        self.batch_jobs = 0  # reprolint: guarded-by(_lock)
        #: jobs that shared a batch with at least one other
        self.coalesced_jobs = 0  # reprolint: guarded-by(_lock)
        #: union size per batch, summed
        self.columns_requested = 0  # reprolint: guarded-by(_lock)
        #: columns that actually hit the solver
        self.columns_solved = 0  # reprolint: guarded-by(_lock)
        #: columns served by the ResultStore
        self.columns_from_store = 0  # reprolint: guarded-by(_lock)
        #: front-door bookkeeping (the async ``/v1`` server)
        #: NDJSON streaming responses opened
        self.streams_opened = 0  # reprolint: guarded-by(_lock)
        #: events written across all streams (submitted/columns/done/...)
        self.stream_events = 0  # reprolint: guarded-by(_lock)
        #: columns delivered through streams before their job completed
        self.stream_columns = 0  # reprolint: guarded-by(_lock)
        #: pair queries accepted by the HTTP micro-batcher
        self.microbatch_queries = 0  # reprolint: guarded-by(_lock)
        #: coalesced submits those queries collapsed into (<= queries)
        self.microbatch_submits = 0  # reprolint: guarded-by(_lock)
        #: deprecated pickle submissions served (0 unless the operator opted in)
        self.legacy_pickle_submits = 0  # reprolint: guarded-by(_lock)
        #: merged solve statistics of everything the scheduler ran
        self.solve_stats = SolveStats()  # reprolint: guarded-by(_lock)
        # reprolint: guarded-by(_lock)
        self._latencies: "deque[float]" = deque(maxlen=int(window))

    # ------------------------------------------------------------- recording
    def record_submit(self, n: int = 1) -> None:
        with self._lock:
            self.jobs_submitted += n

    def record_replay(self, n: int = 1) -> None:
        """Count journaled jobs replayed into the queue at startup."""
        with self._lock:
            self.jobs_replayed += n

    def record_outcome(self, status: str, latency_s: float | None = None) -> None:
        """Count one terminal job transition and its end-to-end latency."""
        with self._lock:
            if status == "done":
                self.jobs_done += 1
            elif status == "failed":
                self.jobs_failed += 1
            elif status == "cancelled":
                self.jobs_cancelled += 1
            elif status == "timeout":
                self.jobs_timeout += 1
            elif status == "shed":
                self.jobs_shed += 1
            if latency_s is not None:
                self._latencies.append(float(latency_s))

    def record_rejected_submit(self, n: int = 1) -> None:
        """Count a submission refused by admission control (queue saturated)."""
        with self._lock:
            self.submits_rejected += n

    def record_retry(self, n: int = 1) -> None:
        """Count a failed batch attempt that will be retried after backoff."""
        with self._lock:
            self.retries += n

    def record_breaker_open(self, n: int = 1) -> None:
        """Count one circuit-breaker trip (a fingerprint going open)."""
        with self._lock:
            self.breaker_open += n

    def record_pool_rebuilds(self, n: int) -> None:
        """Fold in an engine's supervised pool-rebuild delta for one batch."""
        if n:
            with self._lock:
                self.pool_rebuilds += n

    def record_degraded_solves(self, n: int) -> None:
        """Fold in columns an engine served inline because its pool was dead."""
        if n:
            with self._lock:
                self.degraded_solves += n

    def recent_p50_s(self) -> float | None:
        """Median end-to-end latency over the recent window (Retry-After hint)."""
        with self._lock:
            if not self._latencies:
                return None
            values = list(self._latencies)
        return float(np.percentile(np.asarray(values, dtype=float), 50.0))

    def fault_counters(self) -> dict:
        """The resilience counters alone (the ``/healthz`` failure summary)."""
        with self._lock:
            return {
                "retries": self.retries,
                "shed": self.jobs_shed + self.submits_rejected,
                "submits_rejected": self.submits_rejected,
                "breaker_open": self.breaker_open,
                "pool_rebuilds": self.pool_rebuilds,
                "degraded_solves": self.degraded_solves,
            }

    def record_stream_opened(self, n: int = 1) -> None:
        """Count one NDJSON streaming response starting."""
        with self._lock:
            self.streams_opened += n

    def record_stream_event(self, n_columns: int = 0) -> None:
        """Count one streamed event (and the columns it delivered, if any)."""
        with self._lock:
            self.stream_events += 1
            self.stream_columns += n_columns

    def record_microbatch(self, n_queries: int, n_submits: int = 1) -> None:
        """Account one micro-batch flush: ``n_queries`` collapsed into
        ``n_submits`` scheduler submissions (the benchmark pins the ratio)."""
        with self._lock:
            self.microbatch_queries += n_queries
            self.microbatch_submits += n_submits

    def record_legacy_pickle_submit(self, n: int = 1) -> None:
        """Count a submission served over the deprecated pickle wire."""
        with self._lock:
            self.legacy_pickle_submits += n

    def record_batch(
        self,
        n_jobs: int,
        n_columns_requested: int,
        n_columns_solved: int,
        n_columns_from_store: int,
        stats_delta: SolveStats | None = None,
    ) -> None:
        """Account one coalesced solve batch."""
        with self._lock:
            self.batches += 1
            self.batch_jobs += n_jobs
            if n_jobs > 1:
                self.coalesced_jobs += n_jobs
            self.columns_requested += n_columns_requested
            self.columns_solved += n_columns_solved
            self.columns_from_store += n_columns_from_store
            if stats_delta is not None:
                self.solve_stats.merge(stats_delta)
                # merge() extends the per-solve iteration list; a service
                # runs for months, so keep only a bounded recent history
                # (the aggregate totals behind mean_iterations are exact)
                del self.solve_stats.iterations_per_solve[: -8 * DEFAULT_WINDOW]

    # ------------------------------------------------------------- snapshots
    def snapshot(
        self,
        queue_depth: int | None = None,
        store_info: dict | None = None,
        extra: dict | None = None,
        running: int | None = None,
    ) -> dict:
        """One JSON-compatible view of every counter this service tracks.

        ``running`` is the scheduler's live RUNNING-job count; ``pending``
        subtracts it, so the two states are no longer conflated (a job mid-
        solve used to be reported as pending).
        """
        n_running = int(running or 0)
        with self._lock:
            doc: dict = {
                "schema_version": SCHEMA_VERSION,
                "uptime_s": time.monotonic() - self.started_at,
                "jobs": {
                    "submitted": self.jobs_submitted,
                    "done": self.jobs_done,
                    "failed": self.jobs_failed,
                    "cancelled": self.jobs_cancelled,
                    "timeout": self.jobs_timeout,
                    "shed": self.jobs_shed,
                    "replayed": self.jobs_replayed,
                    "running": n_running,
                    "pending": (
                        self.jobs_submitted
                        - self.jobs_done
                        - self.jobs_failed
                        - self.jobs_cancelled
                        - self.jobs_timeout
                        - self.jobs_shed
                        - n_running
                    ),
                },
                "faults": {
                    "retries": self.retries,
                    "shed": self.jobs_shed + self.submits_rejected,
                    "submits_rejected": self.submits_rejected,
                    "breaker_open": self.breaker_open,
                    "pool_rebuilds": self.pool_rebuilds,
                    "degraded_solves": self.degraded_solves,
                },
                "coalescing": {
                    "batches": self.batches,
                    "batch_jobs": self.batch_jobs,
                    "coalesced_jobs": self.coalesced_jobs,
                    "columns_requested": self.columns_requested,
                    "columns_solved": self.columns_solved,
                    "columns_from_store": self.columns_from_store,
                },
                "frontdoor": {
                    "streams_opened": self.streams_opened,
                    "stream_events": self.stream_events,
                    "stream_columns": self.stream_columns,
                    "microbatch_queries": self.microbatch_queries,
                    "microbatch_submits": self.microbatch_submits,
                    "legacy_pickle_submits": self.legacy_pickle_submits,
                },
                "latency_s": latency_percentiles(self._latencies),
                "solve_stats": self.solve_stats.as_dict(),
            }
        doc["factor_cache"] = factor_cache_info()
        if queue_depth is not None:
            doc["queue_depth"] = int(queue_depth)
        if store_info is not None:
            doc["result_store"] = store_info
        if extra:
            doc.update(extra)
        return doc
