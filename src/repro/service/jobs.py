"""Job descriptions for the extraction service.

A :class:`JobRequest` is the unit of work a client submits to the
:class:`~repro.service.scheduler.Scheduler`: a picklable
:class:`~repro.substrate.parallel.SolverSpec` naming the substrate and solver
configuration, plus *what* the client wants out of the conductance matrix —
whole columns of ``G``, individual ``(row, column)`` entries, or the full
dense matrix — and scheduling metadata (priority, per-job timeout, an
optional solve-tolerance override folded into the spec).

The request's :attr:`~JobRequest.fingerprint` is the coalescing key: requests
with equal fingerprints describe the *same* black box (same physics, same
discretisation, same tolerance), so the scheduler batches their right-hand
sides into shared ``solve_many`` blocks and serves overlapping columns from
the :class:`~repro.service.result_store.ResultStore` without re-solving.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..substrate.parallel import SolverSpec

__all__ = ["JobRequest", "JobState", "Job", "JobExpiredError", "SCHEMA_VERSION"]

#: version stamped into every wire document the service emits (job
#: snapshots, ``/stats``, ``/v1`` bodies).  Bump on any field rename or
#: semantic change; additive fields keep the version.  The snapshot field
#: names themselves are documented in README ("Job snapshot schema") and
#: are a compatibility contract from version 1 on.
SCHEMA_VERSION = 1

#: terminal and non-terminal states a job moves through
JOB_STATES = ("pending", "running", "done", "failed", "cancelled", "timeout", "shed")


class JobExpiredError(KeyError):
    """A job id that once existed but was dropped by finished-job retention.

    Subclasses :class:`KeyError` so callers treating "gone" uniformly keep
    working, while the HTTP layer can answer 410 (expired) instead of the
    404 it sends for ids that never existed.
    """


class JobState:
    """Namespace of the job lifecycle states (plain strings on the wire)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMEOUT = "timeout"
    #: displaced from a saturated queue by a higher-priority submission
    SHED = "shed"

    #: states from which a job can no longer change
    TERMINAL = (DONE, FAILED, CANCELLED, TIMEOUT, SHED)


@dataclass(frozen=True)
class JobRequest:
    """Picklable description of one extraction request.

    Parameters
    ----------
    spec:
        Recipe for the substrate solver that defines the conductance matrix.
    columns:
        Contact indices whose ``G`` columns are wanted.  ``None`` together
        with ``pairs=None`` means the full dense matrix (all columns).
    pairs:
        Individual ``(row, column)`` conductance entries.  Served from the
        same solved columns as ``columns`` requests — a pair only costs a
        solve if nobody has asked for its column before.
    tolerance:
        Optional solver ``rtol`` override.  Folded into the spec's options,
        so two requests at different tolerances have different fingerprints
        and are never coalesced.
    priority:
        Larger runs earlier when the scheduler drains its queue.
    timeout_s:
        Deadline (seconds since submission) for the job to *start* solving;
        jobs still queued past it are failed with the ``"timeout"`` status.
    """

    spec: SolverSpec
    columns: tuple[int, ...] | None = None
    pairs: tuple[tuple[int, int], ...] | None = None
    tolerance: float | None = None
    priority: int = 0
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        n = self.spec.layout.n_contacts
        if self.columns is not None:
            cols = tuple(int(c) for c in self.columns)
            if not cols:
                raise ValueError("columns must be non-empty when given")
            if any(not 0 <= c < n for c in cols):
                raise ValueError(f"column indices must lie in [0, {n})")
            object.__setattr__(self, "columns", cols)
        if self.pairs is not None:
            pairs = tuple((int(i), int(j)) for i, j in self.pairs)
            if not pairs:
                raise ValueError("pairs must be non-empty when given")
            if any(not (0 <= i < n and 0 <= j < n) for i, j in pairs):
                raise ValueError(f"pair indices must lie in [0, {n})")
            object.__setattr__(self, "pairs", pairs)
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive when given")

    # ----------------------------------------------------------------- derived
    @property
    def effective_spec(self) -> SolverSpec:
        """The spec actually built, with the tolerance override applied."""
        if self.tolerance is None:
            return self.spec
        return replace(
            self.spec, options={**self.spec.options, "rtol": float(self.tolerance)}
        )

    @property
    def fingerprint(self) -> tuple:
        """Coalescing key: the effective spec's substrate/solver identity.

        Cached on the (frozen) request: with a tolerance override,
        ``effective_spec`` builds a fresh spec per access, which would
        otherwise redo the fingerprint work on every drain cycle.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            cached = self.effective_spec.fingerprint
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    @property
    def n_contacts(self) -> int:
        return self.spec.layout.n_contacts

    def needed_columns(self) -> tuple[int, ...]:
        """Sorted, de-duplicated column indices this request depends on."""
        if self.columns is None and self.pairs is None:
            return tuple(range(self.n_contacts))
        needed: set[int] = set(self.columns or ())
        needed.update(j for _, j in self.pairs or ())
        return tuple(sorted(needed))


@dataclass
class Job:
    """Scheduler-side record of one submitted request (not picklable).

    ``result`` is the ``(n_contacts, len(result_columns))`` block of solved
    ``G`` columns (``result_columns`` is ``request.columns``, or all contacts
    for a dense request); ``pair_values`` aligns with ``request.pairs``.
    """

    job_id: str
    request: JobRequest
    submitted_at: float
    priority: int = 0
    status: str = JobState.PENDING
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    #: truncated traceback of the exception behind ``error`` (lets a client
    #: diagnose a failed job without access to the server's stderr)
    error_traceback: str | None = None
    #: solve attempts this job's coalesced group has consumed so far
    attempts: int = 0
    #: per-attempt failure records: ``{"attempt", "error", "traceback"}``
    history: list = field(default_factory=list)
    result: np.ndarray | None = None
    result_columns: tuple[int, ...] | None = None
    pair_values: np.ndarray | None = None
    #: set once the job reaches a terminal state (clients block on it)
    done_event: Any = field(default=None, repr=False)

    @property
    def deadline(self) -> float | None:
        if self.request.timeout_s is None:
            return None
        return self.submitted_at + self.request.timeout_s

    @property
    def latency_s(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def snapshot(self) -> dict:
        """JSON-compatible view of the job (arrays as nested lists).

        Result fields are exposed only in terminal states: a poll racing
        the assembly of a RUNNING job must never observe partially written
        ``result_columns``/``result``/``pair_values``.  Call under the
        scheduler lock (:meth:`~repro.service.scheduler.Scheduler.snapshot`)
        so status and result fields are read consistently.
        """
        terminal = self.status in JobState.TERMINAL
        return {
            "schema_version": SCHEMA_VERSION,
            "job_id": self.job_id,
            "status": self.status,
            "priority": self.priority,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "latency_s": self.latency_s,
            "error": self.error,
            "error_traceback": self.error_traceback,
            "attempts": self.attempts,
            "history": [dict(entry) for entry in self.history],
            "columns": (
                list(self.result_columns) if terminal and self.result_columns else None
            ),
            "result": (
                self.result.tolist() if terminal and self.result is not None else None
            ),
            "pairs": [list(p) for p in self.request.pairs] if self.request.pairs else None,
            "pair_values": (
                self.pair_values.tolist()
                if terminal and self.pair_values is not None
                else None
            ),
        }
