"""Asyncio front door of the extraction service (the ``/v1/`` server).

One event loop serves every connection — no thread per request — and
bridges to the existing thread-based
:class:`~repro.service.scheduler.Scheduler` through executor calls (for
the blocking submit/wait paths) and
:meth:`~repro.service.scheduler.Scheduler.submit`'s watcher hook (for
push-style progress, marshalled onto the loop with
``call_soon_threadsafe``).  Everything on the wire is the declarative JSON
schema of :mod:`~repro.service.wire` — **no pickle** unless the operator
explicitly revives the deprecated endpoint.

========  ======================  =========================================
method    path                    body / behaviour
========  ======================  =========================================
POST      /v1/jobs                wire request document → ``{"job_id",
                                  "status", "schema_version"}`` (202)
GET       /v1/jobs/<id>           ``?wait_s=`` → wire job snapshot
DELETE    /v1/jobs/<id>           cancel a queued job
POST      /v1/stream              ``{"requests": [...]}`` → chunked NDJSON:
                                  ``submitted`` / ``columns`` / ``done`` /
                                  ``error`` / ``end`` events; columns are
                                  pushed **as their coalesced group's solve
                                  lands**, before the owning job completes
POST      /v1/pairs               one pair query; the server micro-batches
                                  concurrent queries over the same
                                  fingerprint into a single submit
GET       /v1/stats               metrics snapshot (incl. ``frontdoor``)
GET       /v1/healthz             liveness (503 when stuck)
GET       /result /stats /healthz legacy aliases (``Deprecation`` header)
POST      /submit                 legacy base64-pickle submit: **410** by
                                  default; only served when constructed
                                  with ``allow_legacy_pickle=True``, and
                                  then still loopback-only unless
                                  ``allow_untrusted_pickle``
========  ======================  =========================================

Every 4xx/5xx body is the one error envelope
``{"error": {"code", "message", "retry_after"}}``.

The HTTP layer itself is a deliberately small HTTP/1.1 implementation over
``asyncio.start_server`` (stdlib only; one request per connection,
``Connection: close``); responses with unbounded bodies use chunked
transfer encoding, which is what lets ``/v1/stream`` flush one NDJSON
event at a time.
"""

from __future__ import annotations

import argparse
import asyncio
import base64
import hmac
import json
import os
import pickle
import threading
import time
from functools import partial
from urllib.parse import parse_qs, unquote, urlparse

import numpy as np

from .jobs import SCHEMA_VERSION, JobExpiredError, JobRequest, JobState
from .scheduler import QueueSaturatedError, Scheduler
from .server import _is_loopback_address
from .wire import (
    WireFormatError,
    encode_array,
    error_envelope,
    request_from_wire,
    snapshot_to_wire,
    spec_from_wire,
    submit_route,
    v1_cancel,
    v1_snapshot,
    v1_submit,
)

__all__ = ["AsyncExtractionServer", "main"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    410: "Gone",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: headers stamped on every legacy-path response (RFC 8594 style)
_DEPRECATION_HEADERS = {
    "Deprecation": "true",
    "Link": '</v1/>; rel="successor-version"',
}

#: sentinel for "wait_s present but not a number" (None means "no wait")
WAIT_INVALID = object()


class _PairBatcher:
    """HTTP-layer micro-batching of small pair queries (the PR-5 follow-up).

    Concurrent ``/v1/pairs`` queries over the same request fingerprint are
    held for a short window (or until ``max_batch`` arrive) and collapsed
    into **one** scheduler submit carrying the union of their pairs; each
    caller gets back exactly the values it asked for.  Coalescing in the
    scheduler still works across batches — this layer just stops a swarm
    of tiny jobs from paying per-job submit/journal/queue overhead.
    Single-threaded by construction: all state is touched on the event
    loop only.
    """

    def __init__(self, server: "AsyncExtractionServer", window_s: float, max_batch: int) -> None:
        self._server = server
        self._window_s = float(window_s)
        self._max_batch = int(max_batch)
        self._buckets: dict[tuple, list] = {}
        self._timers: dict[tuple, asyncio.TimerHandle] = {}

    async def query(self, request: JobRequest) -> tuple[np.ndarray, str, int]:
        """Queue one pair query; resolves to ``(values, job_id, batch size)``."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        key = request.fingerprint
        bucket = self._buckets.setdefault(key, [])
        bucket.append((request, future))
        if len(bucket) >= self._max_batch:
            timer = self._timers.pop(key, None)
            if timer is not None:
                timer.cancel()
            self._spawn_flush(key)
        elif len(bucket) == 1:
            self._timers[key] = loop.call_later(
                self._window_s, self._spawn_flush, key
            )
        return await future

    def _spawn_flush(self, key: tuple) -> None:
        task = asyncio.ensure_future(self._flush(key))
        # a flush failing should surface on the waiters, never be swallowed
        task.add_done_callback(lambda t: t.exception())

    async def _flush(self, key: tuple) -> None:
        self._timers.pop(key, None)
        bucket = self._buckets.pop(key, [])
        if not bucket:
            return
        first = bucket[0][0]
        union = sorted({pair for request, _ in bucket for pair in request.pairs})
        timeouts = [r.timeout_s for r, _ in bucket if r.timeout_s is not None]
        merged = JobRequest(
            first.spec,
            pairs=tuple(union),
            tolerance=first.tolerance,
            priority=max(request.priority for request, _ in bucket),
            timeout_s=max(timeouts) if timeouts else None,
        )
        scheduler = self._server.scheduler
        scheduler.metrics.record_microbatch(len(bucket), 1)
        loop = asyncio.get_running_loop()
        try:
            job_id = await loop.run_in_executor(None, scheduler.submit, merged)
            job = await loop.run_in_executor(
                None,
                partial(
                    scheduler.result,
                    job_id,
                    wait_s=self._server.result_timeout_s,
                ),
            )
        except Exception as exc:  # noqa: BLE001 - propagate to every waiter
            for _, future in bucket:
                if not future.done():
                    future.set_exception(exc)
            return
        if job.status != JobState.DONE:
            error = RuntimeError(
                f"micro-batched job {job_id} ended {job.status}: {job.error}"
            )
            for _, future in bucket:
                if not future.done():
                    future.set_exception(error)
            return
        values = dict(zip(merged.pairs, job.pair_values))
        for request, future in bucket:
            if not future.done():
                future.set_result(
                    (
                        np.array([values[pair] for pair in request.pairs]),
                        job_id,
                        len(bucket),
                    )
                )


class AsyncExtractionServer:
    """Owns one scheduler and one asyncio HTTP server on top of it.

    Drop-in lifecycle match for the legacy
    :class:`~repro.service.server.ExtractionServer`: ``port=0`` binds an
    ephemeral port (read :attr:`url` back after :meth:`start`), use as a
    context manager or call :meth:`close`.  The event loop runs on one
    background thread; scheduler work runs in the default executor so the
    loop never blocks on a solve, a journal fsync or a long poll.

    Parameters beyond the scheduler's: ``allow_legacy_pickle`` revives the
    deprecated ``/submit`` pickle endpoint (410 otherwise),
    ``allow_untrusted_pickle`` additionally lifts its loopback-only guard,
    ``pair_window_s`` / ``pair_max_batch`` tune the ``/v1/pairs``
    micro-batcher, and ``result_timeout_s`` bounds server-side waits.

    ``auth_token`` turns on bearer-token auth: every request must carry
    ``Authorization: Bearer <token>`` or is answered 401 with the standard
    error envelope (code ``unauthorized``) — except the health probes
    (``/v1/healthz`` and its legacy alias), which stay open so liveness
    checks need no credentials.  The cluster's leader→worker RPCs reuse
    the same token.  The legacy threaded server has no auth — front any
    pickle-era deployment with this server instead.

    Extra endpoints (the cluster's register/heartbeat/solve RPCs) hang off
    :meth:`add_json_route` rather than subclass surgery on the dispatcher.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        scheduler: Scheduler | None = None,
        allow_legacy_pickle: bool = False,
        allow_untrusted_pickle: bool = False,
        pair_window_s: float = 0.02,
        pair_max_batch: int = 64,
        result_timeout_s: float = 300.0,
        auth_token: str | None = None,
        **scheduler_kwargs,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else Scheduler(**scheduler_kwargs)
        self._owns_scheduler = scheduler is None
        self._requested = (host, int(port))
        self.allow_legacy_pickle = bool(allow_legacy_pickle)
        self.allow_untrusted_pickle = bool(allow_untrusted_pickle)
        self.pair_window_s = float(pair_window_s)
        self.pair_max_batch = int(pair_max_batch)
        self.result_timeout_s = float(result_timeout_s)
        self.auth_token = auth_token
        #: ``(method, path) -> async handler(request, writer)`` consulted
        #: after auth but before the built-in routes; see add_json_route
        self._extra_routes: dict = {}
        self._host: str | None = None
        self._port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._batcher: _PairBatcher | None = None

    # -------------------------------------------------------------- lifecycle
    @property
    def host(self) -> str:
        return self._host if self._host is not None else self._requested[0]

    @property
    def port(self) -> int:
        return self._port if self._port is not None else self._requested[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "AsyncExtractionServer":
        """Serve on a background event-loop thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run_loop, name="repro-service-aio", daemon=True
            )
            self._thread.start()
            if not self._started.wait(timeout=30.0):
                raise RuntimeError("async server failed to start within 30s")
            if self._startup_error is not None:
                self._thread.join(timeout=5.0)
                self._thread = None
                raise RuntimeError(
                    f"async server failed to bind: {self._startup_error}"
                )
        return self

    def _run_loop(self) -> None:
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._batcher = _PairBatcher(self, self.pair_window_s, self.pair_max_batch)
        try:
            server = await asyncio.start_server(
                self._handle_connection, self._requested[0], self._requested[1]
            )
        except OSError as exc:
            self._startup_error = exc
            self._started.set()
            return
        sockname = server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        self._started.set()
        async with server:
            await self._stop_event.wait()

    def close(self) -> None:
        """Stop serving; also shuts the scheduler down when owned."""
        thread, self._thread = self._thread, None
        if thread is not None and thread.is_alive():
            loop, stop_event = self._loop, self._stop_event
            if loop is not None and stop_event is not None and not loop.is_closed():
                try:
                    loop.call_soon_threadsafe(stop_event.set)
                except RuntimeError:  # pragma: no cover - loop already gone
                    pass
            thread.join(timeout=10.0)
        if self._owns_scheduler:
            self.scheduler.close()

    def __enter__(self) -> "AsyncExtractionServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------- http
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                await self._dispatch(request, writer)
        except (ConnectionError, asyncio.TimeoutError):
            pass  # the peer went away; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown race
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """One parsed request: ``(method, path, query, headers, body)``."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=30.0
            )
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = await reader.readexactly(length) if length else b""
        url = urlparse(target)
        return method.upper(), url.path, parse_qs(url.query), headers, body

    @staticmethod
    def _response_head(status: int, headers: dict[str, str]) -> bytes:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, '')}".rstrip()]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        doc: dict,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(doc).encode()
        all_headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "close",
            **(headers or {}),
        }
        writer.write(self._response_head(status, all_headers) + body)
        await writer.drain()

    async def _send_error(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        code: str,
        message: str,
        retry_after: float | None = None,
        headers: dict[str, str] | None = None,
    ) -> None:
        await self._send_json(
            writer, status, error_envelope(code, message, retry_after), headers
        )

    # ---------------------------------------------------------------- routing
    def add_json_route(self, method: str, path: str, handler) -> None:
        """Register one extra JSON endpoint on this server.

        ``handler(doc)`` receives the parsed JSON body (``{}`` for GETs)
        and returns the transport-agnostic ``(status, payload, headers)``
        route result — the same contract as the :mod:`~repro.service.wire`
        route helpers.  It runs in the executor, so it may block on the
        scheduler.  Registered routes sit behind the bearer-token check
        like every built-in endpoint.
        """
        async def route(request, writer: asyncio.StreamWriter) -> None:
            _method, _path, _query, _headers, body = request
            doc = self._parse_json(body)
            if doc is None:
                await self._send_error(writer, 400, "bad_request", "body is not JSON")
                return
            loop = asyncio.get_running_loop()
            status, payload, extra = await loop.run_in_executor(None, handler, doc)
            await self._send_json(writer, status, payload, headers=extra)

        self._extra_routes[(method.upper(), path)] = route

    def _authorized(self, path: str, headers: dict) -> bool:
        """Bearer-token check; health probes stay open (liveness needs no key)."""
        if self.auth_token is None or path in ("/v1/healthz", "/healthz"):
            return True
        supplied = headers.get("authorization", "")
        scheme, _, token = supplied.partition(" ")
        return scheme.lower() == "bearer" and hmac.compare_digest(
            token.strip(), self.auth_token
        )

    async def _dispatch(self, request, writer: asyncio.StreamWriter) -> None:
        method, path, query, headers, body = request
        loop = asyncio.get_running_loop()
        scheduler = self.scheduler

        if not self._authorized(path, headers):
            await self._send_error(
                writer, 401, "unauthorized", "missing or invalid bearer token"
            )
            return

        extra_route = self._extra_routes.get((method, path))
        if extra_route is not None:
            await extra_route(request, writer)
            return
        if any(route_path == path for _m, route_path in self._extra_routes):
            await self._method_not_allowed(writer, method, path)
            return

        if path in ("/v1/healthz", "/healthz"):
            if method != "GET":
                await self._method_not_allowed(writer, method, path)
                return
            health = scheduler.health()
            health.update(
                {
                    "schema_version": SCHEMA_VERSION,
                    "queue_depth": scheduler.queue_depth,
                    "uptime_s": time.monotonic() - scheduler.metrics.started_at,
                }
            )
            await self._send_json(
                writer,
                200 if health["ok"] else 503,
                health,
                headers=self._legacy_headers(path, "/healthz"),
            )
            return

        if path in ("/v1/stats", "/stats"):
            if method != "GET":
                await self._method_not_allowed(writer, method, path)
                return
            await self._send_json(
                writer,
                200,
                scheduler.stats(),
                headers=self._legacy_headers(path, "/stats"),
            )
            return

        if path == "/v1/jobs":
            if method != "POST":
                await self._method_not_allowed(writer, method, path)
                return
            doc = self._parse_json(body)
            if doc is None:
                await self._send_error(writer, 400, "bad_request", "body is not JSON")
                return
            status, payload, extra = await loop.run_in_executor(
                None, v1_submit, scheduler, doc
            )
            await self._send_json(writer, status, payload, headers=extra)
            return

        if path.startswith("/v1/jobs/"):
            job_id = unquote(path[len("/v1/jobs/"):])
            if method == "GET":
                wait_s = self._parse_wait_s(query)
                if wait_s is WAIT_INVALID:
                    await self._send_error(
                        writer, 400, "bad_request", "wait_s must be a number"
                    )
                    return
                status, payload, extra = await loop.run_in_executor(
                    None, v1_snapshot, scheduler, job_id, wait_s
                )
                await self._send_json(writer, status, payload, headers=extra)
                return
            if method == "DELETE":
                status, payload, extra = await loop.run_in_executor(
                    None, v1_cancel, scheduler, job_id
                )
                await self._send_json(writer, status, payload, headers=extra)
                return
            await self._method_not_allowed(writer, method, path)
            return

        if path == "/v1/stream":
            if method != "POST":
                await self._method_not_allowed(writer, method, path)
                return
            doc = self._parse_json(body)
            if doc is None:
                await self._send_error(writer, 400, "bad_request", "body is not JSON")
                return
            await self._handle_stream(doc, writer)
            return

        if path == "/v1/pairs":
            if method != "POST":
                await self._method_not_allowed(writer, method, path)
                return
            doc = self._parse_json(body)
            if doc is None:
                await self._send_error(writer, 400, "bad_request", "body is not JSON")
                return
            await self._handle_pairs(doc, writer)
            return

        if path == "/result":
            if method != "GET":
                await self._method_not_allowed(writer, method, path)
                return
            await self._handle_legacy_result(query, writer)
            return

        if path == "/submit":
            if method != "POST":
                await self._method_not_allowed(writer, method, path)
                return
            await self._handle_legacy_submit(body, writer)
            return

        await self._send_error(writer, 404, "not_found", f"unknown path {path!r}")

    @staticmethod
    def _legacy_headers(path: str, legacy: str) -> dict[str, str]:
        return dict(_DEPRECATION_HEADERS) if path == legacy else {}

    async def _method_not_allowed(self, writer, method: str, path: str) -> None:
        await self._send_error(
            writer, 405, "method_not_allowed", f"{method} not allowed on {path!r}"
        )

    @staticmethod
    def _parse_json(body: bytes):
        try:
            doc = json.loads(body or b"{}")
        except ValueError:
            return None
        return doc if isinstance(doc, dict) else None

    @staticmethod
    def _parse_wait_s(query: dict):
        raw = (query.get("wait_s") or [None])[0]
        if raw is None:
            return None
        try:
            wait_s = float(raw)
        except ValueError:
            return WAIT_INVALID
        return wait_s if wait_s > 0 else None

    # -------------------------------------------------------------- streaming
    async def _handle_stream(self, doc: dict, writer: asyncio.StreamWriter) -> None:
        """Serve one ``/v1/stream`` request as chunked NDJSON events.

        Per-job watchers are registered atomically with each submit, so no
        column event can slip between submission and subscription; events
        cross from the dispatcher thread onto the loop via
        ``call_soon_threadsafe`` into one queue.  Duplicate column
        announcements (a retried batch re-announces store hits) are
        deduplicated here, per job.
        """
        docs = doc.get("requests")
        if docs is None:
            docs = [doc]  # a bare request document streams as a 1-job stream
        if not isinstance(docs, list) or not docs:
            await self._send_error(
                writer, 400, "bad_request", "requests must be a non-empty list"
            )
            return
        loop = asyncio.get_running_loop()
        metrics = self.scheduler.metrics
        metrics.record_stream_opened()
        writer.write(
            self._response_head(
                200,
                {
                    "Content-Type": "application/x-ndjson",
                    "Transfer-Encoding": "chunked",
                    "Connection": "close",
                },
            )
        )
        await writer.drain()

        async def emit(event: dict, n_columns: int = 0) -> None:
            data = (json.dumps(event) + "\n").encode()
            writer.write(f"{len(data):x}\r\n".encode() + data + b"\r\n")
            await writer.drain()
            metrics.record_stream_event(n_columns)

        queue: asyncio.Queue = asyncio.Queue()
        active = 0
        for index, request_doc in enumerate(docs):
            try:
                request = request_from_wire(request_doc)
            except WireFormatError as exc:
                await emit(
                    {
                        "event": "error",
                        "index": index,
                        "error": error_envelope("bad_request", str(exc))["error"],
                    }
                )
                continue

            def watcher(event: dict, _index: int = index) -> None:
                loop.call_soon_threadsafe(queue.put_nowait, (_index, event))

            try:
                job_id = await loop.run_in_executor(
                    None, partial(self.scheduler.submit, request, watcher=watcher)
                )
            except QueueSaturatedError as exc:
                await emit(
                    {
                        "event": "error",
                        "index": index,
                        "error": error_envelope(
                            "queue_saturated", str(exc), retry_after=exc.retry_after_s
                        )["error"],
                    }
                )
                continue
            except RuntimeError as exc:
                await emit(
                    {
                        "event": "error",
                        "index": index,
                        "error": error_envelope("unavailable", str(exc))["error"],
                    }
                )
                continue
            active += 1
            await emit(
                {
                    "event": "submitted",
                    "index": index,
                    "job_id": job_id,
                    "status": JobState.PENDING,
                }
            )

        sent: dict[str, set] = {}
        while active:
            index, event = await queue.get()
            if event["kind"] == "columns":
                seen = sent.setdefault(event["job_id"], set())
                fresh = [c for c in event["columns"] if c not in seen]
                if not fresh:
                    continue
                seen.update(fresh)
                block = np.column_stack([event["arrays"][c] for c in fresh])
                await emit(
                    {
                        "event": "columns",
                        "index": index,
                        "job_id": event["job_id"],
                        "columns": fresh,
                        "block": encode_array(block),
                        "source": event["source"],
                    },
                    n_columns=len(fresh),
                )
            else:  # terminal
                active -= 1
                try:
                    snapshot = await loop.run_in_executor(
                        None, self.scheduler.snapshot, event["job_id"]
                    )
                except (JobExpiredError, KeyError):  # pragma: no cover - retention race
                    snapshot = None
                await emit(
                    {
                        "event": "done",
                        "index": index,
                        "job_id": event["job_id"],
                        "status": event["status"],
                        "snapshot": snapshot_to_wire(snapshot) if snapshot else None,
                    }
                )
        await emit({"event": "end", "schema_version": SCHEMA_VERSION})
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ----------------------------------------------------------- micro-batch
    async def _handle_pairs(self, doc: dict, writer: asyncio.StreamWriter) -> None:
        try:
            pairs = doc.get("pairs")
            if not pairs:
                raise WireFormatError("pairs must be a non-empty list of [row, col]")
            tolerance = doc.get("tolerance")
            timeout_s = doc.get("timeout_s")
            request = JobRequest(
                spec=spec_from_wire(doc.get("spec")),
                pairs=tuple((int(i), int(j)) for i, j in pairs),
                tolerance=float(tolerance) if tolerance is not None else None,
                priority=int(doc.get("priority") or 0),
                timeout_s=float(timeout_s) if timeout_s is not None else None,
            )
        except WireFormatError as exc:
            await self._send_error(writer, 400, "bad_request", str(exc))
            return
        except (TypeError, ValueError) as exc:
            await self._send_error(
                writer, 400, "bad_request", f"malformed pairs document: {exc}"
            )
            return
        try:
            values, job_id, batched = await self._batcher.query(request)
        except QueueSaturatedError as exc:
            await self._send_error(
                writer,
                429,
                "queue_saturated",
                str(exc),
                retry_after=exc.retry_after_s,
                headers={"Retry-After": str(max(1, round(exc.retry_after_s)))},
            )
            return
        except RuntimeError as exc:
            await self._send_error(writer, 503, "unavailable", str(exc))
            return
        await self._send_json(
            writer,
            200,
            {
                "schema_version": SCHEMA_VERSION,
                "job_id": job_id,
                "pairs": [list(pair) for pair in request.pairs],
                "values": encode_array(values),
                "batched_queries": batched,
            },
        )

    # ----------------------------------------------------------- legacy paths
    async def _handle_legacy_result(self, query: dict, writer) -> None:
        job_id = (query.get("job_id") or [None])[0]
        if not job_id:
            await self._send_error(
                writer, 400, "bad_request", "missing job_id",
                headers=_DEPRECATION_HEADERS,
            )
            return
        wait_s = self._parse_wait_s(query)
        if wait_s is WAIT_INVALID:
            await self._send_error(
                writer, 400, "bad_request", "wait_s must be a number",
                headers=_DEPRECATION_HEADERS,
            )
            return
        loop = asyncio.get_running_loop()
        try:
            snapshot = await loop.run_in_executor(
                None, partial(self.scheduler.snapshot, job_id, wait_s=wait_s)
            )
        except JobExpiredError as exc:
            await self._send_error(
                writer, 410, "job_expired", str(exc), headers=_DEPRECATION_HEADERS
            )
            return
        except KeyError:
            await self._send_error(
                writer, 404, "unknown_job", f"unknown job id {job_id!r}",
                headers=_DEPRECATION_HEADERS,
            )
            return
        # the legacy body keeps arrays as nested lists — old clients parse it
        await self._send_json(writer, 200, snapshot, headers=_DEPRECATION_HEADERS)

    def _require_legacy_pickle_optin(self, peer_host: str):
        """Gate the deprecated pickle endpoint; ``None`` means allowed.

        Two layers: the endpoint only exists when the operator explicitly
        opted back in at construction (``allow_legacy_pickle=True`` /
        ``--allow-legacy-pickle``), and even then unpickling — which
        executes arbitrary code — is served to loopback peers only unless
        ``allow_untrusted_pickle`` lifted that too.
        """
        if not self.allow_legacy_pickle:
            return (
                410,
                error_envelope(
                    "legacy_pickle_disabled",
                    "the pickle wire was retired; POST a schema document to "
                    "/v1/jobs (operators can revive /submit with "
                    "--allow-legacy-pickle)",
                ),
            )
        if self.allow_untrusted_pickle or _is_loopback_address(peer_host):
            return None
        return (
            403,
            error_envelope(
                "forbidden",
                "legacy pickle submissions are served to loopback clients "
                "only (start with --unsafe-allow-remote-pickle to override "
                "on a trusted network)",
            ),
        )

    async def _handle_legacy_submit(self, body: bytes, writer) -> None:
        peername = writer.get_extra_info("peername") or ("",)
        refusal = self._require_legacy_pickle_optin(str(peername[0]))
        if refusal is not None:
            status, envelope = refusal
            await self._send_json(
                writer, status, envelope, headers=_DEPRECATION_HEADERS
            )
            return
        try:
            doc = json.loads(body or b"{}")
            blob = base64.b64decode(doc["request_pickle"])
            request = pickle.loads(blob)
            if not isinstance(request, JobRequest):
                raise TypeError("payload did not unpickle to a JobRequest")
        except Exception as exc:  # noqa: BLE001 - malformed client input
            await self._send_error(
                writer, 400, "bad_request", f"bad submit payload: {exc}",
                headers=_DEPRECATION_HEADERS,
            )
            return
        self.scheduler.metrics.record_legacy_pickle_submit()
        loop = asyncio.get_running_loop()
        status, payload, extra = await loop.run_in_executor(
            None, submit_route, self.scheduler, request
        )
        await self._send_json(
            writer, status, payload, headers={**extra, **_DEPRECATION_HEADERS}
        )


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.service [--host H] [--port P] ...``.

    Runs the asyncio ``/v1`` front door by default; ``--legacy-sync-server``
    falls back to the threaded pickle-era server for old deployments.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the substrate-extraction service (async /v1 front end).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8752, help="bind port (0=ephemeral)")
    parser.add_argument(
        "--workers", type=int, default=None, help="extraction worker processes per engine"
    )
    parser.add_argument(
        "--max-solvers", type=int, default=4, help="warm engines kept across substrates"
    )
    parser.add_argument(
        "--store-bytes", type=int, default=None, help="result-store budget in bytes"
    )
    parser.add_argument(
        "--coalesce-window",
        type=float,
        default=0.0,
        help="seconds to linger before draining the queue (batches near-simultaneous jobs)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        help=(
            "durable state directory (result corpus, factor artifacts, job "
            "journal); omit for the in-memory default"
        ),
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help=(
            "admission-control bound on the pending queue; when full, new "
            "submissions shed the lowest-priority queued job or get HTTP 429 "
            "(omit for an unbounded queue)"
        ),
    )
    parser.add_argument(
        "--pair-window",
        type=float,
        default=0.02,
        help="seconds /v1/pairs holds small pair queries for micro-batching",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        help=(
            "bearer token required on every /v1 request except the health "
            "probe (env: REPRO_AUTH_TOKEN); omit both for an open server"
        ),
    )
    parser.add_argument(
        "--faults",
        default=None,
        help=(
            "fault-injection plan: JSON text or @path to a JSON file "
            "(exported as REPRO_FAULTS so worker processes inherit it); "
            "chaos testing only"
        ),
    )
    parser.add_argument(
        "--allow-legacy-pickle",
        action="store_true",
        help=(
            "revive the deprecated base64-pickle /submit endpoint "
            "(loopback-only); without this flag it answers 410"
        ),
    )
    parser.add_argument(
        "--unsafe-allow-remote-pickle",
        action="store_true",
        help=(
            "serve pickled /submit payloads to non-loopback peers too; "
            "unpickling executes arbitrary code, so enable this only on a "
            "fully trusted network (implies --allow-legacy-pickle)"
        ),
    )
    parser.add_argument(
        "--legacy-sync-server",
        action="store_true",
        help="run the deprecated threaded pickle-era server instead of /v1",
    )
    args = parser.parse_args(argv)
    auth_token = args.auth_token or os.environ.get("REPRO_AUTH_TOKEN") or None
    if auth_token and args.legacy_sync_server:
        parser.error(
            "--auth-token is served by the /v1 async front door only; "
            "the legacy sync server has no auth"
        )

    from .result_store import ResultStore

    if args.faults:
        from .. import faults

        # export via the environment so worker processes inherit the plan,
        # then parse eagerly — a typo'd plan fails the CLI, not a worker
        os.environ[faults.ENV_VAR] = args.faults
        faults.reload_env_plan()

    store = ResultStore(args.store_bytes) if args.store_bytes is not None else None
    scheduler_kwargs = dict(
        n_workers=args.workers,
        max_solvers=args.max_solvers,
        store=store,
        coalesce_window_s=args.coalesce_window,
        persistence=args.state_dir,
        max_queue_depth=args.max_queue_depth,
    )
    if args.legacy_sync_server:
        from .server import ExtractionServer

        server = ExtractionServer(
            host=args.host,
            port=args.port,
            allow_untrusted_pickle=args.unsafe_allow_remote_pickle,
            **scheduler_kwargs,
        )
        print(
            f"extraction service (legacy sync) listening on {server.url} "
            "(Ctrl-C to stop)"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
        return

    server = AsyncExtractionServer(
        host=args.host,
        port=args.port,
        allow_legacy_pickle=args.allow_legacy_pickle or args.unsafe_allow_remote_pickle,
        allow_untrusted_pickle=args.unsafe_allow_remote_pickle,
        pair_window_s=args.pair_window,
        auth_token=auth_token,
        **scheduler_kwargs,
    )
    server.start()
    print(f"extraction service listening on {server.url}/v1/ (Ctrl-C to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
