"""Job scheduler with cross-request coalescing over shared substrates.

This is the service's engine room.  Clients :meth:`~Scheduler.submit`
:class:`~repro.service.jobs.JobRequest` objects and block on
:meth:`~Scheduler.result`; a dispatcher thread drains the queue in cycles and
turns each cycle's jobs into the *minimum* amount of solver work:

* **Coalescing.**  Jobs over the same substrate fingerprint
  (:attr:`JobRequest.fingerprint`) are grouped into one batch; the union of
  their needed columns is submitted as a single ``solve_many`` block, so the
  factor is built once and one dispatch decision covers right-hand sides
  from many clients.  Requests queued while a batch is solving pile up and
  coalesce into the next cycle — the busier the service, the better it
  batches.
* **Result store.**  Solved columns land in a
  :class:`~repro.service.result_store.ResultStore` LRU keyed on
  ``(fingerprint, column)``; any column someone already paid for is served
  with zero new solves, across jobs and across clients.
* **Persistent extraction engines.**  Each live substrate keeps a warm
  :class:`~repro.substrate.parallel.ParallelExtractor` (worker pool up,
  factor built, shared-memory factor plane published) in a small LRU pool,
  so consecutive batches pay solve cost only.  Attribution is unchanged: a
  batch of ``m`` fresh columns is charged exactly ``m`` black-box solves
  through a :class:`~repro.substrate.solver_base.CountingSolver`, identical
  to what isolated per-request extraction would report for those columns.

Scheduling is priority-aware (higher-priority fingerprint groups solve
first), jobs may be cancelled while queued, and a queued job past its
``timeout_s`` deadline is failed with the ``"timeout"`` status instead of
occupying the solver.  For deterministic tests construct with
``autostart=False`` and call :meth:`step` to run drain cycles by hand.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Iterable

import numpy as np

from ..substrate.extraction import extract_columns
from ..substrate.parallel import ParallelExtractor, SolverSpec
from ..substrate.solver_base import CountingSolver, SolveStats
from .jobs import Job, JobRequest, JobState
from .metrics import ServiceMetrics
from .result_store import ResultStore

__all__ = ["Scheduler", "ExtractorPool", "ITERATION_HISTORY"]

#: per-solve iteration entries kept on long-lived stats objects (the
#: aggregate totals are never trimmed, so ``mean_iterations`` stays exact)
ITERATION_HISTORY = 4096


def _stats_snapshot(stats: SolveStats) -> tuple:
    return (
        stats.n_iterative_solves,
        stats.n_direct_solves,
        stats.total_iterations,
        len(stats.iterations_per_solve),
        stats.n_factor_attaches,
        stats.n_factor_rebuilds,
    )


def _stats_delta(stats: SolveStats, snap: tuple) -> SolveStats:
    return SolveStats(
        n_iterative_solves=stats.n_iterative_solves - snap[0],
        n_direct_solves=stats.n_direct_solves - snap[1],
        total_iterations=stats.total_iterations - snap[2],
        iterations_per_solve=list(stats.iterations_per_solve[snap[3]:]),
        n_factor_attaches=stats.n_factor_attaches - snap[4],
        n_factor_rebuilds=stats.n_factor_rebuilds - snap[5],
    )


class ExtractorPool:
    """LRU pool of warm :class:`ParallelExtractor` engines, one per substrate.

    Building an extraction engine is the expensive part of serving a request
    — solver construction, factorisation, worker-pool start-up, factor-plane
    publication — so the pool keeps the ``max_solvers`` most recently used
    engines alive across jobs and evicts (closing pool and plane) beyond
    that.  Engines are keyed by substrate fingerprint; the spec that first
    names a fingerprint defines the engine.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        max_solvers: int = 4,
        share_factors: bool = True,
        prepare_tiled: bool = False,
    ) -> None:
        if max_solvers < 1:
            raise ValueError("max_solvers must be at least 1")
        self.n_workers = n_workers
        self.max_solvers = int(max_solvers)
        self.share_factors = bool(share_factors)
        self.prepare_tiled = bool(prepare_tiled)
        self._engines: "OrderedDict[tuple, ParallelExtractor]" = OrderedDict()
        self._lock = threading.RLock()
        self.engines_built = 0
        self.engines_evicted = 0

    def get(self, fingerprint: tuple, spec: SolverSpec) -> ParallelExtractor:
        """The warm engine for ``fingerprint``, building (and warming) on miss.

        The multi-second cold build (solver construction, factorisation,
        worker-pool spawn, plane publication) runs *outside* the pool lock
        so :meth:`info` — the ``/stats`` endpoint an operator polls exactly
        when the service looks busy — never blocks behind it.
        """
        with self._lock:
            engine = self._engines.get(fingerprint)
            if engine is not None:
                self._engines.move_to_end(fingerprint)
                return engine
        built = ParallelExtractor(
            spec,
            n_workers=self.n_workers,
            prepare_direct=True,
            share_factors=self.share_factors,
            prepare_tiled=self.prepare_tiled,
        )
        built.warm_up()
        victims = []
        with self._lock:
            engine = self._engines.get(fingerprint)
            if engine is not None:
                # a concurrent caller won the build race; theirs is the
                # pooled engine, ours is surplus
                self._engines.move_to_end(fingerprint)
                victims.append(built)
            else:
                engine = self._engines[fingerprint] = built
                self.engines_built += 1
                while len(self._engines) > self.max_solvers:
                    _, victim = self._engines.popitem(last=False)
                    self.engines_evicted += 1
                    victims.append(victim)
        for victim in victims:
            victim.close()
        return engine

    def close(self) -> None:
        """Shut down every engine (idempotent)."""
        with self._lock:
            for engine in self._engines.values():
                engine.close()
            self._engines.clear()

    def info(self) -> dict:
        with self._lock:
            return {
                "live": len(self._engines),
                "max_solvers": self.max_solvers,
                "built": self.engines_built,
                "evicted": self.engines_evicted,
            }


class Scheduler:
    """Front door of the extraction service (see module docstring).

    Parameters
    ----------
    n_workers:
        Worker-process count of each substrate's
        :class:`~repro.substrate.parallel.ParallelExtractor` (default: CPU
        count; one worker solves inline — no pool).
    store:
        The :class:`~repro.service.result_store.ResultStore` to serve
        repeated queries from; a fresh budgeted store by default.
    max_solvers:
        How many substrates keep a warm engine at once (LRU beyond that).
    coalesce_window_s:
        After noticing a non-empty queue, wait this long before draining so
        near-simultaneous requests land in one batch.  ``0`` (default)
        drains immediately — concurrent requests still coalesce whenever
        they arrive while a batch is solving.
    autostart:
        Start the background dispatcher thread.  ``False`` leaves the queue
        untouched until :meth:`step` is called (deterministic tests).
    share_factors / prepare_tiled:
        Forwarded to each engine (factor plane publication, tiled warm-up).
    max_jobs_retained / max_result_bytes_retained:
        Finished jobs kept for late :meth:`result` pickup; the oldest
        terminal jobs are dropped once either the job count or the total
        bytes of retained result arrays exceed the bound (a service serving
        wide column blocks must not accumulate result memory forever — the
        store is byte-budgeted, so its feed is too).
    """

    def __init__(
        self,
        n_workers: int | None = None,
        store: ResultStore | None = None,
        max_solvers: int = 4,
        coalesce_window_s: float = 0.0,
        autostart: bool = True,
        share_factors: bool = True,
        prepare_tiled: bool = False,
        max_jobs_retained: int = 10_000,
        max_result_bytes_retained: int = 256 * 1024 * 1024,
    ) -> None:
        self.store = store if store is not None else ResultStore()
        self.metrics = ServiceMetrics()
        self.pool = ExtractorPool(
            n_workers=n_workers,
            max_solvers=max_solvers,
            share_factors=share_factors,
            prepare_tiled=prepare_tiled,
        )
        self.coalesce_window_s = float(coalesce_window_s)
        self.max_jobs_retained = int(max_jobs_retained)
        self.max_result_bytes_retained = int(max_result_bytes_retained)
        self._jobs: dict[str, Job] = {}
        self._pending: list[str] = []
        self._terminal: "deque[str]" = deque()
        self._retained_bytes = 0
        self._seq = 0
        self._cv = threading.Condition()
        self._drain_lock = threading.Lock()
        self._closing = False
        #: cumulative CountingSolver attribution of every batch this
        #: scheduler ran (equals fresh columns solved; pinned by tests)
        self.attributed_solves = 0
        self._thread: threading.Thread | None = None
        if autostart:
            self._thread = threading.Thread(
                target=self._run, name="repro-service-dispatcher", daemon=True
            )
            self._thread.start()

    # ----------------------------------------------------------------- clients
    def submit(self, request: JobRequest) -> str:
        """Queue one request; returns the job id immediately."""
        if not isinstance(request, JobRequest):
            raise TypeError("submit() takes a JobRequest")
        with self._cv:
            if self._closing:
                raise RuntimeError("scheduler is closed")
            self._seq += 1
            job_id = f"job-{self._seq:06d}"
            job = Job(
                job_id=job_id,
                request=request,
                submitted_at=time.monotonic(),
                priority=int(request.priority),
                done_event=threading.Event(),
            )
            self._jobs[job_id] = job
            self._pending.append(job_id)
            self._cv.notify_all()
        self.metrics.record_submit()
        return job_id

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started; True when it was cancelled."""
        with self._cv:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job id {job_id!r}")
            if job.status != JobState.PENDING:
                return False
            self._finalize_locked(job, JobState.CANCELLED)
            return True

    def result(self, job_id: str, wait_s: float | None = None) -> Job:
        """The job record, optionally blocking until it reaches a terminal state.

        ``wait_s=None`` returns the current state immediately; a positive
        value blocks up to that long.  The returned object is the live
        record — read ``status`` / ``result`` / ``pair_values`` from it.
        """
        job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id {job_id!r}")
        if wait_s is not None and job.status not in JobState.TERMINAL:
            job.done_event.wait(timeout=wait_s)
        return job

    def wait(self, job_ids: Iterable[str], timeout_s: float = 60.0) -> list[Job]:
        """Block until every listed job is terminal (or the deadline passes)."""
        deadline = time.monotonic() + timeout_s
        jobs = []
        for job_id in job_ids:
            remaining = max(deadline - time.monotonic(), 0.0)
            jobs.append(self.result(job_id, wait_s=remaining))
        return jobs

    @property
    def queue_depth(self) -> int:
        with self._cv:
            return len(self._pending)

    def stats(self) -> dict:
        """Aggregated metrics snapshot (the ``/stats`` endpoint body)."""
        return self.metrics.snapshot(
            queue_depth=self.queue_depth,
            store_info=self.store.info(),
            extra={
                "engines": self.pool.info(),
                "attributed_solves": self.attributed_solves,
            },
        )

    # --------------------------------------------------------------- lifecycle
    def close(self, timeout_s: float = 60.0) -> None:
        """Stop the dispatcher, fail queued jobs, shut the engines down.

        Waits up to ``timeout_s`` for an in-flight batch to finish.  If the
        dispatcher is still mid-batch after that, the engines are left
        running (they are daemon-backed and die with the process) rather
        than pulled out from under the batch — closing a worker pool a
        solve is running on would fail the batch confusingly instead of
        letting it complete.
        """
        with self._cv:
            if self._closing:
                return
            self._closing = True
            pending, self._pending = self._pending, []
            for job_id in pending:
                job = self._jobs[job_id]
                if job.status == JobState.PENDING:
                    job.error = "scheduler closed"
                    self._finalize_locked(job, JobState.FAILED)
            self._cv.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            if self._thread.is_alive():  # pragma: no cover - stuck batch
                return
            self._thread = None
        self.pool.close()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:
            pass

    # -------------------------------------------------------------- dispatcher
    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._closing:
                    self._cv.wait()
                if self._closing:
                    return
            if self.coalesce_window_s > 0.0:
                time.sleep(self.coalesce_window_s)
            self.step()

    def step(self) -> int:
        """Run one drain cycle synchronously; returns the number of jobs served.

        Pops everything currently queued, times out overdue jobs, groups the
        rest by substrate fingerprint and solves each group as one coalesced
        batch (highest priority group first).  The background dispatcher
        calls this in a loop; tests with ``autostart=False`` call it by hand
        to make coalescing deterministic.
        """
        with self._drain_lock:
            with self._cv:
                pending, self._pending = self._pending, []
                jobs = []
                now = time.monotonic()
                for job_id in pending:
                    job = self._jobs[job_id]
                    if job.status != JobState.PENDING:
                        continue  # cancelled while queued
                    if job.deadline is not None and now > job.deadline:
                        job.error = (
                            f"job timed out after {job.request.timeout_s:g}s in queue"
                        )
                        self._finalize_locked(job, JobState.TIMEOUT)
                        continue
                    jobs.append(job)
            if not jobs:
                return 0
            groups: "OrderedDict[tuple, list[Job]]" = OrderedDict()
            for job in jobs:
                groups.setdefault(job.request.fingerprint, []).append(job)
            ordered = sorted(
                groups.items(), key=lambda kv: -max(j.priority for j in kv[1])
            )
            served = 0
            for fingerprint, group in ordered:
                self._run_batch(fingerprint, group)
                served += len(group)
            return served

    # ------------------------------------------------------------------ batch
    def _run_batch(self, fingerprint: tuple, jobs: list[Job]) -> None:
        """Solve one coalesced group and assemble every member's result."""
        now = time.monotonic()
        with self._cv:
            # re-check under the lock: a job popped by this cycle may have
            # been cancelled before its group's turn came up — reviving it
            # here would finalize it twice (cancelled *and* done)
            jobs = [job for job in jobs if job.status == JobState.PENDING]
            for job in jobs:
                job.status = JobState.RUNNING
                job.started_at = now
        if not jobs:
            return
        try:
            union: set[int] = set()
            for job in jobs:
                union.update(job.request.needed_columns())
            needed = tuple(sorted(union))
            columns = self.store.get_many(fingerprint, needed)
            to_solve = tuple(c for c in needed if c not in columns)
            stats_delta = None
            if to_solve:
                engine = self.pool.get(fingerprint, jobs[0].request.effective_spec)
                counting = CountingSolver(engine)
                snap = _stats_snapshot(engine.stats)
                block = extract_columns(counting, np.asarray(to_solve, dtype=int))
                stats_delta = _stats_delta(engine.stats, snap)
                # a warm engine lives for the whole service: bound its
                # per-solve iteration history (the aggregate counters, which
                # mean_iterations and dispatch feed on, are unaffected)
                del engine.stats.iterations_per_solve[:-ITERATION_HISTORY]
                self.attributed_solves += counting.solve_count
                for idx, column in enumerate(to_solve):
                    columns[column] = self.store.put(
                        fingerprint, column, block[:, idx]
                    )
            self.metrics.record_batch(
                n_jobs=len(jobs),
                n_columns_requested=len(needed),
                n_columns_solved=len(to_solve),
                n_columns_from_store=len(needed) - len(to_solve),
                stats_delta=stats_delta,
            )
            for job in jobs:
                self._assemble(job, columns)
        except Exception as exc:  # noqa: BLE001 - a batch must never kill the loop
            with self._cv:
                for job in jobs:
                    if job.status not in JobState.TERMINAL:
                        job.error = f"{type(exc).__name__}: {exc}"
                        self._finalize_locked(job, JobState.FAILED)

    def _assemble(self, job: Job, columns: dict[int, np.ndarray]) -> None:
        """Build one job's result views from the batch's solved columns."""
        request = job.request
        if request.columns is not None:
            job.result_columns = request.columns
        elif request.pairs is None:
            job.result_columns = tuple(range(request.n_contacts))
        if job.result_columns is not None:
            job.result = np.column_stack([columns[c] for c in job.result_columns])
        if request.pairs is not None:
            job.pair_values = np.array([columns[j][i] for i, j in request.pairs])
        with self._cv:
            self._finalize_locked(job, JobState.DONE)

    @staticmethod
    def _result_nbytes(job: Job) -> int:
        total = 0
        if job.result is not None:
            total += job.result.nbytes
        if job.pair_values is not None:
            total += job.pair_values.nbytes
        return total

    def _finalize_locked(self, job: Job, status: str) -> None:
        """Move a job to a terminal state (caller holds ``_cv``)."""
        job.status = status
        job.finished_at = time.monotonic()
        job.done_event.set()
        self.metrics.record_outcome(status, latency_s=job.latency_s)
        self._terminal.append(job.job_id)
        self._retained_bytes += self._result_nbytes(job)
        while self._terminal and (
            len(self._terminal) > self.max_jobs_retained
            or self._retained_bytes > self.max_result_bytes_retained
        ):
            stale = self._jobs.pop(self._terminal.popleft(), None)
            if stale is not None:
                self._retained_bytes -= self._result_nbytes(stale)
