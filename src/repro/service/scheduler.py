"""Job scheduler with cross-request coalescing over shared substrates.

This is the service's engine room.  Clients :meth:`~Scheduler.submit`
:class:`~repro.service.jobs.JobRequest` objects and block on
:meth:`~Scheduler.result`; a dispatcher thread drains the queue in cycles and
turns each cycle's jobs into the *minimum* amount of solver work:

* **Coalescing.**  Jobs over the same substrate fingerprint
  (:attr:`JobRequest.fingerprint`) are grouped into one batch; the union of
  their needed columns is submitted as a single ``solve_many`` block, so the
  factor is built once and one dispatch decision covers right-hand sides
  from many clients.  Requests queued while a batch is solving pile up and
  coalesce into the next cycle — the busier the service, the better it
  batches.
* **Result store.**  Solved columns land in a
  :class:`~repro.service.result_store.ResultStore` LRU keyed on
  ``(fingerprint, column)``; any column someone already paid for is served
  with zero new solves, across jobs and across clients.
* **Persistent extraction engines.**  Each live substrate keeps a warm
  :class:`~repro.substrate.parallel.ParallelExtractor` (worker pool up,
  factor built, shared-memory factor plane published) in a small LRU pool,
  so consecutive batches pay solve cost only.  Attribution is unchanged: a
  batch of ``m`` fresh columns is charged exactly ``m`` black-box solves
  through a :class:`~repro.substrate.solver_base.CountingSolver`, identical
  to what isolated per-request extraction would report for those columns.

Scheduling is priority-aware (higher-priority fingerprint groups solve
first), jobs may be cancelled while queued, and a queued job past its
``timeout_s`` deadline is failed with the ``"timeout"`` status instead of
occupying the solver.  For deterministic tests construct with
``autostart=False`` and call :meth:`step` to run drain cycles by hand.

**Streaming.**  A job may carry *watchers* — callbacks registered
atomically at :meth:`submit` (``watcher=``) or later via :meth:`watch` —
that observe the job's progress as it happens: a ``"columns"`` event fires
from inside the solve as soon as the job's columns become available
(result-store hits at the start of the batch, freshly solved columns the
moment their coalesced group's solve lands — *before* the job is
assembled and finalized), and a ``"terminal"`` event fires on the final
state transition.  This is what the async front door's NDJSON streaming
endpoint rides on: a streamed column reaches the client before its job
completes.  Watchers run on the dispatcher thread and must be fast and
non-blocking (hand the event to a queue); they must never call back into
the scheduler.

With a :class:`~repro.service.persistence.ServicePersistence` attached
(``persistence=`` object or state-dir path) the scheduler becomes durable:
the result store writes through to the sqlite corpus, the factor cache
consults the on-disk artifact store before rebuilding, every accepted
request is journaled (fsync'd) *before* the submit acknowledges, and
journaled-but-unfinished jobs are replayed at construction — so a crash or
restart loses no accepted work and re-serves the solved corpus with zero
new solves.
"""

from __future__ import annotations

import os
import random
import threading
import time
import traceback
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..faults import fault_hook
from ..substrate.extraction import extract_columns
from ..substrate.factor_cache import factor_cache
from ..substrate.parallel import ParallelExtractor, SolverSpec
from ..substrate.solver_base import CountingSolver, SolveStats
from .jobs import Job, JobExpiredError, JobRequest, JobState
from .metrics import ServiceMetrics
from .persistence import ServicePersistence
from .result_store import ResultStore

__all__ = [
    "Scheduler",
    "ExtractorPool",
    "RetryPolicy",
    "CircuitBreaker",
    "QueueSaturatedError",
    "ITERATION_HISTORY",
]

#: per-solve iteration entries kept on long-lived stats objects (the
#: aggregate totals are never trimmed, so ``mean_iterations`` stays exact)
ITERATION_HISTORY = 4096

#: characters of formatted traceback kept on a failed job (the tail carries
#: the raising frame; unbounded tracebacks would bloat snapshots/journals)
TRACEBACK_LIMIT = 2000


def _truncated_traceback(limit: int = TRACEBACK_LIMIT) -> str:
    """The current exception's formatted traceback, tail-truncated."""
    text = traceback.format_exc().strip()
    if len(text) > limit:
        text = "... (truncated)\n" + text[-limit:]
    return text


class QueueSaturatedError(RuntimeError):
    """Admission control refused a submission (queue full, priority too low).

    Carries ``retry_after_s`` — the server's backoff hint, surfaced over
    HTTP as a 429 response with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for failed coalesced batches.

    Attempt ``i`` (1-based) failing sleeps ``min(cap_s, base_delay_s *
    2**(i-1))`` scaled by a uniform jitter in ``[1, 1+jitter]`` before the
    next attempt; after ``max_attempts`` failures the group fails for real.
    ``max_attempts=1`` disables retrying.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    cap_s: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.cap_s < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delay_s(self, attempt: int) -> float:
        """Backoff before retrying after the ``attempt``-th failure (1-based)."""
        base = min(self.cap_s, self.base_delay_s * (2 ** max(attempt - 1, 0)))
        return base * (1.0 + self.jitter * random.random())


class CircuitBreaker:
    """Per-fingerprint failure latch: open after repeated failures, probe later.

    Classic three-state breaker: **closed** (normal) counts consecutive
    failures and opens at ``failure_threshold``; **open** rejects the
    fingerprint's groups instantly — one poisoned substrate must not burn
    retry budget and queue time every cycle — until ``reset_s`` has passed;
    then one **half-open** probe group is let through, and its outcome
    closes or re-opens the breaker.  Not thread-safe on its own; the
    scheduler mutates breakers from the dispatcher thread only.
    """

    def __init__(self, failure_threshold: int = 3, reset_s: float = 30.0) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        self.failure_threshold = int(failure_threshold)
        self.reset_s = float(reset_s)
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: float | None = None

    def allow(self, now: float | None = None) -> bool:
        """May a batch for this fingerprint run now? (may move open->half-open)"""
        if self.state == "closed":
            return True
        now = time.monotonic() if now is None else now
        if self.state == "open" and now - self.opened_at >= self.reset_s:
            self.state = "half_open"
        return self.state == "half_open"

    def record_failure(self, now: float | None = None) -> bool:
        """Count one failed attempt; True when the breaker just tripped open."""
        self.consecutive_failures += 1
        tripped = self.state != "open" and (
            self.state == "half_open"
            or self.consecutive_failures >= self.failure_threshold
        )
        if tripped:
            self.state = "open"
            self.opened_at = time.monotonic() if now is None else now
        return tripped

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = None


def _stats_snapshot(stats: SolveStats) -> tuple:
    return (
        stats.n_iterative_solves,
        stats.n_direct_solves,
        stats.total_iterations,
        len(stats.iterations_per_solve),
        stats.n_factor_attaches,
        stats.n_factor_rebuilds,
    )


def _stats_delta(stats: SolveStats, snap: tuple) -> SolveStats:
    return SolveStats(
        n_iterative_solves=stats.n_iterative_solves - snap[0],
        n_direct_solves=stats.n_direct_solves - snap[1],
        total_iterations=stats.total_iterations - snap[2],
        iterations_per_solve=list(stats.iterations_per_solve[snap[3]:]),
        n_factor_attaches=stats.n_factor_attaches - snap[4],
        n_factor_rebuilds=stats.n_factor_rebuilds - snap[5],
    )


class ExtractorPool:
    """LRU pool of warm :class:`ParallelExtractor` engines, one per substrate.

    Building an extraction engine is the expensive part of serving a request
    — solver construction, factorisation, worker-pool start-up, factor-plane
    publication — so the pool keeps the ``max_solvers`` most recently used
    engines alive across jobs and evicts (closing pool and plane) beyond
    that.  Engines are keyed by substrate fingerprint; the spec that first
    names a fingerprint defines the engine.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        max_solvers: int = 4,
        share_factors: bool = True,
        prepare_tiled: bool = False,
    ) -> None:
        if max_solvers < 1:
            raise ValueError("max_solvers must be at least 1")
        self.n_workers = n_workers
        self.max_solvers = int(max_solvers)
        self.share_factors = bool(share_factors)
        self.prepare_tiled = bool(prepare_tiled)
        # reprolint: guarded-by(_lock)
        self._engines: "OrderedDict[tuple, ParallelExtractor]" = OrderedDict()
        self._lock = threading.RLock()
        self.engines_built = 0  # reprolint: guarded-by(_lock)
        self.engines_evicted = 0  # reprolint: guarded-by(_lock)

    def get(self, fingerprint: tuple, spec: SolverSpec) -> ParallelExtractor:
        """The warm engine for ``fingerprint``, building (and warming) on miss.

        The multi-second cold build (solver construction, factorisation,
        worker-pool spawn, plane publication) runs *outside* the pool lock
        so :meth:`info` — the ``/stats`` endpoint an operator polls exactly
        when the service looks busy — never blocks behind it.
        """
        with self._lock:
            engine = self._engines.get(fingerprint)
            if engine is not None:
                self._engines.move_to_end(fingerprint)
                return engine
        fault_hook("factor.build", kind=spec.kind)
        built = ParallelExtractor(
            spec,
            n_workers=self.n_workers,
            prepare_direct=True,
            share_factors=self.share_factors,
            prepare_tiled=self.prepare_tiled,
        )
        built.warm_up()
        victims = []
        with self._lock:
            engine = self._engines.get(fingerprint)
            if engine is not None:
                # a concurrent caller won the build race; theirs is the
                # pooled engine, ours is surplus
                self._engines.move_to_end(fingerprint)
                victims.append(built)
            else:
                engine = self._engines[fingerprint] = built
                self.engines_built += 1
                while len(self._engines) > self.max_solvers:
                    _, victim = self._engines.popitem(last=False)
                    self.engines_evicted += 1
                    victims.append(victim)
        for victim in victims:
            victim.close()
        return engine

    def close(self) -> None:
        """Shut down every engine (idempotent)."""
        with self._lock:
            for engine in self._engines.values():
                engine.close()
            self._engines.clear()

    def info(self) -> dict:
        with self._lock:
            return {
                "live": len(self._engines),
                "max_solvers": self.max_solvers,
                "built": self.engines_built,
                "evicted": self.engines_evicted,
            }


class Scheduler:
    """Front door of the extraction service (see module docstring).

    Parameters
    ----------
    n_workers:
        Worker-process count of each substrate's
        :class:`~repro.substrate.parallel.ParallelExtractor` (default: CPU
        count; one worker solves inline — no pool).
    store:
        The :class:`~repro.service.result_store.ResultStore` to serve
        repeated queries from; a fresh budgeted store by default.
    max_solvers:
        How many substrates keep a warm engine at once (LRU beyond that).
    coalesce_window_s:
        After noticing a non-empty queue, wait this long before draining so
        near-simultaneous requests land in one batch.  ``0`` (default)
        drains immediately — concurrent requests still coalesce whenever
        they arrive while a batch is solving.
    autostart:
        Start the background dispatcher thread.  ``False`` leaves the queue
        untouched until :meth:`step` is called (deterministic tests).
    share_factors / prepare_tiled:
        Forwarded to each engine (factor plane publication, tiled warm-up).
    max_jobs_retained / max_result_bytes_retained:
        Finished jobs kept for late :meth:`result` pickup; the oldest
        terminal jobs are dropped once either the job count or the total
        bytes of retained result arrays exceed the bound (a service serving
        wide column blocks must not accumulate result memory forever — the
        store is byte-budgeted, so its feed is too).
    persistence:
        Durable state: a
        :class:`~repro.service.persistence.ServicePersistence`, a state-dir
        path (one is built and owned by the scheduler), or ``None`` for the
        previous purely in-memory behaviour.
    retry_policy:
        Backoff schedule for failed coalesced batches (:class:`RetryPolicy`;
        ``None`` fails a group on its first exception, the pre-retry
        behaviour).
    max_queue_depth:
        Admission-control bound on the pending queue.  When full, a new
        submission either displaces the lowest-priority queued job (when it
        outranks one — that job ends in the terminal ``"shed"`` state) or is
        refused with :class:`QueueSaturatedError` (HTTP 429).  ``None``
        (default) keeps the queue unbounded.
    breaker_failure_threshold / breaker_reset_s:
        Per-fingerprint :class:`CircuitBreaker` tuning: consecutive failed
        *attempts* before the fingerprint's groups are rejected instantly,
        and how long the breaker stays open before a half-open probe.
    remote_solver:
        When given, a callable ``(fingerprint, spec, columns) -> (n, k)
        block`` that replaces the local engine path of
        :meth:`_solve_group` — the cluster leader plugs its
        route-and-RPC here, so coalescing, the result store, journaling,
        retry/backoff and the per-fingerprint breakers all wrap remote
        work unchanged.  A raising remote solver is retried exactly like
        a failing local batch (that retry *is* the cluster's failover
        path).  Columns solved remotely count in
        ``remote_columns_solved``, never in ``attributed_solves`` — a
        leader runs zero local solves.
    stats_extra:
        Optional zero-argument callable whose dict result is merged into
        the ``/stats`` body (the leader injects its registry/router view).
    group_concurrency:
        How many fingerprint groups one drain cycle may solve at once.
        The default ``1`` keeps the classic single-host behaviour (groups
        run sequentially in the dispatcher thread).  The cluster leader
        raises it so groups routed to *different* worker hosts solve in
        parallel — with remote solves the dispatcher thread is just
        waiting on RPCs, and serialising them would cap the cluster at
        single-host throughput.  Each group still runs on exactly one
        thread, so per-fingerprint state (its breaker, its engine) keeps
        its single-threaded discipline.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        store: ResultStore | None = None,
        max_solvers: int = 4,
        coalesce_window_s: float = 0.0,
        autostart: bool = True,
        share_factors: bool = True,
        prepare_tiled: bool = False,
        max_jobs_retained: int = 10_000,
        max_result_bytes_retained: int = 256 * 1024 * 1024,
        persistence: "ServicePersistence | str | os.PathLike | None" = None,
        retry_policy: RetryPolicy | None = RetryPolicy(),
        max_queue_depth: int | None = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_s: float = 30.0,
        remote_solver=None,
        stats_extra=None,
        group_concurrency: int = 1,
    ) -> None:
        self._owns_persistence = persistence is not None and not isinstance(
            persistence, ServicePersistence
        )
        if persistence is not None and not isinstance(persistence, ServicePersistence):
            persistence = ServicePersistence(persistence)
        self.persistence = persistence
        self.store = store if store is not None else ResultStore()
        self.metrics = ServiceMetrics()
        self.pool = ExtractorPool(
            n_workers=n_workers,
            max_solvers=max_solvers,
            share_factors=share_factors,
            prepare_tiled=prepare_tiled,
        )
        self.coalesce_window_s = float(coalesce_window_s)
        self.max_jobs_retained = int(max_jobs_retained)
        self.max_result_bytes_retained = int(max_result_bytes_retained)
        if retry_policy is None:
            retry_policy = RetryPolicy(max_attempts=1)
        self.retry_policy = retry_policy
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1 when given")
        self.max_queue_depth = max_queue_depth
        self._breaker_failure_threshold = int(breaker_failure_threshold)
        self._breaker_reset_s = float(breaker_reset_s)
        #: per-fingerprint failure latches; the table is guarded by _cv, each
        #: breaker is touched by the one thread running its group's batch
        self._breakers: dict[tuple, CircuitBreaker] = {}  # reprolint: guarded-by(_cv)
        self._jobs: dict[str, Job] = {}  # reprolint: guarded-by(_cv)
        #: per-job progress callbacks (streaming); popped on terminal events
        self._watchers: dict[str, list] = {}  # reprolint: guarded-by(_cv)
        self._pending: list[str] = []  # reprolint: guarded-by(_cv)
        self._terminal: "deque[str]" = deque()  # reprolint: guarded-by(_cv)
        self._retained_bytes = 0  # reprolint: guarded-by(_cv)
        self._seq = 0  # reprolint: guarded-by(_cv)
        self._running = 0  # reprolint: guarded-by(_cv)
        #: every job id this service has ever accepted (journal + retention
        #: drops) — lets :meth:`result` answer "expired", not "never existed"
        self._known_ids: set[str] = set()  # reprolint: guarded-by(_cv)
        self._cv = threading.Condition()
        self._drain_lock = threading.Lock()
        self._closing = False  # reprolint: guarded-by(_cv)
        #: cumulative CountingSolver attribution of every batch this
        #: scheduler ran (equals fresh columns solved; pinned by tests)
        self.attributed_solves = 0  # reprolint: guarded-by(_cv)
        self._remote_solver = remote_solver
        self._stats_extra = stats_extra
        #: columns delegated to the remote solver (cluster leader mode);
        #: disjoint from attributed_solves by construction
        self.remote_columns_solved = 0  # reprolint: guarded-by(_cv)
        if group_concurrency < 1:
            raise ValueError("group_concurrency must be at least 1")
        self._group_concurrency = int(group_concurrency)
        self._group_executor = (
            ThreadPoolExecutor(
                max_workers=self._group_concurrency,
                thread_name_prefix="repro-service-group",
            )
            if self._group_concurrency > 1
            else None
        )
        self._attached_artifacts = False
        if self.persistence is not None:
            self.store.attach_backend(self.persistence.results)
            cache = factor_cache()
            if cache.artifact_store is None:
                cache.set_artifact_store(self.persistence.artifacts)
                self._attached_artifacts = True
            self._replay_journal()
        self._thread: threading.Thread | None = None
        if autostart:
            self._thread = threading.Thread(
                target=self._run, name="repro-service-dispatcher", daemon=True
            )
            self._thread.start()

    def _replay_journal(self) -> None:
        """Re-queue journaled jobs that never reached a terminal state."""
        replay, known_ids, max_seq = self.persistence.journal.recover()
        with self._cv:
            self._known_ids.update(known_ids)
            self._seq = max(self._seq, max_seq)
            now = time.monotonic()
            for job_id, request in replay:
                job = Job(
                    job_id=job_id,
                    request=request,
                    submitted_at=now,  # the deadline clock restarts on replay
                    priority=int(request.priority),
                    done_event=threading.Event(),
                )
                self._jobs[job_id] = job
                self._pending.append(job_id)
            if replay:
                self._cv.notify_all()
        for _ in replay:
            self.metrics.record_submit()
            self.metrics.record_replay()

    # ----------------------------------------------------------------- clients
    def submit(self, request: JobRequest, watcher=None) -> str:
        """Queue one request; returns the job id immediately.

        With persistence attached the request is journaled — flushed and
        fsync'd — *before* the id is acknowledged, so an accepted job
        survives any later crash.  The fsync runs outside the scheduler
        lock (disk latency must not stall the dispatcher); the id is
        reserved first, the job enqueued after the journal write lands.

        ``watcher`` registers a progress callback atomically with the
        enqueue (see the module docstring's streaming section) — unlike a
        later :meth:`watch` call, it can never miss an event.
        """
        if not isinstance(request, JobRequest):
            raise TypeError("submit() takes a JobRequest")
        rejected = None
        with self._cv:
            if self._closing:
                raise RuntimeError("scheduler is closed")
            if (
                self.max_queue_depth is not None
                and len(self._pending) >= self.max_queue_depth
            ):
                rejected = not self._shed_for_locked(int(request.priority))
            if not rejected:
                self._seq += 1
                job_id = f"job-{self._seq:06d}"
        if rejected:
            self.metrics.record_rejected_submit()
            retry_after = self.metrics.recent_p50_s() or 1.0
            raise QueueSaturatedError(
                f"queue saturated ({self.max_queue_depth} pending); "
                f"priority {request.priority} does not outrank any queued job",
                retry_after_s=retry_after,
            )
        journal = self.persistence.journal if self.persistence is not None else None
        if journal is not None:
            journal.record_accept(job_id, request)
        with self._cv:
            if self._closing:
                # closed between the id reservation and the enqueue: void
                # the journal entry so a restart does not replay a job the
                # client never got an id for
                if journal is not None:
                    journal.record_terminal(job_id, JobState.CANCELLED)
                raise RuntimeError("scheduler is closed")
            job = Job(
                job_id=job_id,
                request=request,
                submitted_at=time.monotonic(),
                priority=int(request.priority),
                done_event=threading.Event(),
            )
            self._jobs[job_id] = job
            self._pending.append(job_id)
            self._known_ids.add(job_id)
            if watcher is not None:
                self._watchers.setdefault(job_id, []).append(watcher)
            self._cv.notify_all()
        self.metrics.record_submit()
        return job_id

    def watch(self, job_id: str, watcher) -> bool:
        """Attach a progress callback to a live job.

        Returns ``False`` when the job is already terminal (no events will
        ever fire — read :meth:`snapshot` instead); raises like
        :meth:`result` for unknown/expired ids.  Events that fired before
        registration are not replayed; submit with ``watcher=`` for a
        gap-free stream.
        """
        with self._cv:
            job = self._jobs.get(job_id)
            if job is None:
                if job_id in self._known_ids:
                    raise JobExpiredError(
                        f"job id {job_id!r} expired (dropped by retention)"
                    )
                raise KeyError(f"unknown job id {job_id!r}")
            if job.status in JobState.TERMINAL:
                return False
            self._watchers.setdefault(job_id, []).append(watcher)
            return True

    # reprolint: holds(_cv)
    def _shed_for_locked(self, priority: int) -> bool:
        """Displace the weakest queued job for an incoming one (caller holds ``_cv``).

        Returns True when a pending job with priority strictly below
        ``priority`` was shed (terminal ``"shed"`` state, journaled), False
        when the queue holds nothing the newcomer outranks — the caller
        must then refuse the submission instead.
        """
        victim = None
        for job_id in reversed(self._pending):
            job = self._jobs[job_id]
            if job.status != JobState.PENDING:
                continue
            if victim is None or job.priority < victim.priority:
                victim = job
        if victim is None or victim.priority >= priority:
            return False
        self._pending.remove(victim.job_id)
        victim.error = (
            f"shed from a saturated queue by a priority-{priority} submission"
        )
        self._finalize_locked(victim, JobState.SHED)
        return True

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started; True when it was cancelled."""
        with self._cv:
            job = self._jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job id {job_id!r}")
            if job.status != JobState.PENDING:
                return False
            self._finalize_locked(job, JobState.CANCELLED)
            return True

    def result(self, job_id: str, wait_s: float | None = None) -> Job:
        """The job record, optionally blocking until it reaches a terminal state.

        ``wait_s=None`` returns the current state immediately; a positive
        value blocks up to that long.  The returned object is the live
        record — read ``status`` / ``result`` / ``pair_values`` from it.
        Raises :class:`~repro.service.jobs.JobExpiredError` (a ``KeyError``
        subclass) for an id that existed but was dropped by finished-job
        retention, plain ``KeyError`` for one that never existed.
        """
        with self._cv:
            job = self._jobs.get(job_id)
            if job is None:
                if job_id in self._known_ids:
                    raise JobExpiredError(
                        f"job id {job_id!r} expired (dropped by retention)"
                    )
                raise KeyError(f"unknown job id {job_id!r}")
        if wait_s is not None and job.status not in JobState.TERMINAL:
            job.done_event.wait(timeout=wait_s)
        return job

    def snapshot(self, job_id: str, wait_s: float | None = None) -> dict:
        """A consistent JSON view of one job, taken under the scheduler lock.

        This is what the ``/result`` endpoint serves: status and result
        fields are read atomically, so a poll racing a finishing batch can
        never observe a partially assembled result.
        """
        job = self.result(job_id, wait_s=wait_s)
        with self._cv:
            return job.snapshot()

    def wait(self, job_ids: Iterable[str], timeout_s: float = 60.0) -> list[Job]:
        """Block until every listed job is terminal (or the deadline passes)."""
        deadline = time.monotonic() + timeout_s
        jobs = []
        for job_id in job_ids:
            remaining = max(deadline - time.monotonic(), 0.0)
            jobs.append(self.result(job_id, wait_s=remaining))
        return jobs

    @property
    def queue_depth(self) -> int:
        with self._cv:
            return len(self._pending)

    def stats(self) -> dict:
        """Aggregated metrics snapshot (the ``/stats`` endpoint body)."""
        with self._cv:
            queue_depth = len(self._pending)
            running = self._running
            attributed_solves = self.attributed_solves
            remote_columns_solved = self.remote_columns_solved
        extra = {
            "engines": self.pool.info(),
            "attributed_solves": attributed_solves,
        }
        if self._remote_solver is not None:
            extra["remote_columns_solved"] = remote_columns_solved
        if self.persistence is not None:
            extra["persistence"] = self.persistence.info()
        if self._stats_extra is not None:
            extra.update(self._stats_extra())
        return self.metrics.snapshot(
            queue_depth=queue_depth,
            store_info=self.store.info(),
            running=running,
            extra=extra,
        )

    def health(self) -> dict:
        """Liveness report (the ``/healthz`` endpoint body).

        ``ok`` is true only while the service can actually make progress:
        not closing, dispatcher thread alive (a manual ``autostart=False``
        scheduler counts as healthy while open — its owner is the
        dispatcher), and the state directory writable when persistence is
        attached.
        """
        with self._cv:
            closing = self._closing
            open_breakers = sum(
                1 for b in self._breakers.values() if b.state != "closed"
            )
        thread = self._thread
        dispatcher_alive = thread.is_alive() if thread is not None else not closing
        doc = {
            "ok": dispatcher_alive and not closing,
            "dispatcher_alive": dispatcher_alive,
            "closing": closing,
            # degraded-but-alive detail: open breakers and the resilience
            # counters do not flip ok — the service still makes progress
            "open_breakers": open_breakers,
            "faults": self.metrics.fault_counters(),
        }
        if self.persistence is not None:
            writable = self.persistence.writable()
            doc["state_dir_writable"] = writable
            doc["ok"] = doc["ok"] and writable
        return doc

    # --------------------------------------------------------------- lifecycle
    def close(self, timeout_s: float = 60.0) -> None:
        """Stop the dispatcher, fail queued jobs, shut the engines down.

        Waits up to ``timeout_s`` for an in-flight batch to finish.  If the
        dispatcher is still mid-batch after that, the engines are left
        running (they are daemon-backed and die with the process) rather
        than pulled out from under the batch — closing a worker pool a
        solve is running on would fail the batch confusingly instead of
        letting it complete.
        """
        with self._cv:
            if self._closing:
                return
            self._closing = True
            pending, self._pending = self._pending, []
            for job_id in pending:
                job = self._jobs[job_id]
                if job.status == JobState.PENDING:
                    job.error = "scheduler closed"
                    # journal=False: a graceful shutdown must not mark
                    # accepted-but-unserved work terminal — the journal
                    # replays it on the next start instead of dropping it
                    self._finalize_locked(job, JobState.FAILED, journal=False)
            self._cv.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            if self._thread.is_alive():  # pragma: no cover - stuck batch
                return
            self._thread = None
        if self._group_executor is not None:
            self._group_executor.shutdown(wait=True)
        self.pool.close()
        if self.persistence is not None:
            if self._attached_artifacts:
                cache = factor_cache()
                if cache.artifact_store is self.persistence.artifacts:
                    cache.set_artifact_store(None)
                self._attached_artifacts = False
            self.store.attach_backend(None)
            if self._owns_persistence:
                self.persistence.close()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:
            pass

    # -------------------------------------------------------------- dispatcher
    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._closing:
                    self._cv.wait()
                if self._closing:
                    return
            if self.coalesce_window_s > 0.0:
                time.sleep(self.coalesce_window_s)
            self.step()

    def step(self) -> int:
        """Run one drain cycle synchronously; returns the number of jobs served.

        Pops everything currently queued, times out overdue jobs, groups the
        rest by substrate fingerprint and solves each group as one coalesced
        batch (highest priority group first).  The background dispatcher
        calls this in a loop; tests with ``autostart=False`` call it by hand
        to make coalescing deterministic.
        """
        if fault_hook("dispatch.cycle"):
            # an injected dropped cycle: queued jobs stay queued and are
            # picked up by the next drain, exactly like a stalled dispatcher
            return 0
        with self._drain_lock:
            with self._cv:
                pending, self._pending = self._pending, []
                jobs = []
                now = time.monotonic()
                for job_id in pending:
                    job = self._jobs[job_id]
                    if job.status != JobState.PENDING:
                        continue  # cancelled while queued
                    if job.deadline is not None and now > job.deadline:
                        job.error = (
                            f"job timed out after {job.request.timeout_s:g}s in queue"
                        )
                        self._finalize_locked(job, JobState.TIMEOUT)
                        continue
                    jobs.append(job)
            if not jobs:
                return 0
            groups: "OrderedDict[tuple, list[Job]]" = OrderedDict()
            for job in jobs:
                groups.setdefault(job.request.fingerprint, []).append(job)
            ordered = sorted(
                groups.items(), key=lambda kv: -max(j.priority for j in kv[1])
            )
            served = sum(len(group) for _, group in ordered)
            if self._group_executor is not None and len(ordered) > 1:
                # fan groups out (the leader's remote solves overlap across
                # hosts); each group still runs on exactly one thread, and
                # _drain_lock keeps cycles from overlapping each other
                futures = [
                    self._group_executor.submit(self._run_batch, fp, group)
                    for fp, group in ordered
                ]
                for future in futures:
                    future.result()  # _run_batch never raises; surface bugs
            else:
                for fingerprint, group in ordered:
                    self._run_batch(fingerprint, group)
            return served

    # -------------------------------------------------------------- streaming
    def _notify_columns(
        self, jobs: list[Job], available: dict[int, np.ndarray], source: str
    ) -> None:
        """Fire one ``"columns"`` event per watched job that gained columns.

        Called from the dispatcher mid-batch: once with the result-store
        hits before any solving, once per solve landing — so a watcher sees
        its job's columns as the coalesced group produces them, not when
        the whole job is assembled.  Events are at-least-once (a retried
        attempt re-announces store hits); consumers dedupe by column.
        """
        if not available:
            return
        with self._cv:
            watched = [
                (job, list(self._watchers.get(job.job_id, ())))
                for job in jobs
                if self._watchers.get(job.job_id)
            ]
        for job, watchers in watched:
            cols = tuple(
                c for c in job.request.needed_columns() if c in available
            )
            if not cols:
                continue
            event = {
                "kind": "columns",
                "job_id": job.job_id,
                "columns": cols,
                "arrays": {c: available[c] for c in cols},
                "source": source,
            }
            for watcher in watchers:
                try:
                    watcher(event)
                except Exception:  # noqa: BLE001 - a watcher must not kill a batch
                    pass

    # ------------------------------------------------------------------ batch
    def _breaker_for(self, fingerprint: tuple) -> CircuitBreaker:
        with self._cv:
            breaker = self._breakers.get(fingerprint)
            if breaker is None:
                breaker = self._breakers[fingerprint] = CircuitBreaker(
                    failure_threshold=self._breaker_failure_threshold,
                    reset_s=self._breaker_reset_s,
                )
            return breaker

    def _run_batch(self, fingerprint: tuple, jobs: list[Job]) -> None:
        """Solve one coalesced group, retrying failed attempts with backoff.

        Each attempt re-consults the result store first, so columns that
        landed before a mid-batch failure are never re-solved (and never
        re-attributed).  A fingerprint whose attempts keep failing trips its
        :class:`CircuitBreaker`; while the breaker is open the group fails
        instantly instead of burning retry budget every cycle.
        """
        now = time.monotonic()
        with self._cv:
            # re-check under the lock: a job popped by this cycle may have
            # been cancelled before its group's turn came up — reviving it
            # here would finalize it twice (cancelled *and* done)
            jobs = [job for job in jobs if job.status == JobState.PENDING]
            for job in jobs:
                job.status = JobState.RUNNING
                job.started_at = now
                self._running += 1
        if not jobs:
            return
        breaker = self._breaker_for(fingerprint)
        if not breaker.allow():
            message = (
                "circuit breaker open for this substrate "
                f"(probe allowed after {breaker.reset_s:g}s)"
            )
            with self._cv:
                for job in jobs:
                    if job.status not in JobState.TERMINAL:
                        job.error = message
                        self._finalize_locked(job, JobState.FAILED)
            return
        policy = self.retry_policy
        for attempt in range(1, policy.max_attempts + 1):
            with self._cv:
                for job in jobs:
                    if job.status not in JobState.TERMINAL:
                        job.attempts = attempt
            try:
                self._solve_group(fingerprint, jobs)
            except Exception as exc:  # noqa: BLE001 - a batch must never kill the loop
                error = f"{type(exc).__name__}: {exc}"
                tb = _truncated_traceback()
                with self._cv:
                    jobs = [j for j in jobs if j.status not in JobState.TERMINAL]
                    for job in jobs:
                        job.history.append(
                            {"attempt": attempt, "error": error, "traceback": tb}
                        )
                if not jobs:
                    return
                if breaker.record_failure():
                    self.metrics.record_breaker_open()
                    exhausted = True  # an open breaker ends the retry loop too
                else:
                    exhausted = attempt >= policy.max_attempts
                if exhausted:
                    with self._cv:
                        for job in jobs:
                            if job.status not in JobState.TERMINAL:
                                job.error = error
                                job.error_traceback = tb
                                self._finalize_locked(job, JobState.FAILED)
                    return
                self.metrics.record_retry()
                time.sleep(policy.delay_s(attempt))
            else:
                breaker.record_success()
                return

    def _solve_group(self, fingerprint: tuple, jobs: list[Job]) -> None:
        """One solve attempt for a coalesced group (store → solve → assemble).

        Attribution stays exact under retries: the fresh
        :class:`CountingSolver` built here is only read after the solve
        succeeds, and every attempt starts from the store — previously
        landed columns cost zero new solves.
        """
        union: set[int] = set()
        for job in jobs:
            union.update(job.request.needed_columns())
        needed = tuple(sorted(union))
        columns = self.store.get_many(fingerprint, needed)
        to_solve = tuple(c for c in needed if c not in columns)
        # stream store hits immediately: a job whose columns someone already
        # paid for sees them before this batch solves anything
        self._notify_columns(jobs, columns, source="store")
        stats_delta = None
        if to_solve and self._remote_solver is not None:
            block = np.asarray(
                self._remote_solver(
                    fingerprint, jobs[0].request.effective_spec, to_solve
                ),
                dtype=float,
            )
            expected = (jobs[0].request.n_contacts, len(to_solve))
            if block.shape != expected:
                raise RuntimeError(
                    f"remote solver returned shape {block.shape}, "
                    f"expected {expected}"
                )
            with self._cv:
                self.remote_columns_solved += len(to_solve)
            for idx, column in enumerate(to_solve):
                columns[column] = self.store.put(fingerprint, column, block[:, idx])
            self._notify_columns(
                jobs, {c: columns[c] for c in to_solve}, source="solve"
            )
        elif to_solve:
            engine = self.pool.get(fingerprint, jobs[0].request.effective_spec)
            counting = CountingSolver(engine)
            snap = _stats_snapshot(engine.stats)
            rebuilds_before = engine.pool_rebuilds
            degraded_before = engine.degraded_solves
            try:
                block = extract_columns(counting, np.asarray(to_solve, dtype=int))
            finally:
                # supervised-recovery counters move even when the attempt
                # ultimately fails — a rebuild that happened, happened
                self.metrics.record_pool_rebuilds(
                    engine.pool_rebuilds - rebuilds_before
                )
                self.metrics.record_degraded_solves(
                    engine.degraded_solves - degraded_before
                )
            stats_delta = _stats_delta(engine.stats, snap)
            # a warm engine lives for the whole service: bound its
            # per-solve iteration history (the aggregate counters, which
            # mean_iterations and dispatch feed on, are unaffected)
            del engine.stats.iterations_per_solve[:-ITERATION_HISTORY]
            with self._cv:
                self.attributed_solves += counting.solve_count
            for idx, column in enumerate(to_solve):
                columns[column] = self.store.put(fingerprint, column, block[:, idx])
            # stream the freshly solved columns the moment the group's solve
            # lands — before any job in the group is assembled or finalized
            self._notify_columns(
                jobs, {c: columns[c] for c in to_solve}, source="solve"
            )
        self.metrics.record_batch(
            n_jobs=len(jobs),
            n_columns_requested=len(needed),
            n_columns_solved=len(to_solve),
            n_columns_from_store=len(needed) - len(to_solve),
            stats_delta=stats_delta,
        )
        for job in jobs:
            self._assemble(job, columns)

    def _assemble(self, job: Job, columns: dict[int, np.ndarray]) -> None:
        """Build one job's result views from the batch's solved columns.

        The views are stacked into locals first and assigned to the job
        under the scheduler lock together with the DONE transition, so a
        concurrent :meth:`snapshot` never observes a partially written
        result.
        """
        request = job.request
        result_columns = None
        if request.columns is not None:
            result_columns = request.columns
        elif request.pairs is None:
            result_columns = tuple(range(request.n_contacts))
        result = None
        if result_columns is not None:
            result = np.column_stack([columns[c] for c in result_columns])
        pair_values = None
        if request.pairs is not None:
            pair_values = np.array([columns[j][i] for i, j in request.pairs])
        with self._cv:
            job.result_columns = result_columns
            job.result = result
            job.pair_values = pair_values
            self._finalize_locked(job, JobState.DONE)

    @staticmethod
    def _result_nbytes(job: Job) -> int:
        total = 0
        if job.result is not None:
            total += job.result.nbytes
        if job.pair_values is not None:
            total += job.pair_values.nbytes
        return total

    # reprolint: holds(_cv)
    def _finalize_locked(self, job: Job, status: str, journal: bool = True) -> None:
        """Move a job to a terminal state (caller holds ``_cv``).

        ``journal=False`` suppresses the journal's terminal mark — used at
        close so accepted-but-unserved jobs replay on the next start.
        """
        if job.status == JobState.RUNNING:
            self._running -= 1
        job.status = status
        job.finished_at = time.monotonic()
        job.done_event.set()
        self.metrics.record_outcome(status, latency_s=job.latency_s)
        if journal and self.persistence is not None:
            self.persistence.journal.record_terminal(
                job.job_id, status, attempts=job.attempts
            )
        for watcher in self._watchers.pop(job.job_id, ()):
            try:
                watcher({"kind": "terminal", "job_id": job.job_id, "status": status})
            except Exception:  # noqa: BLE001 - a watcher must not kill finalize
                pass
        self._terminal.append(job.job_id)
        self._retained_bytes += self._result_nbytes(job)
        while self._terminal and (
            len(self._terminal) > self.max_jobs_retained
            or self._retained_bytes > self.max_result_bytes_retained
        ):
            dropped_id = self._terminal.popleft()
            stale = self._jobs.pop(dropped_id, None)
            if stale is not None:
                self._known_ids.add(dropped_id)
                self._retained_bytes -= self._result_nbytes(stale)
