"""Blocking Python client of the extraction service's ``/v1`` front door.

The redesigned :class:`ServiceClient` speaks the schema-first JSON wire of
:mod:`~repro.service.wire` — no pickle leaves the process — and works
against both servers (the asyncio
:class:`~repro.service.aserver.AsyncExtractionServer` and the legacy
threaded :class:`~repro.service.server.ExtractionServer`, which serves the
same ``/v1`` routes).  Error envelopes come back as **typed exceptions**:

* 404 ``unknown_job``   → :class:`~repro.service.wire.UnknownJobError`
  (a ``KeyError``, like :meth:`Scheduler.result`)
* 410 ``job_expired``   → :class:`~repro.service.jobs.JobExpiredError`
* 429 ``queue_saturated`` → :class:`~repro.service.scheduler.QueueSaturatedError`
  with the server's ``retry_after_s`` hint
* 400 ``bad_request``   → :class:`~repro.service.wire.BadRequestError`
* anything else         → a :class:`~repro.service.wire.ServiceError`
  subclass keyed on the envelope code

so callers handle local and remote failure modes with one ``except``
clause.  The client is a context manager (``with ServiceClient(url) as
client: ...``); construction is cheap and connections are per-request, so
``close()`` exists for lifecycle symmetry and future pooling.

Array fields (``result``, ``pair_values``, streamed column blocks) are
decoded back to float64 ndarrays — bit-exact with what the server solved.

The pickle-era wire survives only as :meth:`ServiceClient.submit_pickle`,
which emits a :class:`DeprecationWarning` and requires a server started
with the explicit legacy opt-in.
"""

from __future__ import annotations

import base64
import json
import pickle
import time
import warnings
from typing import Any, Iterable, Iterator
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import numpy as np

from .jobs import JobRequest, JobState
from .scheduler import QueueSaturatedError
from .wire import (
    SCHEMA_VERSION,
    ServiceUnavailableError,
    decode_array,
    raise_for_envelope,
    request_to_wire,
    spec_to_wire,
)

__all__ = ["ServiceClient"]

#: wire-array fields of a job snapshot the client decodes back to ndarrays
_SNAPSHOT_ARRAYS = ("result", "pair_values")


def _decode_snapshot(snapshot: dict) -> dict:
    for key in _SNAPSHOT_ARRAYS:
        value = snapshot.get(key)
        if isinstance(value, dict):
            snapshot[key] = decode_array(value)
    return snapshot


class ServiceClient:
    """Blocking client of one extraction service (see module docstring).

    ``auth_token`` sends ``Authorization: Bearer <token>`` on every request
    (required against a server started with ``--auth-token``).

    ``retries`` opts into bounded client-side backoff: a 429
    (:class:`~repro.service.scheduler.QueueSaturatedError`) or 503
    (:class:`~repro.service.wire.ServiceUnavailableError`) answer is
    retried up to that many times, sleeping the server's ``Retry-After``
    hint (capped at ``retry_cap_s``) between attempts, instead of raising
    immediately.  The default ``retries=0`` keeps the raise-immediately
    behaviour.  Retries cover the request/response methods only —
    :meth:`stream` opens a long-lived connection and is never retried
    (replaying it could resubmit already-accepted jobs).
    """

    def __init__(
        self,
        url: str,
        timeout_s: float = 30.0,
        auth_token: str | None = None,
        retries: int = 0,
        retry_cap_s: float = 30.0,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.auth_token = auth_token
        if retries < 0:
            raise ValueError("retries must be non-negative")
        self.retries = int(retries)
        self.retry_cap_s = float(retry_cap_s)
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the client (idempotent).

        Connections are currently per-request, so this only marks the
        client closed — but callers should treat the lifecycle as real:
        a pooled transport can then land without breaking anyone.
        """
        self._closed = True

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ http
    def _headers(self, has_body: bool) -> dict[str, str]:
        headers: dict[str, str] = {}
        if has_body:
            headers["Content-Type"] = "application/json"
        if self.auth_token:
            headers["Authorization"] = f"Bearer {self.auth_token}"
        return headers

    def _request_once(
        self,
        method: str,
        path: str,
        doc: dict | None = None,
        timeout_s: float | None = None,
    ) -> dict:
        if self._closed:
            raise RuntimeError("client is closed")
        body = json.dumps(doc).encode() if doc is not None else None
        request = Request(
            self.url + path,
            data=body,
            method=method,
            headers=self._headers(body is not None),
        )
        timeout = timeout_s if timeout_s is not None else self.timeout_s
        try:
            with urlopen(request, timeout=timeout) as response:
                return json.loads(response.read())
        except HTTPError as exc:
            payload = exc.read()
            try:
                error_doc: Any = json.loads(payload)
            except ValueError:
                error_doc = payload.decode("utf-8", errors="replace") or f"HTTP {exc.code}"
            raise_for_envelope(exc.code, error_doc)
            raise  # pragma: no cover - raise_for_envelope always raises

    def _request(
        self,
        method: str,
        path: str,
        doc: dict | None = None,
        timeout_s: float | None = None,
    ) -> dict:
        """One request, honoring ``Retry-After`` on 429/503 up to ``retries``.

        Only admission-control refusals retry — the server said "come back
        later", and both paths are idempotent to repeat because the refused
        attempt changed no server state.  Everything else raises as before.
        """
        for attempt in range(self.retries + 1):
            try:
                return self._request_once(method, path, doc, timeout_s)
            except (QueueSaturatedError, ServiceUnavailableError) as exc:
                if attempt >= self.retries:
                    raise
                hint = getattr(exc, "retry_after_s", None)
                if hint is None:
                    hint = getattr(exc, "retry_after", None)
                time.sleep(min(float(hint or 1.0), self.retry_cap_s))
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------- api
    def submit(self, request: JobRequest) -> str:
        """Ship one request as a schema document; returns the job id.

        A 429 envelope (admission control refused the submission) is
        raised as :class:`~repro.service.scheduler.QueueSaturatedError`
        carrying the server's retry hint in ``retry_after_s``.
        """
        return self._request("POST", "/v1/jobs", request_to_wire(request))["job_id"]

    def submit_pickle(self, request: JobRequest) -> str:
        """DEPRECATED pickle-wire submit (the pre-``/v1`` protocol).

        Answers 410 unless the server operator explicitly revived the
        legacy endpoint.  Use :meth:`submit`.
        """
        warnings.warn(
            "ServiceClient.submit_pickle() ships pickle over the wire and is "
            "deprecated; use submit(), which sends the /v1 schema document",
            DeprecationWarning,
            stacklevel=2,
        )
        blob = base64.b64encode(pickle.dumps(request)).decode()
        return self._request("POST", "/submit", {"request_pickle": blob})["job_id"]

    def result(self, job_id: str, wait_s: float = 0.0) -> dict:
        """One job snapshot, optionally long-polling up to ``wait_s``.

        ``result`` / ``pair_values`` come back as float64 ndarrays (or
        ``None`` until the job is terminal).  Raises
        :class:`~repro.service.wire.UnknownJobError` (404) or
        :class:`~repro.service.jobs.JobExpiredError` (410).
        """
        path = f"/v1/jobs/{job_id}"
        if wait_s > 0:
            path += f"?wait_s={wait_s:g}"
        snapshot = self._request("GET", path, timeout_s=self.timeout_s + max(wait_s, 0.0))
        return _decode_snapshot(snapshot)

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; True when it was still cancellable."""
        return bool(self._request("DELETE", f"/v1/jobs/{job_id}")["cancelled"])

    def wait(self, job_id: str, timeout_s: float = 60.0) -> dict:
        """Block until the job is terminal; raises ``TimeoutError`` otherwise."""
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not terminal after {timeout_s:g}s")
            snapshot = self.result(job_id, wait_s=min(remaining, 5.0))
            if snapshot["status"] in JobState.TERMINAL:
                return snapshot

    def extract(self, request: JobRequest, timeout_s: float = 60.0):
        """Submit + wait + unpack: solved columns as an ndarray (or pair values).

        Returns the ``(n_contacts, k)`` column block for column/dense
        requests, the pair-value vector for pure pair requests, and the
        ``(column block, pair values)`` tuple when the request asked for
        both.  Raises ``RuntimeError`` on any non-``done`` terminal status.
        """
        snapshot = self.wait(self.submit(request), timeout_s=timeout_s)
        if snapshot["status"] != JobState.DONE:
            raise RuntimeError(
                f"job {snapshot['job_id']} ended {snapshot['status']}: "
                f"{snapshot.get('error')}"
            )
        result = snapshot["result"]
        pairs = snapshot["pair_values"]
        if result is not None and pairs is not None:
            return result, pairs
        return result if result is not None else pairs

    # ------------------------------------------------------------- streaming
    def stream(
        self,
        requests: "JobRequest | Iterable[JobRequest]",
        timeout_s: float | None = None,
    ) -> Iterator[dict]:
        """Submit requests and yield progress events as the service solves.

        Yields the ``/v1/stream`` NDJSON events in arrival order:
        ``{"event": "submitted", "index", "job_id", "status"}``, then
        ``{"event": "columns", "index", "job_id", "columns", "block",
        "source"}`` with ``block`` decoded to an ``(n_contacts,
        len(columns))`` ndarray **as each coalesced group lands** (before
        the job completes), ``{"event": "done", ...,  "snapshot"}`` per
        job (snapshot arrays decoded), ``{"event": "error", "index",
        "error"}`` for per-request failures, and a final
        ``{"event": "end"}``.
        """
        if self._closed:
            raise RuntimeError("client is closed")
        if isinstance(requests, JobRequest):
            requests = [requests]
        docs = [request_to_wire(r) for r in requests]
        body = json.dumps({"schema_version": SCHEMA_VERSION, "requests": docs}).encode()
        http_request = Request(
            self.url + "/v1/stream",
            data=body,
            method="POST",
            headers=self._headers(True),
        )
        try:
            response = urlopen(
                http_request, timeout=timeout_s if timeout_s is not None else self.timeout_s
            )
        except HTTPError as exc:
            payload = exc.read()
            try:
                error_doc: Any = json.loads(payload)
            except ValueError:
                error_doc = payload.decode("utf-8", errors="replace") or f"HTTP {exc.code}"
            raise_for_envelope(exc.code, error_doc)
            raise  # pragma: no cover - raise_for_envelope always raises

        def events() -> Iterator[dict]:
            with response:
                for raw in response:
                    line = raw.strip()
                    if not line:
                        continue
                    event = json.loads(line)
                    if isinstance(event.get("block"), dict):
                        event["block"] = decode_array(event["block"])
                    if isinstance(event.get("snapshot"), dict):
                        _decode_snapshot(event["snapshot"])
                    yield event

        return events()

    def pairs(
        self,
        spec,
        pairs: Iterable[tuple[int, int]],
        tolerance: float | None = None,
        priority: int = 0,
        timeout_s: float | None = None,
    ) -> np.ndarray:
        """Fetch individual conductance entries through ``/v1/pairs``.

        The server micro-batches concurrent queries over the same
        substrate into one submission; the returned vector aligns with
        ``pairs`` order.  Blocks until the values are solved.
        """
        doc = {
            "schema_version": SCHEMA_VERSION,
            "spec": spec_to_wire(spec),
            "pairs": [list(pair) for pair in pairs],
            "tolerance": tolerance,
            "priority": priority,
        }
        answer = self._request(
            "POST", "/v1/pairs", doc, timeout_s=timeout_s if timeout_s else self.timeout_s
        )
        return decode_array(answer["values"])

    # ---------------------------------------------------------------- status
    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def healthz(self) -> dict:
        """The health document; raises a typed error when the service is down.

        A 503 (``ok: false``) surfaces as
        :class:`~repro.service.wire.ServiceError` with ``status == 503``.
        """
        return self._request("GET", "/v1/healthz")
