"""Long-running extraction service: scheduler, result store, HTTP front end.

The engines of PRs 1-4 (batched ``solve_many``, adaptive dispatch, the
factor cache/plane, process-parallel extraction, the tiled direct path) made
a *single* extraction fast; this package amortises work **across requests**.
A persistent :class:`~repro.service.scheduler.Scheduler` owns the expensive
state — warm :class:`~repro.substrate.parallel.ParallelExtractor` engines
with published shared-memory factors, and a
:class:`~repro.service.result_store.ResultStore` of solved ``G`` columns —
and serves many small :class:`~repro.service.jobs.JobRequest` jobs against
it, coalescing concurrent requests over the same substrate fingerprint into
shared ``solve_many`` blocks.  The HTTP front door is **schema-first**:
:mod:`~repro.service.wire` defines a declarative JSON wire protocol (layout,
profile, options and arrays as plain data — no pickle on the wire, fingerprint-
exact round trips), :mod:`~repro.service.aserver` serves it from one asyncio
event loop under ``/v1/`` with chunked-NDJSON streaming (columns reach the
client as their coalesced group's solve lands, before the job completes) and
HTTP-layer micro-batching of small pair queries, and
:mod:`~repro.service.client` is the blocking client with typed exceptions
decoded from the single error envelope.  The legacy threaded server
(:mod:`~repro.service.server`) serves the same ``/v1`` routes; its pickle-era
``/submit`` survives only behind an explicit opt-in.
:mod:`~repro.service.metrics` aggregates the operational counters behind the
``/stats`` endpoint.  :mod:`~repro.service.persistence` makes the amortised
state durable: point the scheduler (or ``python -m repro.service
--state-dir``) at a directory and the solved-column corpus, factor
artifacts and accepted-job journal survive restarts — a warm restart serves
the previous corpus with zero new solves and zero factor rebuilds.

The service is also fault-tolerant: batches that fail are retried with
exponential backoff (:class:`~repro.service.scheduler.RetryPolicy`), a
broken worker pool is torn down and rebuilt mid-block (degrading to inline
solves when rebuilds keep failing), repeatedly failing substrates trip a
per-fingerprint :class:`~repro.service.scheduler.CircuitBreaker`, and a
bounded queue sheds the lowest-priority work under overload
(:class:`~repro.service.scheduler.QueueSaturatedError` / HTTP 429).  Every
failure mode is reproducible on demand through :mod:`repro.faults`.

Quickstart::

    from repro.service import AsyncExtractionServer, JobRequest, ServiceClient
    from repro.substrate.parallel import SolverSpec

    with AsyncExtractionServer() as server:      # scheduler + HTTP, ephemeral port
        with ServiceClient(server.url) as client:
            spec = SolverSpec.bem(layout, profile)
            g_cols = client.extract(JobRequest(spec, columns=(0, 5, 9)))
            for event in client.stream(JobRequest(spec, columns=(0, 1))):
                ...                              # columns arrive as groups land

or in-process, without HTTP::

    from repro.service import Scheduler
    with Scheduler() as scheduler:
        job_id = scheduler.submit(JobRequest(spec, columns=(0, 5, 9)))
        job = scheduler.result(job_id, wait_s=60.0)
"""

from .jobs import Job, JobExpiredError, JobRequest, JobState
from .metrics import ServiceMetrics
from .persistence import JobJournal, ServicePersistence, SqliteResultBackend
from .result_store import ResultStore
from .scheduler import (
    CircuitBreaker,
    ExtractorPool,
    QueueSaturatedError,
    RetryPolicy,
    Scheduler,
)
from .aserver import AsyncExtractionServer
from .client import ServiceClient
from .jobs import SCHEMA_VERSION
from .server import ExtractionServer
from .wire import (
    BadRequestError,
    LegacyPickleDisabledError,
    ServiceError,
    ServiceUnavailableError,
    UnauthorizedError,
    UnknownJobError,
    WireFormatError,
    request_from_wire,
    request_to_wire,
    spec_from_wire,
    spec_to_wire,
)

__all__ = [
    "SCHEMA_VERSION",
    "Job",
    "JobExpiredError",
    "JobRequest",
    "JobState",
    "ServiceMetrics",
    "JobJournal",
    "ServicePersistence",
    "SqliteResultBackend",
    "ResultStore",
    "ExtractorPool",
    "Scheduler",
    "RetryPolicy",
    "CircuitBreaker",
    "QueueSaturatedError",
    "ExtractionServer",
    "AsyncExtractionServer",
    "ServiceClient",
    "ServiceError",
    "BadRequestError",
    "UnknownJobError",
    "ServiceUnavailableError",
    "UnauthorizedError",
    "LegacyPickleDisabledError",
    "WireFormatError",
    "request_to_wire",
    "request_from_wire",
    "spec_to_wire",
    "spec_from_wire",
]
