"""Schema-first JSON wire protocol of the extraction service (``/v1/``).

The original front door shipped :class:`~repro.service.jobs.JobRequest`
objects as base64 pickle inside JSON — convenient, but unpickling executes
arbitrary code, so the endpoint could never leave loopback.  This module
replaces it with a **declarative schema**: layout, profile, options and the
columns/pairs query travel as plain JSON data, numeric arrays as
base64-encoded float64 buffers with explicit dtype/shape, and the decoder
*constructs* the domain objects instead of trusting serialized code.  The
round trip is exact — a decoded spec has the **same
:attr:`~repro.substrate.parallel.SolverSpec.fingerprint`** as the original,
so coalescing, the result corpus and the factor artifact store all keep
working unchanged across the wire boundary.

Wire documents (all carry ``"schema_version"`` at the top level where they
stand alone):

========================  ===================================================
document                  shape
========================  ===================================================
value                     JSON scalar, list, dict — plus two tagged forms:
                          ``{"__wire__": "tuple", "items": [...]}`` (tuples
                          survive, ``repr``-identical for fingerprints) and
                          ``{"__wire__": "ndarray", "dtype", "shape",
                          "data"}`` (base64 of the C-order buffer)
layout                    ``{"size_x", "size_y", "contacts": [{"x", "y",
                          "width", "height", "name"}, ...]}``
profile                   ``null`` or ``{"size_x", "size_y", "layers":
                          [{"thickness", "conductivity"}, ...],
                          "grounded_backplane"}``
spec                      ``{"kind", "layout", "profile", "options"}``
request                   ``{"schema_version", "spec", "columns", "pairs",
                          "tolerance", "priority", "timeout_s"}``
error envelope            ``{"error": {"code", "message", "retry_after"}}``
========================  ===================================================

Exactness: JSON numbers round-trip Python floats bit-for-bit (``repr``
based), tuples are tagged so ``repr``-keyed fingerprint items cannot decay
into lists, and arrays travel as raw little-endian float64 bytes — no
formatting, no precision loss anywhere on the wire.

The module also owns the protocol-level pieces both front ends share: the
single error envelope (every 4xx/5xx body conforms), the typed exceptions
the client maps envelopes back into, and the ``/v1`` submit/snapshot route
logic (transport-agnostic: the threaded legacy server and the asyncio front
door call the same functions).
"""

from __future__ import annotations

import base64
from typing import Any

import numpy as np

from ..geometry.contact import Contact, ContactLayout
from ..substrate.parallel import SPEC_KINDS, SolverSpec
from ..substrate.profile import Layer, SubstrateProfile
from .jobs import SCHEMA_VERSION, JobExpiredError, JobRequest, JobState
from .scheduler import QueueSaturatedError, Scheduler

__all__ = [
    "SCHEMA_VERSION",
    "WireFormatError",
    "ServiceError",
    "BadRequestError",
    "UnknownJobError",
    "ServiceUnavailableError",
    "UnauthorizedError",
    "LegacyPickleDisabledError",
    "encode_value",
    "decode_value",
    "encode_array",
    "decode_array",
    "layout_to_wire",
    "layout_from_wire",
    "profile_to_wire",
    "profile_from_wire",
    "spec_to_wire",
    "spec_from_wire",
    "request_to_wire",
    "request_from_wire",
    "snapshot_to_wire",
    "error_envelope",
    "raise_for_envelope",
    "submit_route",
    "v1_submit",
    "v1_snapshot",
    "v1_cancel",
]

#: reserved key marking the tagged value forms; a plain dict may not use it
_TAG = "__wire__"


class WireFormatError(ValueError):
    """A wire document failed to decode (malformed, wrong types, bad tag)."""


# ------------------------------------------------------------ typed exceptions
class ServiceError(RuntimeError):
    """Base of the typed exceptions decoded from the error envelope.

    Carries the machine-readable ``code``, the HTTP ``status`` it arrived
    under, and the server's ``retry_after`` hint (seconds, or ``None``).
    """

    def __init__(
        self,
        message: str,
        code: str = "error",
        status: int = 500,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.status = int(status)
        self.retry_after = retry_after


class BadRequestError(ServiceError):
    """The server rejected the request document (envelope code ``bad_request``)."""


class UnknownJobError(ServiceError, KeyError):
    """A job id the service has never seen (envelope code ``unknown_job``).

    Subclasses :class:`KeyError` to match the in-process
    :meth:`~repro.service.scheduler.Scheduler.result` contract.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return RuntimeError.__str__(self)


class ServiceUnavailableError(ServiceError):
    """The service cannot make progress (envelope code ``unavailable``)."""


class UnauthorizedError(ServiceError):
    """The bearer token was missing or wrong (envelope code ``unauthorized``)."""


class LegacyPickleDisabledError(ServiceError):
    """The deprecated pickle endpoint is off (envelope code ``legacy_pickle_disabled``)."""


#: envelope code -> exception factory used by :func:`raise_for_envelope`
_CODE_EXCEPTIONS: dict[str, type[ServiceError]] = {
    "bad_request": BadRequestError,
    "unknown_job": UnknownJobError,
    "unavailable": ServiceUnavailableError,
    "unauthorized": UnauthorizedError,
    "legacy_pickle_disabled": LegacyPickleDisabledError,
}


def error_envelope(
    code: str, message: str, retry_after: float | None = None
) -> dict:
    """The one JSON error body every endpoint answers 4xx/5xx with."""
    return {
        "error": {
            "code": str(code),
            "message": str(message),
            "retry_after": retry_after,
        }
    }


def raise_for_envelope(status: int, doc: Any) -> None:
    """Raise the typed exception an error envelope describes.

    ``job_expired`` raises the in-process
    :class:`~repro.service.jobs.JobExpiredError`, ``queue_saturated`` the
    in-process :class:`~repro.service.scheduler.QueueSaturatedError`
    (carrying the retry hint) — callers handle local and remote failures
    with one ``except`` clause.  Anything else raises a
    :class:`ServiceError` subclass keyed on the envelope code.
    """
    err = doc.get("error") if isinstance(doc, dict) else None
    if not isinstance(err, dict):
        err = {"code": "error", "message": str(doc)}
    code = str(err.get("code") or "error")
    message = str(err.get("message") or f"HTTP {status}")
    retry_after = err.get("retry_after")
    if code == "job_expired":
        raise JobExpiredError(message)
    if code == "queue_saturated":
        raise QueueSaturatedError(
            message, retry_after_s=float(retry_after or 1.0)
        )
    cls = _CODE_EXCEPTIONS.get(code, ServiceError)
    raise cls(message, code=code, status=status, retry_after=retry_after)


# ------------------------------------------------------------------ primitives
def encode_array(array: np.ndarray) -> dict:
    """One ndarray as ``{"__wire__": "ndarray", "dtype", "shape", "data"}``.

    The buffer travels base64-encoded in C order under an explicit
    little-endian dtype — bit-exact, no text formatting involved.
    """
    contiguous = np.ascontiguousarray(array)
    dtype = contiguous.dtype.newbyteorder("<")
    return {
        _TAG: "ndarray",
        "dtype": dtype.str,
        "shape": list(contiguous.shape),
        "data": base64.b64encode(contiguous.astype(dtype, copy=False).tobytes()).decode(),
    }


def decode_array(doc: dict) -> np.ndarray:
    """Rebuild the ndarray an :func:`encode_array` document describes."""
    try:
        dtype = np.dtype(str(doc["dtype"]))
        shape = tuple(int(s) for s in doc["shape"])
        data = base64.b64decode(doc["data"])
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed ndarray document: {exc}") from exc
    if dtype.hasobject:
        raise WireFormatError("object dtypes are not wire-encodable")
    if len(data) != dtype.itemsize * int(np.prod(shape, dtype=np.int64)):
        raise WireFormatError("ndarray payload size does not match dtype * shape")
    array = np.frombuffer(data, dtype=dtype).reshape(shape)
    return np.ascontiguousarray(array.astype(dtype.newbyteorder("="), copy=True))


def encode_value(value: Any) -> Any:
    """One option value as plain JSON data (tuples and arrays tagged)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        return encode_array(value)
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, tuple):
        return {_TAG: "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if _TAG in value:
            raise WireFormatError(f"dict key {_TAG!r} is reserved by the wire format")
        if not all(isinstance(k, str) for k in value):
            raise WireFormatError("only string-keyed dicts are wire-encodable")
        return {k: encode_value(v) for k, v in value.items()}
    raise WireFormatError(
        f"value of type {type(value).__name__} is not wire-encodable"
    )


def decode_value(doc: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if doc is None or isinstance(doc, (bool, int, float, str)):
        return doc
    if isinstance(doc, list):
        return [decode_value(v) for v in doc]
    if isinstance(doc, dict):
        tag = doc.get(_TAG)
        if tag == "ndarray":
            return decode_array(doc)
        if tag == "tuple":
            items = doc.get("items")
            if not isinstance(items, list):
                raise WireFormatError("tuple document lacks an items list")
            return tuple(decode_value(v) for v in items)
        if tag is not None:
            raise WireFormatError(f"unknown wire tag {tag!r}")
        return {str(k): decode_value(v) for k, v in doc.items()}
    raise WireFormatError(f"undecodable wire value of type {type(doc).__name__}")


# ------------------------------------------------------------- domain objects
def layout_to_wire(layout: ContactLayout) -> dict:
    return {
        "size_x": layout.size_x,
        "size_y": layout.size_y,
        "contacts": [
            {"x": c.x, "y": c.y, "width": c.width, "height": c.height, "name": c.name}
            for c in layout.contacts
        ],
    }


def layout_from_wire(doc: Any) -> ContactLayout:
    if not isinstance(doc, dict):
        raise WireFormatError("layout document must be an object")
    try:
        contacts = [
            Contact(
                float(c["x"]),
                float(c["y"]),
                float(c["width"]),
                float(c["height"]),
                str(c.get("name", "")),
            )
            for c in doc["contacts"]
        ]
        return ContactLayout(contacts, float(doc["size_x"]), float(doc["size_y"]))
    except WireFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed layout document: {exc}") from exc


def profile_to_wire(profile: SubstrateProfile | None) -> dict | None:
    if profile is None:
        return None
    return {
        "size_x": profile.size_x,
        "size_y": profile.size_y,
        "layers": [
            {"thickness": layer.thickness, "conductivity": layer.conductivity}
            for layer in profile.layers
        ],
        "grounded_backplane": profile.grounded_backplane,
    }


def profile_from_wire(doc: Any) -> SubstrateProfile | None:
    if doc is None:
        return None
    if not isinstance(doc, dict):
        raise WireFormatError("profile document must be an object or null")
    try:
        layers = [
            Layer(float(layer["thickness"]), float(layer["conductivity"]))
            for layer in doc["layers"]
        ]
        return SubstrateProfile(
            float(doc["size_x"]),
            float(doc["size_y"]),
            layers,
            grounded_backplane=bool(doc["grounded_backplane"]),
        )
    except WireFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed profile document: {exc}") from exc


def spec_to_wire(spec: SolverSpec) -> dict:
    return {
        "kind": spec.kind,
        "layout": layout_to_wire(spec.layout),
        "profile": profile_to_wire(spec.profile),
        "options": {key: encode_value(value) for key, value in spec.options.items()},
    }


def spec_from_wire(doc: Any) -> SolverSpec:
    if not isinstance(doc, dict):
        raise WireFormatError("spec document must be an object")
    kind = doc.get("kind")
    if kind not in SPEC_KINDS:
        raise WireFormatError(f"spec kind must be one of {SPEC_KINDS}, got {kind!r}")
    options_doc = doc.get("options") or {}
    if not isinstance(options_doc, dict):
        raise WireFormatError("spec options must be an object")
    try:
        return SolverSpec(
            kind,
            layout_from_wire(doc.get("layout")),
            profile_from_wire(doc.get("profile")),
            {str(k): decode_value(v) for k, v in options_doc.items()},
        )
    except WireFormatError:
        raise
    except (TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed spec document: {exc}") from exc


def request_to_wire(request: JobRequest) -> dict:
    """One :class:`JobRequest` as the ``/v1`` submit document (no pickle)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "spec": spec_to_wire(request.spec),
        "columns": list(request.columns) if request.columns is not None else None,
        "pairs": [list(p) for p in request.pairs] if request.pairs is not None else None,
        "tolerance": request.tolerance,
        "priority": request.priority,
        "timeout_s": request.timeout_s,
    }


def request_from_wire(doc: Any) -> JobRequest:
    """Rebuild the :class:`JobRequest` a submit document describes.

    Raises :class:`WireFormatError` for anything malformed — including an
    unknown ``schema_version``, so a future v2 client fails loudly against
    a v1 server instead of being half-understood.
    """
    if not isinstance(doc, dict):
        raise WireFormatError("request document must be an object")
    version = doc.get("schema_version", SCHEMA_VERSION)
    if version != SCHEMA_VERSION:
        raise WireFormatError(
            f"unsupported schema_version {version!r} (this server speaks "
            f"{SCHEMA_VERSION})"
        )
    columns = doc.get("columns")
    pairs = doc.get("pairs")
    tolerance = doc.get("tolerance")
    timeout_s = doc.get("timeout_s")
    try:
        return JobRequest(
            spec=spec_from_wire(doc.get("spec")),
            columns=tuple(int(c) for c in columns) if columns is not None else None,
            pairs=(
                tuple((int(i), int(j)) for i, j in pairs) if pairs is not None else None
            ),
            tolerance=float(tolerance) if tolerance is not None else None,
            priority=int(doc.get("priority") or 0),
            timeout_s=float(timeout_s) if timeout_s is not None else None,
        )
    except WireFormatError:
        raise
    except (TypeError, ValueError) as exc:
        raise WireFormatError(f"malformed request document: {exc}") from exc


def snapshot_to_wire(snapshot: dict) -> dict:
    """A job snapshot with its array fields re-encoded as wire ndarrays.

    :meth:`~repro.service.jobs.Job.snapshot` serializes arrays as nested
    lists (the legacy ``/result`` body, kept for old clients); the ``/v1``
    job view carries the same fields but ships ``result`` and
    ``pair_values`` as base64 float64 documents — smaller and bit-exact.
    """
    doc = dict(snapshot)
    if doc.get("result") is not None:
        doc["result"] = encode_array(np.asarray(doc["result"], dtype=np.float64))
    if doc.get("pair_values") is not None:
        doc["pair_values"] = encode_array(
            np.asarray(doc["pair_values"], dtype=np.float64)
        )
    return doc


# ------------------------------------------------------------------ v1 routes
#: the transport-agnostic route results: (HTTP status, JSON body, headers)
RouteResult = tuple[int, dict, dict]


def v1_submit(scheduler: Scheduler, doc: Any, watcher=None) -> RouteResult:
    """``POST /v1/jobs``: decode, submit, answer — shared by both servers."""
    try:
        request = request_from_wire(doc)
    except WireFormatError as exc:
        return 400, error_envelope("bad_request", f"bad request document: {exc}"), {}
    return submit_route(scheduler, request, watcher=watcher)


def submit_route(scheduler: Scheduler, request: JobRequest, watcher=None) -> RouteResult:
    """Submit an already-decoded request; shared by ``/v1/jobs`` and the
    deprecated pickle endpoint (which decodes its own payload)."""
    try:
        job_id = scheduler.submit(request, watcher=watcher)
    except QueueSaturatedError as exc:
        retry_after = max(1, round(exc.retry_after_s))
        return (
            429,
            error_envelope("queue_saturated", str(exc), retry_after=exc.retry_after_s),
            {"Retry-After": str(retry_after)},
        )
    except RuntimeError as exc:
        return 503, error_envelope("unavailable", str(exc)), {}
    return (
        202,
        {
            "schema_version": SCHEMA_VERSION,
            "job_id": job_id,
            "status": JobState.PENDING,
        },
        {},
    )


def v1_snapshot(
    scheduler: Scheduler, job_id: str, wait_s: float | None = None
) -> RouteResult:
    """``GET /v1/jobs/<id>``: one wire-encoded snapshot (404/410 enveloped)."""
    try:
        snapshot = scheduler.snapshot(job_id, wait_s=wait_s)
    except JobExpiredError as exc:
        return 410, error_envelope("job_expired", str(exc)), {}
    except KeyError:
        return 404, error_envelope("unknown_job", f"unknown job id {job_id!r}"), {}
    return 200, snapshot_to_wire(snapshot), {}


def v1_cancel(scheduler: Scheduler, job_id: str) -> RouteResult:
    """``DELETE /v1/jobs/<id>``: cancel a queued job (no-op when started)."""
    try:
        cancelled = scheduler.cancel(job_id)
    except KeyError:
        return 404, error_envelope("unknown_job", f"unknown job id {job_id!r}"), {}
    return 200, {"schema_version": SCHEMA_VERSION, "job_id": job_id, "cancelled": cancelled}, {}
