"""Stdlib HTTP/JSON front end for the extraction service.

A thin, dependency-free layer over the
:class:`~repro.service.scheduler.Scheduler`: a
:class:`http.server.ThreadingHTTPServer` exposing four endpoints, a blocking
:class:`ServiceClient`, and a CLI (``python -m repro.service``).

========  =========  ====================================================
method    path       body / query
========  =========  ====================================================
POST      /submit    JSON ``{"request_pickle": <base64 pickle of a
                     JobRequest>}`` → ``{"job_id", "status"}``
GET       /result    ``?job_id=...&wait_s=...`` → job snapshot (status,
                     solved columns as nested lists, pair values, error)
GET       /stats     scheduler metrics snapshot (coalescing counters,
                     latency percentiles, solve stats, store/factor-cache
                     occupancy, queue depth)
GET       /healthz   liveness probe: ``{"ok", "dispatcher_alive",
                     "closing", "queue_depth", "uptime_s"}`` (+ state-dir
                     writability when persistence is on); HTTP 503 when
                     the service cannot make progress
========  =========  ====================================================

``/result`` answers 404 for a job id the service has never seen and 410
(gone) for one that existed but was dropped by finished-job retention.
``/submit`` answers 429 with a ``Retry-After`` header when admission
control refuses the request (queue saturated and the submission outranks
nothing queued); :meth:`ServiceClient.submit` re-raises that as
:class:`~repro.service.scheduler.QueueSaturatedError` so callers can back
off programmatically.

Job requests travel as pickled :class:`~repro.service.jobs.JobRequest`
payloads (base64 inside JSON) because they embed full layout/profile
objects.  **Unpickling executes arbitrary code** — the handler therefore
refuses ``/submit`` from non-loopback peers with a 403 before touching the
payload, unless the server was started with ``--unsafe-allow-remote-pickle``
(``allow_untrusted_pickle=True``) for a fully trusted network.
"""

from __future__ import annotations

import argparse
import base64
import ipaddress
import json
import os
import pickle
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.error import HTTPError
from urllib.parse import parse_qs, urlparse
from urllib.request import Request, urlopen

from .jobs import JobExpiredError, JobRequest, JobState
from .scheduler import QueueSaturatedError, Scheduler

__all__ = ["ExtractionServer", "ServiceClient", "main"]


def _is_loopback_address(host: str) -> bool:
    """True when ``host`` is a loopback peer (IPv4 127/8 or IPv6 ``::1``).

    An empty host (AF_UNIX peers report one) counts as local; anything that
    does not parse as an IP address — including hostnames, which would take
    a resolver round-trip to vouch for — counts as untrusted.
    """
    if not host:
        return True
    try:
        return ipaddress.ip_address(host.split("%", 1)[0]).is_loopback
    except ValueError:
        return False


def _make_handler(scheduler: Scheduler):
    """Bind a request-handler class to one scheduler instance."""

    class ExtractionHandler(BaseHTTPRequestHandler):
        server_version = "ReproExtractionService/1.0"

        # ------------------------------------------------------------ plumbing
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # request logging is the metrics layer's job, not stderr's

        def _send_json(
            self, payload: dict, status: int = 200, headers: dict | None = None
        ) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_error_json(self, status: int, message: str) -> None:
            self._send_json({"error": message}, status=status)

        def _require_trusted_peer(self) -> bool:
            """Gate every pickle-carrying endpoint on the peer address.

            The submit payload is a pickle, and unpickling executes
            arbitrary code — serving it to an arbitrary network peer would
            be remote code execution.  Unless the server was explicitly
            started with the remote-pickle override, only loopback peers
            may reach ``pickle.loads`` below; everyone else gets a 403.
            """
            if getattr(self.server, "allow_untrusted_pickle", False):
                return True
            if _is_loopback_address(self.client_address[0]):
                return True
            self._send_error_json(
                403,
                "submit carries a pickle payload and is served to loopback "
                "clients only (start with --unsafe-allow-remote-pickle to "
                "override on a trusted network)",
            )
            return False

        # ------------------------------------------------------------- routes
        def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
            if urlparse(self.path).path != "/submit":
                self._send_error_json(404, f"unknown path {self.path!r}")
                return
            if not self._require_trusted_peer():
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                doc = json.loads(self.rfile.read(length) or b"{}")
                blob = base64.b64decode(doc["request_pickle"])
                request = pickle.loads(blob)
                if not isinstance(request, JobRequest):
                    raise TypeError("payload did not unpickle to a JobRequest")
            except Exception as exc:  # noqa: BLE001 - malformed client input
                self._send_error_json(400, f"bad submit payload: {exc}")
                return
            try:
                job_id = scheduler.submit(request)
            except QueueSaturatedError as exc:
                # load shedding: tell the client when to come back; a whole
                # number of seconds because Retry-After is delta-seconds
                retry_after = max(1, round(exc.retry_after_s))
                self._send_json(
                    {"error": str(exc), "retry_after_s": exc.retry_after_s},
                    status=429,
                    headers={"Retry-After": str(retry_after)},
                )
                return
            except Exception as exc:  # noqa: BLE001 - e.g. scheduler closed
                self._send_error_json(503, str(exc))
                return
            self._send_json({"job_id": job_id, "status": JobState.PENDING})

        def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
            url = urlparse(self.path)
            query = parse_qs(url.query)
            if url.path == "/healthz":
                health = scheduler.health()
                health.update(
                    {
                        "queue_depth": scheduler.queue_depth,
                        "uptime_s": time.monotonic() - scheduler.metrics.started_at,
                    }
                )
                self._send_json(health, status=200 if health["ok"] else 503)
                return
            if url.path == "/stats":
                self._send_json(scheduler.stats())
                return
            if url.path == "/result":
                job_id = (query.get("job_id") or [None])[0]
                if not job_id:
                    self._send_error_json(400, "missing job_id")
                    return
                try:
                    wait_s = float((query.get("wait_s") or ["0"])[0])
                except ValueError:
                    self._send_error_json(400, "wait_s must be a number")
                    return
                try:
                    snapshot = scheduler.snapshot(
                        job_id, wait_s=wait_s if wait_s > 0 else None
                    )
                except JobExpiredError:
                    self._send_json(
                        {
                            "error": f"job id {job_id!r} expired (retention)",
                            "status": "expired",
                        },
                        status=410,
                    )
                    return
                except KeyError:
                    self._send_error_json(404, f"unknown job id {job_id!r}")
                    return
                self._send_json(snapshot)
                return
            self._send_error_json(404, f"unknown path {url.path!r}")

    return ExtractionHandler


class ExtractionServer:
    """Owns one scheduler and one threaded HTTP server on top of it.

    ``port=0`` (the default) binds an ephemeral port — read it back from
    :attr:`port` / :attr:`url` after construction.  Use as a context manager
    or call :meth:`close`, which also shuts the scheduler down.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        scheduler: Scheduler | None = None,
        allow_untrusted_pickle: bool = False,
        **scheduler_kwargs,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else Scheduler(**scheduler_kwargs)
        self._owns_scheduler = scheduler is None
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(self.scheduler))
        self._httpd.daemon_threads = True
        # consumed by the handler's _require_trusted_peer gate: pickled
        # submissions are loopback-only unless the operator opted out
        self._httpd.allow_untrusted_pickle = bool(allow_untrusted_pickle)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ExtractionServer":
        """Serve in a background thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entry point)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._owns_scheduler:
            self.scheduler.close()

    def __enter__(self) -> "ExtractionServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServiceClient:
    """Blocking Python client of an :class:`ExtractionServer`."""

    def __init__(self, url: str, timeout_s: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------------ http
    def _get(self, path: str, timeout_s: float | None = None) -> dict:
        with urlopen(
            self.url + path, timeout=timeout_s if timeout_s is not None else self.timeout_s
        ) as response:
            return json.loads(response.read())

    def _post(self, path: str, payload: dict) -> dict:
        body = json.dumps(payload).encode()
        request = Request(
            self.url + path, data=body, headers={"Content-Type": "application/json"}
        )
        with urlopen(request, timeout=self.timeout_s) as response:
            return json.loads(response.read())

    # ------------------------------------------------------------------- api
    def submit(self, request: JobRequest) -> str:
        """Ship one request; returns the server's job id.

        A 429 (admission control shed the submission) is re-raised as
        :class:`~repro.service.scheduler.QueueSaturatedError` carrying the
        server's ``Retry-After`` hint in ``retry_after_s``.
        """
        blob = base64.b64encode(pickle.dumps(request)).decode()
        try:
            return self._post("/submit", {"request_pickle": blob})["job_id"]
        except HTTPError as exc:
            if exc.code == 429:
                retry_after = 1.0
                try:
                    doc = json.loads(exc.read())
                    retry_after = float(
                        doc.get("retry_after_s")
                        or exc.headers.get("Retry-After")
                        or 1.0
                    )
                    message = doc.get("error") or "queue saturated"
                except Exception:  # noqa: BLE001 - body is best-effort detail
                    message = "queue saturated"
                raise QueueSaturatedError(message, retry_after_s=retry_after) from exc
            raise

    def result(self, job_id: str, wait_s: float = 0.0) -> dict:
        """One job snapshot, optionally long-polling up to ``wait_s``.

        Raises :class:`~repro.service.jobs.JobExpiredError` when the server
        answers 410 — the id existed but its record was dropped by
        finished-job retention.
        """
        path = f"/result?job_id={job_id}"
        if wait_s > 0:
            path += f"&wait_s={wait_s:g}"
        try:
            return self._get(path, timeout_s=self.timeout_s + wait_s)
        except HTTPError as exc:
            if exc.code == 410:
                raise JobExpiredError(f"job id {job_id!r} expired") from exc
            raise

    def wait(self, job_id: str, timeout_s: float = 60.0) -> dict:
        """Block until the job is terminal; raises on timeout."""
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"job {job_id} not terminal after {timeout_s:g}s")
            snapshot = self.result(job_id, wait_s=min(remaining, 5.0))
            if snapshot["status"] in JobState.TERMINAL:
                return snapshot

    def extract(self, request: JobRequest, timeout_s: float = 60.0):
        """Submit + wait + unpack: solved columns as an ndarray (or pair values).

        Returns the ``(n_contacts, k)`` column block for column/dense
        requests, the pair-value vector for pure pair requests, and the
        ``(column block, pair values)`` tuple when the request asked for
        both.  Raises ``RuntimeError`` on any non-``done`` terminal status.
        """
        import numpy as np

        snapshot = self.wait(self.submit(request), timeout_s=timeout_s)
        if snapshot["status"] != JobState.DONE:
            raise RuntimeError(
                f"job {snapshot['job_id']} ended {snapshot['status']}: "
                f"{snapshot.get('error')}"
            )
        result = (
            np.asarray(snapshot["result"]) if snapshot["result"] is not None else None
        )
        pairs = (
            np.asarray(snapshot["pair_values"])
            if snapshot["pair_values"] is not None
            else None
        )
        if result is not None and pairs is not None:
            return result, pairs
        return result if result is not None else pairs

    def stats(self) -> dict:
        return self._get("/stats")

    def healthz(self) -> dict:
        return self._get("/healthz")


def main(argv: list[str] | None = None) -> None:
    """CLI entry point: ``python -m repro.service [--host H] [--port P] ...``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run the substrate-extraction service (HTTP/JSON front end).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8752, help="bind port (0=ephemeral)")
    parser.add_argument(
        "--workers", type=int, default=None, help="extraction worker processes per engine"
    )
    parser.add_argument(
        "--max-solvers", type=int, default=4, help="warm engines kept across substrates"
    )
    parser.add_argument(
        "--store-bytes", type=int, default=None, help="result-store budget in bytes"
    )
    parser.add_argument(
        "--coalesce-window",
        type=float,
        default=0.0,
        help="seconds to linger before draining the queue (batches near-simultaneous jobs)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        help=(
            "durable state directory (result corpus, factor artifacts, job "
            "journal); omit for the in-memory default"
        ),
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help=(
            "admission-control bound on the pending queue; when full, new "
            "submissions shed the lowest-priority queued job or get HTTP 429 "
            "(omit for an unbounded queue)"
        ),
    )
    parser.add_argument(
        "--faults",
        default=None,
        help=(
            "fault-injection plan: JSON text or @path to a JSON file "
            "(exported as REPRO_FAULTS so worker processes inherit it); "
            "chaos testing only"
        ),
    )
    parser.add_argument(
        "--unsafe-allow-remote-pickle",
        action="store_true",
        help=(
            "serve pickled /submit payloads to non-loopback peers; unpickling "
            "executes arbitrary code, so enable this only on a fully trusted "
            "network"
        ),
    )
    args = parser.parse_args(argv)

    from .result_store import ResultStore

    if args.faults:
        from .. import faults

        # export via the environment so worker processes inherit the plan,
        # then parse eagerly — a typo'd plan fails the CLI, not a worker
        os.environ[faults.ENV_VAR] = args.faults
        faults.reload_env_plan()

    store = ResultStore(args.store_bytes) if args.store_bytes is not None else None
    server = ExtractionServer(
        host=args.host,
        port=args.port,
        allow_untrusted_pickle=args.unsafe_allow_remote_pickle,
        n_workers=args.workers,
        max_solvers=args.max_solvers,
        store=store,
        coalesce_window_s=args.coalesce_window,
        persistence=args.state_dir,
        max_queue_depth=args.max_queue_depth,
    )
    print(f"extraction service listening on {server.url} (Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
