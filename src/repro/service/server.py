"""Legacy threaded HTTP front end of the extraction service.

Superseded by the asyncio front door
(:class:`~repro.service.aserver.AsyncExtractionServer`) but kept for
deployments that need the pre-asyncio stack: a
:class:`http.server.ThreadingHTTPServer` over one
:class:`~repro.service.scheduler.Scheduler`.  It serves the same
**schema-first** ``/v1`` routes as the async server (shared route logic in
:mod:`~repro.service.wire`), so the redesigned
:class:`~repro.service.client.ServiceClient` works against either:

========  ==============  ==============================================
method    path            body / behaviour
========  ==============  ==============================================
POST      /v1/jobs        wire request document → ``{"job_id", ...}``
GET       /v1/jobs/<id>   ``?wait_s=`` → wire job snapshot
DELETE    /v1/jobs/<id>   cancel a queued job
GET       /v1/stats       metrics snapshot
GET       /v1/healthz     liveness probe (503 when stuck)
GET       /result         deprecated alias (``Deprecation`` header;
                          arrays as nested lists)
GET       /stats /healthz deprecated aliases (``Deprecation`` header)
POST      /submit         deprecated pickle submit — this class still
                          serves it by default (``allow_legacy_pickle=
                          True``: constructing the legacy server *is* the
                          operator's opt-in), loopback peers only unless
                          ``allow_untrusted_pickle``
========  ==============  ==============================================

Every 4xx/5xx body is the ``/v1`` error envelope
``{"error": {"code", "message", "retry_after"}}``.

The old ``/submit`` wire is pickle (base64 inside JSON), and **unpickling
executes arbitrary code** — the handler refuses it for non-loopback peers
with a 403 before touching the payload, and answers 410 outright when the
server was constructed with ``allow_legacy_pickle=False``.  New code
should POST schema documents to ``/v1/jobs`` instead.
"""

from __future__ import annotations

import base64
import ipaddress
import json
import pickle
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlparse

from .jobs import JobExpiredError, JobRequest
from .scheduler import Scheduler
from .wire import (
    error_envelope,
    submit_route,
    v1_cancel,
    v1_snapshot,
    v1_submit,
)

__all__ = ["ExtractionServer", "ServiceClient", "main"]

#: headers stamped on every deprecated-path response (RFC 8594 style)
_DEPRECATION_HEADERS = {
    "Deprecation": "true",
    "Link": '</v1/>; rel="successor-version"',
}


def _is_loopback_address(host: str) -> bool:
    """True when ``host`` is a loopback peer (IPv4 127/8 or IPv6 ``::1``).

    An empty host (AF_UNIX peers report one) counts as local; anything that
    does not parse as an IP address — including hostnames, which would take
    a resolver round-trip to vouch for — counts as untrusted.
    """
    if not host:
        return True
    try:
        return ipaddress.ip_address(host.split("%", 1)[0]).is_loopback
    except ValueError:
        return False


def _make_handler(scheduler: Scheduler):
    """Bind a request-handler class to one scheduler instance."""

    class ExtractionHandler(BaseHTTPRequestHandler):
        server_version = "ReproExtractionService/2.0"

        # ------------------------------------------------------------ plumbing
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass  # request logging is the metrics layer's job, not stderr's

        def _send_json(
            self, payload: dict, status: int = 200, headers: dict | None = None
        ) -> None:
            body = json.dumps(payload).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_error_json(
            self,
            status: int,
            code: str,
            message: str,
            retry_after: float | None = None,
            headers: dict | None = None,
        ) -> None:
            self._send_json(
                error_envelope(code, message, retry_after),
                status=status,
                headers=headers,
            )

        def _require_legacy_pickle_optin(self) -> bool:
            """Gate the deprecated pickle endpoint; True when allowed.

            Two layers: ``/submit`` only exists while the operator keeps
            the legacy opt-in (``allow_legacy_pickle``, this server's
            default — running the deprecated server class *is* the
            opt-in); and because unpickling executes arbitrary code, it is
            served to loopback peers only unless the explicit
            ``--unsafe-allow-remote-pickle`` override is also set.
            """
            if not getattr(self.server, "allow_legacy_pickle", True):
                self._send_error_json(
                    410,
                    "legacy_pickle_disabled",
                    "the pickle wire was retired; POST a schema document to "
                    "/v1/jobs (operators can revive /submit with "
                    "allow_legacy_pickle=True)",
                    headers=_DEPRECATION_HEADERS,
                )
                return False
            if getattr(self.server, "allow_untrusted_pickle", False):
                return True
            if _is_loopback_address(self.client_address[0]):
                return True
            self._send_error_json(
                403,
                "forbidden",
                "submit carries a pickle payload and is served to loopback "
                "clients only (start with --unsafe-allow-remote-pickle to "
                "override on a trusted network)",
                headers=_DEPRECATION_HEADERS,
            )
            return False

        def _read_body(self) -> bytes:
            length = int(self.headers.get("Content-Length", "0") or 0)
            return self.rfile.read(length) if length else b""

        # ------------------------------------------------------------- routes
        def do_POST(self) -> None:  # noqa: N802 - stdlib handler contract
            path = urlparse(self.path).path
            if path == "/v1/jobs":
                try:
                    doc = json.loads(self._read_body() or b"{}")
                except ValueError:
                    self._send_error_json(400, "bad_request", "body is not JSON")
                    return
                status, payload, extra = v1_submit(scheduler, doc)
                self._send_json(payload, status=status, headers=extra)
                return
            if path == "/submit":
                self._legacy_submit()
                return
            self._send_error_json(404, "not_found", f"unknown path {self.path!r}")

        def _legacy_submit(self) -> None:
            if not self._require_legacy_pickle_optin():
                return
            try:
                doc = json.loads(self._read_body() or b"{}")
                blob = base64.b64decode(doc["request_pickle"])
                request = pickle.loads(blob)
                if not isinstance(request, JobRequest):
                    raise TypeError("payload did not unpickle to a JobRequest")
            except Exception as exc:  # noqa: BLE001 - malformed client input
                self._send_error_json(
                    400,
                    "bad_request",
                    f"bad submit payload: {exc}",
                    headers=_DEPRECATION_HEADERS,
                )
                return
            scheduler.metrics.record_legacy_pickle_submit()
            status, payload, extra = submit_route(scheduler, request)
            self._send_json(
                payload, status=status, headers={**extra, **_DEPRECATION_HEADERS}
            )

        def do_GET(self) -> None:  # noqa: N802 - stdlib handler contract
            url = urlparse(self.path)
            query = parse_qs(url.query)
            path = url.path
            if path in ("/v1/healthz", "/healthz"):
                health = scheduler.health()
                health.update(
                    {
                        "queue_depth": scheduler.queue_depth,
                        "uptime_s": time.monotonic() - scheduler.metrics.started_at,
                    }
                )
                self._send_json(
                    health,
                    status=200 if health["ok"] else 503,
                    headers=_DEPRECATION_HEADERS if path == "/healthz" else None,
                )
                return
            if path in ("/v1/stats", "/stats"):
                self._send_json(
                    scheduler.stats(),
                    headers=_DEPRECATION_HEADERS if path == "/stats" else None,
                )
                return
            if path.startswith("/v1/jobs/"):
                job_id = unquote(path[len("/v1/jobs/"):])
                wait_s = self._parse_wait_s(query)
                if wait_s is _INVALID:
                    self._send_error_json(
                        400, "bad_request", "wait_s must be a number"
                    )
                    return
                status, payload, extra = v1_snapshot(scheduler, job_id, wait_s)
                self._send_json(payload, status=status, headers=extra)
                return
            if path == "/result":
                self._legacy_result(query)
                return
            self._send_error_json(404, "not_found", f"unknown path {path!r}")

        def _legacy_result(self, query: dict) -> None:
            job_id = (query.get("job_id") or [None])[0]
            if not job_id:
                self._send_error_json(
                    400, "bad_request", "missing job_id", headers=_DEPRECATION_HEADERS
                )
                return
            wait_s = self._parse_wait_s(query)
            if wait_s is _INVALID:
                self._send_error_json(
                    400,
                    "bad_request",
                    "wait_s must be a number",
                    headers=_DEPRECATION_HEADERS,
                )
                return
            try:
                snapshot = scheduler.snapshot(job_id, wait_s=wait_s)
            except JobExpiredError:
                self._send_error_json(
                    410,
                    "job_expired",
                    f"job id {job_id!r} expired (retention)",
                    headers=_DEPRECATION_HEADERS,
                )
                return
            except KeyError:
                self._send_error_json(
                    404,
                    "unknown_job",
                    f"unknown job id {job_id!r}",
                    headers=_DEPRECATION_HEADERS,
                )
                return
            # the legacy body keeps arrays as nested lists — old clients parse it
            self._send_json(snapshot, headers=_DEPRECATION_HEADERS)

        def do_DELETE(self) -> None:  # noqa: N802 - stdlib handler contract
            path = urlparse(self.path).path
            if path.startswith("/v1/jobs/"):
                job_id = unquote(path[len("/v1/jobs/"):])
                status, payload, extra = v1_cancel(scheduler, job_id)
                self._send_json(payload, status=status, headers=extra)
                return
            self._send_error_json(404, "not_found", f"unknown path {path!r}")

        @staticmethod
        def _parse_wait_s(query: dict):
            raw = (query.get("wait_s") or [None])[0]
            if raw is None:
                return None
            try:
                wait_s = float(raw)
            except ValueError:
                return _INVALID
            return wait_s if wait_s > 0 else None

    return ExtractionHandler


#: sentinel for "wait_s present but not a number" (None means "no wait")
_INVALID = object()


class ExtractionServer:
    """Owns one scheduler and one threaded HTTP server on top of it.

    ``port=0`` (the default) binds an ephemeral port — read it back from
    :attr:`port` / :attr:`url` after construction.  Use as a context manager
    or call :meth:`close`, which also shuts the scheduler down.

    This is the **legacy** front end: constructing it keeps the deprecated
    pickle ``/submit`` endpoint alive (``allow_legacy_pickle=True`` — that
    construction is the operator's opt-in); pass ``False`` to serve the
    schema-first ``/v1`` routes only.  New deployments should prefer
    :class:`~repro.service.aserver.AsyncExtractionServer`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        scheduler: Scheduler | None = None,
        allow_untrusted_pickle: bool = False,
        allow_legacy_pickle: bool = True,
        **scheduler_kwargs,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else Scheduler(**scheduler_kwargs)
        self._owns_scheduler = scheduler is None
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(self.scheduler))
        self._httpd.daemon_threads = True
        # consumed by the handler's _require_legacy_pickle_optin gate:
        # pickled submissions are loopback-only unless the operator opted
        # out, and gone entirely when allow_legacy_pickle is False
        self._httpd.allow_untrusted_pickle = bool(allow_untrusted_pickle)
        self._httpd.allow_legacy_pickle = bool(allow_legacy_pickle)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ExtractionServer":
        """Serve in a background thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the legacy CLI path)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._owns_scheduler:
            self.scheduler.close()

    def __enter__(self) -> "ExtractionServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def main(argv: list[str] | None = None) -> None:
    """Deprecated alias of :func:`repro.service.aserver.main`."""
    from .aserver import main as aserver_main

    aserver_main(argv)


# re-exported here for backwards compatibility; the class moved to client.py
from .client import ServiceClient  # noqa: E402
