"""Memory-budgeted store of solved conductance columns.

The service's cheapest solve is the one it never runs: every column of ``G``
the scheduler solves is parked here under ``(substrate fingerprint, column
index)``, and later requests over the same substrate — repeated conductance
queries, overlapping column sets from different clients, individual
``(row, column)`` pair lookups — are served straight from the store with
**zero** new black-box solves.

The store is a byte-budgeted LRU (like the
:class:`~repro.substrate.factor_cache.FactorCache`, but keyed per column so
partial overlaps hit): once the budget is exceeded the least-recently-used
columns are dropped, oldest first.  Stored columns are marked read-only —
many jobs may hold views of the same array.

With a persistent backend attached (the
:class:`~repro.service.persistence.SqliteResultBackend` of a service state
dir) the LRU becomes a read-through/write-through cache: a RAM miss
consults the corpus on disk before reporting a miss, and every ``put``
lands on disk as well, so LRU eviction never loses a solved column and a
restarted service serves the whole corpus with zero new solves.

Environment knob: ``REPRO_RESULT_STORE_BYTES`` overrides the default budget
(256 MiB) used by schedulers that do not pass an explicit store.
"""

from __future__ import annotations

import hashlib
import os
import threading
import warnings
from collections import OrderedDict

import numpy as np

__all__ = [
    "ResultStore",
    "DEFAULT_STORE_BYTES",
    "default_store_bytes",
    "fingerprint_digest",
]

DEFAULT_STORE_BYTES = 256 * 1024 * 1024


def fingerprint_digest(fingerprint: tuple) -> str:
    """Stable text key of one substrate fingerprint.

    Fingerprints are nested tuples of plain values, so ``repr`` is a
    canonical serialisation; the digest is what crosses JSON boundaries
    (``/v1/stats``, cluster heartbeats) and keys sqlite rows — anywhere the
    tuple itself cannot travel.
    """
    return hashlib.blake2b(repr(fingerprint).encode(), digest_size=16).hexdigest()


def default_store_bytes() -> int:
    """Store budget in bytes (env: ``REPRO_RESULT_STORE_BYTES``).

    A malformed or negative value is rejected with a warning (falling back
    to the default) instead of being silently ignored — a typo'd budget
    must not masquerade as a deliberate one.
    """
    env = os.environ.get("REPRO_RESULT_STORE_BYTES")
    if env:
        try:
            value = int(env)
            if value < 0:
                raise ValueError("budget must be >= 0")
            return value
        except ValueError as exc:
            warnings.warn(
                f"ignoring invalid REPRO_RESULT_STORE_BYTES={env!r} ({exc}); "
                f"using the default of {DEFAULT_STORE_BYTES} bytes",
                RuntimeWarning,
                stacklevel=2,
            )
    return DEFAULT_STORE_BYTES


class ResultStore:
    """LRU cache of solved ``G`` columns keyed ``(fingerprint, column)``.

    ``backend`` (or :meth:`attach_backend`) plugs in a persistent corpus —
    anything with ``save/load/contains/delete`` over ``(fingerprint,
    column)`` float arrays, in practice the sqlite backend of a service
    state dir.  Without one the store is the same purely in-memory LRU as
    before.
    """

    def __init__(self, max_bytes: int | None = None, backend=None) -> None:
        # reprolint: guarded-by(_lock)
        self.max_bytes = int(max_bytes if max_bytes is not None else default_store_bytes())
        # reprolint: guarded-by(_lock)
        self._columns: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._bytes = 0  # reprolint: guarded-by(_lock)
        self._lock = threading.RLock()
        self._backend = backend  # reprolint: guarded-by(_lock)
        self.hits = 0  # reprolint: guarded-by(_lock)
        self.misses = 0  # reprolint: guarded-by(_lock)
        self.evictions = 0  # reprolint: guarded-by(_lock)
        self.disk_hits = 0  # reprolint: guarded-by(_lock)
        self.disk_misses = 0  # reprolint: guarded-by(_lock)
        #: backend save/load calls that raised (degraded to RAM-only service)
        self.backend_errors = 0  # reprolint: guarded-by(_lock)

    @property
    def backend(self):
        with self._lock:
            return self._backend

    def attach_backend(self, backend) -> None:
        """Attach (or detach, with ``None``) the persistent column corpus."""
        with self._lock:
            self._backend = backend

    # ------------------------------------------------------------------ access
    def get(self, fingerprint: tuple, column: int) -> np.ndarray | None:
        """One stored column (refreshing recency), or ``None``; counts hit/miss.

        On a RAM miss with a backend attached, the persistent corpus is
        consulted and a disk hit is re-admitted to the LRU — it counts as a
        (disk) hit, not a miss, because no solve is needed.
        """
        key = (fingerprint, int(column))
        with self._lock:
            value = self._columns.get(key)
            if value is not None:
                self._columns.move_to_end(key)
                self.hits += 1
                return value
            backend = self._backend
        if backend is not None:
            try:
                loaded = backend.load(fingerprint, column)
            except Exception as exc:  # noqa: BLE001 - degrade, don't fail the batch
                self._note_backend_error("load", exc)
                loaded = None
            if loaded is not None:
                with self._lock:
                    self.disk_hits += 1
                    self.hits += 1
                    self._admit_locked(key, loaded)
                return loaded
            with self._lock:
                self.disk_misses += 1
        with self._lock:
            self.misses += 1
        return None

    def get_many(
        self, fingerprint: tuple, columns: tuple[int, ...]
    ) -> dict[int, np.ndarray]:
        """The subset of ``columns`` present in the store (one hit/miss each)."""
        found: dict[int, np.ndarray] = {}
        for column in columns:
            value = self.get(fingerprint, column)
            if value is not None:
                found[column] = value
        return found

    # reprolint: holds(_lock)
    def _admit_locked(self, key: tuple, values: np.ndarray) -> None:
        """Insert one read-only array into the LRU, evicting down to budget."""
        if values.nbytes > self.max_bytes:
            return  # larger than the whole budget: serve, don't store
        old = self._columns.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._columns[key] = values
        self._bytes += values.nbytes
        while self._bytes > self.max_bytes and self._columns:
            _, victim = self._columns.popitem(last=False)
            self._bytes -= victim.nbytes
            self.evictions += 1

    def put(self, fingerprint: tuple, column: int, values: np.ndarray) -> np.ndarray:
        """Store one solved column (read-only copy); returns the stored array.

        With a backend attached the column is also written through to the
        persistent corpus (outside the lock — sqlite I/O must not block
        concurrent readers of the LRU).
        """
        values = np.array(values, dtype=float)  # private copy, never a view
        values.flags.writeable = False
        key = (fingerprint, int(column))
        with self._lock:
            self._admit_locked(key, values)
            backend = self._backend
        if backend is not None:
            try:
                backend.save(fingerprint, column, values)
            except Exception as exc:  # noqa: BLE001 - degrade, don't fail the batch
                self._note_backend_error("save", exc)
        return values

    def _note_backend_error(self, op: str, exc: Exception) -> None:
        """Count + warn on a failed backend call; the RAM LRU keeps serving.

        A sick disk must degrade durability, not availability: the column is
        still served (and stored in RAM), only the write-through/read-through
        is lost until the backend recovers.
        """
        with self._lock:
            self.backend_errors += 1
        warnings.warn(
            f"result-store backend {op} failed ({type(exc).__name__}: {exc}); "
            "continuing without persistence for this column",
            RuntimeWarning,
            stacklevel=3,
        )

    def contains(self, fingerprint: tuple, column: int) -> bool:
        """Pure membership probe — no counters, no recency update."""
        with self._lock:
            if (fingerprint, int(column)) in self._columns:
                return True
            backend = self._backend
        return backend is not None and backend.contains(fingerprint, column)

    # ------------------------------------------------------------- maintenance
    def set_budget(self, max_bytes: int) -> None:
        """Change the byte budget and evict down to it immediately."""
        with self._lock:
            self.max_bytes = int(max_bytes)
            while self._bytes > self.max_bytes and self._columns:
                _, victim = self._columns.popitem(last=False)
                self._bytes -= victim.nbytes
                self.evictions += 1

    def clear(self, fingerprint: tuple | None = None) -> int:
        """Drop everything, or only one substrate's columns; counters survive.

        Every dropped column counts as an eviction (both clear paths used to
        bypass the counter).  With a backend attached the persistent corpus
        is cleared too.  Returns the number of columns evicted from RAM.
        """
        with self._lock:
            if fingerprint is None:
                dropped = len(self._columns)
                self._columns.clear()
                self._bytes = 0
            else:
                dropped = 0
                for key in [k for k in self._columns if k[0] == fingerprint]:
                    victim = self._columns.pop(key)
                    self._bytes -= victim.nbytes
                    dropped += 1
            self.evictions += dropped
            backend = self._backend
        if backend is not None:
            backend.delete(fingerprint)
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._columns)

    def fingerprints(self) -> dict[tuple, dict]:
        """Per-substrate RAM occupancy: ``{fingerprint: {"columns", "bytes"}}``.

        This is where warm state lives — the cluster leader reads it (via
        worker heartbeats) to place unpinned fingerprints on hosts that
        already hold their columns, and operators read the digest-keyed
        rendering in ``/v1/stats``.
        """
        with self._lock:
            out: dict[tuple, dict] = {}
            for (fingerprint, _column), values in self._columns.items():
                entry = out.setdefault(fingerprint, {"columns": 0, "bytes": 0})
                entry["columns"] += 1
                entry["bytes"] += values.nbytes
            return out

    def info(self) -> dict:
        """Occupancy and hit/miss counters (service metrics / benchmarks)."""
        with self._lock:
            doc = {
                "columns": len(self._columns),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "disk_hits": self.disk_hits,
                "disk_misses": self.disk_misses,
                "backend_errors": self.backend_errors,
            }
            backend = self._backend
        doc["fingerprints"] = [
            {"digest": fingerprint_digest(fp), **entry}
            for fp, entry in sorted(
                self.fingerprints().items(), key=lambda kv: -kv[1]["bytes"]
            )
        ]
        if backend is not None:
            doc["backend"] = backend.info()
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        with self._lock:
            return (
                f"ResultStore(columns={len(self._columns)}, bytes={self._bytes}, "
                f"max_bytes={self.max_bytes})"
            )
