"""Memory-budgeted store of solved conductance columns.

The service's cheapest solve is the one it never runs: every column of ``G``
the scheduler solves is parked here under ``(substrate fingerprint, column
index)``, and later requests over the same substrate — repeated conductance
queries, overlapping column sets from different clients, individual
``(row, column)`` pair lookups — are served straight from the store with
**zero** new black-box solves.

The store is a byte-budgeted LRU (like the
:class:`~repro.substrate.factor_cache.FactorCache`, but keyed per column so
partial overlaps hit): once the budget is exceeded the least-recently-used
columns are dropped, oldest first.  Stored columns are marked read-only —
many jobs may hold views of the same array.

Environment knob: ``REPRO_RESULT_STORE_BYTES`` overrides the default budget
(256 MiB) used by schedulers that do not pass an explicit store.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict

import numpy as np

__all__ = ["ResultStore", "DEFAULT_STORE_BYTES", "default_store_bytes"]

DEFAULT_STORE_BYTES = 256 * 1024 * 1024


def default_store_bytes() -> int:
    """Store budget in bytes (env: ``REPRO_RESULT_STORE_BYTES``)."""
    env = os.environ.get("REPRO_RESULT_STORE_BYTES")
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    return DEFAULT_STORE_BYTES


class ResultStore:
    """LRU cache of solved ``G`` columns keyed ``(fingerprint, column)``."""

    def __init__(self, max_bytes: int | None = None) -> None:
        self.max_bytes = int(max_bytes if max_bytes is not None else default_store_bytes())
        self._columns: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------ access
    def get(self, fingerprint: tuple, column: int) -> np.ndarray | None:
        """One stored column (refreshing recency), or ``None``; counts hit/miss."""
        key = (fingerprint, int(column))
        with self._lock:
            value = self._columns.get(key)
            if value is None:
                self.misses += 1
                return None
            self._columns.move_to_end(key)
            self.hits += 1
            return value

    def get_many(
        self, fingerprint: tuple, columns: tuple[int, ...]
    ) -> dict[int, np.ndarray]:
        """The subset of ``columns`` present in the store (one hit/miss each)."""
        found: dict[int, np.ndarray] = {}
        for column in columns:
            value = self.get(fingerprint, column)
            if value is not None:
                found[column] = value
        return found

    def put(self, fingerprint: tuple, column: int, values: np.ndarray) -> np.ndarray:
        """Store one solved column (read-only copy); returns the stored array."""
        values = np.array(values, dtype=float)  # private copy, never a view
        values.flags.writeable = False
        key = (fingerprint, int(column))
        with self._lock:
            if values.nbytes > self.max_bytes:
                return values  # larger than the whole budget: serve, don't store
            old = self._columns.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._columns[key] = values
            self._bytes += values.nbytes
            while self._bytes > self.max_bytes and self._columns:
                _, victim = self._columns.popitem(last=False)
                self._bytes -= victim.nbytes
                self.evictions += 1
        return values

    def contains(self, fingerprint: tuple, column: int) -> bool:
        """Pure membership probe — no counters, no recency update."""
        with self._lock:
            return (fingerprint, int(column)) in self._columns

    # ------------------------------------------------------------- maintenance
    def set_budget(self, max_bytes: int) -> None:
        """Change the byte budget and evict down to it immediately."""
        with self._lock:
            self.max_bytes = int(max_bytes)
            while self._bytes > self.max_bytes and self._columns:
                _, victim = self._columns.popitem(last=False)
                self._bytes -= victim.nbytes
                self.evictions += 1

    def clear(self, fingerprint: tuple | None = None) -> None:
        """Drop everything, or only one substrate's columns; counters survive."""
        with self._lock:
            if fingerprint is None:
                self._columns.clear()
                self._bytes = 0
                return
            for key in [k for k in self._columns if k[0] == fingerprint]:
                victim = self._columns.pop(key)
                self._bytes -= victim.nbytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._columns)

    def info(self) -> dict:
        """Occupancy and hit/miss counters (service metrics / benchmarks)."""
        with self._lock:
            return {
                "columns": len(self._columns),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ResultStore(columns={len(self._columns)}, bytes={self._bytes}, "
            f"max_bytes={self.max_bytes})"
        )
