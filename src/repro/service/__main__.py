"""``python -m repro.service`` — run the extraction service CLI."""

from .aserver import main

if __name__ == "__main__":
    main()
