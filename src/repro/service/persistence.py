"""Durable state for the extraction service: corpus, artifacts, journal.

Everything the service amortises across requests — solved ``G`` columns in
the :class:`~repro.service.result_store.ResultStore`, factorisations in the
process-wide :class:`~repro.substrate.factor_cache.FactorCache`, accepted
jobs in the scheduler queue — used to die with the process.  This module
makes that state survive a restart behind one :class:`ServicePersistence`
object rooted at a state directory:

``results.sqlite``
    :class:`SqliteResultBackend` — every solved conductance column keyed
    ``(fingerprint digest, column)``, with the in-RAM LRU acting as a
    read-through/write-through cache.  A restarted service serves a
    previously solved column set with **zero** new attributed solves.
``artifacts/``
    :class:`~repro.substrate.factor_cache.FactorArtifactStore` — serialised
    factor payloads (the same flattened arrays the shared-memory factor
    plane ships) under their cache-key digest, consulted by the factor
    cache on miss, so a warm start attaches instead of refactoring.
``journal.jsonl``
    :class:`JobJournal` — accepted :class:`~repro.service.jobs.JobRequest`
    payloads appended (fsync'd) *before* the submit call acknowledges,
    marked terminal on finalize, and replayed on startup, so a crash
    mid-drain loses no accepted work (the gridworks idiom: persist every
    event before acting on it).
``tiled_scratch/``
    default spill directory for out-of-core tiled factors, so their scratch
    shares the state volume (``REPRO_TILED_SCRATCH_DIR`` still overrides).

The default remains in-memory: a scheduler constructed without a
persistence object (or a server without ``--state-dir``) behaves exactly as
before — no files are touched, no counters change.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import re
import sqlite3
import threading
import warnings
from pathlib import Path

import numpy as np

from ..faults import fault_hook
from ..substrate.factor_cache import FactorArtifactStore
from ..substrate.tiled import set_default_scratch_dir, tiled_scratch_dir
from .jobs import JobRequest
from .result_store import fingerprint_digest as _fingerprint_digest

__all__ = ["ServicePersistence", "SqliteResultBackend", "JobJournal"]

#: scheduler job-id format; the journal recovers the sequence counter from it
_JOB_ID_RE = re.compile(r"^job-(\d+)$")


class SqliteResultBackend:
    """Solved-column corpus in one sqlite file, keyed ``(fingerprint, column)``.

    The stdlib ``sqlite3`` module is the storage engine (the related repos'
    long-running daemons keep cluster state the same way): one table of
    float64 blobs, WAL journaling so the dispatcher's writes never block a
    concurrent reader, and a single connection shared across threads behind
    a lock (``check_same_thread=False`` — the HTTP handler threads and the
    dispatcher both touch the store).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        # reprolint: guarded-by(_lock); owned-by(SqliteResultBackend)
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS result_columns ("
                "  fingerprint TEXT NOT NULL,"
                "  column_index INTEGER NOT NULL,"
                "  n_values INTEGER NOT NULL,"
                "  data BLOB NOT NULL,"
                "  PRIMARY KEY (fingerprint, column_index)"
                ")"
            )
            self._conn.commit()
        except Exception:
            # schema setup failed (locked file, corrupt database, full
            # volume): the half-initialised connection must not leak — no
            # owner will ever call close() on a backend that never existed
            self._conn.close()
            raise
        self.loads = 0  # reprolint: guarded-by(_lock)
        self.load_misses = 0  # reprolint: guarded-by(_lock)
        self.saves = 0  # reprolint: guarded-by(_lock)

    # ------------------------------------------------------------------ access
    def save(self, fingerprint: tuple, column: int, values: np.ndarray) -> None:
        """Persist one solved column (idempotent upsert)."""
        fault_hook("sqlite.write", op="save")
        data = np.ascontiguousarray(values, dtype=np.float64).tobytes()
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO result_columns "
                "(fingerprint, column_index, n_values, data) VALUES (?, ?, ?, ?)",
                (_fingerprint_digest(fingerprint), int(column), len(values), data),
            )
            self._conn.commit()
            self.saves += 1

    def load(self, fingerprint: tuple, column: int) -> np.ndarray | None:
        """One persisted column as a read-only float64 array, or ``None``."""
        with self._lock:
            row = self._conn.execute(
                "SELECT data FROM result_columns "
                "WHERE fingerprint = ? AND column_index = ?",
                (_fingerprint_digest(fingerprint), int(column)),
            ).fetchone()
            if row is None:
                self.load_misses += 1
                return None
            self.loads += 1
        values = np.frombuffer(row[0], dtype=np.float64)
        values.flags.writeable = False
        return values

    def contains(self, fingerprint: tuple, column: int) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM result_columns "
                "WHERE fingerprint = ? AND column_index = ?",
                (_fingerprint_digest(fingerprint), int(column)),
            ).fetchone()
        return row is not None

    def delete(self, fingerprint: tuple | None = None) -> int:
        """Drop one substrate's columns (or all); returns rows removed."""
        with self._lock:
            if fingerprint is None:
                cursor = self._conn.execute("DELETE FROM result_columns")
            else:
                cursor = self._conn.execute(
                    "DELETE FROM result_columns WHERE fingerprint = ?",
                    (_fingerprint_digest(fingerprint),),
                )
            self._conn.commit()
            return cursor.rowcount

    # --------------------------------------------------------------- lifecycle
    def info(self) -> dict:
        with self._lock:
            rows, nbytes = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(LENGTH(data)), 0) FROM result_columns"
            ).fetchone()
            return {
                "path": str(self.path),
                "columns": int(rows),
                "bytes": int(nbytes),
                "loads": self.loads,
                "load_misses": self.load_misses,
                "saves": self.saves,
            }

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class JobJournal:
    """Append-only JSONL log of accepted jobs and their terminal outcomes.

    Two event shapes::

        {"event": "accept", "job_id": ..., "priority": ..., "request": <b64 pickle>}
        {"event": "terminal", "job_id": ..., "status": ..., "attempts": ...}

    Accept events are flushed *and* fsync'd before :meth:`record_accept`
    returns — the scheduler only acknowledges a submit after the request is
    durable, so a crash at any later point can replay it.  Terminal marks
    are flush-only (losing one merely re-runs an already-solved job against
    a warm corpus, which costs zero solves).

    :meth:`recover` reads the journal back: accepted-but-not-terminal jobs
    in acceptance order (the replay set), every job id ever journaled (so
    the scheduler can distinguish *expired* from *never existed*), and the
    largest job sequence number (so replayed ids are never reissued).
    Corrupted or truncated lines — the tail of a crash mid-write — are
    skipped with a warning, never fatal.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        # reprolint: guarded-by(_lock); owned-by(JobJournal)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.accepts = 0  # reprolint: guarded-by(_lock)
        self.terminals = 0  # reprolint: guarded-by(_lock)
        self.corrupt_skipped = 0  # reprolint: guarded-by(_lock)

    # --------------------------------------------------------------- recording
    def record_accept(self, job_id: str, request: JobRequest) -> None:
        """Durably journal one accepted request *before* the submit ack."""
        line = json.dumps(
            {
                "event": "accept",
                "job_id": job_id,
                "priority": int(request.priority),
                "request": base64.b64encode(pickle.dumps(request)).decode(),
            }
        )
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self.accepts += 1

    def record_terminal(self, job_id: str, status: str, attempts: int = 0) -> None:
        """Mark one journaled job finished (flush-only; replay is idempotent)."""
        line = json.dumps(
            {
                "event": "terminal",
                "job_id": job_id,
                "status": status,
                "attempts": int(attempts),
            }
        )
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
            self.terminals += 1

    # ---------------------------------------------------------------- recovery
    def recover(self) -> tuple[list[tuple[str, JobRequest]], set[str], int]:
        """``(replay, known_ids, max_seq)`` from the journal on disk.

        ``replay`` lists ``(job_id, request)`` for every accepted job with
        no terminal mark, in acceptance order; ``known_ids`` is every job id
        the journal has ever seen; ``max_seq`` is the largest numeric job
        sequence (0 when none parse).
        """
        accepted: "dict[str, JobRequest]" = {}
        known_ids: set[str] = set()
        max_seq = 0
        if not self.path.exists():
            return [], known_ids, max_seq
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    event = doc["event"]
                    job_id = doc["job_id"]
                    if event == "accept":
                        request = pickle.loads(base64.b64decode(doc["request"]))
                        if not isinstance(request, JobRequest):
                            raise TypeError("journal entry is not a JobRequest")
                        accepted[job_id] = request
                    elif event == "terminal":
                        accepted.pop(job_id, None)
                    else:
                        raise ValueError(f"unknown journal event {event!r}")
                except Exception as exc:  # noqa: BLE001 - crash-torn tail lines
                    with self._lock:
                        self.corrupt_skipped += 1
                    warnings.warn(
                        f"skipping corrupt journal entry at {self.path}:{lineno}: "
                        f"{type(exc).__name__}: {exc}",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                known_ids.add(job_id)
                match = _JOB_ID_RE.match(job_id)
                if match:
                    max_seq = max(max_seq, int(match.group(1)))
        return list(accepted.items()), known_ids, max_seq

    # --------------------------------------------------------------- lifecycle
    def info(self) -> dict:
        with self._lock:
            return {
                "path": str(self.path),
                "accepts": self.accepts,
                "terminals": self.terminals,
                "corrupt_skipped": self.corrupt_skipped,
                "bytes": self.path.stat().st_size if self.path.exists() else 0,
            }

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


class ServicePersistence:
    """One state directory holding every durable piece of the service.

    Construct with a directory path (created on demand) and hand the object
    to :class:`~repro.service.scheduler.Scheduler` (or let the scheduler
    build one from a path).  Owns lifecycle: :meth:`close` releases the
    sqlite connection and the journal handle, and restores the tiled
    scratch default if this object set it.
    """

    def __init__(self, state_dir: str | os.PathLike) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.results = SqliteResultBackend(self.state_dir / "results.sqlite")
        self.artifacts = FactorArtifactStore(self.state_dir / "artifacts")
        self.journal = JobJournal(self.state_dir / "journal.jsonl")
        self._scratch_dir = str(self.state_dir / "tiled_scratch")
        if not os.environ.get("REPRO_TILED_SCRATCH_DIR"):
            set_default_scratch_dir(self._scratch_dir)
        self._closed = False

    def writable(self) -> bool:
        """True when the state directory currently accepts writes (health)."""
        probe = self.state_dir / ".writable_probe"
        try:
            with open(probe, "w") as fh:
                fh.write("ok")
            probe.unlink()
            return True
        except OSError:
            return False

    def info(self) -> dict:
        return {
            "state_dir": str(self.state_dir),
            "results": self.results.info(),
            "artifacts": self.artifacts.info(),
            "journal": self.journal.info(),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.results.close()
        self.journal.close()
        if tiled_scratch_dir() == self._scratch_dir:
            set_default_scratch_dir(None)

    def __enter__(self) -> "ServicePersistence":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
