"""Contact layout generators used in the paper's evaluation.

Chapter 3 (Figures 3-6, 3-7, 3-8) and Chapter 4 (Figures 4-1, 4-2, 4-8,
4-10) use a family of synthetic contact layouts:

* a regular grid of identical contacts (Example 1a/1b),
* the same contacts placed irregularly with large gaps (Example 2),
* a regular grid of contacts of alternating sizes (Example 3 of Ch. 3 /
  Example 2 of Ch. 4),
* an irregular layout mixing small squares, long thin contacts and ring
  contacts (Example 3 of Ch. 4),
* large versions of the above (Examples 4 and 5 of Ch. 4, up to 10240
  contacts).

All generators return a :class:`~repro.geometry.contact.ContactLayout` whose
contacts already respect finest-level square boundaries for the quadtree depth
implied by the grid, so that no further splitting is required in the common
case.
"""

from __future__ import annotations

import numpy as np

from .contact import Contact, ContactLayout

__all__ = [
    "regular_grid",
    "irregular_same_size",
    "alternating_size_grid",
    "mixed_shapes",
    "large_alternating_grid",
    "large_mixed",
    "ring_contact",
    "two_square_clusters",
]


def regular_grid(
    n_side: int = 16,
    size: float = 128.0,
    fill: float = 0.5,
    name_prefix: str = "c",
) -> ContactLayout:
    """Regular ``n_side x n_side`` grid of identical square contacts.

    This is Example 1a/1b of the paper (Figure 3-6).  Each cell of the
    regular grid contains one centred square contact occupying ``fill`` of the
    cell side length.

    Parameters
    ----------
    n_side:
        Number of contacts per side (total ``n_side**2`` contacts).
    size:
        Lateral substrate dimension (square substrate).
    fill:
        Contact side as a fraction of the cell side, in (0, 1).
    """
    if not 0 < fill < 1:
        raise ValueError("fill must be in (0, 1)")
    cell = size / n_side
    side = fill * cell
    margin = 0.5 * (cell - side)
    contacts = []
    for j in range(n_side):
        for i in range(n_side):
            contacts.append(
                Contact(
                    i * cell + margin,
                    j * cell + margin,
                    side,
                    side,
                    f"{name_prefix}{j * n_side + i}",
                )
            )
    return ContactLayout(contacts, size, size)


def irregular_same_size(
    n_side: int = 16,
    size: float = 128.0,
    fill: float = 0.5,
    keep_fraction: float = 0.7,
    jitter: float = 0.35,
    seed: int = 7,
) -> ContactLayout:
    """Same-size contacts, irregular placement with gaps (Example 2, Fig. 3-7).

    Starts from the regular grid, randomly removes cells to create large gaps
    and jitters the surviving contacts inside their cells so placement is no
    longer regular (contacts never leave their cell, so they still respect the
    finest-level square boundaries).
    """
    if not 0 < keep_fraction <= 1:
        raise ValueError("keep_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    cell = size / n_side
    side = fill * cell
    slack = cell - side
    contacts = []
    k = 0
    for j in range(n_side):
        for i in range(n_side):
            if rng.random() > keep_fraction:
                continue
            dx = (rng.random() - 0.5) * 2 * jitter * slack
            dy = (rng.random() - 0.5) * 2 * jitter * slack
            x = i * cell + 0.5 * slack + dx
            y = j * cell + 0.5 * slack + dy
            x = min(max(x, i * cell), (i + 1) * cell - side)
            y = min(max(y, j * cell), (j + 1) * cell - side)
            contacts.append(Contact(x, y, side, side, f"c{k}"))
            k += 1
    return ContactLayout(contacts, size, size)


def alternating_size_grid(
    n_side: int = 16,
    size: float = 128.0,
    large_fill: float = 0.7,
    small_fill: float = 0.3,
) -> ContactLayout:
    """Regular grid with contacts of alternating sizes (Fig. 3-8).

    Rows alternate between large and small contacts; this is the layout on
    which the wavelet method degrades and the low-rank method shines
    (Example 3 of Chapter 3 / Example 2 of Chapter 4).
    """
    cell = size / n_side
    contacts = []
    k = 0
    for j in range(n_side):
        fill = large_fill if j % 2 == 0 else small_fill
        side = fill * cell
        margin = 0.5 * (cell - side)
        for i in range(n_side):
            contacts.append(
                Contact(i * cell + margin, j * cell + margin, side, side, f"c{k}")
            )
            k += 1
    return ContactLayout(contacts, size, size)


def ring_contact(
    x: float, y: float, outer: float, thickness: float, name: str = "ring"
) -> list[Contact]:
    """Square ring (guard-ring style contact) built from four rectangles.

    Real substrate layouts contain guard rings; the paper's Example 3 of
    Chapter 4 includes ring contacts.  The ring is returned as four
    non-overlapping rectangles (bottom, top, left, right strips) so that each
    piece is a plain rectangular contact.
    """
    if thickness * 2 >= outer:
        raise ValueError("ring thickness too large for outer size")
    t = thickness
    return [
        Contact(x, y, outer, t, f"{name}_b"),
        Contact(x, y + outer - t, outer, t, f"{name}_t"),
        Contact(x, y + t, t, outer - 2 * t, f"{name}_l"),
        Contact(x + outer - t, y + t, t, outer - 2 * t, f"{name}_r"),
    ]


def mixed_shapes(
    size: float = 128.0,
    max_level: int = 4,
    seed: int = 3,
) -> ContactLayout:
    """Irregular layout with small squares, long thin contacts and rings.

    Models Example 3 of Chapter 4 (Figure 4-8): "some small square contacts,
    long thin contacts, and rings, which are all features of real substrate
    contact layouts".  Long and ring contacts are split so that every piece
    fits inside a finest-level square at ``max_level``.
    """
    rng = np.random.default_rng(seed)
    cell = size / 16.0
    contacts: list[Contact] = []

    # Small square contacts scattered over the left half.
    k = 0
    for j in range(16):
        for i in range(8):
            if rng.random() < 0.45:
                side = cell * rng.uniform(0.25, 0.5)
                x = i * cell + rng.uniform(0, cell - side)
                y = j * cell + rng.uniform(0, cell - side)
                contacts.append(Contact(x, y, side, side, f"sq{k}"))
                k += 1

    # Long thin horizontal bus contacts on the upper right quadrant.
    for j, yy in enumerate(np.linspace(0.62 * size, 0.92 * size, 5)):
        contacts.append(
            Contact(0.55 * size, yy, 0.40 * size, 0.18 * cell, f"bus{j}")
        )

    # Guard rings in the lower right quadrant.
    for r, (rx, ry) in enumerate(
        [(0.60 * size, 0.10 * size), (0.78 * size, 0.28 * size), (0.62 * size, 0.34 * size)]
    ):
        contacts.extend(
            ring_contact(rx, ry, outer=0.12 * size, thickness=0.018 * size, name=f"ring{r}")
        )

    layout = ContactLayout(contacts, size, size)
    return layout.split_for_level(max_level)


def large_alternating_grid(
    n_side: int = 64, size: float = 512.0
) -> ContactLayout:
    """Large alternating-size grid (Example 4 of Chapter 4, 64 x 64 contacts)."""
    return alternating_size_grid(n_side=n_side, size=size)


def large_mixed(
    size: float = 512.0,
    n_blocks: int = 8,
    seed: int = 11,
    max_level: int = 6,
) -> ContactLayout:
    """Large layout of mixed large and small contacts (Example 5, Fig. 4-10).

    Tiles the surface with blocks; each block receives either a dense patch of
    small contacts or a few large contacts, producing a layout with thousands
    of contacts of two very different sizes.
    """
    rng = np.random.default_rng(seed)
    block = size / n_blocks
    contacts: list[Contact] = []
    k = 0
    for bj in range(n_blocks):
        for bi in range(n_blocks):
            x0, y0 = bi * block, bj * block
            if (bi + bj) % 2 == 0:
                # dense patch of small contacts
                m = 6
                cell = block / m
                for j in range(m):
                    for i in range(m):
                        side = 0.5 * cell
                        contacts.append(
                            Contact(
                                x0 + i * cell + 0.25 * cell,
                                y0 + j * cell + 0.25 * cell,
                                side,
                                side,
                                f"s{k}",
                            )
                        )
                        k += 1
            else:
                # a few large contacts
                m = 2
                cell = block / m
                for j in range(m):
                    for i in range(m):
                        if rng.random() < 0.85:
                            side = 0.7 * cell
                            contacts.append(
                                Contact(
                                    x0 + i * cell + 0.15 * cell,
                                    y0 + j * cell + 0.15 * cell,
                                    side,
                                    side,
                                    f"L{k}",
                                )
                            )
                            k += 1
    layout = ContactLayout(contacts, size, size)
    return layout.split_for_level(max_level)


def two_square_clusters(
    size: float = 64.0,
    n_per_cluster: int = 16,
    separation_cells: int = 3,
    seed: int = 5,
) -> ContactLayout:
    """Two well-separated clusters of contacts (Figure 4-2).

    Used to demonstrate the rapid singular-value decay of well-separated
    interactions versus the slow decay of self interactions (Figure 4-3).
    The first ``n_per_cluster`` contacts belong to the source square ``s`` and
    the rest to the destination square ``d``.
    """
    rng = np.random.default_rng(seed)
    cell = size / 8.0
    m = int(np.ceil(np.sqrt(n_per_cluster)))

    def cluster(x0: float, y0: float, prefix: str) -> list[Contact]:
        sub = cell / m
        out = []
        k = 0
        for j in range(m):
            for i in range(m):
                if k >= n_per_cluster:
                    break
                side = sub * rng.uniform(0.4, 0.6)
                out.append(
                    Contact(
                        x0 + i * sub + 0.2 * sub,
                        y0 + j * sub + 0.2 * sub,
                        side,
                        side,
                        f"{prefix}{k}",
                    )
                )
                k += 1
        return out

    src = cluster(0.0, 0.0, "s")
    dst = cluster(separation_cells * cell, separation_cells * cell, "d")
    return ContactLayout(src + dst, size, size)
