"""Multilevel square hierarchy over the substrate surface.

Both sparsification algorithms (Chapters 3 and 4) organise the contacts into
a hierarchy of squares: the top surface is recursively subdivided into
``2^l x 2^l`` squares at level ``l`` (Section 3.3).  This module provides the
hierarchy, the assignment of contacts to finest-level squares, and the
geometric neighbourhood relations the algorithms rely on:

* *local* squares ``L_s`` of a square ``s``: ``s`` itself and its (up to 8)
  same-level neighbours,
* *interactive* squares ``I_s``: same-level squares that are not local to
  ``s`` but whose parents are local to ``s``'s parent (the classic fast
  multipole interaction list, Section 4.3 / Figure 4-4),
* the *well-separated* predicate between squares on possibly different levels
  used by the combine-solves assumption (Section 3.5): with ``level(s) <=
  level(s')``, the pair is well separated when the ancestor of ``s'`` at
  ``level(s)`` is not local to ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from .contact import ContactLayout

__all__ = ["Square", "SquareHierarchy"]

SquareKey = tuple[int, int, int]


@dataclass
class Square:
    """One square of the hierarchy.

    Attributes
    ----------
    level, i, j:
        The square occupies cell ``(i, j)`` of the ``2^level x 2^level``
        subdivision (``0 <= i, j < 2^level``), ``i`` indexing x and ``j``
        indexing y.
    contact_indices:
        Indices (into the layout) of contacts whose centroid falls inside the
        square.  Sorted ascending.
    """

    level: int
    i: int
    j: int
    contact_indices: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=int))

    @property
    def key(self) -> SquareKey:
        return (self.level, self.i, self.j)

    @property
    def n_contacts(self) -> int:
        return int(self.contact_indices.size)

    def parent_key(self) -> SquareKey:
        if self.level == 0:
            raise ValueError("the root square has no parent")
        return (self.level - 1, self.i // 2, self.j // 2)

    def child_keys(self) -> list[SquareKey]:
        lev = self.level + 1
        return [
            (lev, 2 * self.i + di, 2 * self.j + dj)
            for dj in (0, 1)
            for di in (0, 1)
        ]

    def center(self, size_x: float, size_y: float) -> tuple[float, float]:
        """Geometric centre of the square on a ``size_x x size_y`` surface."""
        nx = 2 ** self.level
        return (
            (self.i + 0.5) * size_x / nx,
            (self.j + 0.5) * size_y / nx,
        )

    def bounds(self, size_x: float, size_y: float) -> tuple[float, float, float, float]:
        """(x1, y1, x2, y2) bounds of the square."""
        nx = 2 ** self.level
        hx, hy = size_x / nx, size_y / nx
        return (self.i * hx, self.j * hy, (self.i + 1) * hx, (self.j + 1) * hy)


class SquareHierarchy:
    """The multilevel square subdivision of the substrate surface.

    Only squares that contain at least one contact (at any level) are stored;
    empty squares are skipped in all iterations, matching the adaptive
    behaviour needed for irregular layouts.

    Parameters
    ----------
    layout:
        The contact layout.  Contacts are assigned to finest-level squares by
        centroid; a contact that does not fit entirely inside its square
        raises (use :meth:`ContactLayout.split_for_level` first).
    max_level:
        Finest subdivision level ``L``.  If None, it is chosen so that the
        average finest-level square holds roughly ``target_per_square``
        contacts.
    target_per_square:
        Target average number of contacts per finest-level square when
        ``max_level`` is None.
    strict_containment:
        When True (default), raise if a contact crosses a finest-level square
        boundary.  When False, contacts are assigned by centroid regardless.
    """

    def __init__(
        self,
        layout: ContactLayout,
        max_level: int | None = None,
        target_per_square: int = 4,
        strict_containment: bool = True,
    ) -> None:
        self.layout = layout
        n = layout.n_contacts
        if n == 0:
            raise ValueError("layout has no contacts")
        if max_level is None:
            # choose L so that 4^L * target >= n
            max_level = max(2, int(np.ceil(np.log(max(n / target_per_square, 1.0)) / np.log(4.0))))
        if max_level < 2:
            raise ValueError(
                "max_level must be at least 2 (coarser levels have empty interaction lists)"
            )
        self.max_level = int(max_level)
        self.size_x = layout.size_x
        self.size_y = layout.size_y

        self._squares: dict[SquareKey, Square] = {}
        self._assign_contacts(strict_containment)
        self._build_coarser_levels()
        self._levels: dict[int, list[Square]] = {}
        for sq in self._squares.values():
            self._levels.setdefault(sq.level, []).append(sq)
        for lev in self._levels:
            self._levels[lev].sort(key=lambda s: (s.i, s.j))

    # ------------------------------------------------------------------ build
    def _assign_contacts(self, strict: bool) -> None:
        n_fine = 2 ** self.max_level
        hx = self.size_x / n_fine
        hy = self.size_y / n_fine
        buckets: dict[SquareKey, list[int]] = {}
        for idx, c in enumerate(self.layout.contacts):
            cx, cy = c.centroid
            i = min(int(cx / hx), n_fine - 1)
            j = min(int(cy / hy), n_fine - 1)
            if strict:
                x1, y1, x2, y2 = i * hx, j * hy, (i + 1) * hx, (j + 1) * hy
                tol = 1e-9 * max(self.size_x, self.size_y)
                if c.x < x1 - tol or c.x2 > x2 + tol or c.y < y1 - tol or c.y2 > y2 + tol:
                    raise ValueError(
                        f"contact {idx} ({c}) crosses a finest-level square boundary "
                        f"at level {self.max_level}; split the layout first "
                        "(ContactLayout.split_for_level)"
                    )
            buckets.setdefault((self.max_level, i, j), []).append(idx)
        for key, idxs in buckets.items():
            self._squares[key] = Square(
                key[0], key[1], key[2], np.array(sorted(idxs), dtype=int)
            )

    def _build_coarser_levels(self) -> None:
        for lev in range(self.max_level - 1, -1, -1):
            buckets: dict[SquareKey, list[np.ndarray]] = {}
            for sq in list(self._squares.values()):
                if sq.level != lev + 1:
                    continue
                pkey = (lev, sq.i // 2, sq.j // 2)
                buckets.setdefault(pkey, []).append(sq.contact_indices)
            for pkey, pieces in buckets.items():
                idxs = np.sort(np.concatenate(pieces))
                self._squares[pkey] = Square(pkey[0], pkey[1], pkey[2], idxs)

    # ------------------------------------------------------------ basic access
    @property
    def squares(self) -> dict[SquareKey, Square]:
        """All non-empty squares keyed by (level, i, j)."""
        return self._squares

    def levels(self) -> range:
        """Range of levels, coarsest (0) to finest (max_level)."""
        return range(0, self.max_level + 1)

    def squares_at_level(self, level: int) -> Sequence[Square]:
        """Non-empty squares at ``level``, ordered by (i, j)."""
        return tuple(self._levels.get(level, ()))

    def get(self, key: SquareKey) -> Square | None:
        """Square at ``key`` or None if it contains no contacts."""
        return self._squares.get(key)

    def __contains__(self, key: SquareKey) -> bool:
        return key in self._squares

    def parent(self, square: Square) -> Square | None:
        """Parent square (always non-empty if ``square`` is non-empty)."""
        if square.level == 0:
            return None
        return self._squares.get(square.parent_key())

    def children(self, square: Square) -> list[Square]:
        """Non-empty children of ``square``."""
        return [
            self._squares[k] for k in square.child_keys() if k in self._squares
        ]

    def ancestor_key(self, square: Square, level: int) -> SquareKey:
        """Key of the ancestor of ``square`` at a coarser ``level``."""
        if level > square.level:
            raise ValueError("ancestor level must not be finer than the square's level")
        shift = square.level - level
        return (level, square.i >> shift, square.j >> shift)

    # --------------------------------------------------------- neighbourhoods
    def _same_level_keys(
        self, square: Square, di_range: Iterable[int], dj_range: Iterable[int]
    ) -> Iterator[SquareKey]:
        n = 2 ** square.level
        for dj in dj_range:
            for di in di_range:
                i, j = square.i + di, square.j + dj
                if 0 <= i < n and 0 <= j < n:
                    yield (square.level, i, j)

    def neighbors(self, square: Square) -> list[Square]:
        """Non-empty same-level neighbours (excluding the square itself)."""
        out = []
        for key in self._same_level_keys(square, (-1, 0, 1), (-1, 0, 1)):
            if key == square.key:
                continue
            sq = self._squares.get(key)
            if sq is not None:
                out.append(sq)
        return out

    def local_squares(self, square: Square) -> list[Square]:
        """``L_s``: the square itself plus its non-empty neighbours."""
        return [square] + self.neighbors(square)

    def interactive_squares(self, square: Square) -> list[Square]:
        """``I_s``: the interaction list of ``square`` (Figure 4-4).

        Same-level, non-empty squares that are *not* local to ``square`` but
        whose parents are the parent of ``square`` or one of its neighbours.
        Levels 0 and 1 have empty interaction lists.
        """
        if square.level < 2:
            return []
        local_keys = set(self._same_level_keys(square, (-1, 0, 1), (-1, 0, 1)))
        parent_key = square.parent_key()
        plevel, pi, pj = parent_key
        np_side = 2 ** plevel
        out = []
        for dj in (-1, 0, 1):
            for di in (-1, 0, 1):
                qi, qj = pi + di, pj + dj
                if not (0 <= qi < np_side and 0 <= qj < np_side):
                    continue
                for ci in (2 * qi, 2 * qi + 1):
                    for cj in (2 * qj, 2 * qj + 1):
                        key = (square.level, ci, cj)
                        if key in local_keys:
                            continue
                        sq = self._squares.get(key)
                        if sq is not None:
                            out.append(sq)
        return out

    def interactive_and_local(self, square: Square) -> list[Square]:
        """``P_s = I_s union L_s`` — the children of the local squares of the parent."""
        return self.local_squares(square) + self.interactive_squares(square)

    def are_local(self, a: Square, b: Square) -> bool:
        """Same-level locality test (same square or adjacent)."""
        if a.level != b.level:
            raise ValueError("are_local requires squares on the same level")
        return abs(a.i - b.i) <= 1 and abs(a.j - b.j) <= 1

    def well_separated(self, a: Square, b: Square) -> bool:
        """Cross-level well-separated predicate of Section 3.5.

        With ``level(a) <= level(b)`` (swap otherwise), the squares are well
        separated when the ancestor of ``b`` at ``level(a)`` is neither ``a``
        nor a neighbour of ``a``.
        """
        if a.level > b.level:
            a, b = b, a
        anc_level, ai, aj = self.ancestor_key(b, a.level)
        return not (abs(a.i - ai) <= 1 and abs(a.j - aj) <= 1)

    # -------------------------------------------------------------- utilities
    def contacts_in(self, squares: Iterable[Square]) -> np.ndarray:
        """Sorted union of contact indices over ``squares``."""
        pieces = [sq.contact_indices for sq in squares]
        if not pieces:
            return np.empty(0, dtype=int)
        return np.unique(np.concatenate(pieces))

    def finest_square_of_contact(self, contact_index: int) -> Square:
        """The finest-level square containing ``contact_index``."""
        c = self.layout.contacts[contact_index]
        n_fine = 2 ** self.max_level
        hx = self.size_x / n_fine
        hy = self.size_y / n_fine
        cx, cy = c.centroid
        i = min(int(cx / hx), n_fine - 1)
        j = min(int(cy / hy), n_fine - 1)
        return self._squares[(self.max_level, i, j)]

    def statistics(self) -> dict[str, float]:
        """Summary statistics used in reports and sanity checks."""
        finest = self.squares_at_level(self.max_level)
        per_square = np.array([s.n_contacts for s in finest])
        return {
            "n_contacts": self.layout.n_contacts,
            "max_level": self.max_level,
            "n_nonempty_finest_squares": len(finest),
            "max_contacts_per_finest_square": int(per_square.max()),
            "mean_contacts_per_finest_square": float(per_square.mean()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SquareHierarchy(n={self.layout.n_contacts}, L={self.max_level}, "
            f"finest squares={len(self.squares_at_level(self.max_level))})"
        )
