"""Rectangular substrate contacts and contact layouts.

The substrate model of the paper (Chapter 1) places perfectly conducting
rectangular contacts on the top surface of a layered resistive block.  A
:class:`Contact` is an axis-aligned rectangle on the top surface, and a
:class:`ContactLayout` is an ordered collection of contacts together with the
lateral substrate dimensions.  The ordering defines the row/column indexing of
the conductance matrix ``G``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Contact", "ContactLayout"]


@dataclass(frozen=True)
class Contact:
    """An axis-aligned rectangular contact on the substrate top surface.

    Parameters
    ----------
    x, y:
        Coordinates of the lower-left corner.
    width, height:
        Side lengths along x and y.  Must be positive.
    name:
        Optional label used in examples and circuit netlists.
    """

    x: float
    y: float
    width: float
    height: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"contact dimensions must be positive, got {self.width} x {self.height}"
            )

    @property
    def x2(self) -> float:
        """Right edge coordinate."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Top edge coordinate."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Contact area."""
        return self.width * self.height

    @property
    def centroid(self) -> tuple[float, float]:
        """Geometric centre of the contact."""
        return (self.x + 0.5 * self.width, self.y + 0.5 * self.height)

    def contains_point(self, px: float, py: float) -> bool:
        """Return True if (px, py) lies inside the contact (closed rectangle)."""
        return self.x <= px <= self.x2 and self.y <= py <= self.y2

    def overlaps(self, other: "Contact") -> bool:
        """Return True if this contact overlaps ``other`` with positive area."""
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    def translated(self, dx: float, dy: float) -> "Contact":
        """Return a copy shifted by (dx, dy)."""
        return Contact(self.x + dx, self.y + dy, self.width, self.height, self.name)

    def split(self, max_size: float) -> list["Contact"]:
        """Split the contact into pieces no larger than ``max_size`` per side.

        The paper requires contacts not to cross finest-level square
        boundaries; large contacts are split into many smaller ones
        (Section 3.2).  The split is a regular tiling, so the union of the
        pieces is exactly the original rectangle.
        """
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        nx = max(1, int(np.ceil(self.width / max_size - 1e-12)))
        ny = max(1, int(np.ceil(self.height / max_size - 1e-12)))
        if nx == 1 and ny == 1:
            return [self]
        w = self.width / nx
        h = self.height / ny
        pieces = []
        for i in range(nx):
            for j in range(ny):
                suffix = f"_{i}_{j}" if self.name else ""
                pieces.append(
                    Contact(self.x + i * w, self.y + j * h, w, h, self.name + suffix)
                )
        return pieces

    def split_at_gridlines(self, pitch: float, name_suffix: bool = True) -> list["Contact"]:
        """Split the contact along the global gridlines ``x = k * pitch``, ``y = k * pitch``.

        Used to make every piece fit inside one square of a regular grid of
        side ``pitch`` (the finest-level squares of the hierarchy).  Pieces
        are genuine sub-rectangles, so the union equals the original contact.
        """
        if pitch <= 0:
            raise ValueError("pitch must be positive")
        eps = 1e-12 * pitch

        def cuts(lo: float, hi: float) -> list[float]:
            first = int(np.floor(lo / pitch)) + 1
            last = int(np.ceil(hi / pitch)) - 1
            points = [lo]
            points.extend(
                k * pitch for k in range(first, last + 1) if lo + eps < k * pitch < hi - eps
            )
            points.append(hi)
            return points

        xs = cuts(self.x, self.x2)
        ys = cuts(self.y, self.y2)
        if len(xs) == 2 and len(ys) == 2:
            return [self]
        pieces = []
        for i in range(len(xs) - 1):
            for j in range(len(ys) - 1):
                suffix = f"_{i}_{j}" if (name_suffix and self.name) else ""
                pieces.append(
                    Contact(
                        xs[i], ys[j], xs[i + 1] - xs[i], ys[j + 1] - ys[j], self.name + suffix
                    )
                )
        return pieces

    def moment(self, alpha: int, beta: int, center: tuple[float, float]) -> float:
        """Exact polynomial moment of the contact indicator function.

        Computes ``integral over the contact of (x - cx)^alpha (y - cy)^beta``
        in closed form (Section 3.2.1 of the paper defines moments of voltage
        functions; for a characteristic function the integral factorises).
        """
        cx, cy = center
        a1, a2 = self.x - cx, self.x2 - cx
        b1, b2 = self.y - cy, self.y2 - cy
        ix = (a2 ** (alpha + 1) - a1 ** (alpha + 1)) / (alpha + 1)
        iy = (b2 ** (beta + 1) - b1 ** (beta + 1)) / (beta + 1)
        return ix * iy


class ContactLayout:
    """Ordered collection of contacts on a rectangular substrate surface.

    Parameters
    ----------
    contacts:
        The contacts, in conductance-matrix index order.
    size_x, size_y:
        Lateral substrate dimensions ``a`` and ``b`` (the top surface is
        ``[0, a] x [0, b]``).
    """

    def __init__(
        self, contacts: Iterable[Contact], size_x: float, size_y: float
    ) -> None:
        self._contacts: list[Contact] = list(contacts)
        if size_x <= 0 or size_y <= 0:
            raise ValueError("substrate dimensions must be positive")
        self.size_x = float(size_x)
        self.size_y = float(size_y)
        for c in self._contacts:
            if c.x < -1e-9 or c.y < -1e-9 or c.x2 > size_x + 1e-9 or c.y2 > size_y + 1e-9:
                raise ValueError(f"contact {c} extends outside the substrate surface")

    @property
    def contacts(self) -> Sequence[Contact]:
        """The contacts in index order."""
        return tuple(self._contacts)

    @property
    def fingerprint(self) -> tuple:
        """Hashable identity of the layout geometry.

        Two layouts with equal fingerprints induce identical solver
        discretisations (panel grids, FD contact footprints), so the
        fingerprint keys the process-wide
        :mod:`~repro.substrate.factor_cache`.  Contact names are excluded —
        they do not affect the physics.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            cached = (
                self.size_x,
                self.size_y,
                tuple((c.x, c.y, c.width, c.height) for c in self._contacts),
            )
            self._fingerprint = cached
        return cached

    @property
    def n_contacts(self) -> int:
        """Number of contacts ``n`` (the dimension of ``G``)."""
        return len(self._contacts)

    def __len__(self) -> int:
        return len(self._contacts)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self._contacts)

    def __getitem__(self, index: int) -> Contact:
        return self._contacts[index]

    @property
    def centroids(self) -> np.ndarray:
        """(n, 2) array of contact centroids."""
        return np.array([c.centroid for c in self._contacts], dtype=float)

    @property
    def areas(self) -> np.ndarray:
        """(n,) array of contact areas."""
        return np.array([c.area for c in self._contacts], dtype=float)

    @property
    def total_contact_area(self) -> float:
        """Sum of all contact areas."""
        return float(self.areas.sum())

    @property
    def coverage(self) -> float:
        """Fraction of the top surface covered by contacts."""
        return self.total_contact_area / (self.size_x * self.size_y)

    def has_overlaps(self) -> bool:
        """Return True if any two contacts overlap (invalid layout)."""
        cs = self._contacts
        for i in range(len(cs)):
            for j in range(i + 1, len(cs)):
                if cs[i].overlaps(cs[j]):
                    return True
        return False

    def split_for_level(self, max_level: int) -> "ContactLayout":
        """Return a layout where every contact fits in a finest-level square.

        The finest-level squares at ``max_level`` have side
        ``size / 2**max_level``; contacts larger than that are split
        (Section 3.2: "Splitting large contacts into many smaller ones using
        the finest level square boundaries may be necessary").
        """
        side = min(self.size_x, self.size_y) / (2 ** max_level)
        pieces: list[Contact] = []
        for c in self._contacts:
            pieces.extend(c.split_at_gridlines(side))
        return ContactLayout(pieces, self.size_x, self.size_y)

    def subset(self, indices: Sequence[int]) -> "ContactLayout":
        """Return a layout containing only the contacts at ``indices``."""
        return ContactLayout(
            [self._contacts[i] for i in indices], self.size_x, self.size_y
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ContactLayout(n={self.n_contacts}, "
            f"size={self.size_x}x{self.size_y}, coverage={self.coverage:.3f})"
        )
