"""Contact geometry, layouts, panels and the multilevel square hierarchy."""

from .contact import Contact, ContactLayout
from .layouts import (
    alternating_size_grid,
    irregular_same_size,
    large_alternating_grid,
    large_mixed,
    mixed_shapes,
    regular_grid,
    ring_contact,
    two_square_clusters,
)
from .panels import PanelGrid
from .quadtree import Square, SquareHierarchy

__all__ = [
    "Contact",
    "ContactLayout",
    "PanelGrid",
    "Square",
    "SquareHierarchy",
    "regular_grid",
    "irregular_same_size",
    "alternating_size_grid",
    "mixed_shapes",
    "large_alternating_grid",
    "large_mixed",
    "ring_contact",
    "two_square_clusters",
]
