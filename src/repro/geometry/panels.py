"""Panel discretisation of the substrate top surface.

The eigenfunction (surface-variable) solver of Section 2.3 discretises the top
surface into a uniform grid of square panels (Figure 2-5).  Contacts are
represented by the set of panels whose centres they cover; currents live on
panels, potentials are collocated at panel centres, and the contact current is
the sum of its panel currents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .contact import ContactLayout

__all__ = ["PanelGrid"]


@dataclass
class PanelGrid:
    """Uniform panel grid over the top surface.

    Parameters
    ----------
    layout:
        The contact layout defining the surface size and the contacts.
    nx, ny:
        Number of panels along x and y.

    Attributes
    ----------
    contact_panels:
        List (per contact) of flat panel indices covered by that contact.
    panel_to_contact:
        Flat array of length ``nx*ny`` mapping each panel to its contact index
        or -1 for non-contact panels.
    """

    layout: ContactLayout
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx < 2 or self.ny < 2:
            raise ValueError("panel grid must be at least 2 x 2")
        self.hx = self.layout.size_x / self.nx
        self.hy = self.layout.size_y / self.ny
        self.panel_area = self.hx * self.hy
        # panel centre coordinates
        self.xc = (np.arange(self.nx) + 0.5) * self.hx
        self.yc = (np.arange(self.ny) + 0.5) * self.hy
        self._assign_panels()

    @classmethod
    def for_layout(
        cls, layout: ContactLayout, panels_per_min_contact: int = 2, max_panels: int = 256
    ) -> "PanelGrid":
        """Choose a panel resolution that resolves the smallest contact.

        The grid pitch is chosen so that the smallest contact side spans at
        least ``panels_per_min_contact`` panels, capped at ``max_panels`` per
        side, and rounded to a power of two for fast DCTs.
        """
        min_side = min(min(c.width, c.height) for c in layout.contacts)
        target = panels_per_min_contact * layout.size_x / min_side
        n = 1 << int(np.ceil(np.log2(max(8.0, min(target, max_panels)))))
        n = min(n, max_panels)
        return cls(layout, n, n)

    # ----------------------------------------------------------------- layout
    def _assign_panels(self) -> None:
        n_panels = self.nx * self.ny
        self.panel_to_contact = np.full(n_panels, -1, dtype=int)
        self.contact_panels: list[np.ndarray] = []
        for idx, c in enumerate(self.layout.contacts):
            # panels whose centres are inside the contact rectangle
            i1 = int(np.searchsorted(self.xc, c.x, side="left"))
            i2 = int(np.searchsorted(self.xc, c.x2, side="right"))
            j1 = int(np.searchsorted(self.yc, c.y, side="left"))
            j2 = int(np.searchsorted(self.yc, c.y2, side="right"))
            if i2 <= i1 or j2 <= j1:
                # contact smaller than a panel: snap to the nearest panel centre
                cx, cy = c.centroid
                i1 = min(max(int(cx / self.hx), 0), self.nx - 1)
                j1 = min(max(int(cy / self.hy), 0), self.ny - 1)
                i2, j2 = i1 + 1, j1 + 1
            ii, jj = np.meshgrid(np.arange(i1, i2), np.arange(j1, j2), indexing="ij")
            flat = (ii * self.ny + jj).ravel()
            # A panel centre can only belong to one contact for non-overlapping
            # layouts; keep the first owner if layouts touch.
            free = self.panel_to_contact[flat] == -1
            flat = flat[free]
            self.panel_to_contact[flat] = idx
            self.contact_panels.append(np.sort(flat))
        self.all_contact_panels = np.flatnonzero(self.panel_to_contact >= 0)
        if any(p.size == 0 for p in self.contact_panels):
            raise ValueError(
                "a contact received no panels; increase the panel resolution"
            )

    # -------------------------------------------------------------- operators
    @property
    def n_panels(self) -> int:
        return self.nx * self.ny

    @property
    def n_contact_panels(self) -> int:
        return int(self.all_contact_panels.size)

    def panel_centers(self) -> np.ndarray:
        """(n_panels, 2) array of panel centre coordinates (flat index order)."""
        xx, yy = np.meshgrid(self.xc, self.yc, indexing="ij")
        return np.column_stack([xx.ravel(), yy.ravel()])

    def spread_contact_values(self, contact_values: np.ndarray) -> np.ndarray:
        """Copy one value per contact onto all of its panels.

        Returns a full panel-grid array (flat, length ``n_panels``) with zeros
        on non-contact panels.  Used to impose contact voltages.  Accepts a
        vector of one value per contact or an ``(n_contacts, k)`` block, in
        which case the result is ``(n_panels, k)``.
        """
        contact_values = np.asarray(contact_values, dtype=float)
        if contact_values.shape[0] != self.layout.n_contacts:
            raise ValueError("expected one value per contact")
        out = np.zeros((self.n_panels,) + contact_values.shape[1:])
        for idx, panels in enumerate(self.contact_panels):
            out[panels] = contact_values[idx]
        return out

    def sum_panel_values(self, panel_values: np.ndarray) -> np.ndarray:
        """Sum panel values over each contact (e.g. panel currents -> contact currents).

        Accepts ``(n_panels,)`` vectors or ``(n_panels, k)`` blocks.
        """
        panel_values = np.asarray(panel_values, dtype=float)
        out = np.empty((self.layout.n_contacts,) + panel_values.shape[1:])
        for idx, panels in enumerate(self.contact_panels):
            out[idx] = panel_values[panels].sum(axis=0)
        return out

    def contact_incidence(self) -> np.ndarray:
        """Dense (n_contact_panels, n_contacts) 0/1 incidence matrix.

        Column ``j`` selects the contact-panel rows belonging to contact ``j``
        (ordering follows ``all_contact_panels``).
        """
        pos = {p: r for r, p in enumerate(self.all_contact_panels)}
        mat = np.zeros((self.n_contact_panels, self.layout.n_contacts))
        for j, panels in enumerate(self.contact_panels):
            for p in panels:
                mat[pos[p], j] = 1.0
        return mat
