"""CLI for the extraction cluster: ``python -m repro.cluster {leader,worker}``.

Two-host localhost quickstart (three terminals)::

    python -m repro.cluster leader --port 8760 --state-dir /var/lib/repro
    python -m repro.cluster worker --leader http://127.0.0.1:8760 --port 8761
    python -m repro.cluster worker --leader http://127.0.0.1:8760 --port 8762

Clients talk to the leader's ordinary ``/v1/`` endpoints; they never need
to know workers exist.  Set ``REPRO_AUTH_TOKEN`` (or pass ``--auth-token``
to every process) to require a bearer token on both the public surface and
the intra-cluster RPCs.
"""

from __future__ import annotations

import argparse
import os
import time


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--auth-token",
        default=None,
        help=(
            "bearer token for /v1 and intra-cluster RPCs "
            "(env: REPRO_AUTH_TOKEN); all cluster processes must agree"
        ),
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        help="durable state directory for this process (omit for in-memory)",
    )
    parser.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        help="admission-control bound on this process's pending queue",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help=(
            "fault-injection plan: JSON text or @path to a JSON file; "
            "chaos testing only"
        ),
    )


def _apply_faults(plan: str | None) -> None:
    if not plan:
        return
    from .. import faults

    os.environ[faults.ENV_VAR] = plan
    faults.reload_env_plan()


def _serve_forever(what: str, url: str) -> None:
    print(f"{what} listening on {url} (Ctrl-C to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Run an extraction-cluster leader or worker process.",
    )
    sub = parser.add_subparsers(dest="role", required=True)

    leader = sub.add_parser("leader", help="front door + router (serves /v1/)")
    _add_common(leader)
    leader.add_argument("--port", type=int, default=8760, help="bind port (0=ephemeral)")
    leader.add_argument(
        "--lease", type=float, default=10.0, help="worker heartbeat lease in seconds"
    )
    leader.add_argument(
        "--rpc-timeout",
        type=float,
        default=600.0,
        help="seconds the leader waits on one worker solve RPC",
    )
    leader.add_argument(
        "--coalesce-window",
        type=float,
        default=0.0,
        help="seconds to linger before draining the queue (batches jobs)",
    )

    worker = sub.add_parser("worker", help="solve host (registers with the leader)")
    _add_common(worker)
    worker.add_argument("--leader", required=True, help="leader base URL")
    worker.add_argument("--port", type=int, default=0, help="bind port (0=ephemeral)")
    worker.add_argument(
        "--advertise-host",
        default=None,
        help="hostname the leader should dial back (defaults to the bind host)",
    )
    worker.add_argument(
        "--worker-id", default=None, help="stable identity (default: random)"
    )
    worker.add_argument(
        "--workers", type=int, default=None, help="extraction processes per engine"
    )
    worker.add_argument(
        "--max-solvers", type=int, default=4, help="warm engines kept across substrates"
    )
    worker.add_argument(
        "--store-bytes", type=int, default=None, help="result-store budget in bytes"
    )
    worker.add_argument(
        "--heartbeat", type=float, default=2.0, help="seconds between heartbeats"
    )

    args = parser.parse_args(argv)
    auth_token = args.auth_token or os.environ.get("REPRO_AUTH_TOKEN") or None
    _apply_faults(args.faults)

    if args.role == "leader":
        from .leader import ClusterLeader

        node = ClusterLeader(
            host=args.host,
            port=args.port,
            auth_token=auth_token,
            lease_s=args.lease,
            rpc_timeout_s=args.rpc_timeout,
            coalesce_window_s=args.coalesce_window,
            persistence=args.state_dir,
            max_queue_depth=args.max_queue_depth,
        )
        what = "cluster leader"
    else:
        from ..service.result_store import ResultStore
        from .worker import ClusterWorker

        store = ResultStore(args.store_bytes) if args.store_bytes is not None else None
        node = ClusterWorker(
            leader_url=args.leader,
            host=args.host,
            port=args.port,
            advertise_host=args.advertise_host,
            worker_id=args.worker_id,
            auth_token=auth_token,
            heartbeat_s=args.heartbeat,
            n_workers=args.workers,
            max_solvers=args.max_solvers,
            store=store,
            persistence=args.state_dir,
            max_queue_depth=args.max_queue_depth,
        )
        what = f"cluster worker {node.worker_id}"

    node.start()
    try:
        _serve_forever(what, node.url)
    finally:
        node.close()


if __name__ == "__main__":
    main()
