"""Fingerprint-affinity routing: which worker host owns which substrate.

The whole economics of the cluster hinge on one invariant: a substrate's
expensive state — its factorisation, its warm
:class:`~repro.substrate.parallel.ParallelExtractor`, its slice of the
result corpus — should be built on **exactly one host** and stay there.
The :class:`FingerprintRouter` enforces that with three layers:

* **Consistent hashing.**  Each live host contributes ``replicas`` points
  on a hash ring (blake2b of ``"worker_id#i"``); a fingerprint lands on
  the first point clockwise from its own digest.  Hosts joining or
  leaving move only the fingerprints that must move.
* **Sticky pins.**  The first routing decision for a fingerprint is
  remembered.  A later ring change (a new host joining) does *not* move a
  pinned fingerprint — its factor is already warm where it is; migration
  would pay a rebuild to save nothing.  Pins move only when their host
  leaves the live set (death, lease expiry), which is the failover path —
  the ``reroutes`` counter counts exactly those.
* **Balance-aware placement.**  For a fingerprint being placed *fresh*,
  the ring's candidate is overruled when it is already loaded: when it
  owns more pins than the least-pinned candidate by more than
  ``pin_skew`` (default 0 — bounded-load consistent hashing with the
  tightest bound; because pins are sticky, placement is the one moment
  load balancing can happen, and with a handful of fingerprints the raw
  ring can legitimately land them all on one host), or when its reported
  queue depth exceeds the least-loaded live host's by more than
  ``load_skew``.  A cold substrate has no warmth to preserve, so it may
  as well start on an underused host.  Draining hosts never take new
  pins.

The router holds no locks of its own beyond one mutex around the pin
table; it re-reads the registry's live set on every call, so membership
changes take effect on the next route.
"""

from __future__ import annotations

import bisect
import hashlib
import threading

from ..service.result_store import fingerprint_digest
from .registry import HostRecord, HostRegistry

__all__ = ["FingerprintRouter", "NoWorkersError"]


class NoWorkersError(RuntimeError):
    """No live worker host can take this group (empty or fully draining)."""


def _ring_hash(key: str) -> int:
    return int.from_bytes(
        hashlib.blake2b(key.encode(), digest_size=8).digest(), "big"
    )


class FingerprintRouter:
    """Sticky consistent-hash router over a :class:`HostRegistry`."""

    def __init__(
        self,
        registry: HostRegistry,
        replicas: int = 64,
        load_skew: int = 4,
        pin_skew: int = 0,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.registry = registry
        self.replicas = int(replicas)
        self.load_skew = int(load_skew)
        self.pin_skew = int(pin_skew)
        self._lock = threading.Lock()
        #: fingerprint digest -> worker_id of the owning host
        self._pins: dict[str, str] = {}  # reprolint: guarded-by(_lock)
        #: cached ring for one membership snapshot
        self._ring_members: frozenset[str] = frozenset()  # reprolint: guarded-by(_lock)
        self._ring: list[tuple[int, str]] = []  # reprolint: guarded-by(_lock)
        self.placements = 0  # reprolint: guarded-by(_lock)
        #: pins moved because their host left the live set (failovers)
        self.reroutes = 0  # reprolint: guarded-by(_lock)
        #: ring candidates overruled by load-aware placement
        self.load_overrides = 0  # reprolint: guarded-by(_lock)

    # reprolint: holds(_lock)
    def _ring_for_locked(self, worker_ids: frozenset[str]) -> list[tuple[int, str]]:
        if worker_ids != self._ring_members:
            points = [
                (_ring_hash(f"{worker_id}#{i}"), worker_id)
                for worker_id in sorted(worker_ids)
                for i in range(self.replicas)
            ]
            points.sort()
            self._ring_members = worker_ids
            self._ring = points
        return self._ring

    # reprolint: holds(_lock)
    def _place_locked(self, digest: str, candidates: list[HostRecord]) -> HostRecord:
        """Pick a host for an unpinned fingerprint (ring + balance override)."""
        by_id = {host.worker_id: host for host in candidates}
        ring = self._ring_for_locked(frozenset(by_id))
        point = _ring_hash(digest)
        index = bisect.bisect_right(ring, (point, "")) % len(ring)
        chosen = by_id[ring[index][1]]
        pin_counts = dict.fromkeys(by_id, 0)
        for owner in self._pins.values():
            if owner in pin_counts:
                pin_counts[owner] += 1
        least_pins = min(pin_counts.values())
        least_queue = min(host.queue_depth for host in candidates)
        if (
            pin_counts[chosen.worker_id] > least_pins + self.pin_skew
            or chosen.queue_depth > least_queue + self.load_skew
        ):
            self.load_overrides += 1
            # among underused hosts, the digest/host hash keeps the pick
            # deterministic without always favouring one host on ties
            chosen = min(
                candidates,
                key=lambda h: (
                    pin_counts[h.worker_id],
                    h.queue_depth,
                    _ring_hash(f"{digest}@{h.worker_id}"),
                ),
            )
        return chosen

    def route(self, fingerprint: tuple) -> HostRecord:
        """The host that owns this fingerprint, placing or re-placing it.

        Raises :class:`NoWorkersError` when no live host can take it.  A
        pinned host that is merely *draining* keeps its pinned
        fingerprints (it serves what it holds); only leaving the live set
        moves them.
        """
        live = self.registry.live()
        if not live:
            raise NoWorkersError("no live worker hosts registered")
        by_id = {host.worker_id: host for host in live}
        digest = fingerprint_digest(fingerprint)
        with self._lock:
            pinned = self._pins.get(digest)
            if pinned is not None and pinned in by_id:
                return by_id[pinned]
            candidates = [host for host in live if not host.draining]
            if not candidates:
                raise NoWorkersError(
                    f"all {len(live)} live worker hosts are draining"
                )
            chosen = self._place_locked(digest, candidates)
            if pinned is not None:
                # the pin's host left the live set: this is a failover
                self.reroutes += 1
            self.placements += 1
            self._pins[digest] = chosen.worker_id
            return chosen

    def pins(self) -> dict[str, str]:
        """``{fingerprint digest: worker_id}`` of every current pin."""
        with self._lock:
            return dict(self._pins)

    def unpin(self, digest: str) -> bool:
        """Forget one pin (the fingerprint re-places on its next route)."""
        with self._lock:
            return self._pins.pop(digest, None) is not None

    def info(self) -> dict:
        with self._lock:
            owners: dict[str, int] = {}
            for worker_id in self._pins.values():
                owners[worker_id] = owners.get(worker_id, 0) + 1
            return {
                "pins": len(self._pins),
                "pins_per_host": owners,
                "placements": self.placements,
                "reroutes": self.reroutes,
                "load_overrides": self.load_overrides,
                "replicas": self.replicas,
                "load_skew": self.load_skew,
                "pin_skew": self.pin_skew,
            }
