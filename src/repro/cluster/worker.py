"""The cluster worker: today's single-host stack behind a solve RPC.

A :class:`ClusterWorker` wraps the unmodified single-host pipeline — a
:class:`~repro.service.scheduler.Scheduler` over the engine pool, result
store, and (optionally) persistence — in an
:class:`~repro.service.aserver.AsyncExtractionServer` that adds exactly one
route: ``POST /v1/cluster/solve`` (see
:func:`~repro.cluster.protocol.serve_solve`).  The worker keeps its own
``/v1/`` surface too, so an operator can hit ``/v1/stats`` or
``/v1/healthz`` on any host directly.

Membership is the worker's job: it registers with the leader at start
(retrying until the leader answers — start order is free), then heartbeats
from a daemon thread every ``heartbeat_s`` seconds.  A heartbeat answer of
``known: false`` means the leader does not hold this worker live (leader
restart, or a lease that expired while this process was wedged) — the
worker simply re-registers and carries on; all its warm state is still
here, and re-registration makes it routable again.  The heartbeat carries
the scheduler's load and warm-state report
(:func:`~repro.cluster.protocol.heartbeat_doc`), which feeds the leader's
load-aware placement.

``drain()`` flips the flag carried by every subsequent heartbeat: the
leader stops placing *new* fingerprints here while pinned ones keep being
served — the graceful way to retire a host.
"""

from __future__ import annotations

import threading
import uuid

from ..faults import fault_hook
from ..service.aserver import AsyncExtractionServer
from ..service.scheduler import Scheduler
from .protocol import heartbeat_doc, post_json, register_doc, serve_solve

__all__ = ["ClusterWorker"]


class ClusterWorker:
    """One worker host: scheduler + HTTP server + membership loop.

    ``scheduler_kwargs`` pass through to this host's
    :class:`~repro.service.scheduler.Scheduler` (worker counts, store
    budget, persistence, ...).
    """

    def __init__(
        self,
        leader_url: str,
        host: str = "127.0.0.1",
        port: int = 0,
        advertise_host: str | None = None,
        worker_id: str | None = None,
        auth_token: str | None = None,
        heartbeat_s: float = 2.0,
        register_attempts: int = 20,
        register_backoff_s: float = 0.25,
        solve_timeout_s: float = 600.0,
        **scheduler_kwargs,
    ) -> None:
        self.leader_url = leader_url.rstrip("/")
        self.worker_id = worker_id or f"worker-{uuid.uuid4().hex[:8]}"
        self.auth_token = auth_token
        self.heartbeat_s = float(heartbeat_s)
        self.register_attempts = int(register_attempts)
        self.register_backoff_s = float(register_backoff_s)
        self._advertise_host = advertise_host
        self.draining = False
        self.heartbeats_sent = 0
        self.heartbeat_errors = 0
        self.reregistrations = 0
        self.scheduler = Scheduler(**scheduler_kwargs)
        self.server = AsyncExtractionServer(
            host=host,
            port=port,
            scheduler=self.scheduler,
            auth_token=auth_token,
        )
        self.server.add_json_route(
            "POST",
            "/v1/cluster/solve",
            lambda doc: serve_solve(
                self.scheduler, doc, self.worker_id, timeout_s=solve_timeout_s
            ),
        )
        self._stop = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None

    # -------------------------------------------------------------- lifecycle
    @property
    def url(self) -> str:
        """The base URL this worker advertises to the leader."""
        url = self.server.url
        if self._advertise_host is not None:
            scheme, rest = url.split("://", 1)
            _, port = rest.rsplit(":", 1)
            url = f"{scheme}://{self._advertise_host}:{port}"
        return url

    def start(self) -> "ClusterWorker":
        self.server.start()
        self._register(attempts=self.register_attempts)
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop,
            name=f"heartbeat-{self.worker_id}",
            daemon=True,
        )
        self._heartbeat_thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=self.heartbeat_s + 5.0)
            self._heartbeat_thread = None
        self.server.close()
        self.scheduler.close()

    def __enter__(self) -> "ClusterWorker":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def drain(self, draining: bool = True) -> None:
        """Stop taking new fingerprints; announce it on the next heartbeat."""
        self.draining = bool(draining)
        try:
            self._send_heartbeat()
        except OSError:
            pass  # the regular loop will carry the flag once the leader is back

    # -------------------------------------------------------------- membership
    def _register(self, attempts: int) -> None:
        """Announce this worker to the leader, retrying while it boots."""
        last_error: Exception | None = None
        for attempt in range(attempts):
            if self._stop.is_set():
                return
            try:
                post_json(
                    self.leader_url + "/v1/cluster/register",
                    register_doc(self.worker_id, self.url),
                    timeout_s=10.0,
                    auth_token=self.auth_token,
                )
                return
            except OSError as exc:
                last_error = exc
                self._stop.wait(self.register_backoff_s * (attempt + 1))
        raise RuntimeError(
            f"worker {self.worker_id} could not register with leader at "
            f"{self.leader_url} after {attempts} attempts: {last_error}"
        )

    def _send_heartbeat(self) -> None:
        """One heartbeat round trip; re-registers when the leader forgot us."""
        answer = post_json(
            self.leader_url + "/v1/cluster/heartbeat",
            heartbeat_doc(self.worker_id, self.scheduler, draining=self.draining),
            timeout_s=10.0,
            auth_token=self.auth_token,
        )
        self.heartbeats_sent += 1
        if not answer.get("known", True):
            self.reregistrations += 1
            self._register(attempts=1)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_s):
            if fault_hook("worker.heartbeat", worker_id=self.worker_id):
                continue  # injected drop: skip this beat, let the lease decay
            try:
                self._send_heartbeat()
            except (OSError, RuntimeError):
                # leader briefly down or re-registration still failing: keep
                # beating — membership recovers as soon as the leader answers
                self.heartbeat_errors += 1
