"""Wire documents and RPC plumbing of the extraction cluster.

Everything that crosses a host boundary in the cluster is a JSON document
built from the primitives of :mod:`repro.service.wire` — tagged tuples,
base64 float64 arrays, the single error envelope — so the cluster wire
inherits the ``/v1`` protocol's guarantees: no pickle, fingerprint-exact
:class:`~repro.substrate.parallel.SolverSpec` round trips, and typed
exceptions on the client side.  Three documents are defined here:

============  ==============================================================
document      shape
============  ==============================================================
register      ``{"schema_version", "worker_id", "url"}`` — a worker
              announcing itself (or re-announcing after a leader restart)
heartbeat     ``{"schema_version", "worker_id", "draining", "queue_depth",
              "engines", "attributed_solves", "store_columns",
              "store_bytes", "fingerprints": [{"digest", "columns",
              "bytes"}, ...]}`` — the worker's load and warm-state report,
              fed into lease renewal and load-aware placement
completion    ``{"schema_version", "worker_id", "job_id", "columns",
              "block": <wire ndarray>, "attributed_solves"}`` — one solved
              column block coming back from a worker's
              ``/v1/cluster/solve``
============  ==============================================================

The module also owns both ends of the solve RPC: :func:`serve_solve` is the
worker-side route handler (wire request in, completion out — behind it sits
an ordinary single-host :class:`~repro.service.scheduler.Scheduler`), and
:func:`post_json` is the shared HTTP client used by the leader's RPCs and
the worker's heartbeats (bearer token attached, envelopes decoded to typed
exceptions; transport-level failures surface as ``OSError``/``URLError``
for the caller's dead-host logic).
"""

from __future__ import annotations

import json
from typing import Any
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import numpy as np

from ..faults import fault_hook
from ..service.jobs import SCHEMA_VERSION, JobState
from ..service.scheduler import QueueSaturatedError, Scheduler
from ..service.wire import (
    RouteResult,
    WireFormatError,
    decode_array,
    encode_array,
    error_envelope,
    raise_for_envelope,
    request_from_wire,
)

__all__ = [
    "register_doc",
    "register_from_wire",
    "heartbeat_doc",
    "heartbeat_from_wire",
    "completion_doc",
    "completion_from_wire",
    "serve_solve",
    "post_json",
]


def _require_str(doc: dict, key: str, what: str) -> str:
    value = doc.get(key)
    if not isinstance(value, str) or not value:
        raise WireFormatError(f"{what} requires a non-empty string {key!r}")
    return value


def _check_version(doc: Any, what: str) -> dict:
    if not isinstance(doc, dict):
        raise WireFormatError(f"{what} must be a JSON object")
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise WireFormatError(
            f"{what} has schema_version {version!r}; this build speaks "
            f"{SCHEMA_VERSION}"
        )
    return doc


# ------------------------------------------------------------------- register
def register_doc(worker_id: str, url: str) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "worker_id": str(worker_id),
        "url": str(url).rstrip("/"),
    }


def register_from_wire(doc: Any) -> tuple[str, str]:
    """Validated ``(worker_id, url)`` of one registration document."""
    doc = _check_version(doc, "register document")
    return (
        _require_str(doc, "worker_id", "register document"),
        _require_str(doc, "url", "register document").rstrip("/"),
    )


# ------------------------------------------------------------------ heartbeat
def heartbeat_doc(worker_id: str, scheduler: Scheduler, draining: bool = False) -> dict:
    """One worker's load/warm-state report, read off its live scheduler."""
    stats = scheduler.stats()
    store_info = stats["result_store"]
    return {
        "schema_version": SCHEMA_VERSION,
        "worker_id": str(worker_id),
        "draining": bool(draining),
        "queue_depth": int(stats["queue_depth"]),
        "engines": stats["engines"],
        "attributed_solves": int(stats["attributed_solves"]),
        "store_columns": int(store_info["columns"]),
        "store_bytes": int(store_info["bytes"]),
        "fingerprints": store_info["fingerprints"],
    }


def heartbeat_from_wire(doc: Any) -> dict:
    """Validated heartbeat fields (plain dict; the registry stores it as-is)."""
    doc = _check_version(doc, "heartbeat document")
    _require_str(doc, "worker_id", "heartbeat document")
    out = dict(doc)
    out["draining"] = bool(doc.get("draining"))
    out["queue_depth"] = int(doc.get("queue_depth") or 0)
    out["attributed_solves"] = int(doc.get("attributed_solves") or 0)
    out["store_columns"] = int(doc.get("store_columns") or 0)
    out["store_bytes"] = int(doc.get("store_bytes") or 0)
    fingerprints = doc.get("fingerprints")
    out["fingerprints"] = list(fingerprints) if isinstance(fingerprints, list) else []
    return out


# ----------------------------------------------------------------- completion
def completion_doc(
    worker_id: str,
    job_id: str,
    columns: tuple[int, ...],
    block: np.ndarray,
    attributed_solves: int,
) -> dict:
    return {
        "schema_version": SCHEMA_VERSION,
        "worker_id": str(worker_id),
        "job_id": str(job_id),
        "columns": [int(c) for c in columns],
        "block": encode_array(np.asarray(block, dtype=float)),
        "attributed_solves": int(attributed_solves),
    }


def completion_from_wire(doc: Any) -> dict:
    """Decoded completion: ``worker_id``/``job_id`` strings, ``columns``
    tuple, ``block`` float64 ndarray, ``attributed_solves`` int."""
    doc = _check_version(doc, "completion document")
    worker_id = _require_str(doc, "worker_id", "completion document")
    job_id = _require_str(doc, "job_id", "completion document")
    columns = doc.get("columns")
    if not isinstance(columns, list):
        raise WireFormatError("completion document requires a 'columns' list")
    block_doc = doc.get("block")
    if not isinstance(block_doc, dict):
        raise WireFormatError("completion document requires a 'block' array")
    block = decode_array(block_doc)
    if block.ndim != 2 or block.shape[1] != len(columns):
        raise WireFormatError(
            f"completion block shape {block.shape} does not match "
            f"{len(columns)} columns"
        )
    return {
        "worker_id": worker_id,
        "job_id": job_id,
        "columns": tuple(int(c) for c in columns),
        "block": block,
        "attributed_solves": int(doc.get("attributed_solves") or 0),
    }


# ------------------------------------------------------------- worker-side RPC
def serve_solve(
    scheduler: Scheduler,
    doc: Any,
    worker_id: str,
    timeout_s: float = 600.0,
) -> RouteResult:
    """Handle one leader solve RPC against this worker's scheduler.

    The body is an ordinary ``/v1`` request document restricted to explicit
    columns (the leader always sends the group's union of *missing*
    columns, so the worker solves exactly what the cluster still owes).
    Blocks until the local job is terminal and answers with a completion
    document carrying the block and this worker's cumulative attribution —
    the benchmark's exactly-once gate sums those across hosts.
    """
    if fault_hook("rpc.serve", worker_id=worker_id):
        # an injected drop: pretend the RPC never arrived (the leader's
        # timeout and retry own the recovery)
        return 503, error_envelope("unavailable", "solve RPC dropped (fault)"), {}
    try:
        request = request_from_wire(doc)
    except WireFormatError as exc:
        return 400, error_envelope("bad_request", f"bad solve document: {exc}"), {}
    if request.columns is None:
        return (
            400,
            error_envelope(
                "bad_request", "cluster solve requires an explicit column list"
            ),
            {},
        )
    try:
        job_id = scheduler.submit(request)
    except QueueSaturatedError as exc:
        return (
            429,
            error_envelope("queue_saturated", str(exc), retry_after=exc.retry_after_s),
            {"Retry-After": str(max(1, round(exc.retry_after_s)))},
        )
    except RuntimeError as exc:
        return 503, error_envelope("unavailable", str(exc)), {}
    job = scheduler.result(job_id, wait_s=timeout_s)
    if job.status != JobState.DONE:
        return (
            503,
            error_envelope(
                "unavailable",
                f"worker job {job_id} ended {job.status}: {job.error}",
            ),
            {},
        )
    attributed = int(scheduler.stats()["attributed_solves"])
    return (
        200,
        completion_doc(worker_id, job_id, request.columns, job.result, attributed),
        {},
    )


# ------------------------------------------------------------------ transport
def post_json(
    url: str,
    doc: dict,
    timeout_s: float = 30.0,
    auth_token: str | None = None,
) -> dict:
    """POST one JSON document; returns the parsed JSON answer.

    HTTP error answers decode through
    :func:`~repro.service.wire.raise_for_envelope` into the same typed
    exceptions the :class:`~repro.service.client.ServiceClient` raises.
    Transport failures (refused connection, reset, timeout) propagate as
    ``OSError``/``URLError`` — the leader treats those, and only those, as
    evidence the host is dead.
    """
    body = json.dumps(doc).encode()
    headers = {"Content-Type": "application/json"}
    if auth_token:
        headers["Authorization"] = f"Bearer {auth_token}"
    request = Request(url, data=body, method="POST", headers=headers)
    try:
        with urlopen(request, timeout=timeout_s) as response:
            return json.loads(response.read())
    except HTTPError as exc:
        payload = exc.read()
        try:
            error_doc: Any = json.loads(payload)
        except ValueError:
            error_doc = payload.decode("utf-8", errors="replace") or f"HTTP {exc.code}"
        raise_for_envelope(exc.code, error_doc)
        raise  # pragma: no cover - raise_for_envelope always raises
