"""The cluster leader: one front door, many worker hosts, zero local solves.

:class:`ClusterLeader` is deliberately thin: it is an ordinary
:class:`~repro.service.scheduler.Scheduler` behind an ordinary
:class:`~repro.service.aserver.AsyncExtractionServer`, with the scheduler's
``remote_solver`` hook plugged into route-and-RPC instead of a local engine
pool.  That one substitution buys the whole single-host feature set for the
cluster for free:

* **Coalescing** — concurrent client jobs over one fingerprint still merge
  into one union block; the worker sees a single solve RPC.
* **Result store** — columns any worker ever solved are served from the
  leader's store (and corpus, with persistence) with zero new RPCs.
* **Durability** — accepted jobs are journaled (fsync) before the ack,
  exactly as on a single host, so a leader crash loses no accepted work
  and replays it at restart — onto whatever hosts are alive then.
* **Failover** — a solve RPC that dies on a transport error marks its host
  dead in the :class:`~repro.cluster.registry.HostRegistry` and raises;
  the scheduler's existing :class:`~repro.service.scheduler.RetryPolicy`
  retries the batch, the
  :class:`~repro.cluster.routing.FingerprintRouter` re-places the now
  host-less pin on a survivor, and the per-fingerprint circuit breaker
  still bounds a substrate nothing can serve.  Columns that landed before
  the failure sit in the result store, so the retry re-solves only what
  the dead host still owed.

Cluster control endpoints (same bearer token as ``/v1/``):

========  ======================  =======================================
method    path                    body / behaviour
========  ======================  =======================================
POST      /v1/cluster/register    register document → ``{"worker_id",
                                  "lease_s"}``
POST      /v1/cluster/heartbeat   heartbeat document → ``{"known"}``
                                  (``false`` asks the worker to
                                  re-register)
GET       /v1/cluster/hosts       registry + router view (operators)
========  ======================  =======================================
"""

from __future__ import annotations

from ..faults import fault_hook
from ..service.aserver import AsyncExtractionServer
from ..service.jobs import SCHEMA_VERSION, JobRequest
from ..service.scheduler import Scheduler
from ..service.wire import (
    RouteResult,
    WireFormatError,
    error_envelope,
    request_to_wire,
)
from .protocol import (
    completion_from_wire,
    heartbeat_from_wire,
    post_json,
    register_from_wire,
)
from .registry import HostRegistry
from .routing import FingerprintRouter

__all__ = ["ClusterLeader", "ClusterRPCError"]


class ClusterRPCError(RuntimeError):
    """A worker solve RPC failed at the transport level (host marked dead)."""


class ClusterLeader:
    """Leader process: registry + router + remote-solving scheduler + HTTP.

    ``scheduler_kwargs`` pass through to the leader's
    :class:`~repro.service.scheduler.Scheduler` (persistence, queue bounds,
    retry policy, coalesce window...).  ``n_workers``/``max_solvers`` are
    meaningless here — the leader never builds an engine.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: str | None = None,
        lease_s: float = 10.0,
        rpc_timeout_s: float = 600.0,
        router_replicas: int = 64,
        load_skew: int = 4,
        **scheduler_kwargs,
    ) -> None:
        self.auth_token = auth_token
        self.rpc_timeout_s = float(rpc_timeout_s)
        self.registry = HostRegistry(lease_s=lease_s)
        self.router = FingerprintRouter(
            self.registry, replicas=router_replicas, load_skew=load_skew
        )
        self.rpc_calls = 0
        self.rpc_failures = 0
        scheduler_kwargs.setdefault("n_workers", 1)
        scheduler_kwargs.setdefault("max_solvers", 1)
        # groups pinned to different hosts must solve concurrently — the
        # leader's "solve" is waiting on a worker RPC, and serialising
        # those would cap the whole cluster at single-host throughput
        scheduler_kwargs.setdefault("group_concurrency", 8)
        self.scheduler = Scheduler(
            remote_solver=self._solve_remote,
            stats_extra=self._cluster_stats,
            **scheduler_kwargs,
        )
        self.server = AsyncExtractionServer(
            host=host,
            port=port,
            scheduler=self.scheduler,
            auth_token=auth_token,
        )
        self.server.add_json_route("POST", "/v1/cluster/register", self._register_route)
        self.server.add_json_route("POST", "/v1/cluster/heartbeat", self._heartbeat_route)
        self.server.add_json_route("GET", "/v1/cluster/hosts", self._hosts_route)

    # -------------------------------------------------------------- lifecycle
    @property
    def url(self) -> str:
        return self.server.url

    def start(self) -> "ClusterLeader":
        self.server.start()
        return self

    def close(self) -> None:
        self.server.close()
        self.scheduler.close()

    def __enter__(self) -> "ClusterLeader":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------ remote path
    def _solve_remote(self, fingerprint: tuple, spec, columns: tuple[int, ...]):
        """Route one coalesced group's missing columns to its worker host.

        This runs inside the scheduler's
        :meth:`~repro.service.scheduler.Scheduler._solve_group` attempt, so
        raising here feeds straight into retry/backoff and the breaker.  A
        transport-level failure (refused, reset, timed out — all
        ``OSError``) evicts the host before raising, which is what makes
        the *retry* land on a survivor; an HTTP-level error (a 429 from a
        saturated worker, a 400) leaves membership alone — the host
        answered, so it is alive.
        """
        host = self.router.route(fingerprint)
        request = JobRequest(spec, columns=tuple(int(c) for c in columns))
        self.rpc_calls += 1
        try:
            fault_hook("rpc.send", worker_id=host.worker_id)
            answer = post_json(
                host.url + "/v1/cluster/solve",
                request_to_wire(request),
                timeout_s=self.rpc_timeout_s,
                auth_token=self.auth_token,
            )
        except OSError as exc:
            self.rpc_failures += 1
            self.registry.mark_dead(
                host.worker_id, f"solve RPC failed: {type(exc).__name__}: {exc}"
            )
            raise ClusterRPCError(
                f"solve RPC to {host.worker_id} ({host.url}) failed: {exc}"
            ) from exc
        completion = completion_from_wire(answer)
        if completion["columns"] != tuple(request.columns):
            raise ClusterRPCError(
                f"worker {completion['worker_id']} answered columns "
                f"{completion['columns']}, asked for {tuple(request.columns)}"
            )
        return completion["block"]

    def _cluster_stats(self) -> dict:
        return {
            "cluster": {
                "registry": self.registry.info(),
                "router": self.router.info(),
                "rpc_calls": self.rpc_calls,
                "rpc_failures": self.rpc_failures,
            }
        }

    # -------------------------------------------------------- control routes
    def _register_route(self, doc) -> RouteResult:
        try:
            worker_id, url = register_from_wire(doc)
        except WireFormatError as exc:
            return 400, error_envelope("bad_request", str(exc)), {}
        self.registry.register(worker_id, url)
        return (
            200,
            {
                "schema_version": SCHEMA_VERSION,
                "worker_id": worker_id,
                "lease_s": self.registry.lease_s,
            },
            {},
        )

    def _heartbeat_route(self, doc) -> RouteResult:
        try:
            heartbeat = heartbeat_from_wire(doc)
        except WireFormatError as exc:
            return 400, error_envelope("bad_request", str(exc)), {}
        known = self.registry.heartbeat(heartbeat["worker_id"], heartbeat)
        return (
            200,
            {
                "schema_version": SCHEMA_VERSION,
                "known": known,
                "lease_s": self.registry.lease_s,
            },
            {},
        )

    def _hosts_route(self, doc) -> RouteResult:
        body = {"schema_version": SCHEMA_VERSION, **self.registry.info()}
        body["router"] = self.router.info()
        return 200, body, {}
