"""Cluster membership: which worker hosts exist, and which are alive.

The leader's :class:`HostRegistry` is the single source of truth the router
consults.  A worker enters by registering (worker id + base URL) and stays
live by heartbeating inside its lease; expiry is evaluated **lazily on
read** — :meth:`live` sweeps overdue hosts into the dead set as it answers,
so no timer thread races the dispatcher.  A host leaves three ways:

* **lease expiry** — no heartbeat for ``lease_s`` seconds;
* **marked dead** — the leader's RPC layer hit a transport failure talking
  to it (a refused/reset/timed-out solve call is better evidence than any
  heartbeat, so it takes effect immediately);
* **draining** — the host asked to be excluded from *new* fingerprint
  placements (it keeps serving what it holds until its groups move).

A dead host that registers again is resurrected with a clean record — the
worker process restarting is the normal recovery path, and its heartbeats
re-earn the lease.  Every membership change lands in a bounded event log
(``info()["events"]``) for operators.

Thread-safety: one lock over all state; every public method is safe to
call from the HTTP executor threads and the dispatcher concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

__all__ = ["HostRecord", "HostRegistry"]

#: membership events kept for operators (each: time, kind, worker_id, detail)
EVENT_LOG_LIMIT = 256


@dataclass
class HostRecord:
    """One worker host as the leader sees it."""

    worker_id: str
    url: str
    registered_at: float
    last_heartbeat: float
    lease_s: float
    draining: bool = False
    heartbeats: int = 0
    #: the latest heartbeat's load/warm-state fields (queue depth, engines,
    #: per-fingerprint store occupancy) — placement reads these
    stats: dict = field(default_factory=dict)

    def expired(self, now: float) -> bool:
        return now - self.last_heartbeat > self.lease_s

    @property
    def queue_depth(self) -> int:
        return int(self.stats.get("queue_depth") or 0)

    def info(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "url": self.url,
            "draining": self.draining,
            "heartbeats": self.heartbeats,
            "lease_s": self.lease_s,
            "age_s": max(time.monotonic() - self.registered_at, 0.0),
            "since_heartbeat_s": max(time.monotonic() - self.last_heartbeat, 0.0),
            "queue_depth": self.queue_depth,
            "stats": self.stats,
        }


class HostRegistry:
    """Leader-side membership table with heartbeat leases (see module doc)."""

    def __init__(self, lease_s: float = 10.0) -> None:
        if lease_s <= 0:
            raise ValueError("lease_s must be positive")
        self.lease_s = float(lease_s)
        self._lock = threading.Lock()
        # reprolint: guarded-by(_lock)
        self._hosts: dict[str, HostRecord] = {}
        #: dead worker_id -> reason (expired lease, transport failure)
        self._dead: dict[str, str] = {}  # reprolint: guarded-by(_lock)
        self._events: "deque[dict]" = deque(maxlen=EVENT_LOG_LIMIT)  # reprolint: guarded-by(_lock)
        self.registrations = 0  # reprolint: guarded-by(_lock)
        self.expirations = 0  # reprolint: guarded-by(_lock)
        self.deaths = 0  # reprolint: guarded-by(_lock)

    # reprolint: holds(_lock)
    def _log_locked(self, kind: str, worker_id: str, detail: str = "") -> None:
        self._events.append(
            {
                "t": time.time(),
                "kind": kind,
                "worker_id": worker_id,
                "detail": detail,
            }
        )

    # reprolint: holds(_lock)
    def _sweep_locked(self, now: float) -> None:
        """Move lease-expired hosts to the dead set (lazy, on every read)."""
        for worker_id in [w for w, h in self._hosts.items() if h.expired(now)]:
            host = self._hosts.pop(worker_id)
            self._dead[worker_id] = "lease expired"
            self.expirations += 1
            self._log_locked(
                "expired",
                worker_id,
                f"no heartbeat for {now - host.last_heartbeat:.1f}s "
                f"(lease {host.lease_s:g}s)",
            )

    # ------------------------------------------------------------- membership
    def register(self, worker_id: str, url: str) -> HostRecord:
        """Admit (or resurrect, or refresh) one worker host."""
        now = time.monotonic()
        with self._lock:
            self._dead.pop(worker_id, None)
            record = self._hosts.get(worker_id)
            if record is None:
                record = self._hosts[worker_id] = HostRecord(
                    worker_id=worker_id,
                    url=url.rstrip("/"),
                    registered_at=now,
                    last_heartbeat=now,
                    lease_s=self.lease_s,
                )
                self.registrations += 1
                self._log_locked("registered", worker_id, url)
            else:
                # re-registration refreshes the lease and may move the URL
                # (a worker restarted on a new port keeps its identity)
                record.url = url.rstrip("/")
                record.last_heartbeat = now
                record.draining = False
                self._log_locked("re-registered", worker_id, url)
            return record

    def heartbeat(self, worker_id: str, stats: dict) -> bool:
        """Renew one host's lease with its latest report.

        Returns ``False`` for a host this registry does not hold live —
        the worker should re-register (the leader may have restarted, or
        the lease may have expired while the worker was wedged).
        """
        now = time.monotonic()
        with self._lock:
            self._sweep_locked(now)
            record = self._hosts.get(worker_id)
            if record is None:
                return False
            record.last_heartbeat = now
            record.heartbeats += 1
            record.draining = bool(stats.get("draining"))
            record.stats = stats
            return True

    def mark_dead(self, worker_id: str, reason: str) -> bool:
        """Evict one host immediately (the RPC layer saw it fail)."""
        with self._lock:
            host = self._hosts.pop(worker_id, None)
            if host is None:
                return False
            self._dead[worker_id] = reason
            self.deaths += 1
            self._log_locked("dead", worker_id, reason)
            return True

    def drain(self, worker_id: str, draining: bool = True) -> bool:
        """Flip one host's draining flag; False when the host is not live."""
        with self._lock:
            host = self._hosts.get(worker_id)
            if host is None:
                return False
            host.draining = bool(draining)
            self._log_locked("draining" if draining else "undraining", worker_id)
            return True

    # ---------------------------------------------------------------- queries
    def live(self, now: float | None = None) -> list[HostRecord]:
        """Every host currently inside its lease (sweeps expired ones)."""
        now = time.monotonic() if now is None else now
        with self._lock:
            self._sweep_locked(now)
            return list(self._hosts.values())

    def get(self, worker_id: str) -> HostRecord | None:
        with self._lock:
            self._sweep_locked(time.monotonic())
            return self._hosts.get(worker_id)

    def dead(self) -> dict[str, str]:
        """``{worker_id: reason}`` of hosts that left involuntarily."""
        with self._lock:
            return dict(self._dead)

    def info(self) -> dict:
        """Operator view: hosts, dead set, counters, recent events."""
        hosts = self.live()
        with self._lock:
            return {
                "hosts": [h.info() for h in hosts],
                "dead": dict(self._dead),
                "registrations": self.registrations,
                "expirations": self.expirations,
                "deaths": self.deaths,
                "events": list(self._events),
            }
