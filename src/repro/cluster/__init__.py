"""Leader/worker clustering for the extraction service.

One leader owns the public ``/v1/`` front door (async server, JSON wire,
auth, coalescing, result store, durability) and routes each substrate
fingerprint group to exactly one worker host; each worker runs today's
unmodified single-host stack behind a single solve RPC.  The pieces:

==============================  ===========================================
module                          role
==============================  ===========================================
:mod:`~repro.cluster.leader`    :class:`ClusterLeader` — front door +
                                registry + router + remote-solving
                                scheduler
:mod:`~repro.cluster.worker`    :class:`ClusterWorker` — scheduler +
                                ``/v1/cluster/solve`` + heartbeat loop
:mod:`~repro.cluster.registry`  :class:`HostRegistry` — membership,
                                heartbeat leases, draining, dead set
:mod:`~repro.cluster.routing`   :class:`FingerprintRouter` — sticky
                                consistent hashing with load-aware
                                placement
:mod:`~repro.cluster.protocol`  wire documents (register / heartbeat /
                                completion) and both ends of the solve RPC
==============================  ===========================================

Run a cluster from the command line with ``python -m repro.cluster leader``
and ``python -m repro.cluster worker --leader URL`` (see the README's
"Cluster" section), or in-process::

    from repro.cluster import ClusterLeader, ClusterWorker

    with ClusterLeader() as leader:
        with ClusterWorker(leader.url) as w1, ClusterWorker(leader.url) as w2:
            with ServiceClient(leader.url) as client:
                g_cols = client.extract(JobRequest(spec, columns=(0, 5, 9)))
"""

from .leader import ClusterLeader, ClusterRPCError
from .registry import HostRecord, HostRegistry
from .routing import FingerprintRouter, NoWorkersError
from .worker import ClusterWorker

__all__ = [
    "ClusterLeader",
    "ClusterRPCError",
    "ClusterWorker",
    "HostRecord",
    "HostRegistry",
    "FingerprintRouter",
    "NoWorkersError",
]
