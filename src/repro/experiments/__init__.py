"""Evaluation workloads and runners regenerating the paper's tables."""

from .examples import ExampleConfig, chapter4_examples, get_example, paper_examples
from .runner import (
    SparsificationResult,
    run_batched_extraction_experiment,
    run_dispatch_experiment,
    run_durable_experiment,
    run_factor_plane_experiment,
    run_faults_experiment,
    run_lowrank_experiment,
    run_method_comparison,
    run_parallel_extraction_experiment,
    run_preconditioner_table,
    run_service_experiment,
    run_solver_speed_table,
    run_wavelet_experiment,
    singular_value_decay_experiment,
)

__all__ = [
    "ExampleConfig",
    "paper_examples",
    "chapter4_examples",
    "get_example",
    "SparsificationResult",
    "run_wavelet_experiment",
    "run_lowrank_experiment",
    "run_method_comparison",
    "run_preconditioner_table",
    "run_solver_speed_table",
    "run_batched_extraction_experiment",
    "run_dispatch_experiment",
    "run_durable_experiment",
    "run_factor_plane_experiment",
    "run_faults_experiment",
    "run_parallel_extraction_experiment",
    "run_service_experiment",
    "singular_value_decay_experiment",
]
