"""The paper's evaluation examples as reusable configurations.

Chapter 3 evaluates the wavelet method on Examples 1a, 1b, 2 and 3
(Table 3.1); Chapter 4 compares the low-rank and wavelet methods on the
regular grid, the alternating-size grid and a mixed-shape layout
(Tables 4.1/4.2) and reports two larger runs (Table 4.3).  This module
captures each example as a small configuration object so tests, the example
scripts and the benchmark harness all use exactly the same workloads.

The paper's substrate is 128 x 128 x 40 with a two-layer profile (bottom
conductivity 100x the top) and, to emulate a floating backplane with a
grounded-backplane solver, a thin resistive layer above the backplane
(Section 3.7).  Example sizes default to the paper's scale but can be scaled
down by the caller (useful for quick tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..geometry import (
    ContactLayout,
    SquareHierarchy,
    alternating_size_grid,
    irregular_same_size,
    large_alternating_grid,
    large_mixed,
    mixed_shapes,
    regular_grid,
)
from ..substrate import SubstrateProfile
from ..substrate.parallel import SolverSpec
from ..substrate.solver_base import SubstrateSolver

__all__ = ["ExampleConfig", "paper_examples", "chapter4_examples", "get_example"]


@dataclass
class ExampleConfig:
    """One evaluation workload.

    Attributes
    ----------
    name:
        Identifier used in tables ("1a", "2", "ch4-3", ...).
    description:
        Human-readable summary matching the paper's description.
    layout_factory:
        Zero-argument callable building the contact layout.
    solver:
        "bem" (eigenfunction solver, the default in the paper) or "fd".
    max_level:
        Quadtree depth for the sparsification hierarchy.
    max_panels:
        Panel-per-side cap of the eigenfunction solver.
    """

    name: str
    description: str
    layout_factory: Callable[[], ContactLayout]
    solver: str = "bem"
    max_level: int = 4
    max_panels: int = 128
    fd_resolution: tuple[int, int] = (32, 32)
    fd_planes_per_layer: tuple[int, ...] = (2, 4, 2)

    def build_layout(self) -> ContactLayout:
        return self.layout_factory()

    def build_profile(self, size: float) -> SubstrateProfile:
        return SubstrateProfile.two_layer_example(size=size, resistive_bottom=True)

    def build_hierarchy(self, layout: ContactLayout) -> SquareHierarchy:
        return SquareHierarchy(layout, max_level=self.max_level)

    def build_solver(self, layout: ContactLayout) -> SubstrateSolver:
        # one source of truth for the per-kind constructor arguments: the
        # serial solver is the spec's solver, so the parallel worker path can
        # never drift from what build_solver would have produced
        return self.build_spec(layout).build()

    def build_spec(self, layout: ContactLayout | None = None, **overrides) -> SolverSpec:
        """Picklable :class:`~repro.substrate.parallel.SolverSpec` of this workload.

        The spec rebuilds a solver equivalent to :meth:`build_solver` in any
        process (the layout factory itself is usually a lambda, so the spec
        captures the *built* layout instead).  ``overrides`` are stored into
        the spec's constructor options (e.g. ``fft_workers=1``).
        """
        layout = self.build_layout() if layout is None else layout
        profile = self.build_profile(layout.size_x)
        if self.solver == "bem":
            return SolverSpec.bem(
                layout, profile, max_panels=self.max_panels, **overrides
            )
        if self.solver == "fd":
            return SolverSpec.fd(
                layout,
                profile,
                nx=self.fd_resolution[0],
                ny=self.fd_resolution[1],
                planes_per_layer=tuple(self.fd_planes_per_layer),
                **overrides,
            )
        raise ValueError(f"unknown solver kind {self.solver!r}")


def paper_examples(n_side: int = 16, size: float = 128.0) -> dict[str, ExampleConfig]:
    """Chapter 3 examples (Table 3.1), scaled by ``n_side`` contacts per side.

    * 1a — regular grid, eigenfunction solver (Figure 3-6),
    * 1b — same layout, finite-difference solver,
    * 2  — irregular placement of same-size contacts (Figure 3-7),
    * 3  — alternating-size regular grid (Figure 3-8).
    """
    max_level = max(2, (n_side - 1).bit_length())
    return {
        "1a": ExampleConfig(
            "1a",
            "regular grid of identical contacts (eigenfunction solver)",
            lambda: regular_grid(n_side=n_side, size=size, fill=0.5),
            solver="bem",
            max_level=max_level,
        ),
        "1b": ExampleConfig(
            "1b",
            "regular grid of identical contacts (finite-difference solver)",
            lambda: regular_grid(n_side=n_side, size=size, fill=0.5),
            solver="fd",
            max_level=max_level,
        ),
        "2": ExampleConfig(
            "2",
            "same-size contacts, irregular placement with gaps",
            lambda: irregular_same_size(n_side=n_side, size=size, fill=0.5),
            solver="bem",
            max_level=max_level,
        ),
        "3": ExampleConfig(
            "3",
            "regular grid of alternating-size contacts",
            lambda: alternating_size_grid(n_side=n_side, size=size),
            solver="bem",
            max_level=max_level,
        ),
    }


def chapter4_examples(n_side: int = 16, size: float = 128.0) -> dict[str, ExampleConfig]:
    """Chapter 4 examples (Tables 4.1-4.3), scaled by ``n_side``.

    * ch4-1 — regular grid (same as Example 1a),
    * ch4-2 — alternating-size grid (the wavelet method's weak spot),
    * ch4-3 — irregular mixed-shape layout with rings and long thin contacts,
    * ch4-4 — larger alternating-size grid (Table 4.3, Example 4),
    * ch4-5 — large mixed large/small contact layout (Table 4.3, Example 5).
    """
    max_level = max(2, (n_side - 1).bit_length())
    large_side = 2 * n_side
    return {
        "ch4-1": ExampleConfig(
            "ch4-1",
            "regular grid of identical contacts",
            lambda: regular_grid(n_side=n_side, size=size, fill=0.5),
            max_level=max_level,
        ),
        "ch4-2": ExampleConfig(
            "ch4-2",
            "alternating-size contact grid",
            lambda: alternating_size_grid(n_side=n_side, size=size),
            max_level=max_level,
        ),
        "ch4-3": ExampleConfig(
            "ch4-3",
            "mixed shapes: small squares, buses and guard rings",
            lambda: mixed_shapes(size=size, max_level=max_level),
            max_level=max_level,
        ),
        "ch4-4": ExampleConfig(
            "ch4-4",
            "large alternating-size grid (Table 4.3 example 4)",
            lambda: large_alternating_grid(n_side=large_side, size=2 * size),
            max_level=max_level + 1,
            max_panels=256,
        ),
        "ch4-5": ExampleConfig(
            "ch4-5",
            "large mixed large/small contact layout (Table 4.3 example 5)",
            lambda: large_mixed(size=2 * size, max_level=max_level + 1),
            max_level=max_level + 1,
            max_panels=256,
        ),
    }


def get_example(name: str, n_side: int = 16, size: float = 128.0) -> ExampleConfig:
    """Look up an example configuration by table name."""
    table = paper_examples(n_side=n_side, size=size)
    table.update(chapter4_examples(n_side=n_side, size=size))
    if name not in table:
        raise KeyError(f"unknown example {name!r}; available: {sorted(table)}")
    return table[name]
