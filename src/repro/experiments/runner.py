"""Experiment runners that regenerate the paper's tables.

Each function corresponds to one table (or figure) of the evaluation and
returns plain data structures (lists of dicts / dataclasses) that the
benchmark harness prints and that EXPERIMENTS.md records.  Keeping the logic
here means the benchmarks, the example scripts and the tests all execute the
same code paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..analysis.metrics import (
    AccuracyReport,
    evaluate_against_columns,
    evaluate_against_dense,
)
from ..core.lowrank import LowRankSparsifier
from ..core.wavelet import WaveletSparsifier
from ..geometry import ContactLayout
from ..substrate import CountingSolver, DenseMatrixSolver, extract_columns, extract_dense
from ..substrate.fd import PRECONDITIONER_NAMES, FiniteDifferenceSolver
from ..substrate.solver_base import SubstrateSolver
from .examples import ExampleConfig

__all__ = [
    "SparsificationResult",
    "run_wavelet_experiment",
    "run_lowrank_experiment",
    "run_method_comparison",
    "run_preconditioner_table",
    "run_solver_speed_table",
    "run_batched_extraction_experiment",
    "run_dispatch_experiment",
    "run_factor_plane_experiment",
    "run_parallel_extraction_experiment",
    "run_durable_experiment",
    "run_service_experiment",
    "singular_value_decay_experiment",
]


@dataclass
class SparsificationResult:
    """Result of one sparsification run on one example."""

    example: str
    method: str
    unthresholded: AccuracyReport
    thresholded: AccuracyReport

    def rows(self) -> list[dict[str, float | int | str]]:
        u = self.unthresholded.as_dict()
        t = self.thresholded.as_dict()
        u["example"] = t["example"] = self.example
        u["thresholded"] = False
        t["thresholded"] = True
        return [u, t]


def _reference_solver(config: ExampleConfig, layout: ContactLayout) -> SubstrateSolver:
    return config.build_solver(layout)


def _exact_reference(
    solver: SubstrateSolver,
    layout: ContactLayout,
    max_dense: int,
    sample_columns: int,
    seed: int = 0,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Dense G for small problems, a column sample for large ones (Table 4.3)."""
    n = layout.n_contacts
    if n <= max_dense:
        return extract_dense(solver, symmetrize=True), None, None
    rng = np.random.default_rng(seed)
    columns = np.sort(rng.choice(n, size=min(sample_columns, n), replace=False))
    return None, columns, extract_columns(solver, columns)


def _evaluate(rep, g_dense, columns, g_columns) -> AccuracyReport:
    if g_dense is not None:
        return evaluate_against_dense(rep, g_dense)
    return evaluate_against_columns(rep, columns, g_columns)


def run_wavelet_experiment(
    config: ExampleConfig,
    order: int = 2,
    threshold_multiplier: float = 6.0,
    max_dense: int = 1600,
    sample_columns: int = 96,
) -> SparsificationResult:
    """Table 3.1 row: wavelet sparsity/accuracy on one example."""
    layout = config.build_layout()
    hierarchy = config.build_hierarchy(layout)
    solver = _reference_solver(config, layout)
    g_dense, columns, g_columns = _exact_reference(solver, layout, max_dense, sample_columns)

    if g_dense is not None:
        black_box: SubstrateSolver = DenseMatrixSolver(g_dense, layout)
    else:
        black_box = solver
    counting = CountingSolver(black_box)
    sparsifier = WaveletSparsifier(hierarchy, order=order)
    rep = sparsifier.extract(counting)
    rep_t = rep.threshold_to_sparsity(rep.sparsity_factor() * threshold_multiplier)
    return SparsificationResult(
        config.name,
        "wavelet",
        _evaluate(rep, g_dense, columns, g_columns),
        _evaluate(rep_t, g_dense, columns, g_columns),
    )


def run_lowrank_experiment(
    config: ExampleConfig,
    max_rank: int = 6,
    threshold_multiplier: float = 6.0,
    max_dense: int = 1600,
    sample_columns: int = 96,
    seed: int = 0,
) -> SparsificationResult:
    """Tables 4.1/4.3 row: low-rank sparsity/accuracy on one example."""
    layout = config.build_layout()
    hierarchy = config.build_hierarchy(layout)
    solver = _reference_solver(config, layout)
    g_dense, columns, g_columns = _exact_reference(solver, layout, max_dense, sample_columns)

    if g_dense is not None:
        black_box: SubstrateSolver = DenseMatrixSolver(g_dense, layout)
    else:
        black_box = solver
    counting = CountingSolver(black_box)
    sparsifier = LowRankSparsifier(hierarchy, max_rank=max_rank, seed=seed)
    sparsifier.build(counting)
    rep = sparsifier.to_sparsified()
    rep_t = rep.threshold_to_sparsity(rep.sparsity_factor() * threshold_multiplier)
    return SparsificationResult(
        config.name,
        "lowrank",
        _evaluate(rep, g_dense, columns, g_columns),
        _evaluate(rep_t, g_dense, columns, g_columns),
    )


def run_method_comparison(
    config: ExampleConfig,
    threshold_multiplier: float = 6.0,
    max_dense: int = 1600,
    sample_columns: int = 96,
) -> dict[str, SparsificationResult]:
    """Tables 4.1 and 4.2: low-rank versus wavelet on the same example and G.

    Both methods see the same extracted reference so the comparison isolates
    the sparsification quality.
    """
    layout = config.build_layout()
    hierarchy = config.build_hierarchy(layout)
    solver = _reference_solver(config, layout)
    g_dense, columns, g_columns = _exact_reference(solver, layout, max_dense, sample_columns)
    if g_dense is not None:
        black_box: SubstrateSolver = DenseMatrixSolver(g_dense, layout)
    else:
        black_box = solver

    results: dict[str, SparsificationResult] = {}

    counting = CountingSolver(black_box)
    wavelet = WaveletSparsifier(hierarchy, order=2)
    rep_w = wavelet.extract(counting)
    rep_wt = rep_w.threshold_to_sparsity(rep_w.sparsity_factor() * threshold_multiplier)
    results["wavelet"] = SparsificationResult(
        config.name,
        "wavelet",
        _evaluate(rep_w, g_dense, columns, g_columns),
        _evaluate(rep_wt, g_dense, columns, g_columns),
    )

    counting = CountingSolver(black_box)
    lowrank = LowRankSparsifier(hierarchy, max_rank=6)
    lowrank.build(counting)
    rep_l = lowrank.to_sparsified()
    rep_lt = rep_l.threshold_to_sparsity(rep_l.sparsity_factor() * threshold_multiplier)
    results["lowrank"] = SparsificationResult(
        config.name,
        "lowrank",
        _evaluate(rep_l, g_dense, columns, g_columns),
        _evaluate(rep_lt, g_dense, columns, g_columns),
    )

    # Table 4.2 also thresholds the wavelet representation to the *same
    # sparsity* as the thresholded low-rank representation.
    rep_w_equal = rep_w.threshold_to_sparsity(rep_lt.sparsity_factor())
    results["wavelet@lowrank-sparsity"] = SparsificationResult(
        config.name,
        "wavelet@lowrank-sparsity",
        results["wavelet"].unthresholded,
        _evaluate(rep_w_equal, g_dense, columns, g_columns),
    )
    return results


def run_preconditioner_table(
    config: ExampleConfig,
    preconditioners: tuple[str, ...] = (
        "fast_poisson_dirichlet",
        "fast_poisson_neumann",
        "fast_poisson_area",
        "ic",
        "jacobi",
    ),
    n_solves: int = 8,
    seed: int = 0,
) -> list[dict[str, float | str]]:
    """Table 2.1: average PCG iterations per solve for each preconditioner."""
    layout = config.build_layout()
    profile = config.build_profile(layout.size_x)
    rng = np.random.default_rng(seed)
    rows: list[dict[str, float | str]] = []
    for name in preconditioners:
        if name not in PRECONDITIONER_NAMES:
            raise ValueError(f"unknown preconditioner {name}")
        solver = FiniteDifferenceSolver(
            layout,
            profile,
            nx=config.fd_resolution[0],
            ny=config.fd_resolution[1],
            planes_per_layer=config.fd_planes_per_layer,
            preconditioner=name,
        )
        start = time.perf_counter()
        for _ in range(n_solves):
            voltages = rng.standard_normal(layout.n_contacts)
            solver.solve_currents(voltages)
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "preconditioner": name,
                "mean_iterations": solver.mean_iterations_per_solve(),
                "time_per_solve_s": elapsed / n_solves,
            }
        )
    return rows


def run_solver_speed_table(
    config: ExampleConfig, n_solves: int = 8, seed: int = 0
) -> list[dict[str, float | str]]:
    """Table 2.2: iterations and time per solve, finite-difference vs eigenfunction."""
    layout = config.build_layout()
    rng = np.random.default_rng(seed)
    rows: list[dict[str, float | str]] = []
    for kind in ("fd", "bem"):
        cfg = ExampleConfig(
            config.name,
            config.description,
            config.layout_factory,
            solver=kind,
            max_level=config.max_level,
            max_panels=config.max_panels,
            fd_resolution=config.fd_resolution,
            fd_planes_per_layer=config.fd_planes_per_layer,
        )
        solver = cfg.build_solver(layout)
        start = time.perf_counter()
        for _ in range(n_solves):
            voltages = rng.standard_normal(layout.n_contacts)
            solver.solve_currents(voltages)
        elapsed = time.perf_counter() - start
        mean_iters = solver.mean_iterations_per_solve()  # type: ignore[attr-defined]
        rows.append(
            {
                "solver": "finite difference" if kind == "fd" else "eigenfunction",
                "mean_iterations": mean_iters,
                "time_per_solve_s": elapsed / n_solves,
            }
        )
    return rows


def run_batched_extraction_experiment(
    n_side: int = 16,
    size: float = 128.0,
    fill: float = 0.5,
    rtol: float = 1e-8,
    max_panels: int = 256,
    repeats: int = 3,
    force_path: str | None = None,
    fft_workers: int | None = None,
) -> dict[str, float | int]:
    """Sequential versus batched dense extraction on a regular contact grid.

    Times the naive one-``solve_currents``-per-contact extraction against the
    same extraction submitted as a single ``solve_many`` block, and records
    the agreement between the two ``G`` matrices.  Each measurement is
    repeated ``repeats`` times on a freshly constructed solver with the
    process-wide factor cache disabled, so no solver-level or process-level
    cache (Cholesky factor, work buffers) survives between repetitions, and
    the minimum is reported, which suppresses scheduler noise.  Solver
    construction itself — including the eigenvalue-table memoisation — stays
    outside the timed region for both paths.  This is the experiment behind
    ``BENCH_batched.json``; warm-cache behaviour is measured separately by
    :func:`run_parallel_extraction_experiment`.
    """
    from ..geometry.layouts import regular_grid
    from ..substrate.bem.solver import EigenfunctionSolver
    from ..substrate.dispatch import DispatchPolicy
    from ..substrate.profile import SubstrateProfile

    layout = regular_grid(n_side=n_side, size=size, fill=fill)
    profile = SubstrateProfile.two_layer_example(size=size, resistive_bottom=True)
    n = layout.n_contacts

    def build() -> EigenfunctionSolver:
        return EigenfunctionSolver(
            layout,
            profile,
            max_panels=max_panels,
            rtol=rtol,
            dispatch=DispatchPolicy(force_path=force_path),
            fft_workers=fft_workers,
            use_factor_cache=False,
        )

    t_seq = np.inf
    for _ in range(max(1, repeats)):
        solver_seq = build()
        start = time.perf_counter()
        g_seq = np.empty((n, n))
        for i in range(n):
            e = np.zeros(n)
            e[i] = 1.0
            g_seq[:, i] = solver_seq.solve_currents(e)
        t_seq = min(t_seq, time.perf_counter() - start)

    t_batch = np.inf
    for _ in range(max(1, repeats)):
        solver_batch = build()
        start = time.perf_counter()
        g_batch = extract_dense(solver_batch)
        t_batch = min(t_batch, time.perf_counter() - start)

    scale = float(np.abs(g_seq).max())
    used_direct = solver_batch.stats.n_direct_solves > 0
    return {
        "n_side": int(n_side),
        "n_contacts": int(n),
        "panel_grid": int(solver_batch.grid.nx),
        "repeats": int(max(1, repeats)),
        "sequential_s": float(t_seq),
        "batched_s": float(t_batch),
        "speedup": float(t_seq / t_batch) if t_batch > 0 else float("inf"),
        "max_abs_diff_rel": float(np.abs(g_seq - g_batch).max() / scale),
        "mean_iterations_sequential": float(solver_seq.mean_iterations_per_solve()),
        # the factor-once/solve-all path runs no Krylov iterations at all;
        # report which engine served the block so 0.0 is not misread as
        # "CG converged instantly"
        "batched_used_direct_path": bool(used_direct),
        "mean_iterations_batched": (
            None if used_direct else float(solver_batch.mean_iterations_per_solve())
        ),
    }


def run_dispatch_experiment(
    n_side: int = 16,
    size: float = 128.0,
    fill: float = 0.5,
    rtol: float = 1e-8,
    max_panels: int = 256,
    repeats: int = 3,
    fft_workers: int | None = None,
    backplanes: tuple[str, ...] = ("grounded", "floating"),
) -> dict:
    """Adaptive dispatch versus the two fixed solve engines, per backplane.

    Times full dense extraction (``extract_dense`` — one wide ``solve_many``
    block) three ways on the paper's regular-grid example: with the policy
    pinned to the iterative engine, pinned to the direct engine, and left
    adaptive.  Run for a grounded backplane (stacked-RHS CG vs. cached dense
    Cholesky) and a floating one (block MINRES vs. the bordered
    Schur-complement factorisation).  Every measurement uses a freshly built
    solver with the process-wide factor cache disabled, so no factor or work
    buffer survives between repetitions; the
    minimum over ``repeats`` is reported.  This is the experiment behind
    ``BENCH_dispatch.json``: the adaptive policy must never be slower than
    the worse fixed path, and the three extracted ``G`` matrices must agree.
    """
    from ..geometry.layouts import regular_grid
    from ..substrate.bem.solver import EigenfunctionSolver
    from ..substrate.dispatch import DispatchPolicy
    from ..substrate.profile import SubstrateProfile

    layout = regular_grid(n_side=n_side, size=size, fill=fill)
    profiles = {
        "grounded": SubstrateProfile.two_layer_example(size=size, resistive_bottom=True),
        "floating": SubstrateProfile.two_layer_example(size=size, grounded_backplane=False),
    }

    def timed_extraction(
        profile: SubstrateProfile, force_path: str | None
    ) -> tuple[float, np.ndarray, EigenfunctionSolver]:
        best = np.inf
        g = None
        solver = None
        for _ in range(max(1, repeats)):
            solver = EigenfunctionSolver(
                layout,
                profile,
                max_panels=max_panels,
                rtol=rtol,
                dispatch=DispatchPolicy(force_path=force_path),
                fft_workers=fft_workers,
                use_factor_cache=False,
            )
            start = time.perf_counter()
            g = extract_dense(solver)
            best = min(best, time.perf_counter() - start)
        return best, g, solver

    out: dict = {
        "n_side": int(n_side),
        "n_contacts": int(layout.n_contacts),
        "repeats": int(max(1, repeats)),
    }
    for backplane in backplanes:
        profile = profiles[backplane]
        t_iter, g_iter, s_iter = timed_extraction(profile, "iterative")
        t_direct, g_direct, s_direct = timed_extraction(profile, "direct")
        t_adaptive, g_adaptive, s_adaptive = timed_extraction(profile, None)
        scale = float(np.abs(g_iter).max())
        worse_fixed = max(t_iter, t_direct)
        out.setdefault("panel_grid", int(s_iter.grid.nx))
        out[backplane] = {
            "iterative_s": float(t_iter),
            "direct_s": float(t_direct),
            "adaptive_s": float(t_adaptive),
            "adaptive_path": s_adaptive.last_dispatch.path,
            "adaptive_reason": s_adaptive.last_dispatch.reason,
            "speedup_adaptive_vs_iterative": float(t_iter / t_adaptive),
            "speedup_adaptive_vs_worse_fixed": float(worse_fixed / t_adaptive),
            "max_abs_diff_rel": float(
                max(
                    np.abs(g_adaptive - g_iter).max(),
                    np.abs(g_adaptive - g_direct).max(),
                )
                / scale
            ),
            "mean_iterations_iterative": float(s_iter.mean_iterations_per_solve()),
            "n_direct_solves_adaptive": int(s_adaptive.stats.n_direct_solves),
            "n_iterative_solves_adaptive": int(s_adaptive.stats.n_iterative_solves),
        }
    return out


def run_parallel_extraction_experiment(
    n_side: int = 16,
    size: float = 128.0,
    fill: float = 0.5,
    rtol: float = 1e-8,
    max_panels: int = 256,
    repeats: int = 3,
    workers: tuple[int, ...] = (2,),
    backends: tuple[str, ...] = ("bem", "fd"),
    backplanes: tuple[str, ...] = ("grounded", "floating"),
) -> list[dict]:
    """Serial versus process-parallel dense extraction, plus cache timings.

    For each ``(backend, backplane)`` combination this times full dense
    extraction on the serial adaptive path and on a
    :class:`~repro.substrate.parallel.ParallelExtractor` with each requested
    worker count.  The comparison isolates *solve* parallelism: the direct
    factor is prepared before the timed region on both sides (workers warm
    theirs during untimed pool start-up via ``prepare_direct``), and the
    factor cost itself is reported separately as ``cold_factor_s`` (fresh
    process-wide cache) versus ``warm_factor_s`` (second solver over the same
    substrate — the cross-solver cache hit).  Both extractions run through a
    :class:`~repro.substrate.solver_base.CountingSolver` so the records pin
    that parallel attribution equals serial attribution, and the extractor's
    merged per-process :class:`~repro.substrate.solver_base.SolveStats` are
    included.  This is the experiment behind ``BENCH_parallel.json``.
    """
    import os

    from ..geometry.layouts import regular_grid
    from ..substrate.bem.solver import BEM_FACTOR_KIND
    from ..substrate.factor_cache import factor_cache, factor_cache_clear
    from ..substrate.fd.direct import FD_FACTOR_KIND
    from ..substrate.parallel import ParallelExtractor, SolverSpec
    from ..substrate.profile import SubstrateProfile
    from ..substrate.solver_base import SolveStats

    layout = regular_grid(n_side=n_side, size=size, fill=fill)
    profiles = {
        "grounded": SubstrateProfile.two_layer_example(size=size, resistive_bottom=True),
        "floating": SubstrateProfile.two_layer_example(size=size, grounded_backplane=False),
    }
    fd_resolution = max(16, 2 * n_side)

    def build_spec(backend: str, profile: SubstrateProfile) -> SolverSpec:
        if backend == "bem":
            return SolverSpec.bem(
                layout, profile, max_panels=max_panels, rtol=rtol
            )
        return SolverSpec.fd(
            layout,
            profile,
            nx=fd_resolution,
            ny=fd_resolution,
            planes_per_layer=3,
            rtol=rtol,
        )

    def clear_factor_kinds() -> None:
        factor_cache_clear(BEM_FACTOR_KIND)
        factor_cache_clear(FD_FACTOR_KIND)

    results: list[dict] = []
    for backend in backends:
        for backplane in backplanes:
            spec = build_spec(backend, profiles[backplane])

            # --- cross-solver factor cache: cold build vs warm load --------
            cache_before = factor_cache().cache_info()
            clear_factor_kinds()
            cold_solver = spec.build()
            start = time.perf_counter()
            factorable = cold_solver.prepare_direct()
            cold_factor_s = time.perf_counter() - start
            warm_solver = spec.build()
            start = time.perf_counter()
            warm_solver.prepare_direct()
            warm_factor_s = time.perf_counter() - start

            # --- serial adaptive path (factor prepared, solves timed) ------
            t_serial = np.inf
            g_serial = None
            serial_counting = None
            for _ in range(max(1, repeats)):
                solver = spec.build()
                solver.prepare_direct()
                serial_counting = CountingSolver(solver)
                start = time.perf_counter()
                g_serial = extract_dense(serial_counting)
                t_serial = min(t_serial, time.perf_counter() - start)
            scale = float(np.abs(g_serial).max())

            record: dict = {
                "backend": backend,
                "backplane": backplane,
                "n_side": int(n_side),
                "n_contacts": int(layout.n_contacts),
                "repeats": int(max(1, repeats)),
                "serial_s": float(t_serial),
                "serial_solves": int(serial_counting.solve_count),
                "serial_stats": serial_counting.inner.stats.as_dict(),
                "factorable": bool(factorable),
                "cold_factor_s": float(cold_factor_s),
                "warm_factor_s": float(warm_factor_s),
                "factor_warm_speedup": float(cold_factor_s / max(warm_factor_s, 1e-9)),
                "parallel": [],
            }

            # --- parallel extraction per worker count ----------------------
            for n_workers in workers:
                with ParallelExtractor(
                    spec, n_workers=int(n_workers), prepare_direct=True
                ) as extractor:
                    start = time.perf_counter()
                    extractor.warm_up()
                    setup_s = time.perf_counter() - start
                    counting = CountingSolver(extractor)
                    t_parallel = np.inf
                    g_parallel = None
                    for _ in range(max(1, repeats)):
                        counting.reset()
                        extractor.stats = SolveStats()
                        start = time.perf_counter()
                        g_parallel = extract_dense(counting)
                        t_parallel = min(t_parallel, time.perf_counter() - start)
                    record["parallel"].append(
                        {
                            "workers": int(n_workers),
                            "setup_s": float(setup_s),
                            "parallel_s": float(t_parallel),
                            "speedup_vs_serial": float(t_serial / t_parallel),
                            "max_abs_diff_rel": float(
                                np.abs(g_parallel - g_serial).max() / scale
                            ),
                            "parallel_solves": int(counting.solve_count),
                            "merged_stats": extractor.stats.as_dict(),
                        }
                    )
            # per-record counter deltas: the process-wide counters are
            # cumulative, so attribute only this combination's traffic
            cache_after = factor_cache().cache_info()
            record["factor_cache"] = {
                key: cache_after[key] - cache_before[key]
                for key in ("hits", "misses", "evictions")
            }
            record["factor_cache"].update(
                entries=cache_after["entries"], bytes=cache_after["bytes"]
            )
            results.append(record)
    # a benchmark record should also state the hardware context it ran on
    results_meta = {"cpu_count": int(os.cpu_count() or 1)}
    for record in results:
        record.update(results_meta)
    return results


def run_factor_plane_experiment(
    n_side: int = 16,
    size: float = 128.0,
    fill: float = 0.5,
    rtol: float = 1e-8,
    max_panels: int = 256,
    repeats: int = 2,
    workers: tuple[int, ...] = (2,),
    backends: tuple[str, ...] = ("bem", "fd"),
    backplanes: tuple[str, ...] = ("grounded", "floating"),
) -> list[dict]:
    """Shared-memory factor plane and tiled out-of-core direct engine.

    Two measurements per ``(backend, backplane)`` combination:

    * **Factor plane** — full dense extraction through a
      :class:`~repro.substrate.parallel.ParallelExtractor` whose workers
      *attach* to the parent's published factor
      (``share_factors=True``, the default) versus one whose workers each
      refactor (``share_factors=False``).  Records pool warm-up time both
      ways, per-worker attach/rebuild counters from the merged
      :class:`~repro.substrate.solver_base.SolveStats`, agreement with the
      serial extraction and the attributed solve counts — the hard gates of
      ``bench_factor_plane.py``.
    * **Tiled engine** (eigenfunction backend only) — the same extraction
      with ``max_direct_panels`` capped *below* the contact-panel count, so
      the dispatch policy must route through the out-of-core tiled Cholesky,
      compared against the uncapped in-core direct path.

    This is the experiment behind ``BENCH_factor_plane.json``.
    """
    import os

    from ..geometry.layouts import regular_grid
    from ..substrate.bem.solver import BEM_FACTOR_KIND
    from ..substrate.dispatch import DispatchPolicy
    from ..substrate.factor_cache import factor_cache_clear
    from ..substrate.fd.direct import FD_FACTOR_KIND
    from ..substrate.parallel import ParallelExtractor, SolverSpec
    from ..substrate.profile import SubstrateProfile
    from ..substrate.solver_base import SolveStats

    layout = regular_grid(n_side=n_side, size=size, fill=fill)
    profiles = {
        "grounded": SubstrateProfile.two_layer_example(size=size, resistive_bottom=True),
        "floating": SubstrateProfile.two_layer_example(size=size, grounded_backplane=False),
    }
    fd_resolution = max(16, 2 * n_side)

    def build_spec(backend: str, profile: SubstrateProfile) -> SolverSpec:
        if backend == "bem":
            return SolverSpec.bem(layout, profile, max_panels=max_panels, rtol=rtol)
        return SolverSpec.fd(
            layout,
            profile,
            nx=fd_resolution,
            ny=fd_resolution,
            planes_per_layer=3,
            rtol=rtol,
        )

    results: list[dict] = []
    for backend in backends:
        for backplane in backplanes:
            spec = build_spec(backend, profiles[backplane])
            factor_cache_clear(BEM_FACTOR_KIND)
            factor_cache_clear(FD_FACTOR_KIND)

            # --- serial reference (factor prepared, solves timed) ----------
            t_serial = np.inf
            g_serial = None
            serial_counting = None
            for _ in range(max(1, repeats)):
                solver = spec.build()
                solver.prepare_direct()
                serial_counting = CountingSolver(solver)
                start = time.perf_counter()
                g_serial = extract_dense(serial_counting)
                t_serial = min(t_serial, time.perf_counter() - start)
            scale = float(np.abs(g_serial).max())

            record: dict = {
                "backend": backend,
                "backplane": backplane,
                "n_side": int(n_side),
                "n_contacts": int(layout.n_contacts),
                "repeats": int(max(1, repeats)),
                "serial_s": float(t_serial),
                "serial_solves": int(serial_counting.solve_count),
                "parallel": [],
            }

            # --- shared plane (attach) vs per-worker refactor (rebuild) ----
            # the rebuild arm disables the factor cache so forked workers
            # cannot serve the factor from the parent's inherited (COW) cache
            # — it must measure genuine per-worker refactorisation
            rebuild_spec = SolverSpec(
                spec.kind,
                spec.layout,
                spec.profile,
                {**spec.options, "use_factor_cache": False},
            )
            for n_workers in workers:
                row: dict = {"workers": int(n_workers)}
                for label, arm_spec, share in (
                    ("shared", spec, True),
                    ("rebuild", rebuild_spec, False),
                ):
                    with ParallelExtractor(
                        arm_spec,
                        n_workers=int(n_workers),
                        prepare_direct=True,
                        share_factors=share,
                    ) as extractor:
                        start = time.perf_counter()
                        extractor.warm_up()
                        warmup_s = time.perf_counter() - start
                        counting = CountingSolver(extractor)
                        t_parallel = np.inf
                        g_parallel = None
                        for _ in range(max(1, repeats)):
                            counting.reset()
                            warm_stats = extractor.stats
                            extractor.stats = SolveStats(
                                n_factor_attaches=warm_stats.n_factor_attaches,
                                n_factor_rebuilds=warm_stats.n_factor_rebuilds,
                            )
                            start = time.perf_counter()
                            g_parallel = extract_dense(counting)
                            t_parallel = min(t_parallel, time.perf_counter() - start)
                        row[label] = {
                            "warmup_s": float(warmup_s),
                            "parallel_s": float(t_parallel),
                            "speedup_vs_serial": float(t_serial / t_parallel),
                            "max_abs_diff_rel": float(
                                np.abs(g_parallel - g_serial).max() / scale
                            ),
                            "parallel_solves": int(counting.solve_count),
                            "merged_stats": extractor.stats.as_dict(),
                        }
                record["parallel"].append(row)

            # --- tiled out-of-core engine (eigenfunction backend only) -----
            if backend == "bem":
                serial_solver = serial_counting.inner
                ncp = serial_solver.grid.n_contact_panels
                cap = max(1, ncp // 2)
                # force the tiled engine (the gate is that it extracts an
                # identical G above max_direct_panels); what the *adaptive*
                # crossover would have picked is recorded alongside — which
                # side of the crossover a given size lands on is a property
                # of the cost model and the machine, not a correctness gate
                tiled_solver = spec.build(
                    use_factor_cache=False,
                    dispatch=DispatchPolicy(
                        max_direct_panels=cap, force_path="tiled"
                    ),
                )
                start = time.perf_counter()
                g_tiled = extract_dense(tiled_solver)
                tiled_s = time.perf_counter() - start
                tf = tiled_solver._tiled_factor
                adaptive = DispatchPolicy(max_direct_panels=cap).choose(
                    n_panels=ncp,
                    n_rhs=layout.n_contacts,
                    grid_points=serial_solver.grid.n_panels,
                    grounded=serial_solver.profile.grounded_backplane,
                )
                record["tiled"] = {
                    "n_contact_panels": int(ncp),
                    "max_direct_panels": int(cap),
                    "path": tiled_solver.last_dispatch.path,
                    "adaptive_path": adaptive.path,
                    "tiled_s": float(tiled_s),
                    "direct_s": float(t_serial),
                    "max_abs_diff_rel": float(
                        np.abs(g_tiled - g_serial).max() / scale
                    ),
                    "spilled": bool(tf[1].spilled) if tf is not None else None,
                }
                tiled_solver.close_tiled()
            results.append(record)
    for record in results:
        record["cpu_count"] = int(os.cpu_count() or 1)
    return results


def run_service_experiment(
    n_side: int = 16,
    size: float = 128.0,
    fill: float = 0.5,
    rtol: float = 1e-8,
    max_panels: int = 256,
    n_clients: int = 8,
    columns_per_client: int | None = None,
    n_workers: int | None = None,
    http_clients: int = 2,
    coalesce_window_s: float = 0.05,
    seed: int = 0,
) -> dict:
    """Extraction service (coalesced) versus one-solver-per-request clients.

    ``n_clients`` concurrent clients each want a random sample of ``G``
    columns drawn from a shared half of the contacts (heavy overlap — the
    workload the service exists for).  Two arms are timed wall-clock:

    * **baseline** — every client builds its *own* solver (factor cache
      disabled, emulating independent processes: the pre-service status quo
      where each caller constructs solvers by hand) and extracts its columns
      through a :class:`~repro.substrate.solver_base.CountingSolver`;
    * **service** — the same clients submit
      :class:`~repro.service.jobs.JobRequest` jobs to one
      :class:`~repro.service.scheduler.Scheduler`, which coalesces them over
      the shared substrate fingerprint, solves only the union of fresh
      columns on a persistent warm engine, and serves overlaps from the
      :class:`~repro.service.result_store.ResultStore`.

    The baseline extractions double as the isolated references for the
    agreement gate.  A repeated query afterwards must be served entirely
    from the result store (zero new solves), and an ``http_clients``-client
    round trip through the real :class:`~repro.service.server.ExtractionServer`
    checks the wire path end to end.  This is the experiment behind
    ``BENCH_service.json``.
    """
    import os
    from concurrent.futures import ThreadPoolExecutor

    from ..geometry.layouts import regular_grid
    from ..service import ExtractionServer, JobRequest, Scheduler, ServiceClient
    from ..substrate.parallel import SolverSpec
    from ..substrate.profile import SubstrateProfile

    layout = regular_grid(n_side=n_side, size=size, fill=fill)
    profile = SubstrateProfile.two_layer_example(size=size, resistive_bottom=True)
    n = layout.n_contacts
    if columns_per_client is None:
        columns_per_client = max(2, n // 4)
    spec = SolverSpec.bem(layout, profile, max_panels=max_panels, rtol=rtol)
    baseline_spec = SolverSpec.bem(
        layout, profile, max_panels=max_panels, rtol=rtol, use_factor_cache=False
    )

    # overlapping workload: every client samples from the same half of the
    # contacts, so cross-request coalescing has real work to share
    rng = np.random.default_rng(seed)
    pool = np.sort(rng.choice(n, size=max(columns_per_client, n // 2), replace=False))
    client_columns = [
        tuple(
            int(c)
            for c in np.sort(rng.choice(pool, size=columns_per_client, replace=False))
        )
        for _ in range(n_clients)
    ]
    union = sorted({c for cols in client_columns for c in cols})

    # --- baseline: one fresh solver per concurrent request ------------------
    baseline_results: list[np.ndarray | None] = [None] * n_clients
    baseline_counts = [0] * n_clients

    def baseline_client(i: int) -> None:
        counting = CountingSolver(baseline_spec.build())
        baseline_results[i] = extract_columns(
            counting, np.asarray(client_columns[i], dtype=int)
        )
        baseline_counts[i] = counting.solve_count

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=n_clients) as executor:
        list(executor.map(baseline_client, range(n_clients)))
    baseline_s = time.perf_counter() - start
    scale = float(max(np.abs(g).max() for g in baseline_results))

    # --- service: coalesced jobs against one scheduler ----------------------
    record: dict = {
        "n_side": int(n_side),
        "n_contacts": int(n),
        "n_clients": int(n_clients),
        "columns_per_client": int(columns_per_client),
        "union_columns": len(union),
        "baseline_s": float(baseline_s),
        "baseline_counts": [int(c) for c in baseline_counts],
    }
    with Scheduler(
        n_workers=n_workers, coalesce_window_s=coalesce_window_s
    ) as scheduler:
        service_results: list[np.ndarray | None] = [None] * n_clients
        service_status: list[str] = ["?"] * n_clients

        def service_client(i: int) -> None:
            job_id = scheduler.submit(JobRequest(spec, columns=client_columns[i]))
            job = scheduler.result(job_id, wait_s=600.0)
            service_status[i] = job.status
            service_results[i] = job.result

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=n_clients) as executor:
            list(executor.map(service_client, range(n_clients)))
        service_s = time.perf_counter() - start

        diffs = [
            float(np.abs(service_results[i] - baseline_results[i]).max() / scale)
            if service_results[i] is not None
            else float("inf")
            for i in range(n_clients)
        ]
        stats_after = scheduler.stats()

        # --- repeated query: must be served from the store, zero new solves -
        solved_before_repeat = scheduler.metrics.columns_solved
        job = scheduler.result(
            scheduler.submit(JobRequest(spec, columns=client_columns[0])),
            wait_s=600.0,
        )
        repeat_diff = (
            float(np.abs(job.result - baseline_results[0]).max() / scale)
            if job.result is not None
            else float("inf")
        )
        record.update(
            {
                "service_s": float(service_s),
                "throughput_speedup": float(baseline_s / service_s),
                "service_status": service_status,
                "max_abs_diff_rel": float(max(diffs)),
                "columns_solved": int(stats_after["coalescing"]["columns_solved"]),
                "columns_from_store": int(
                    stats_after["coalescing"]["columns_from_store"]
                ),
                "batches": int(stats_after["coalescing"]["batches"]),
                "attributed_solves": int(scheduler.attributed_solves),
                "latency_s": stats_after["latency_s"],
                "solve_stats": stats_after["solve_stats"],
                "result_store": stats_after["result_store"],
                "repeat": {
                    "status": job.status,
                    "new_solves": int(
                        scheduler.metrics.columns_solved - solved_before_repeat
                    ),
                    "max_abs_diff_rel": repeat_diff,
                },
            }
        )

    # --- HTTP round trip through the real server ----------------------------
    if http_clients > 0:
        with ExtractionServer(
            n_workers=n_workers, coalesce_window_s=coalesce_window_s
        ) as server:
            client = ServiceClient(server.url, timeout_s=600.0)
            http_results: list[np.ndarray | None] = [None] * http_clients

            def http_client(i: int) -> None:
                http_results[i] = client.extract(
                    JobRequest(spec, columns=client_columns[i % n_clients]),
                    timeout_s=600.0,
                )

            with ThreadPoolExecutor(max_workers=http_clients) as executor:
                list(executor.map(http_client, range(http_clients)))
            http_union = sorted(
                {c for cols in client_columns[:http_clients] for c in cols}
            )
            http_stats = client.stats()
            record["http"] = {
                "clients": int(http_clients),
                "healthz_ok": bool(client.healthz()["ok"]),
                "union_columns": len(http_union),
                "columns_solved": int(http_stats["coalescing"]["columns_solved"]),
                "batches": int(http_stats["coalescing"]["batches"]),
                "max_abs_diff_rel": float(
                    max(
                        np.abs(http_results[i] - baseline_results[i % n_clients]).max()
                        / scale
                        for i in range(http_clients)
                    )
                ),
            }
    record["cpu_count"] = int(os.cpu_count() or 1)
    return record


def run_durable_experiment(
    n_side: int = 16,
    size: float = 128.0,
    fill: float = 0.5,
    rtol: float = 1e-8,
    max_panels: int = 256,
    n_clients: int = 4,
    columns_per_client: int | None = None,
    n_workers: int | None = None,
    seed: int = 0,
    state_dir: str | None = None,
) -> dict:
    """Cold start versus warm restart of a persistent extraction service.

    Three schedulers run against the **same state directory** (a temporary
    one unless ``state_dir`` is given), with the process-wide factor cache
    wiped between them to simulate a process restart:

    * **cold** — an empty state dir: clients pay the full factorisation and
      one attributed solve per union column, and every byte of it lands in
      the durable corpus (sqlite columns, factor artifacts, job journal);
    * **warm** — a restarted service over the populated state dir re-serves
      the *same* client workload with **zero** new attributed solves at
      1e-10 agreement with the cold results, and a fresh (never-solved)
      column costs exactly one solve with the factor loaded from the
      artifact store instead of rebuilt (counter-pinned probes);
    * **replay** — a scheduler that accepts a job and "crashes" (state dir
      survives, scheduler object does not finalize it); the next start
      replays the journaled job under its original id and completes it
      from the warm corpus with zero solves.

    This is the experiment behind ``BENCH_durable.json``.
    """
    import os
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from ..geometry.layouts import regular_grid
    from ..service import JobRequest, Scheduler
    from ..substrate.factor_cache import factor_cache
    from ..substrate.parallel import SolverSpec
    from ..substrate.profile import SubstrateProfile

    layout = regular_grid(n_side=n_side, size=size, fill=fill)
    profile = SubstrateProfile.two_layer_example(size=size, resistive_bottom=True)
    n = layout.n_contacts
    if columns_per_client is None:
        columns_per_client = max(2, n // 4)
    spec = SolverSpec.bem(layout, profile, max_panels=max_panels, rtol=rtol)

    rng = np.random.default_rng(seed)
    # hold one contact out of every client's sample: the warm arm proves a
    # *fresh* column still costs exactly one solve (store can't fake it)
    held_out = int(rng.integers(n))
    pool = np.array([c for c in range(n) if c != held_out])
    client_columns = [
        tuple(
            int(c)
            for c in np.sort(rng.choice(pool, size=columns_per_client, replace=False))
        )
        for _ in range(n_clients)
    ]
    union = sorted({c for cols in client_columns for c in cols})

    tmp = None
    if state_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro_durable_")
        state_dir = tmp.name

    def run_clients(scheduler) -> tuple[float, list, list]:
        results: list[np.ndarray | None] = [None] * n_clients
        status: list[str] = ["?"] * n_clients

        def one(i: int) -> None:
            job_id = scheduler.submit(JobRequest(spec, columns=client_columns[i]))
            job = scheduler.result(job_id, wait_s=600.0)
            status[i] = job.status
            results[i] = job.result

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=n_clients) as executor:
            list(executor.map(one, range(n_clients)))
        return time.perf_counter() - start, results, status

    record: dict = {
        "n_side": int(n_side),
        "n_contacts": int(n),
        "n_clients": int(n_clients),
        "columns_per_client": int(columns_per_client),
        "union_columns": len(union),
        "held_out_column": held_out,
    }
    try:
        # --- cold arm: empty state dir, full factorisation + solves ---------
        factor_cache().clear()
        with Scheduler(n_workers=n_workers, persistence=state_dir) as scheduler:
            cold_s, cold_results, cold_status = run_clients(scheduler)
            record.update(
                {
                    "cold_s": float(cold_s),
                    "cold_status": cold_status,
                    "cold_attributed_solves": int(scheduler.attributed_solves),
                    "persistence_after_cold": scheduler.persistence.info(),
                }
            )
        scale = float(max(np.abs(g).max() for g in cold_results))

        # --- warm arm: simulated restart over the populated state dir -------
        factor_cache().clear()  # a new process holds no RAM factors
        with Scheduler(n_workers=n_workers, persistence=state_dir) as scheduler:
            warm_s, warm_results, warm_status = run_clients(scheduler)
            diffs = [
                float(np.abs(warm_results[i] - cold_results[i]).max() / scale)
                if warm_results[i] is not None
                else float("inf")
                for i in range(n_clients)
            ]
            store_info = scheduler.store.info()
            record.update(
                {
                    "warm_s": float(warm_s),
                    "warm_status": warm_status,
                    "warm_attributed_solves": int(scheduler.attributed_solves),
                    "warm_max_abs_diff_rel": float(max(diffs)),
                    "warm_speedup": float(cold_s / warm_s),
                    "warm_disk_hits": int(store_info["disk_hits"]),
                }
            )

            # fresh column: the corpus cannot fake it — exactly one solve,
            # with the factor attached from the artifact store, not rebuilt
            before = scheduler.attributed_solves
            cache = factor_cache()
            hits_before = cache.artifact_hits
            cache.clear()  # force the engine rebuild path through artifacts
            scheduler.pool.close()  # drop the warm engine with its factor
            job = scheduler.result(
                scheduler.submit(JobRequest(spec, columns=(held_out,))),
                wait_s=600.0,
            )
            record["fresh_column"] = {
                "status": job.status,
                "new_solves": int(scheduler.attributed_solves - before),
                "artifact_hits": int(cache.artifact_hits - hits_before),
            }

            # counter-pinned factor probes: a bare solver over the same spec
            # must attach the artifact (zero rebuilds) while the store is
            # wired, and rebuild from scratch once it is not
            cache.clear()
            warm_probe = spec.build()
            warm_probe.prepare_direct()
            record["warm_probe_rebuilds"] = int(warm_probe.stats.n_factor_rebuilds)
        factor_cache().clear()  # artifact store now detached (scheduler closed)
        cold_probe = spec.build()
        cold_probe.prepare_direct()
        record["cold_probe_rebuilds"] = int(cold_probe.stats.n_factor_rebuilds)

        # --- crash replay: accept, "crash", restart, journal replays --------
        factor_cache().clear()
        crashed = Scheduler(
            n_workers=n_workers, persistence=state_dir, autostart=False
        )
        crash_job_id = crashed.submit(JobRequest(spec, columns=client_columns[0]))
        # simulated crash: the journaled accept survives on disk, but the
        # job is never served or marked terminal (close() deliberately
        # skips the terminal mark for still-pending work)
        crashed.close()
        with Scheduler(n_workers=n_workers, persistence=state_dir) as scheduler:
            job = scheduler.result(crash_job_id, wait_s=600.0)
            replay_diff = (
                float(np.abs(job.result - cold_results[0]).max() / scale)
                if job.result is not None
                else float("inf")
            )
            record["replay"] = {
                "journal_replayed": int(scheduler.metrics.jobs_replayed),
                "status": job.status,
                "new_solves": int(scheduler.attributed_solves),
                "max_abs_diff_rel": replay_diff,
            }
    finally:
        factor_cache().clear()
        factor_cache().set_artifact_store(None)  # never outlive the state dir
        if tmp is not None:
            tmp.cleanup()
    record["cpu_count"] = int(os.cpu_count() or 1)
    return record


def run_faults_experiment(
    n_side: int = 16,
    size: float = 128.0,
    fill: float = 0.5,
    rtol: float = 1e-8,
    max_panels: int = 256,
    n_clients: int = 4,
    columns_per_client: int | None = None,
    n_workers: int | None = None,
    seed: int = 0,
    max_attempts: int = 3,
) -> dict:
    """Chaos suite: the extraction service under deterministically injected faults.

    Four arms over one substrate and one overlapping multi-client workload
    (same construction as :func:`run_service_experiment`):

    * **baseline** — fault-free run; its results are the accuracy reference
      and its attribution (one solve per distinct union column) the
      attribution reference;
    * **worker_kill** — a :mod:`repro.faults` plan kills the pool worker
      serving shard 0 mid-``solve_many`` (``once_key`` token: exactly one
      kill across every worker generation).  The supervised extractor must
      rebuild the pool and finish every job with >= 1 ``pool_rebuilds``,
      results at 1e-10 of baseline, and identical attribution;
    * **factor_retry** — engine construction fails transiently (one injected
      ``RuntimeError`` at ``factor.build``); the scheduler's
      :class:`~repro.service.scheduler.RetryPolicy` must land every job
      within ``max_attempts``, again with identical attribution;
    * **overload** — a bounded queue (``max_queue_depth=n_clients``) is
      filled with priority-0 jobs through the real HTTP server; two
      priority-5 submissions must displace exactly the two youngest low-
      priority jobs (terminal ``"shed"``), one more priority-0 submission
      must be refused with HTTP 429 (surfaced as
      :class:`~repro.service.scheduler.QueueSaturatedError` + Retry-After),
      an injected ``dispatch.cycle`` drop must leave the queue intact, and
      every surviving job must complete at 1e-10 of baseline.

    This is the experiment behind ``BENCH_faults.json``.
    """
    import json
    import os
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from .. import faults
    from ..geometry.layouts import regular_grid
    from ..service import (
        ExtractionServer,
        JobRequest,
        QueueSaturatedError,
        RetryPolicy,
        Scheduler,
        ServiceClient,
    )
    from ..substrate.factor_cache import factor_cache
    from ..substrate.parallel import SolverSpec
    from ..substrate.profile import SubstrateProfile

    layout = regular_grid(n_side=n_side, size=size, fill=fill)
    profile = SubstrateProfile.two_layer_example(size=size, resistive_bottom=True)
    n = layout.n_contacts
    if columns_per_client is None:
        # wide enough that the union block takes the sharded pool path
        # (min_parallel_columns) even at smoke scale — the kill arm needs
        # actual worker processes to kill
        columns_per_client = max(8, n // 4)
    columns_per_client = min(columns_per_client, n)
    spec = SolverSpec.bem(layout, profile, max_panels=max_panels, rtol=rtol)
    workers = int(n_workers) if n_workers is not None else 2
    policy = RetryPolicy(max_attempts=max_attempts, base_delay_s=0.01, cap_s=0.1)

    rng = np.random.default_rng(seed)
    client_columns = [
        tuple(
            int(c)
            for c in np.sort(
                rng.choice(n, size=columns_per_client, replace=False)
            )
        )
        for _ in range(n_clients)
    ]
    union = sorted({c for cols in client_columns for c in cols})

    def run_clients(scheduler) -> dict:
        results: list[np.ndarray | None] = [None] * n_clients
        status: list[str] = ["?"] * n_clients
        attempts: list[int] = [0] * n_clients

        def one(i: int) -> None:
            job_id = scheduler.submit(JobRequest(spec, columns=client_columns[i]))
            job = scheduler.result(job_id, wait_s=600.0)
            status[i] = job.status
            attempts[i] = job.attempts
            results[i] = job.result

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=n_clients) as executor:
            list(executor.map(one, range(n_clients)))
        return {
            "elapsed_s": time.perf_counter() - start,
            "results": results,
            "status": status,
            "attempts": attempts,
        }

    def rel_diff(results: list) -> float:
        return float(
            max(
                np.abs(results[i] - baseline["results"][i]).max() / scale
                if results[i] is not None
                else float("inf")
                for i in range(n_clients)
            )
        )

    record: dict = {
        "n_side": int(n_side),
        "n_contacts": int(n),
        "n_clients": int(n_clients),
        "columns_per_client": int(columns_per_client),
        "union_columns": len(union),
        "n_workers": workers,
        "max_attempts": int(max_attempts),
    }

    # --- arm 0: fault-free baseline -------------------------------------
    factor_cache().clear()
    with Scheduler(n_workers=workers, retry_policy=policy) as scheduler:
        baseline = run_clients(scheduler)
        record["baseline"] = {
            "elapsed_s": float(baseline["elapsed_s"]),
            "status": baseline["status"],
            "attempts": baseline["attempts"],
            "attributed_solves": int(scheduler.attributed_solves),
        }
    scale = float(max(np.abs(g).max() for g in baseline["results"]))

    # --- arm 1: kill a pool worker mid-solve ----------------------------
    with tempfile.TemporaryDirectory(prefix="repro_faults_") as token_dir:
        plan = {
            "token_dir": token_dir,
            "faults": [
                {
                    "site": "worker.solve",
                    "action": "kill",
                    "match": {"start": 0},
                    "once_key": "bench-kill-worker",
                }
            ],
        }
        # via the environment, so worker processes inherit the plan under
        # both fork and spawn start methods
        previous = os.environ.get(faults.ENV_VAR)
        os.environ[faults.ENV_VAR] = json.dumps(plan)
        active = faults.reload_env_plan()
        try:
            factor_cache().clear()
            with Scheduler(n_workers=max(workers, 2), retry_policy=policy) as scheduler:
                kill = run_clients(scheduler)
                counters = scheduler.metrics.fault_counters()
                record["worker_kill"] = {
                    "elapsed_s": float(kill["elapsed_s"]),
                    "status": kill["status"],
                    "attempts": kill["attempts"],
                    "attributed_solves": int(scheduler.attributed_solves),
                    "pool_rebuilds": int(counters["pool_rebuilds"]),
                    "degraded_solves": int(counters["degraded_solves"]),
                    "fault_fired": bool(active.once_tripped("bench-kill-worker")),
                    "max_abs_diff_rel": rel_diff(kill["results"]),
                }
        finally:
            if previous is None:
                os.environ.pop(faults.ENV_VAR, None)
            else:
                os.environ[faults.ENV_VAR] = previous
            faults.clear_plan()

    # --- arm 2: transient engine-build failure, retried -----------------
    factor_cache().clear()
    with faults.inject(
        [
            {
                "site": "factor.build",
                "action": "raise",
                "exception": "RuntimeError",
                "times": 1,
            }
        ]
    ):
        with Scheduler(n_workers=workers, retry_policy=policy) as scheduler:
            retry = run_clients(scheduler)
            counters = scheduler.metrics.fault_counters()
            record["factor_retry"] = {
                "elapsed_s": float(retry["elapsed_s"]),
                "status": retry["status"],
                "attempts": retry["attempts"],
                "attributed_solves": int(scheduler.attributed_solves),
                "retries": int(counters["retries"]),
                "max_abs_diff_rel": rel_diff(retry["results"]),
            }

    # --- arm 3: overload shedding through the HTTP front end ------------
    factor_cache().clear()
    depth = n_clients
    scheduler = Scheduler(
        n_workers=workers,
        retry_policy=policy,
        autostart=False,  # the queue must fill deterministically
        max_queue_depth=depth,
    )
    try:
        with ExtractionServer(scheduler=scheduler) as server:
            client = ServiceClient(server.url, timeout_s=600.0)
            low_ids = [
                client.submit(
                    JobRequest(spec, columns=client_columns[i % n_clients], priority=0)
                )
                for i in range(depth)
            ]
            high_ids = [
                client.submit(
                    JobRequest(spec, columns=client_columns[i % n_clients], priority=5)
                )
                for i in range(2)
            ]
            rejected = False
            retry_after_s = None
            try:
                client.submit(JobRequest(spec, columns=client_columns[0], priority=0))
            except QueueSaturatedError as exc:
                rejected = True
                retry_after_s = float(exc.retry_after_s)
            # a dropped dispatch cycle leaves the queue untouched
            with faults.inject(
                [{"site": "dispatch.cycle", "action": "drop", "times": 1}]
            ):
                served_during_drop = scheduler.step()
            depth_after_drop = scheduler.queue_depth
            served = 0
            while scheduler.queue_depth:
                served += scheduler.step()
            low_status = [client.result(job_id)["status"] for job_id in low_ids]
            high_status = [client.result(job_id)["status"] for job_id in high_ids]
            survivor_diff = 0.0
            for status, ids in ((low_status, low_ids), (high_status, high_ids)):
                for i, job_id in enumerate(ids):
                    if status[i] != "done":
                        continue
                    got = np.asarray(client.result(job_id)["result"])
                    expected = baseline["results"][i % n_clients]
                    survivor_diff = max(
                        survivor_diff, float(np.abs(got - expected).max() / scale)
                    )
            counters = scheduler.metrics.fault_counters()
            record["overload"] = {
                "queue_depth": depth,
                "low_status": low_status,
                "high_status": high_status,
                "shed": int(scheduler.metrics.jobs_shed),
                "submits_rejected": int(counters["submits_rejected"]),
                "rejected_over_http": rejected,
                "retry_after_s": retry_after_s,
                "served_during_drop": int(served_during_drop),
                "queue_depth_after_drop": int(depth_after_drop),
                "served_after_drop": int(served),
                "max_abs_diff_rel": float(survivor_diff),
            }
    finally:
        scheduler.close()
        factor_cache().clear()
    record["cpu_count"] = int(os.cpu_count() or 1)
    return record


def singular_value_decay_experiment(
    layout: ContactLayout,
    g: np.ndarray,
    source: np.ndarray,
    destination: np.ndarray,
) -> dict[str, np.ndarray]:
    """Figure 4-3: singular values of a self block versus a well-separated block."""
    from ..core.rowbasis import interaction_singular_values

    return {
        "self": interaction_singular_values(g, source, source),
        "separated": interaction_singular_values(g, source, destination),
    }
