"""Tiled (out-of-core) dense Cholesky for contact blocks past the memory budget.

The factor-once direct engine of the eigenfunction solver is capped by
``max_direct_panels`` because a dense ``A_cc`` factor costs ``O(ncp^2)``
memory; beyond the cap every block used to fall back to the iterative path
even when a factorisation would win.  This module removes that wall: the
contact block is assembled **tile by tile** (closed-form modal rows, never the
whole matrix at once) into a scratch buffer, factored by a blocked
right-looking Cholesky whose in-core working set is a few ``(tile, tile)``
panels, and served through blocked forward/backward substitution.

Storage is adaptive: when the factor fits the process-wide factor-cache
budget the scratch buffer is an ordinary in-RAM array, otherwise it spills to
a memory-mapped scratch file (``tempfile`` directory, override with
``REPRO_TILED_SCRATCH_DIR``) and the factorisation streams tiles through the
page cache.  Only the lower triangle is ever written or read.

The engine is routed by :class:`~repro.substrate.dispatch.DispatchPolicy` as
the ``"tiled"`` path — chosen for blocks whose panel count exceeds
``max_direct_panels`` (up to ``max_tiled_panels``) when the crossover model
says a factorisation amortises over the block width.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np
from scipy.linalg import LinAlgError, solve_triangular

__all__ = [
    "TiledCholeskyFactor",
    "tiled_scratch_dir",
    "set_default_scratch_dir",
    "DEFAULT_TILE",
]

#: default tile edge (panels); 1024^2 doubles = 8 MiB per in-core tile
DEFAULT_TILE = 1024

#: programmatic scratch-dir default (the extraction service roots spilled
#: factors under its state dir); the env var still takes precedence
_DEFAULT_SCRATCH_DIR: str | None = None


def set_default_scratch_dir(path: str | os.PathLike | None) -> None:
    """Set (or clear, with ``None``) the process default for tiled scratch.

    ``REPRO_TILED_SCRATCH_DIR`` overrides this; with neither configured,
    scratch files land in the system temp directory as before.  The
    directory is created on demand by the callers.
    """
    global _DEFAULT_SCRATCH_DIR
    _DEFAULT_SCRATCH_DIR = None if path is None else str(path)


def tiled_scratch_dir() -> str:
    """Directory for spilled factor scratch files (env: REPRO_TILED_SCRATCH_DIR)."""
    configured = os.environ.get("REPRO_TILED_SCRATCH_DIR") or _DEFAULT_SCRATCH_DIR
    if configured:
        os.makedirs(configured, exist_ok=True)
        return configured
    return tempfile.gettempdir()


class TiledCholeskyFactor:
    """Blocked right-looking Cholesky ``A = L L^T`` over tiled storage.

    Parameters
    ----------
    n:
        Matrix dimension (number of contact panels).
    tile:
        Tile edge.  The factorisation's in-core working set is a handful of
        ``(tile, tile)`` blocks regardless of ``n``.
    spill_over_bytes:
        Spill threshold: when the ``n^2`` factor storage exceeds this many
        bytes the scratch buffer is a memory-mapped file instead of RAM.
        ``None`` uses the process-wide factor-cache budget
        (:func:`~repro.substrate.factor_cache.factor_cache`), tying "too big
        to hold" to the same knob that bounds every other cached factor.

    Use :meth:`factor` to fill and factor the storage from a row-block
    assembly callback, then :meth:`solve` for right-hand sides.  The factor
    is a context manager (``with TiledCholeskyFactor(...) as tf: ...``)
    whose exit releases the scratch storage; :meth:`close` is idempotent.

    A factor whose storage is *shared* (``shared=True``: adopted from the
    process-wide factor cache, or attached read-only through the
    shared-memory factor plane via :meth:`from_factored_array`) does not own
    its pages — :meth:`close` then only drops this consumer's reference and
    never releases or unlinks anything.
    """

    def __init__(
        self,
        n: int,
        tile: int = DEFAULT_TILE,
        spill_over_bytes: int | None = None,
    ) -> None:
        if n < 1:
            raise ValueError("matrix dimension must be positive")
        if tile < 1:
            raise ValueError("tile must be positive")
        self.n = int(n)
        self.tile = int(tile)
        if spill_over_bytes is None:
            from .factor_cache import factor_cache

            spill_over_bytes = factor_cache().max_bytes
        self.nbytes = self.n * self.n * 8
        self.spilled = self.nbytes > int(spill_over_bytes)
        self.scratch_path: str | None = None
        if self.spilled:
            # reprolint: owned-by(TiledCholeskyFactor)
            fd, path = tempfile.mkstemp(
                prefix="repro_tiled_", suffix=".factor", dir=tiled_scratch_dir()
            )
            os.close(fd)
            self.scratch_path = path
            try:
                # reprolint: owned-by(TiledCholeskyFactor)
                self._l = np.memmap(path, dtype=np.float64, mode="w+", shape=(n, n))
            except (OSError, ValueError):
                # mapping n*n*8 bytes can fail (full scratch disk, address
                # space); the mkstemp file would otherwise linger forever
                self.scratch_path = None
                try:
                    os.unlink(path)
                except OSError:
                    pass
                raise
        else:
            self._l = np.zeros((n, n))
        self._factored = False
        #: storage is shared with other consumers (factor cache / plane):
        #: close() must not release it from under them
        self.shared = False

    @classmethod
    def from_factored_array(
        cls, l_array: np.ndarray, tile: int = DEFAULT_TILE
    ) -> "TiledCholeskyFactor":
        """Wrap an already-factored (possibly read-only, shared) ``L`` array.

        Used by the shared-memory factor plane to reconstruct a published
        in-RAM tiled factor as zero-copy views in another process: no storage
        is allocated, the instance is marked factored and ``shared``, and
        :meth:`close` only drops the reference (the publisher owns the
        pages).  The blocked substitution never writes through ``L``, so a
        read-only buffer is fine.
        """
        l_array = np.asarray(l_array)
        if l_array.ndim != 2 or l_array.shape[0] != l_array.shape[1]:
            raise ValueError("factored storage must be a square (n, n) array")
        tf = cls.__new__(cls)
        tf.n = int(l_array.shape[0])
        tf.tile = int(tile)
        if tf.tile < 1:
            raise ValueError("tile must be positive")
        tf.nbytes = tf.n * tf.n * 8
        tf.spilled = False
        tf.scratch_path = None
        tf._l = l_array
        tf._factored = True
        tf.shared = True
        return tf

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Release the scratch storage (idempotent).

        On shared storage (``shared=True``) this is a no-op: the factor
        cache or the publishing process co-owns the object and its pages, so
        a consumer letting go must simply drop its reference.
        """
        if self.shared or self._l is None:
            return
        mm = self._l
        self._l = None
        self._factored = False
        if self.scratch_path is not None:
            try:
                del mm  # drop the mapping before unlinking the file
            except Exception:
                pass
            try:
                os.unlink(self.scratch_path)
            except OSError:
                pass
            self.scratch_path = None

    def __enter__(self) -> "TiledCholeskyFactor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:
            pass

    def _tiles(self) -> list[tuple[int, int]]:
        return [
            (i0, min(i0 + self.tile, self.n)) for i0 in range(0, self.n, self.tile)
        ]

    # --------------------------------------------------------------- factor
    def factor(self, assemble_rows) -> "TiledCholeskyFactor":
        """Assemble (lower triangle only) and factor in place.

        ``assemble_rows(start, stop)`` must return the dense rows
        ``A[start:stop, :]`` of the symmetric matrix (a ``(stop-start, n)``
        array); only the ``[:, :stop]`` lower part is stored, so the builder's
        peak allocation is one row block.  Raises
        :class:`~scipy.linalg.LinAlgError` if a diagonal tile is not positive
        definite (the caller decides how to fall back).
        """
        if self._l is None:
            raise RuntimeError("factor storage has been closed")
        lo = self._l
        tiles = self._tiles()
        for i0, i1 in tiles:
            lo[i0:i1, :i1] = np.asarray(assemble_rows(i0, i1))[:, :i1]
        for k0, k1 in tiles:
            try:
                lkk = np.linalg.cholesky(np.array(lo[k0:k1, k0:k1]))
            except np.linalg.LinAlgError as exc:
                raise LinAlgError(
                    f"tiled Cholesky failed on diagonal tile [{k0}:{k1}]"
                ) from exc
            lo[k0:k1, k0:k1] = lkk
            below = [(i0, i1) for i0, i1 in tiles if i0 >= k1]
            for i0, i1 in below:
                panel = np.array(lo[i0:i1, k0:k1])
                lo[i0:i1, k0:k1] = solve_triangular(lkk, panel.T, lower=True).T
            for j0, j1 in below:
                ljk = np.array(lo[j0:j1, k0:k1])
                for i0, i1 in below:
                    if i0 < j0:
                        continue
                    update = np.array(lo[i0:i1, k0:k1]) @ ljk.T
                    if i0 == j0:
                        update = np.tril(update)
                    lo[i0:i1, j0:j1] -= update
        if self.spilled:
            lo.flush()
        self._factored = True
        return self

    # ---------------------------------------------------------------- solve
    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` by blocked forward/backward substitution.

        Accepts ``(n,)`` vectors or ``(n, k)`` blocks.  Tiles of ``L`` are
        staged through RAM one at a time, so the *factor* never needs more
        than ``O(tile^2)`` resident bytes; the right-hand-side working copy
        is held whole, making peak in-core memory ``O(n k + tile^2)`` —
        callers bound ``k`` (the eigenfunction solver chunks at
        ``max_batch``) to keep the RHS term small.
        """
        if not self._factored:
            raise RuntimeError("factor() has not completed")
        lo = self._l
        b = np.asarray(b, dtype=float)
        squeeze = b.ndim == 1
        if squeeze:
            b = b[:, None]
        if b.shape[0] != self.n:
            raise ValueError("right-hand side has the wrong leading dimension")
        tiles = self._tiles()
        y = b.copy()
        for i0, i1 in tiles:
            for j0, j1 in tiles:
                if j0 >= i0:
                    break
                y[i0:i1] -= np.array(lo[i0:i1, j0:j1]) @ y[j0:j1]
            y[i0:i1] = solve_triangular(
                np.array(lo[i0:i1, i0:i1]), y[i0:i1], lower=True
            )
        x = y
        for i0, i1 in reversed(tiles):
            for j0, j1 in tiles:
                if j0 <= i0:
                    continue
                x[i0:i1] -= np.array(lo[j0:j1, i0:i1]).T @ x[j0:j1]
            x[i0:i1] = solve_triangular(
                np.array(lo[i0:i1, i0:i1]).T, x[i0:i1], lower=False
            )
        return x[:, 0] if squeeze else x
