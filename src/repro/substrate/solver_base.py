"""Black-box substrate solver interface.

The sparsification algorithms of Chapters 3 and 4 only require a *black box*
that, given a vector of contact voltages, returns the vector of contact
currents (``i = G v``).  This module defines that interface, a call-counting
wrapper used to measure the solve-reduction factor, and a trivial
dense-matrix-backed solver that is invaluable for testing.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..geometry.contact import ContactLayout

__all__ = [
    "SolveStats",
    "SubstrateSolver",
    "CountingSolver",
    "DenseMatrixSolver",
    "CallableSolver",
]


@dataclass
class SolveStats:
    """Per-solver bookkeeping for Table 2.1/2.2-style convergence reporting.

    Iterative (Krylov) solves and direct (factor-once/solve-all) solves are
    tracked **separately**: a direct solve runs zero Krylov iterations, and
    folding it into the iteration mean would skew the reported convergence
    metric toward zero for any workload that mixes both engines.
    :attr:`mean_iterations` is therefore always "iterations per *iterative*
    solve"; direct solves only show up in :attr:`n_direct_solves` and
    :attr:`n_solves`.
    """

    #: number of solves served by a Krylov iteration (CG / MINRES / PCG)
    n_iterative_solves: int = 0
    #: number of solves served by a cached dense factorisation
    n_direct_solves: int = 0
    total_iterations: int = 0
    iterations_per_solve: list[int] = field(default_factory=list)
    #: factors this solver obtained by attaching to a shared-memory payload
    #: published by another process (the parallel engine's factor plane)
    n_factor_attaches: int = 0
    #: factors this solver had to build from scratch (cold factorisation)
    n_factor_rebuilds: int = 0

    def record(self, iterations: int) -> None:
        """Record one iterative solve and its Krylov iteration count."""
        self.n_iterative_solves += 1
        self.total_iterations += iterations
        self.iterations_per_solve.append(iterations)

    def record_direct(self, n_solves: int = 1) -> None:
        """Record ``n_solves`` columns served by the direct (factored) path."""
        self.n_direct_solves += n_solves

    def record_factor_attach(self, n: int = 1) -> None:
        """Record ``n`` factors adopted zero-copy from a shared-memory plane."""
        self.n_factor_attaches += n

    def record_factor_rebuild(self, n: int = 1) -> None:
        """Record ``n`` factors built locally (not served by a shared plane)."""
        self.n_factor_rebuilds += n

    def merge(self, other: "SolveStats") -> "SolveStats":
        """Fold another stats object into this one; returns ``self``.

        Used to aggregate per-process statistics of the parallel extraction
        engine (and, in general, any multi-solver workload) into one report:
        iterative/direct solve counts and iteration totals add, and
        :attr:`mean_iterations` therefore stays "iterations per *iterative*
        solve" over the union — direct solves never dilute it.
        """
        self.n_iterative_solves += other.n_iterative_solves
        self.n_direct_solves += other.n_direct_solves
        self.total_iterations += other.total_iterations
        self.iterations_per_solve.extend(other.iterations_per_solve)
        self.n_factor_attaches += other.n_factor_attaches
        self.n_factor_rebuilds += other.n_factor_rebuilds
        return self

    @property
    def n_solves(self) -> int:
        """Total black-box solves served, either engine."""
        return self.n_iterative_solves + self.n_direct_solves

    @property
    def mean_iterations(self) -> float:
        """Mean Krylov iterations per **iterative** solve (0.0 if none ran)."""
        if self.n_iterative_solves == 0:
            return 0.0
        return self.total_iterations / self.n_iterative_solves

    def as_dict(self) -> dict[str, float | int]:
        """Summary with iterative and direct counts reported separately."""
        return {
            "n_solves": self.n_solves,
            "n_iterative_solves": self.n_iterative_solves,
            "n_direct_solves": self.n_direct_solves,
            "total_iterations": self.total_iterations,
            "mean_iterations": self.mean_iterations,
            "n_factor_attaches": self.n_factor_attaches,
            "n_factor_rebuilds": self.n_factor_rebuilds,
        }


class SubstrateSolver(abc.ABC):
    """Abstract voltage-to-current substrate solver (the black box).

    Implementations: :class:`~repro.substrate.bem.solver.EigenfunctionSolver`,
    :class:`~repro.substrate.fd.solver.FiniteDifferenceSolver`, and
    :class:`DenseMatrixSolver`.
    """

    #: the contact layout this solver was built for
    layout: ContactLayout

    #: optional adaptive direct-vs-iterative routing policy
    #: (:class:`~repro.substrate.dispatch.DispatchPolicy`).  ``None`` means
    #: the backend has a single solve engine; backends with both a factored
    #: and an iterative path (the eigenfunction solver) set one and consult
    #: it per :meth:`solve_many` block.
    dispatch = None

    @property
    def n_contacts(self) -> int:
        return self.layout.n_contacts

    @abc.abstractmethod
    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        """Return contact currents for the given contact voltages.

        Parameters
        ----------
        voltages:
            Length-``n`` vector of contact voltages.

        Returns
        -------
        Length-``n`` vector of contact currents (current *into* each contact).
        """

    def solve_many(self, voltages: np.ndarray) -> np.ndarray:
        """Return contact currents for a block of voltage vectors.

        Parameters
        ----------
        voltages:
            ``(n, k)`` array whose columns are independent contact-voltage
            vectors.

        Returns
        -------
        ``(n, k)`` array whose column ``j`` equals
        ``solve_currents(voltages[:, j])``.

        The base implementation loops over columns; backends with a genuinely
        vectorised path (stacked-RHS Krylov iterations, ``G @ V`` products)
        override it.  Each column counts as one black-box solve for
        accounting purposes (:class:`CountingSolver`), batched or not.
        """
        v = np.asarray(voltages, dtype=float)
        if v.ndim != 2 or v.shape[0] != self.n_contacts:
            raise ValueError("expected an (n_contacts, k) voltage block")
        out = np.empty_like(v)
        for j in range(v.shape[1]):
            # a fresh copy per column so implementations can never alias or
            # mutate the caller's block
            out[:, j] = self.solve_currents(v[:, j].copy())
        return out

    def apply(self, voltages: np.ndarray) -> np.ndarray:
        """Alias of :meth:`solve_currents` (operator-style name)."""
        return self.solve_currents(voltages)


class CountingSolver(SubstrateSolver):
    """Wrapper that counts black-box calls.

    The solve-reduction factor reported in Tables 4.1 and 4.3 is
    ``n_contacts / solve_count`` after an extraction run.
    """

    def __init__(self, inner: SubstrateSolver) -> None:
        self.inner = inner
        self.layout = inner.layout
        self.solve_count = 0

    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        self.solve_count += 1
        return self.inner.solve_currents(voltages)

    def solve_many(self, voltages: np.ndarray) -> np.ndarray:
        """Forward the block to the inner solver, counting one solve per column.

        Batching groups right-hand sides into a single submission; it must not
        change how many black-box solves the extraction is charged for, so the
        paper's solve-reduction metric is invariant under batching.
        """
        v = np.asarray(voltages, dtype=float)
        if v.ndim != 2 or v.shape[0] != self.n_contacts:
            raise ValueError("expected an (n_contacts, k) voltage block")
        self.solve_count += v.shape[1]
        return self.inner.solve_many(v)

    def reset(self) -> None:
        """Reset the call counter."""
        self.solve_count = 0

    def solve_reduction_factor(self) -> float:
        """``n / number of solves`` (naive extraction needs ``n`` solves)."""
        if self.solve_count == 0:
            return float("inf")
        return self.n_contacts / self.solve_count


class DenseMatrixSolver(SubstrateSolver):
    """Black box backed by an explicit dense conductance matrix.

    Used in tests (exact reference) and to wrap a pre-extracted ``G`` so the
    sparsification algorithms can be studied independently of the underlying
    physical solver.
    """

    def __init__(self, matrix: np.ndarray, layout: ContactLayout) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("conductance matrix must be square")
        if matrix.shape[0] != layout.n_contacts:
            raise ValueError("matrix size does not match the number of contacts")
        self.matrix = matrix
        self.layout = layout

    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        return self.matrix @ np.asarray(voltages, dtype=float)

    def solve_many(self, voltages: np.ndarray) -> np.ndarray:
        v = np.asarray(voltages, dtype=float)
        if v.ndim != 2 or v.shape[0] != self.n_contacts:
            raise ValueError("expected an (n_contacts, k) voltage block")
        return self.matrix @ v


class CallableSolver(SubstrateSolver):
    """Black box backed by an arbitrary callable ``v -> i``."""

    def __init__(
        self, func: Callable[[np.ndarray], np.ndarray], layout: ContactLayout
    ) -> None:
        self._func = func
        self.layout = layout

    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        return np.asarray(self._func(np.asarray(voltages, dtype=float)), dtype=float)
