"""Black-box substrate solver interface.

The sparsification algorithms of Chapters 3 and 4 only require a *black box*
that, given a vector of contact voltages, returns the vector of contact
currents (``i = G v``).  This module defines that interface, a call-counting
wrapper used to measure the solve-reduction factor, and a trivial
dense-matrix-backed solver that is invaluable for testing.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from ..geometry.contact import ContactLayout

__all__ = ["SubstrateSolver", "CountingSolver", "DenseMatrixSolver", "CallableSolver"]


class SubstrateSolver(abc.ABC):
    """Abstract voltage-to-current substrate solver (the black box).

    Implementations: :class:`~repro.substrate.bem.solver.EigenfunctionSolver`,
    :class:`~repro.substrate.fd.solver.FiniteDifferenceSolver`, and
    :class:`DenseMatrixSolver`.
    """

    #: the contact layout this solver was built for
    layout: ContactLayout

    @property
    def n_contacts(self) -> int:
        return self.layout.n_contacts

    @abc.abstractmethod
    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        """Return contact currents for the given contact voltages.

        Parameters
        ----------
        voltages:
            Length-``n`` vector of contact voltages.

        Returns
        -------
        Length-``n`` vector of contact currents (current *into* each contact).
        """

    def apply(self, voltages: np.ndarray) -> np.ndarray:
        """Alias of :meth:`solve_currents` (operator-style name)."""
        return self.solve_currents(voltages)


class CountingSolver(SubstrateSolver):
    """Wrapper that counts black-box calls.

    The solve-reduction factor reported in Tables 4.1 and 4.3 is
    ``n_contacts / solve_count`` after an extraction run.
    """

    def __init__(self, inner: SubstrateSolver) -> None:
        self.inner = inner
        self.layout = inner.layout
        self.solve_count = 0

    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        self.solve_count += 1
        return self.inner.solve_currents(voltages)

    def reset(self) -> None:
        """Reset the call counter."""
        self.solve_count = 0

    def solve_reduction_factor(self) -> float:
        """``n / number of solves`` (naive extraction needs ``n`` solves)."""
        if self.solve_count == 0:
            return float("inf")
        return self.n_contacts / self.solve_count


class DenseMatrixSolver(SubstrateSolver):
    """Black box backed by an explicit dense conductance matrix.

    Used in tests (exact reference) and to wrap a pre-extracted ``G`` so the
    sparsification algorithms can be studied independently of the underlying
    physical solver.
    """

    def __init__(self, matrix: np.ndarray, layout: ContactLayout) -> None:
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("conductance matrix must be square")
        if matrix.shape[0] != layout.n_contacts:
            raise ValueError("matrix size does not match the number of contacts")
        self.matrix = matrix
        self.layout = layout

    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        return self.matrix @ np.asarray(voltages, dtype=float)


class CallableSolver(SubstrateSolver):
    """Black box backed by an arbitrary callable ``v -> i``."""

    def __init__(
        self, func: Callable[[np.ndarray], np.ndarray], layout: ContactLayout
    ) -> None:
        self._func = func
        self.layout = layout

    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        return np.asarray(self._func(np.asarray(voltages, dtype=float)), dtype=float)
