"""Layered substrate profiles.

The substrate is a rectangular block of Ohmic material made of horizontal
layers, each with its own conductivity (Figure 1-1).  Contacts sit on the top
surface (z = 0); the bottom surface (z = -d) either carries a grounded
backplane contact or is floating (zero normal current).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Layer", "SubstrateProfile"]


@dataclass(frozen=True)
class Layer:
    """One substrate layer.

    Parameters
    ----------
    thickness:
        Layer thickness (same length unit as the lateral dimensions).
    conductivity:
        Layer conductivity ``sigma`` (1 / (resistivity)).
    """

    thickness: float
    conductivity: float

    def __post_init__(self) -> None:
        if self.thickness <= 0:
            raise ValueError("layer thickness must be positive")
        if self.conductivity <= 0:
            raise ValueError("layer conductivity must be positive")


class SubstrateProfile:
    """Layered substrate description.

    Layers are listed **from the top surface down** (layer 0 touches the
    contacts).  The total thickness is the sum of layer thicknesses.

    Parameters
    ----------
    size_x, size_y:
        Lateral dimensions ``a`` and ``b``.
    layers:
        Layers from top to bottom.
    grounded_backplane:
        True for a grounded backplane contact covering the bottom surface,
        False for a floating (insulating) bottom.
    """

    def __init__(
        self,
        size_x: float,
        size_y: float,
        layers: Sequence[Layer],
        grounded_backplane: bool = True,
    ) -> None:
        if size_x <= 0 or size_y <= 0:
            raise ValueError("substrate dimensions must be positive")
        if not layers:
            raise ValueError("at least one layer is required")
        self.size_x = float(size_x)
        self.size_y = float(size_y)
        self.layers = tuple(layers)
        self.grounded_backplane = bool(grounded_backplane)

    # ------------------------------------------------------------- properties
    @property
    def cache_key(self) -> tuple:
        """Hashable identity of the physical profile.

        Two profiles with equal keys produce identical operator eigenvalues;
        used to memoise :func:`repro.substrate.bem.eigenvalues.eigenvalue_table`.
        """
        return (
            self.size_x,
            self.size_y,
            self.grounded_backplane,
            tuple((layer.thickness, layer.conductivity) for layer in self.layers),
        )

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def depth(self) -> float:
        """Total substrate thickness ``d``."""
        return float(sum(layer.thickness for layer in self.layers))

    @property
    def conductivities(self) -> np.ndarray:
        """Conductivities from top to bottom."""
        return np.array([layer.conductivity for layer in self.layers])

    @property
    def thicknesses(self) -> np.ndarray:
        """Thicknesses from top to bottom."""
        return np.array([layer.thickness for layer in self.layers])

    def interface_depths(self) -> np.ndarray:
        """Depths (positive, measured from the top) of the layer interfaces.

        For ``n`` layers there are ``n - 1`` interfaces; the bottom surface is
        not included.
        """
        return np.cumsum(self.thicknesses)[:-1]

    def conductivity_at_depth(self, depth: float) -> float:
        """Conductivity of the layer containing the point ``z = -depth``."""
        if depth < 0 or depth > self.depth + 1e-12:
            raise ValueError("depth outside the substrate")
        acc = 0.0
        for layer in self.layers:
            acc += layer.thickness
            if depth <= acc + 1e-12:
                return layer.conductivity
        return self.layers[-1].conductivity

    def vertical_resistance_per_area(self) -> float:
        """Series resistance per unit area through the whole stack.

        For a grounded backplane this is ``lambda_00`` of the eigenfunction
        expansion (uniform current mode); see Section 2.3.1.
        """
        return float(np.sum(self.thicknesses / self.conductivities))

    # ----------------------------------------------------------- constructors
    @classmethod
    def two_layer_example(
        cls,
        size: float = 128.0,
        grounded_backplane: bool = False,
        resistive_bottom: bool = False,
    ) -> "SubstrateProfile":
        """The two-layer profile used throughout the paper's evaluation.

        Section 3.7: "a two-layer substrate with the bottom-layer conductivity
        100 times the top-layer conductivity", dimensions 128 x 128 x 40 with
        the layer interface at z = -0.5.  When ``resistive_bottom`` is True a
        thin layer of one-tenth the top conductivity is inserted above the
        backplane to emulate the floating-backplane behaviour with a grounded
        backplane (the trick the paper uses with QuickSub).
        """
        sigma_top = 1.0
        layers = [
            Layer(0.5, sigma_top),
            Layer(38.5 if resistive_bottom else 39.5, 100.0 * sigma_top),
        ]
        if resistive_bottom:
            layers.append(Layer(1.0, 0.1 * sigma_top))
            grounded_backplane = True
        return cls(size, size, layers, grounded_backplane=grounded_backplane)

    @classmethod
    def uniform(
        cls,
        size: float,
        depth: float,
        conductivity: float = 1.0,
        grounded_backplane: bool = True,
    ) -> "SubstrateProfile":
        """Single uniform layer — handy for analytic checks."""
        return cls(size, size, [Layer(depth, conductivity)], grounded_backplane)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        sigmas = ", ".join(f"{layer.conductivity:g}" for layer in self.layers)
        bp = "grounded" if self.grounded_backplane else "floating"
        return (
            f"SubstrateProfile({self.size_x}x{self.size_y}x{self.depth}, "
            f"sigma=[{sigmas}], backplane={bp})"
        )
