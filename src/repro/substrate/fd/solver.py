"""Finite-difference black-box substrate solver (Section 2.2).

Solves the grid-of-resistors system with preconditioned conjugate gradients
for each set of contact voltages and returns the contact currents, satisfying
the same black-box contract as the eigenfunction solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse.linalg import cg

from ...geometry.contact import ContactLayout
from ..profile import SubstrateProfile
from ..solver_base import SubstrateSolver
from .assembly import FDAssembly
from .grid import Grid3D
from .preconditioners import make_preconditioner

__all__ = ["FiniteDifferenceSolver"]


@dataclass
class _SolveStats:
    n_solves: int = 0
    total_iterations: int = 0
    iterations_per_solve: list[int] = field(default_factory=list)

    def record(self, iterations: int) -> None:
        self.n_solves += 1
        self.total_iterations += iterations
        self.iterations_per_solve.append(iterations)

    @property
    def mean_iterations(self) -> float:
        return self.total_iterations / self.n_solves if self.n_solves else 0.0


class FiniteDifferenceSolver(SubstrateSolver):
    """PCG-based finite-difference substrate solver.

    Parameters
    ----------
    layout:
        Contact layout.
    profile:
        Layered substrate profile.
    nx, ny:
        Lateral grid resolution.
    planes_per_layer:
        Vertical planes per substrate layer (int or per-layer sequence).
    preconditioner:
        Name from :data:`~repro.substrate.fd.preconditioners.PRECONDITIONER_NAMES`;
        defaults to the paper's best performer, the area-weighted fast-Poisson
        preconditioner.
    rtol:
        Relative residual tolerance of the PCG iteration.
    """

    def __init__(
        self,
        layout: ContactLayout,
        profile: SubstrateProfile,
        nx: int = 32,
        ny: int = 32,
        planes_per_layer: int | tuple[int, ...] = 3,
        preconditioner: str = "fast_poisson_area",
        rtol: float = 1e-8,
    ) -> None:
        self.layout = layout
        self.profile = profile
        self.grid = Grid3D(layout, profile, nx, ny, planes_per_layer)
        self.assembly = FDAssembly(self.grid)
        self.preconditioner_name = preconditioner
        self._m_inv = make_preconditioner(preconditioner, self.assembly)
        self.rtol = rtol
        self.stats = _SolveStats()

    # ----------------------------------------------------------------- solves
    def solve_potentials(self, voltages: np.ndarray) -> np.ndarray:
        """Solve for all nodal potentials given contact voltages."""
        voltages = np.asarray(voltages, dtype=float)
        if voltages.shape != (self.layout.n_contacts,):
            raise ValueError("expected one voltage per contact")
        b = self.assembly.rhs_for_contact_voltages(voltages)
        iterations = 0

        def cb(_xk: np.ndarray) -> None:
            nonlocal iterations
            iterations += 1

        sol, info = cg(
            self.assembly.matrix,
            b,
            rtol=self.rtol,
            atol=0.0,
            maxiter=5000,
            M=self._m_inv,
            callback=cb,
        )
        if info > 0:
            raise RuntimeError(f"PCG did not converge ({info} iterations)")
        self.stats.record(iterations)
        return sol

    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        potentials = self.solve_potentials(voltages)
        return self.assembly.contact_currents(np.asarray(voltages, dtype=float), potentials)

    # ------------------------------------------------------------ convenience
    def conductance_matrix(self) -> np.ndarray:
        """Dense ``G`` by the naive method (small layouts only)."""
        from ..extraction import extract_dense

        return extract_dense(self)

    def mean_iterations_per_solve(self) -> float:
        """Average PCG iterations per solve (Tables 2.1 and 2.2)."""
        return self.stats.mean_iterations
