"""Finite-difference black-box substrate solver (Section 2.2).

Solves the grid-of-resistors system with preconditioned conjugate gradients
for each set of contact voltages and returns the contact currents, satisfying
the same black-box contract as the eigenfunction solver.

Batched solves (:meth:`FiniteDifferenceSolver.solve_many`) are routed per
block by a :class:`~repro.substrate.dispatch.DispatchPolicy` between the
multi-RHS PCG iteration and a factor-once sparse-LU direct engine
(:class:`~repro.substrate.fd.direct.FDDirectEngine`), mirroring the
eigenfunction solver's adaptive dispatch.  The routing is iteration-aware:
the near-exact fast-Poisson preconditioner converges in a couple of
iterations on laterally uniform profiles and then beats a triangular sweep
over the LU fill per column, while weakly preconditioned configurations
(Jacobi, incomplete Cholesky) cross over to the direct engine for wide
blocks.
"""

from __future__ import annotations

import warnings

import numpy as np
from scipy.sparse.linalg import cg

from ...geometry.contact import ContactLayout
from ..dispatch import DispatchDecision, DispatchPolicy
from ..profile import SubstrateProfile
from ..solver_base import SolveStats, SubstrateSolver
from .assembly import FDAssembly
from .direct import FDDirectEngine
from .grid import Grid3D
from .preconditioners import make_preconditioner

__all__ = ["FiniteDifferenceSolver"]

#: prior PCG iteration expectations per preconditioner, used by the dispatch
#: cost model until the solver has observed its own convergence behaviour
_ITERATION_PRIORS = {
    "fast_poisson_dirichlet": 4.0,
    "fast_poisson_neumann": 4.0,
    "fast_poisson_area": 2.0,
    "ic": 50.0,
    "jacobi": 130.0,
    "none": 300.0,
}


class FiniteDifferenceSolver(SubstrateSolver):
    """PCG-based finite-difference substrate solver.

    Parameters
    ----------
    layout:
        Contact layout.
    profile:
        Layered substrate profile.
    nx, ny:
        Lateral grid resolution.
    planes_per_layer:
        Vertical planes per substrate layer (int or per-layer sequence).
    preconditioner:
        Name from :data:`~repro.substrate.fd.preconditioners.PRECONDITIONER_NAMES`;
        defaults to the paper's best performer, the area-weighted fast-Poisson
        preconditioner.
    rtol:
        Relative residual tolerance of the PCG iteration.
    max_batch:
        Largest number of right-hand-side columns iterated at once by
        :meth:`solve_many` (bounds the ``(n_nodes, k)`` work arrays).
    fft_workers:
        Worker-thread count for the fast-Poisson preconditioner's DCT
        transforms, resolved through
        :func:`~repro.substrate.dispatch.resolve_fft_workers` (default: all
        CPUs when the host has more than one).  Ignored by the non-DCT
        preconditioners.
    dispatch:
        Adaptive :class:`~repro.substrate.dispatch.DispatchPolicy` routing
        each ``solve_many`` block between the sparse-LU direct engine and the
        multi-RHS PCG iteration (``choose_sparse``).  ``None`` builds a
        default policy.
    use_factor_cache:
        Consult (and populate) the process-wide
        :mod:`~repro.substrate.factor_cache` for the sparse LU.  Disable to
        force a private factorisation (benchmarking cold paths).
    """

    def __init__(
        self,
        layout: ContactLayout,
        profile: SubstrateProfile,
        nx: int = 32,
        ny: int = 32,
        planes_per_layer: int | tuple[int, ...] = 3,
        preconditioner: str = "fast_poisson_area",
        rtol: float = 1e-8,
        max_batch: int = 128,
        fft_workers: int | None = None,
        dispatch: DispatchPolicy | None = None,
        use_factor_cache: bool = True,
    ) -> None:
        self.layout = layout
        self.profile = profile
        self.grid = Grid3D(layout, profile, nx, ny, planes_per_layer)
        self.assembly = FDAssembly(self.grid)
        self.preconditioner_name = preconditioner
        self._m_inv = make_preconditioner(
            preconditioner, self.assembly, fft_workers=fft_workers
        )
        self.rtol = rtol
        self.max_batch = int(max_batch)
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.stats = SolveStats()
        self.dispatch = dispatch if dispatch is not None else DispatchPolicy()
        self.use_factor_cache = bool(use_factor_cache)
        #: routing decision of the most recent solve_many block (diagnostics)
        self.last_dispatch: DispatchDecision | None = None
        self._direct_engine: FDDirectEngine | None = None
        self._direct_failed = False

    # ----------------------------------------------------------------- solves
    def solve_potentials(self, voltages: np.ndarray) -> np.ndarray:
        """Solve for all nodal potentials given contact voltages."""
        voltages = np.asarray(voltages, dtype=float)
        if voltages.shape != (self.layout.n_contacts,):
            raise ValueError("expected one voltage per contact")
        b = self.assembly.rhs_for_contact_voltages(voltages)
        iterations = 0

        def cb(_xk: np.ndarray) -> None:
            nonlocal iterations
            iterations += 1

        sol, info = cg(
            self.assembly.matrix,
            b,
            rtol=self.rtol,
            atol=0.0,
            maxiter=5000,
            M=self._m_inv,
            callback=cb,
        )
        if info > 0:
            raise RuntimeError(f"PCG did not converge ({info} iterations)")
        self.stats.record(iterations)
        return sol

    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        potentials = self.solve_potentials(voltages)
        return self.assembly.contact_currents(np.asarray(voltages, dtype=float), potentials)

    # ------------------------------------------------------------- direct path
    def _ensure_direct_engine(self) -> FDDirectEngine:
        if self._direct_engine is None:
            self._direct_engine = FDDirectEngine(
                self.assembly, use_cache=self.use_factor_cache, stats=self.stats
            )
        return self._direct_engine

    @property
    def factor_cache_key(self) -> tuple:
        """Process-wide factor-cache key of this solver's sparse LU.

        The parallel engine's shared-memory factor plane publishes the
        parent's factor under this key so worker processes attach instead of
        refactoring.
        """
        return self._ensure_direct_engine().factor_cache_key

    def _expected_iterations(self) -> float | None:
        """Observed PCG convergence, or a per-preconditioner prior."""
        if self.stats.n_iterative_solves > 0:
            return self.stats.mean_iterations
        return _ITERATION_PRIORS.get(self.preconditioner_name)

    def prepare_direct(self) -> bool:
        """Build (or load from the factor cache) the sparse LU factor now.

        Returns True when a factor is held afterwards; False when the direct
        path is unavailable (node ceiling, or a failed factorisation, which
        is also remembered so dispatch never retries it).  Used to warm
        worker processes before timed parallel extraction.
        """
        if self._direct_failed:
            return False
        if not 0 < self.assembly.matrix.shape[0] <= self.dispatch.max_direct_nodes:
            return False
        engine = self._ensure_direct_engine()
        try:
            engine.prepare()
        except RuntimeError:
            self._direct_failed = True
            return False
        return True

    def _solve_many_direct(self, v: np.ndarray) -> np.ndarray | None:
        """Factor-once / solve-all path; returns None on factorisation failure.

        RHS and potential blocks are processed in ``max_batch``-column chunks
        so a wide block never materialises the full ``(n_nodes, k)`` arrays
        at once — the same memory bound the iterative path observes.
        """
        engine = self._ensure_direct_engine()
        try:
            engine.prepare()
        except RuntimeError:
            self._direct_failed = True
            return None
        out = np.empty_like(v)
        for start in range(0, v.shape[1], self.max_batch):
            chunk = slice(start, min(start + self.max_batch, v.shape[1]))
            b = self.assembly.rhs_for_contact_voltages(v[:, chunk])
            potentials = engine.solve(b)
            out[:, chunk] = self.assembly.contact_currents(v[:, chunk], potentials)
        self.stats.record_direct(v.shape[1])
        return out

    # ---------------------------------------------------------- batched solves
    def solve_many(self, voltages: np.ndarray) -> np.ndarray:
        """Batched black-box solve with adaptive direct/iterative dispatch.

        The :class:`~repro.substrate.dispatch.DispatchPolicy` routes the
        whole block once (``choose_sparse``), so a one-time sparse
        factorisation is amortised over every column; the chosen engine then
        chunks internally at ``max_batch``.  The iterative engine runs one
        sparse matrix-block product and one block preconditioner apply per
        iteration for every column; per-column step lengths keep each column
        on the trajectory of its sequential :meth:`solve_currents`.
        """
        v = np.asarray(voltages, dtype=float)
        if v.ndim != 2 or v.shape[0] != self.layout.n_contacts:
            raise ValueError("expected an (n_contacts, k) voltage block")
        if v.shape[1] == 0:
            return np.empty_like(v)
        engine = self._ensure_direct_engine()
        decision = self.dispatch.choose_sparse(
            n_nodes=self.assembly.matrix.shape[0],
            n_rhs=v.shape[1],
            factor_cached=engine.factor_available(),
            factor_failed=self._direct_failed,
            expected_iterations=self._expected_iterations(),
        )
        self.last_dispatch = decision
        if decision.path == "direct":
            solved = self._solve_many_direct(v)
            if solved is not None:
                return solved
            warnings.warn(
                "sparse LU factorisation of the FD system failed; falling back "
                "to the iterative path",
                RuntimeWarning,
                stacklevel=2,
            )
            self.last_dispatch = DispatchDecision(
                "iterative", "direct factorisation failed"
            )
        out = np.empty_like(v)
        for start in range(0, v.shape[1], self.max_batch):
            chunk = slice(start, min(start + self.max_batch, v.shape[1]))
            potentials = self.solve_potentials_many(v[:, chunk])
            out[:, chunk] = self.assembly.contact_currents(v[:, chunk], potentials)
        return out

    def solve_potentials_many(self, voltages: np.ndarray) -> np.ndarray:
        """Nodal potentials for an ``(n_contacts, k)`` block of voltages."""
        v = np.asarray(voltages, dtype=float)
        if v.ndim != 2 or v.shape[0] != self.layout.n_contacts:
            raise ValueError("expected an (n_contacts, k) voltage block")
        b = self.assembly.rhs_for_contact_voltages(v)
        if b.shape[1] == 0:
            return b
        a = self.assembly.matrix
        precondition = (
            self._m_inv.matmat if self._m_inv is not None else (lambda r: r)
        )
        n_rhs = b.shape[1]
        x = np.zeros_like(b)
        r = b.copy()
        tol = self.rtol * np.linalg.norm(b, axis=0)
        iters = np.zeros(n_rhs, dtype=int)
        active = np.linalg.norm(r, axis=0) > tol
        z = precondition(r)
        p = z.copy()
        rz = np.einsum("ij,ij->j", r, z)
        for _ in range(5000):
            if not active.any():
                break
            ap = a @ p
            pap = np.einsum("ij,ij->j", p, ap)
            safe_pap = np.where(pap > 0, pap, 1.0)
            alpha = np.where(active & (pap > 0), rz / safe_pap, 0.0)
            x += alpha * p
            r -= alpha * ap
            iters[active] += 1
            active &= np.linalg.norm(r, axis=0) > tol
            z = precondition(r)
            rz_new = np.einsum("ij,ij->j", r, z)
            beta = np.where(rz > 0, rz_new / np.where(rz > 0, rz, 1.0), 0.0)
            p = z + beta * p
            rz = rz_new
        if active.any():
            raise RuntimeError(
                f"batched PCG did not converge for {int(active.sum())} column(s)"
            )
        for it in iters:
            self.stats.record(int(it))
        return x

    # ------------------------------------------------------------ convenience
    def conductance_matrix(self) -> np.ndarray:
        """Dense ``G`` by the naive method (small layouts only)."""
        from ..extraction import extract_dense

        return extract_dense(self)

    def mean_iterations_per_solve(self) -> float:
        """Average PCG iterations per iterative solve (Tables 2.1 and 2.2).

        See :class:`~repro.substrate.solver_base.SolveStats`: solves served
        by the sparse-LU direct engine run zero PCG iterations and are
        reported separately (``stats.n_direct_solves``), never diluting this
        mean.
        """
        return self.stats.mean_iterations
