"""Finite-difference black-box substrate solver (Section 2.2).

Solves the grid-of-resistors system with preconditioned conjugate gradients
for each set of contact voltages and returns the contact currents, satisfying
the same black-box contract as the eigenfunction solver.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import cg

from ...geometry.contact import ContactLayout
from ..profile import SubstrateProfile
from ..solver_base import SolveStats, SubstrateSolver
from .assembly import FDAssembly
from .grid import Grid3D
from .preconditioners import make_preconditioner

__all__ = ["FiniteDifferenceSolver"]


class FiniteDifferenceSolver(SubstrateSolver):
    """PCG-based finite-difference substrate solver.

    Parameters
    ----------
    layout:
        Contact layout.
    profile:
        Layered substrate profile.
    nx, ny:
        Lateral grid resolution.
    planes_per_layer:
        Vertical planes per substrate layer (int or per-layer sequence).
    preconditioner:
        Name from :data:`~repro.substrate.fd.preconditioners.PRECONDITIONER_NAMES`;
        defaults to the paper's best performer, the area-weighted fast-Poisson
        preconditioner.
    rtol:
        Relative residual tolerance of the PCG iteration.
    max_batch:
        Largest number of right-hand-side columns iterated at once by
        :meth:`solve_many` (bounds the ``(n_nodes, k)`` work arrays).
    fft_workers:
        Worker-thread count for the fast-Poisson preconditioner's DCT
        transforms, resolved through
        :func:`~repro.substrate.dispatch.resolve_fft_workers` (default: all
        CPUs when the host has more than one).  Ignored by the non-DCT
        preconditioners.
    """

    def __init__(
        self,
        layout: ContactLayout,
        profile: SubstrateProfile,
        nx: int = 32,
        ny: int = 32,
        planes_per_layer: int | tuple[int, ...] = 3,
        preconditioner: str = "fast_poisson_area",
        rtol: float = 1e-8,
        max_batch: int = 128,
        fft_workers: int | None = None,
    ) -> None:
        self.layout = layout
        self.profile = profile
        self.grid = Grid3D(layout, profile, nx, ny, planes_per_layer)
        self.assembly = FDAssembly(self.grid)
        self.preconditioner_name = preconditioner
        self._m_inv = make_preconditioner(
            preconditioner, self.assembly, fft_workers=fft_workers
        )
        self.rtol = rtol
        self.max_batch = int(max_batch)
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.stats = SolveStats()

    # ----------------------------------------------------------------- solves
    def solve_potentials(self, voltages: np.ndarray) -> np.ndarray:
        """Solve for all nodal potentials given contact voltages."""
        voltages = np.asarray(voltages, dtype=float)
        if voltages.shape != (self.layout.n_contacts,):
            raise ValueError("expected one voltage per contact")
        b = self.assembly.rhs_for_contact_voltages(voltages)
        iterations = 0

        def cb(_xk: np.ndarray) -> None:
            nonlocal iterations
            iterations += 1

        sol, info = cg(
            self.assembly.matrix,
            b,
            rtol=self.rtol,
            atol=0.0,
            maxiter=5000,
            M=self._m_inv,
            callback=cb,
        )
        if info > 0:
            raise RuntimeError(f"PCG did not converge ({info} iterations)")
        self.stats.record(iterations)
        return sol

    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        potentials = self.solve_potentials(voltages)
        return self.assembly.contact_currents(np.asarray(voltages, dtype=float), potentials)

    # ---------------------------------------------------------- batched solves
    def solve_many(self, voltages: np.ndarray) -> np.ndarray:
        """Batched black-box solve: multi-RHS PCG over stacked voltage vectors.

        One sparse matrix-block product and one block preconditioner apply
        per iteration serve every column; per-column step lengths keep each
        column on the trajectory of its sequential :meth:`solve_currents`.
        """
        v = np.asarray(voltages, dtype=float)
        if v.ndim != 2 or v.shape[0] != self.layout.n_contacts:
            raise ValueError("expected an (n_contacts, k) voltage block")
        out = np.empty_like(v)
        for start in range(0, v.shape[1], self.max_batch):
            chunk = slice(start, min(start + self.max_batch, v.shape[1]))
            potentials = self.solve_potentials_many(v[:, chunk])
            out[:, chunk] = self.assembly.contact_currents(v[:, chunk], potentials)
        return out

    def solve_potentials_many(self, voltages: np.ndarray) -> np.ndarray:
        """Nodal potentials for an ``(n_contacts, k)`` block of voltages."""
        v = np.asarray(voltages, dtype=float)
        if v.ndim != 2 or v.shape[0] != self.layout.n_contacts:
            raise ValueError("expected an (n_contacts, k) voltage block")
        b = self.assembly.rhs_for_contact_voltages(v)
        if b.shape[1] == 0:
            return b
        a = self.assembly.matrix
        precondition = (
            self._m_inv.matmat if self._m_inv is not None else (lambda r: r)
        )
        n_rhs = b.shape[1]
        x = np.zeros_like(b)
        r = b.copy()
        tol = self.rtol * np.linalg.norm(b, axis=0)
        iters = np.zeros(n_rhs, dtype=int)
        active = np.linalg.norm(r, axis=0) > tol
        z = precondition(r)
        p = z.copy()
        rz = np.einsum("ij,ij->j", r, z)
        for _ in range(5000):
            if not active.any():
                break
            ap = a @ p
            pap = np.einsum("ij,ij->j", p, ap)
            safe_pap = np.where(pap > 0, pap, 1.0)
            alpha = np.where(active & (pap > 0), rz / safe_pap, 0.0)
            x += alpha * p
            r -= alpha * ap
            iters[active] += 1
            active &= np.linalg.norm(r, axis=0) > tol
            z = precondition(r)
            rz_new = np.einsum("ij,ij->j", r, z)
            beta = np.where(rz > 0, rz_new / np.where(rz > 0, rz, 1.0), 0.0)
            p = z + beta * p
            rz = rz_new
        if active.any():
            raise RuntimeError(
                f"batched PCG did not converge for {int(active.sum())} column(s)"
            )
        for it in iters:
            self.stats.record(int(it))
        return x

    # ------------------------------------------------------------ convenience
    def conductance_matrix(self) -> np.ndarray:
        """Dense ``G`` by the naive method (small layouts only)."""
        from ..extraction import extract_dense

        return extract_dense(self)

    def mean_iterations_per_solve(self) -> float:
        """Average PCG iterations per iterative solve (Tables 2.1 and 2.2).

        See :class:`~repro.substrate.solver_base.SolveStats`: direct solves
        (none in this backend today) are reported separately and never dilute
        this mean.
        """
        return self.stats.mean_iterations
