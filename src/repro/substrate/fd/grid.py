"""3-D finite-difference grid for the grid-of-resistors substrate model.

Section 2.2 discretises Poisson's equation on a regular 3-D grid, which is
equivalent to a resistor network (Figure 2-1).  This module defines the grid
geometry: cell-centred nodes, per-plane conductivities, non-uniform vertical
spacing so thin layers can be resolved without refining the whole volume, and
the mapping from top-surface nodes to contacts (Dirichlet boundary nodes sit
just above the surface, the paper's first placement choice in Figure 2-4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...geometry.contact import ContactLayout
from ..profile import SubstrateProfile

__all__ = ["Grid3D"]


@dataclass
class Grid3D:
    """Cell-centred 3-D grid over the substrate volume.

    Node ``(i, j, k)`` sits at ``((i+1/2) hx, (j+1/2) hy, -depth_k)`` with
    ``k = 0`` the topmost plane.  The vertical spacing is chosen per layer so
    each substrate layer receives ``planes_per_layer`` planes (or a minimum of
    one), exactly resolving layer boundaries half-way between planes as the
    paper assumes.

    Parameters
    ----------
    layout:
        Contact layout (defines lateral size and contact footprints).
    profile:
        Layered substrate profile.
    nx, ny:
        Lateral node counts.
    planes_per_layer:
        Either an int applied to every layer or a sequence with one entry per
        layer.
    """

    layout: ContactLayout
    profile: SubstrateProfile
    nx: int
    ny: int
    planes_per_layer: int | tuple[int, ...] = 3

    def __post_init__(self) -> None:
        if self.nx < 2 or self.ny < 2:
            raise ValueError("grid must have at least 2 nodes per lateral dimension")
        self.hx = self.layout.size_x / self.nx
        self.hy = self.layout.size_y / self.ny

        if isinstance(self.planes_per_layer, int):
            per_layer = [self.planes_per_layer] * self.profile.n_layers
        else:
            per_layer = list(self.planes_per_layer)
            if len(per_layer) != self.profile.n_layers:
                raise ValueError("planes_per_layer must have one entry per layer")
        per_layer = [max(1, int(p)) for p in per_layer]

        hz: list[float] = []
        sigma: list[float] = []
        for layer, count in zip(self.profile.layers, per_layer, strict=True):
            dz = layer.thickness / count
            hz.extend([dz] * count)
            sigma.extend([layer.conductivity] * count)
        #: vertical cell heights, top plane first
        self.hz = np.array(hz)
        #: conductivity of each plane, top plane first
        self.sigma = np.array(sigma)
        self.nz = len(hz)
        #: depth of each plane's node below the top surface
        self.node_depth = np.cumsum(self.hz) - 0.5 * self.hz

        self._assign_top_contacts()

    # --------------------------------------------------------------- indexing
    @property
    def n_nodes(self) -> int:
        return self.nx * self.ny * self.nz

    def node_index(
        self, i: np.ndarray | int, j: np.ndarray | int, k: np.ndarray | int
    ) -> np.ndarray | int:
        """Flat node index with ordering ``k`` (slowest), ``i``, ``j`` (fastest)."""
        return (np.asarray(k) * self.nx + np.asarray(i)) * self.ny + np.asarray(j)

    def top_plane_indices(self) -> np.ndarray:
        """Flat indices of the top-plane nodes, in (i, j) raster order."""
        ii, jj = np.meshgrid(np.arange(self.nx), np.arange(self.ny), indexing="ij")
        return self.node_index(ii.ravel(), jj.ravel(), 0)

    # ----------------------------------------------------------- top contacts
    def _assign_top_contacts(self) -> None:
        xc = (np.arange(self.nx) + 0.5) * self.hx
        yc = (np.arange(self.ny) + 0.5) * self.hy
        owner = np.full((self.nx, self.ny), -1, dtype=int)
        for idx, c in enumerate(self.layout.contacts):
            i_sel = np.flatnonzero((xc >= c.x) & (xc <= c.x2))
            j_sel = np.flatnonzero((yc >= c.y) & (yc <= c.y2))
            if i_sel.size == 0 or j_sel.size == 0:
                # snap tiny contacts to the nearest node
                i_sel = np.array([np.clip(int(c.centroid[0] / self.hx), 0, self.nx - 1)])
                j_sel = np.array([np.clip(int(c.centroid[1] / self.hy), 0, self.ny - 1)])
            for i in i_sel:
                for j in j_sel:
                    if owner[i, j] == -1:
                        owner[i, j] = idx
        #: (nx, ny) array mapping top-surface cells to contact index or -1
        self.top_contact_owner = owner
        #: list (per contact) of flat top-node indices beneath the contact
        self.contact_top_nodes: list[np.ndarray] = []
        for idx in range(self.layout.n_contacts):
            sel = np.argwhere(owner == idx)
            if sel.size == 0:
                raise ValueError(
                    f"contact {idx} received no grid nodes; refine the lateral grid"
                )
            self.contact_top_nodes.append(
                self.node_index(sel[:, 0], sel[:, 1], 0).astype(int)
            )

    # ------------------------------------------------------------ conductances
    def lateral_conductances(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-plane x- and y-direction branch conductances ``(gx[k], gy[k])``."""
        gx = self.sigma * self.hy * self.hz / self.hx
        gy = self.sigma * self.hx * self.hz / self.hy
        return gx, gy

    def vertical_conductances(self) -> np.ndarray:
        """Branch conductances ``gz[k]`` between plane ``k`` and ``k+1``.

        A vertical branch spans half of each neighbouring cell; crossing a
        layer boundary yields the series combination of Figure 2-2.
        """
        area = self.hx * self.hy
        upper = 0.5 * self.hz[:-1] / (self.sigma[:-1] * area)
        lower = 0.5 * self.hz[1:] / (self.sigma[1:] * area)
        return 1.0 / (upper + lower)

    def top_dirichlet_conductance(self) -> float:
        """Conductance from a top node to a Dirichlet contact node on the surface."""
        area = self.hx * self.hy
        return 2.0 * self.sigma[0] * area / self.hz[0]

    def bottom_dirichlet_conductance(self) -> float:
        """Conductance from a bottom node to the grounded backplane."""
        area = self.hx * self.hy
        return 2.0 * self.sigma[-1] * area / self.hz[-1]

    def contact_area_fraction(self) -> float:
        """Fraction of top-surface cells owned by contacts (area-weighted BC)."""
        return float(np.count_nonzero(self.top_contact_owner >= 0)) / (
            self.nx * self.ny
        )
