"""Factor-once multi-RHS direct engine for the finite-difference backend.

The grid-of-resistors system matrix (:class:`~repro.substrate.fd.assembly.FDAssembly`)
is symmetric positive definite whenever at least one Dirichlet coupling exists
(contacts always stamp one), so a sparse LU of the interior Laplacian turns
every further right-hand side into two triangular sweeps over the fill.  This
is the FD counterpart of the eigenfunction solver's cached dense Cholesky:
:class:`~repro.substrate.dispatch.DispatchPolicy` (via
:meth:`~repro.substrate.dispatch.DispatchPolicy.choose_sparse`) routes wide
``solve_many`` blocks here when the preconditioned iteration is expected to
lose — which, with the near-exact fast-Poisson preconditioner, means weakly
preconditioned configurations (Jacobi / incomplete Cholesky) or workloads
that reuse one factor across very many columns.

Factorisations are shared through the process-wide
:mod:`~repro.substrate.factor_cache`, keyed on the layout fingerprint, the
physical profile and the grid resolution, so a second solver over the same
substrate (or a benchmark repetition) pays ~zero factor cost.  They are built
**without equilibration** (``options={"Equil": False}``): SuperLU does not
expose its row/column scalings, and a non-equilibrated factor is exactly
reconstructible from its component arrays — which is what lets the parallel
engine's shared-memory factor plane ship these factors to worker processes
(as :class:`~repro.substrate.factor_cache.SharedSparseLU` views) instead of
refactoring per worker.  The FD systems are diagonally dominant
grid-of-resistors matrices, so skipping equilibration costs no accuracy.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import splu

from ..factor_cache import factor_cache
from ..solver_base import SolveStats
from .assembly import FDAssembly

__all__ = ["FDDirectEngine", "fd_factor_cache_key"]

#: factor-cache kind string of the FD sparse factorisations
FD_FACTOR_KIND = "fd_direct_factor"


def fd_factor_cache_key(assembly: FDAssembly) -> tuple:
    """Process-wide cache key of one assembled FD system's factorisation."""
    grid = assembly.grid
    return (
        FD_FACTOR_KIND,
        grid.layout.fingerprint,
        grid.profile.cache_key,
        grid.nx,
        grid.ny,
        tuple(grid.hz.tolist()),
    )


class FDDirectEngine:
    """Sparse-LU factor-once / solve-all engine over one FD assembly.

    Parameters
    ----------
    assembly:
        The assembled FD system to factor.
    use_cache:
        Consult (and populate) the process-wide factor cache.  Disable to
        force a private factorisation (benchmarking cold paths).
    stats:
        Optional :class:`~repro.substrate.solver_base.SolveStats` that gets a
        ``record_factor_rebuild`` whenever :meth:`prepare` actually factors
        (as opposed to loading from the cache or an attached shared payload).
    """

    def __init__(
        self,
        assembly: FDAssembly,
        use_cache: bool = True,
        stats: SolveStats | None = None,
    ) -> None:
        self.assembly = assembly
        self.use_cache = bool(use_cache)
        self.stats = stats
        self._key = fd_factor_cache_key(assembly)
        self._lu = None

    @property
    def factor_cache_key(self) -> tuple:
        """Process-wide factor-cache key of this engine's sparse LU."""
        return self._key

    @property
    def is_factored(self) -> bool:
        """True once a factorisation is held (built or loaded from cache)."""
        return self._lu is not None

    def factor_available(self) -> bool:
        """True if a factor is held or present in the process-wide cache."""
        return self._lu is not None or (
            self.use_cache and factor_cache().contains(self._key)
        )

    def prepare(self) -> None:
        """Build (or load from the cache) the sparse LU factorisation.

        Raises ``RuntimeError`` if the factorisation fails (exactly singular
        system — only possible for degenerate assemblies with no Dirichlet
        coupling at all).
        """
        if self._lu is not None:
            return
        if self.use_cache:
            cached = factor_cache().get(self._key)
            if cached is not None:
                self._lu = cached
                return
        try:
            # Equil=False keeps the factor reconstructible from components
            # (see module docstring) so the factor plane can ship it
            lu = splu(self.assembly.matrix.tocsc(), options={"Equil": False})
        except (RuntimeError, ValueError, MemoryError) as exc:
            raise RuntimeError(f"sparse LU factorisation failed: {exc}") from exc
        self._lu = lu
        if self.stats is not None:
            self.stats.record_factor_rebuild()
        if self.use_cache:
            factor_cache().put(self._key, lu)

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Nodal potentials for an ``(n_nodes,)`` or ``(n_nodes, k)`` RHS."""
        self.prepare()
        return self._lu.solve(np.asarray(b, dtype=float))
