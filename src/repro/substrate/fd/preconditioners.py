"""Preconditioner factory for the finite-difference PCG solver.

Section 2.2.2 compares incomplete-Cholesky preconditioning with fast-Poisson
solver preconditioners (pure Dirichlet, pure Neumann and area-weighted top
boundary).  This module exposes all of them behind one factory so the solver
and the Table 2.1 benchmark can switch by name.

The incomplete-Cholesky preconditioner is a zero-fill IC(0) factorisation
(nonzeros of ``L`` restricted to the lower triangle of ``A``), exactly the
preconditioner the paper describes in Section 2.2.2.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import LinearOperator, spsolve_triangular

from .assembly import FDAssembly
from .fast_poisson import FastPoissonPreconditioner

__all__ = ["make_preconditioner", "PRECONDITIONER_NAMES"]

PRECONDITIONER_NAMES = (
    "none",
    "jacobi",
    "ic",
    "fast_poisson_dirichlet",
    "fast_poisson_neumann",
    "fast_poisson_area",
)


def _jacobi(matrix: sparse.csr_matrix) -> Callable[[np.ndarray], np.ndarray]:
    diag = matrix.diagonal()
    if np.any(diag <= 0):
        raise ValueError("matrix diagonal must be positive for Jacobi preconditioning")
    inv = 1.0 / diag

    def apply(r: np.ndarray) -> np.ndarray:
        if r.ndim == 2:
            return inv[:, None] * r
        return inv * r

    return apply


def incomplete_cholesky_factor(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Zero-fill incomplete Cholesky factor ``L`` with ``A ~ L L'``.

    The factor keeps only the lower-triangular sparsity pattern of ``A``
    (IC(0)).  The grid-of-resistors matrix is a symmetric M-matrix, for which
    the factorisation is well defined; a small diagonal shift guards against
    breakdowns caused by rounding.
    """
    a = sparse.csr_matrix(matrix)
    n = a.shape[0]
    lower_rows: list[dict[int, float]] = [{} for _ in range(n)]
    diag = np.zeros(n)
    indptr, indices, data = a.indptr, a.indices, a.data
    for i in range(n):
        row_entries = {}
        aii = 0.0
        for ptr in range(indptr[i], indptr[i + 1]):
            j = indices[ptr]
            if j < i:
                row_entries[j] = data[ptr]
            elif j == i:
                aii = data[ptr]
        li = lower_rows[i]
        for j in sorted(row_entries):
            s = row_entries[j]
            lj = lower_rows[j]
            # subtract sum_k L[i,k] L[j,k] over the shared pattern
            if len(li) <= len(lj):
                s -= sum(v * lj[k] for k, v in li.items() if k in lj and k < j)
            else:
                s -= sum(v * li[k] for k, v in lj.items() if k in li and k < j)
            li[j] = s / diag[j]
        d2 = aii - sum(v * v for v in li.values())
        if d2 <= 0.0:
            d2 = max(1e-12 * abs(aii), 1e-300)
        diag[i] = np.sqrt(d2)

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for i in range(n):
        for j, v in lower_rows[i].items():
            rows.append(i)
            cols.append(j)
            vals.append(v)
        rows.append(i)
        cols.append(i)
        vals.append(diag[i])
    return sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))


def _incomplete_cholesky(matrix: sparse.csr_matrix) -> Callable[[np.ndarray], np.ndarray]:
    factor = incomplete_cholesky_factor(matrix)
    factor_t = sparse.csr_matrix(factor.T)

    def apply(r: np.ndarray) -> np.ndarray:
        y = spsolve_triangular(factor, r, lower=True)
        return spsolve_triangular(factor_t, y, lower=False)

    return apply


def make_preconditioner(
    name: str, assembly: FDAssembly, fft_workers: int | None = None
) -> LinearOperator | None:
    """Build the named preconditioner as a ``LinearOperator`` (or None).

    Parameters
    ----------
    name:
        One of :data:`PRECONDITIONER_NAMES`.
    assembly:
        The assembled finite-difference system.
    fft_workers:
        Worker-thread count for the fast-Poisson DCT transforms (forwarded to
        :class:`FastPoissonPreconditioner`; ignored by the other variants).
    """
    n = assembly.grid.n_nodes
    if name == "none":
        return None
    if name == "jacobi":
        apply = _jacobi(assembly.matrix)
    elif name == "ic":
        apply = _incomplete_cholesky(assembly.matrix)
    elif name == "fast_poisson_dirichlet":
        apply = FastPoissonPreconditioner(
            assembly.grid, "dirichlet", fft_workers=fft_workers
        ).solve
    elif name == "fast_poisson_neumann":
        apply = FastPoissonPreconditioner(
            assembly.grid, "neumann", fft_workers=fft_workers
        ).solve
    elif name == "fast_poisson_area":
        apply = FastPoissonPreconditioner(
            assembly.grid, "area_weighted", fft_workers=fft_workers
        ).solve
    else:
        raise ValueError(
            f"unknown preconditioner {name!r}; expected one of {PRECONDITIONER_NAMES}"
        )
    # every apply above handles (n,) vectors and (n, k) blocks alike, so the
    # same callable serves as matmat — multi-RHS PCG then preconditions the
    # whole block in one pass instead of scipy's per-column fallback loop.
    return LinearOperator((n, n), matvec=apply, matmat=apply, dtype=float)
