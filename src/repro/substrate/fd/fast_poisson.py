"""Fast-Poisson (DCT) preconditioner for the finite-difference solver.

Section 2.2.2: with uniform boundary conditions on each face, the
grid-of-resistors system decouples under a 2-D discrete cosine transform in
``x`` and ``y`` into independent tridiagonal systems in ``z`` — a fast,
*exact* solver for that modified problem.  The actual top surface mixes
Dirichlet (contact) and Neumann (bare surface) nodes, so the fast solver is
used as a preconditioner ``M`` for PCG.  Three variants differ in how the top
face is treated when building ``M``:

* ``dirichlet`` — pretend every top node has a contact above it (``p = 1``),
* ``neumann``  — pretend no top node does (``p = 0``),
* ``area_weighted`` — use ``p = (total contact area) / (total top area)``,
  the paper's best-performing choice (Table 2.1).
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sp_fft

from ..dispatch import resolve_fft_workers
from .grid import Grid3D

__all__ = ["FastPoissonPreconditioner"]

_TOP_FRACTIONS = ("dirichlet", "neumann", "area_weighted")


class FastPoissonPreconditioner:
    """Exact DCT-based solver for the uniform-boundary-condition problem.

    Parameters
    ----------
    grid:
        The finite-difference grid.
    top_mode:
        One of ``"dirichlet"``, ``"neumann"``, ``"area_weighted"`` or a float
        in [0, 1] giving the fraction ``p`` of the Dirichlet top conductance
        to include.
    fft_workers:
        Worker-thread count for the lateral DCT transforms, resolved through
        :func:`~repro.substrate.dispatch.resolve_fft_workers` (default: all
        CPUs when the host has more than one).
    """

    def __init__(
        self,
        grid: Grid3D,
        top_mode: str | float = "area_weighted",
        fft_workers: int | None = None,
    ) -> None:
        self.grid = grid
        self.top_fraction = self._resolve_fraction(top_mode)
        self.fft_workers = resolve_fft_workers(fft_workers)
        self._prepare_modal_systems()

    def _resolve_fraction(self, top_mode: str | float) -> float:
        if isinstance(top_mode, str):
            if top_mode not in _TOP_FRACTIONS:
                raise ValueError(f"unknown top_mode {top_mode!r}")
            if top_mode == "dirichlet":
                return 1.0
            if top_mode == "neumann":
                return 0.0
            return self.grid.contact_area_fraction()
        frac = float(top_mode)
        if not 0.0 <= frac <= 1.0:
            raise ValueError("top fraction must lie in [0, 1]")
        return frac

    # ------------------------------------------------------------------ setup
    def _prepare_modal_systems(self) -> None:
        g = self.grid
        nx, ny, nz = g.nx, g.ny, g.nz
        gx, gy = g.lateral_conductances()
        gz = g.vertical_conductances()

        # 1-D Neumann path-Laplacian eigenvalues under DCT-II
        mu_x = 2.0 - 2.0 * np.cos(np.pi * np.arange(nx) / nx)
        mu_y = 2.0 - 2.0 * np.cos(np.pi * np.arange(ny) / ny)

        # per-mode, per-plane diagonal: shape (nz, nx, ny)
        diag = (
            gx[:, None, None] * mu_x[None, :, None]
            + gy[:, None, None] * mu_y[None, None, :]
        )
        if nz > 1:
            diag[:-1] += gz[:, None, None]
            diag[1:] += gz[:, None, None]
        diag[0] += self.top_fraction * g.top_dirichlet_conductance()
        if g.profile.grounded_backplane:
            diag[-1] += g.bottom_dirichlet_conductance()

        # guard the all-Neumann zero mode (floating backplane, p = 0)
        floor = 1e-12 * float(diag.max())
        diag[:, 0, 0] = np.maximum(diag[:, 0, 0], floor)

        self._diag = diag
        self._off = gz  # coupling between plane k and k+1 (negative off-diagonal)
        # Precompute the forward elimination factors of the Thomas algorithm,
        # vectorised over all (mode_x, mode_y) pairs.
        c_prime = np.empty_like(diag[:-1]) if nz > 1 else np.empty((0, nx, ny))
        denom = np.empty_like(diag)
        denom[0] = diag[0]
        for k in range(nz - 1):
            c_prime[k] = -gz[k] / denom[k]
            denom[k + 1] = diag[k + 1] + gz[k] * c_prime[k]
        self._c_prime = c_prime
        self._denom = denom

    # ------------------------------------------------------------------ apply
    def solve(self, residual: np.ndarray) -> np.ndarray:
        """Apply ``M^{-1}`` to a nodal residual vector (or ``(n, k)`` block).

        Blocks are solved in one pass: the lateral DCTs act on all columns at
        once and the Thomas recurrences broadcast over the trailing axis.
        """
        g = self.grid
        nx, ny, nz = g.nx, g.ny, g.nz
        residual = np.asarray(residual, dtype=float)
        batch = residual.shape[1:]  # () for a vector, (k,) for a block
        r = residual.reshape((nz, nx, ny) + batch)
        trail = (slice(None),) * 2 + (None,) * len(batch)

        # forward 2-D DCT (orthonormal) over the lateral directions
        rhat = sp_fft.dctn(
            r, type=2, norm="ortho", axes=(1, 2), workers=self.fft_workers
        )

        # Thomas algorithm per mode (vectorised over modes and RHS columns)
        denom = self._denom[(slice(None),) + trail] if batch else self._denom
        c_prime = self._c_prime[(slice(None),) + trail] if batch else self._c_prime
        d = np.empty_like(rhat)
        d[0] = rhat[0] / denom[0]
        for k in range(1, nz):
            d[k] = (rhat[k] + self._off[k - 1] * d[k - 1]) / denom[k]
        x = np.empty_like(d)
        x[-1] = d[-1]
        for k in range(nz - 2, -1, -1):
            x[k] = d[k] - c_prime[k] * x[k + 1]

        out = sp_fft.idctn(
            x, type=2, norm="ortho", axes=(1, 2), workers=self.fft_workers
        )
        return out.reshape(residual.shape)

    def as_dense(self) -> np.ndarray:  # pragma: no cover - test helper for tiny grids
        """Explicit dense ``M^{-1}`` (tiny grids only, used in tests)."""
        n = self.grid.n_nodes
        out = np.empty((n, n))
        e = np.zeros(n)
        for k in range(n):
            e[k] = 1.0
            out[:, k] = self.solve(e)
            e[k] = 0.0
        return out
