"""Finite-difference (grid-of-resistors) substrate solver of Section 2.2."""

from .assembly import FDAssembly
from .direct import FDDirectEngine
from .fast_poisson import FastPoissonPreconditioner
from .grid import Grid3D
from .preconditioners import PRECONDITIONER_NAMES, make_preconditioner
from .solver import FiniteDifferenceSolver

__all__ = [
    "Grid3D",
    "FDAssembly",
    "FDDirectEngine",
    "FastPoissonPreconditioner",
    "make_preconditioner",
    "PRECONDITIONER_NAMES",
    "FiniteDifferenceSolver",
]
