"""Sparse assembly of the grid-of-resistors system matrix.

Builds the symmetric positive definite nodal conductance matrix ``A`` of
Section 2.2 (eq. 2.9): every resistor between nodes ``a`` and ``b`` with
conductance ``g`` stamps ``+g`` on both diagonals and ``-g`` on the two
off-diagonal positions.  Neumann boundaries (sidewalls, non-contact top
surface, floating bottom) are handled by simply omitting resistors; Dirichlet
boundaries (contacts, grounded backplane) are eliminated into the diagonal
and the right-hand side.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from .grid import Grid3D

__all__ = ["FDAssembly"]


@dataclass
class FDAssembly:
    """Assembled finite-difference system for one grid.

    Attributes
    ----------
    matrix:
        The ``n_nodes x n_nodes`` CSR nodal conductance matrix (Dirichlet
        couplings folded into the diagonal).
    grid:
        The underlying :class:`Grid3D`.
    """

    grid: Grid3D

    def __post_init__(self) -> None:
        self.matrix = self._assemble()
        self._g_top = self.grid.top_dirichlet_conductance()

    # ----------------------------------------------------------------- stamps
    def _assemble(self) -> sparse.csr_matrix:
        g = self.grid
        nx, ny, nz = g.nx, g.ny, g.nz
        n = g.n_nodes
        gx, gy = g.lateral_conductances()
        gz = g.vertical_conductances()

        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        diag = np.zeros(n)

        def stamp(a: np.ndarray, b: np.ndarray, gval: np.ndarray | float) -> None:
            gval = np.broadcast_to(np.asarray(gval, dtype=float), a.shape).ravel()
            a = a.ravel()
            b = b.ravel()
            np.add.at(diag, a, gval)
            np.add.at(diag, b, gval)
            rows.append(a)
            cols.append(b)
            vals.append(-gval)
            rows.append(b)
            cols.append(a)
            vals.append(-gval)

        ii, jj, kk = np.meshgrid(
            np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
        )
        # x-direction resistors
        sel = ii < nx - 1
        a = g.node_index(ii[sel], jj[sel], kk[sel])
        b = g.node_index(ii[sel] + 1, jj[sel], kk[sel])
        stamp(a, b, gx[kk[sel]])
        # y-direction resistors
        sel = jj < ny - 1
        a = g.node_index(ii[sel], jj[sel], kk[sel])
        b = g.node_index(ii[sel], jj[sel] + 1, kk[sel])
        stamp(a, b, gy[kk[sel]])
        # z-direction resistors
        sel = kk < nz - 1
        a = g.node_index(ii[sel], jj[sel], kk[sel])
        b = g.node_index(ii[sel], jj[sel], kk[sel] + 1)
        stamp(a, b, gz[kk[sel]])

        # Dirichlet contact nodes just above the surface: eliminate them into
        # the diagonal of the top node directly below (Section 2.2.1, choice 1).
        g_top = g.top_dirichlet_conductance()
        contact_cells = np.argwhere(g.top_contact_owner >= 0)
        if contact_cells.size:
            nodes = g.node_index(contact_cells[:, 0], contact_cells[:, 1], 0)
            np.add.at(diag, nodes, g_top)

        # Grounded backplane: Dirichlet nodes below the bottom plane at 0 V.
        if g.profile.grounded_backplane:
            g_bot = g.bottom_dirichlet_conductance()
            ii2, jj2 = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
            nodes = g.node_index(ii2.ravel(), jj2.ravel(), nz - 1)
            np.add.at(diag, nodes, g_bot)

        rows.append(np.arange(n))
        cols.append(np.arange(n))
        vals.append(diag)
        mat = sparse.coo_matrix(
            (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
            shape=(n, n),
        )
        return mat.tocsr()

    # ------------------------------------------------------------------- rhs
    def rhs_for_contact_voltages(self, voltages: np.ndarray) -> np.ndarray:
        """Right-hand side for prescribed contact voltages.

        Accepts one voltage vector (length ``n_contacts``) or an
        ``(n_contacts, k)`` block, returning the matching ``(n_nodes,)`` or
        ``(n_nodes, k)`` right-hand sides.
        """
        voltages = np.asarray(voltages, dtype=float)
        b = np.zeros((self.grid.n_nodes,) + voltages.shape[1:])
        for idx, nodes in enumerate(self.grid.contact_top_nodes):
            b[nodes] += self._g_top * voltages[idx]
        return b

    def contact_currents(
        self, voltages: np.ndarray, potentials: np.ndarray
    ) -> np.ndarray:
        """Contact currents from the solved nodal potentials.

        The current into contact ``c`` is the sum over its Dirichlet resistors
        of ``g_top * (V_c - phi_node)`` (Ohm's law at the contact branch).
        ``voltages``/``potentials`` may also be ``(n, k)`` blocks of solves.
        """
        voltages = np.asarray(voltages, dtype=float)
        out = np.empty((self.grid.layout.n_contacts,) + voltages.shape[1:])
        for idx, nodes in enumerate(self.grid.contact_top_nodes):
            out[idx] = np.sum(self._g_top * (voltages[idx] - potentials[nodes]), axis=0)
        return out
