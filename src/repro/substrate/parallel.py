"""Process-parallel extraction engine.

Extraction cost is dominated by repeated black-box solves over the same
substrate (Sections 1.2 and 4 of the paper); PRs 1-2 amortised work *within*
one solver process via batching and adaptive dispatch.  This module shards a
``solve_many`` block's columns across a pool of worker **processes**, each of
which rebuilds its solver once from a picklable :class:`SolverSpec` and then
serves contiguous column shards.  Because every extraction path in the
package (``extract_dense`` / ``extract_columns`` / the wavelet and low-rank
sparsifiers) already submits its right-hand sides through
``SubstrateSolver.solve_many``, the :class:`ParallelExtractor` simply *is* a
:class:`~repro.substrate.solver_base.SubstrateSolver` — drop it in wherever a
solver is expected and the whole extraction fans out.

Design points:

* **Attribution is unchanged.**  A block of ``k`` columns is charged as ``k``
  black-box solves no matter how it is sharded; wrapping the extractor in a
  :class:`~repro.substrate.solver_base.CountingSolver` reports exactly the
  serial counts (pinned by tests), so the paper's solve-reduction metric is
  invariant under parallelisation.
* **Per-process statistics merge.**  Every task returns its worker's
  :class:`~repro.substrate.solver_base.SolveStats` delta; the extractor folds
  them into one report via :meth:`SolveStats.merge`.
* **No thread oversubscription.**  Workers build their solver with
  ``fft_workers=1`` — the parallelism budget is spent on processes, and the
  stacked DCTs inside each worker must not spawn a second level of threads.
* **Shared-memory result blocks.**  Result columns are written into one
  ``multiprocessing.shared_memory`` block instead of being pickled back
  (falling back to pickled returns where shared memory is unavailable).
* **Shared-memory factor plane.**  With ``share_factors`` (the default) the
  parent publishes its cached direct factor (dense BEM Cholesky / Schur /
  bordered factors, the FD sparse-LU components) into
  ``multiprocessing.shared_memory`` segments through a
  :class:`~repro.substrate.factor_cache.FactorPlane`; every worker *attaches*
  zero-copy views instead of refactoring, so the fleet holds one physical
  copy of the factor no matter how many processes serve solves.  Workers
  report ``n_factor_attaches`` / ``n_factor_rebuilds`` through the merged
  :class:`~repro.substrate.solver_base.SolveStats` — a warm parent cache must
  show zero per-worker rebuilds.  Segments are unlinked at ``close()``.
* **Per-process factor caches.**  Each worker owns its own process-wide
  :mod:`~repro.substrate.factor_cache` (seeded by the plane's attachments);
  passing ``prepare_direct=True`` warms the factorisation once in the parent
  during pool start-up so timed extraction measures solves, not factoring.
"""

from __future__ import annotations

import hashlib
import os
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from threading import BrokenBarrierError
from typing import Any

import multiprocessing as mp
import numpy as np

from ..faults import fault_hook
from ..geometry.contact import ContactLayout
from .factor_cache import FactorPlane, attach_shared_factor, factor_cache
from .profile import SubstrateProfile
from .solver_base import SolveStats, SubstrateSolver

__all__ = [
    "SolverSpec",
    "ParallelExtractor",
    "PoolWarmupError",
    "solve_in_subprocess",
]

#: exception types that mean "the worker pool is broken, not the physics":
#: a worker process died (BrokenProcessPool is a BrokenExecutor subclass) or
#: the warm-up barrier was broken by a sibling's death/timeout.  These are
#: the supervised extractor's rebuild triggers — anything else propagates.
POOL_FAILURE_ERRORS = (BrokenExecutor, BrokenBarrierError, OSError, EOFError)


class PoolWarmupError(RuntimeError):
    """The worker pool failed to come up (worker death / broken barrier).

    Raised by :meth:`ParallelExtractor.warm_up` instead of leaking a raw
    ``BrokenProcessPool`` / ``BrokenBarrierError`` (or hanging the caller on
    a barrier no dead worker will ever reach).  The pool has already been
    shut down when this propagates; the extractor may be retried — a fresh
    ``warm_up()`` builds a new pool.
    """

#: solver kinds a spec can describe
SPEC_KINDS = ("bem", "fd", "dense")


@dataclass(frozen=True)
class SolverSpec:
    """Picklable recipe for rebuilding a substrate solver in another process.

    Parameters
    ----------
    kind:
        ``"bem"`` (:class:`~repro.substrate.bem.solver.EigenfunctionSolver`),
        ``"fd"`` (:class:`~repro.substrate.fd.solver.FiniteDifferenceSolver`)
        or ``"dense"`` (:class:`~repro.substrate.solver_base.DenseMatrixSolver`
        around ``options["matrix"]``).
    layout:
        The contact layout (plain data, pickles by value).
    profile:
        The substrate profile (``None`` for ``"dense"``).
    options:
        Keyword arguments forwarded to the solver constructor.  Keep these to
        plain picklable values; live objects (dispatch policies, operators)
        are rebuilt by the constructor in the target process.
    """

    kind: str
    layout: ContactLayout
    profile: SubstrateProfile | None = None
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in SPEC_KINDS:
            raise ValueError(f"kind must be one of {SPEC_KINDS}, got {self.kind!r}")
        if self.kind != "dense" and self.profile is None:
            raise ValueError(f"kind {self.kind!r} requires a substrate profile")
        if self.kind == "dense" and "matrix" not in self.options:
            raise ValueError('kind "dense" requires options["matrix"]')

    # ------------------------------------------------------------ constructors
    @classmethod
    def bem(
        cls, layout: ContactLayout, profile: SubstrateProfile, **options: Any
    ) -> "SolverSpec":
        return cls("bem", layout, profile, options)

    @classmethod
    def fd(
        cls, layout: ContactLayout, profile: SubstrateProfile, **options: Any
    ) -> "SolverSpec":
        return cls("fd", layout, profile, options)

    @classmethod
    def dense(cls, matrix: np.ndarray, layout: ContactLayout) -> "SolverSpec":
        return cls("dense", layout, None, {"matrix": np.asarray(matrix, dtype=float)})

    # -------------------------------------------------------------- identity
    @property
    def fingerprint(self) -> tuple:
        """Hashable identity of the substrate *and* solver configuration.

        Two specs with equal fingerprints build solvers that return the same
        currents for the same voltages (same physics, same discretisation,
        same tolerances), so their work may be coalesced, their results
        shared, and their factors reused — this is the key the extraction
        service groups concurrent jobs under.  Plain option values enter via
        ``repr``; array options (the dense matrix) via a content digest.
        Computed once per (immutable) spec — the digest over a large dense
        matrix is not free, and schedulers consult this per queued job.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is not None:
            return cached
        items = []
        for key in sorted(self.options):
            value = self.options[key]
            if isinstance(value, np.ndarray):
                digest = hashlib.blake2b(
                    np.ascontiguousarray(value).tobytes(), digest_size=16
                ).hexdigest()
                items.append((key, ("ndarray", value.shape, digest)))
            else:
                items.append((key, repr(value)))
        profile_key = None if self.profile is None else self.profile.cache_key
        cached = (self.kind, self.layout.fingerprint, profile_key, tuple(items))
        object.__setattr__(self, "_fingerprint", cached)
        return cached

    # ------------------------------------------------------------------- build
    def build(self, **overrides: Any) -> SubstrateSolver:
        """Construct the solver this spec describes.

        ``overrides`` take precedence over the stored ``options`` (the worker
        pool uses this to pin ``fft_workers=1``); they are ignored for the
        ``"dense"`` kind, which has no tuning knobs.
        """
        if self.kind == "dense":
            from .solver_base import DenseMatrixSolver

            return DenseMatrixSolver(self.options["matrix"], self.layout)
        opts = {**self.options, **overrides}
        if self.kind == "bem":
            from .bem.solver import EigenfunctionSolver

            return EigenfunctionSolver(self.layout, self.profile, **opts)
        from .fd.solver import FiniteDifferenceSolver

        return FiniteDifferenceSolver(self.layout, self.profile, **opts)


# --------------------------------------------------------------------- workers
#: the worker process's solver, built once per process by the pool initializer
_WORKER_SOLVER: SubstrateSolver | None = None
#: True when this worker must untrack shared-memory segments it attaches to
#: (spawn/forkserver start a private resource tracker per worker; fork
#: inherits the parent's, which owns the segment's registration)
_WORKER_UNREGISTER_SHM = False
#: live references to attached factor segments (the reconstructed factors
#: borrow their buffers, so the segments must outlive the worker's cache)
_WORKER_ATTACHED_SEGMENTS: list = []
#: init-time factor provenance of this worker, reported once through the
#: first solve shard's stats delta (init precedes any delta snapshot)
_WORKER_FACTOR_COUNTS = {"attached": 0, "rebuilt": 0}
_WORKER_FACTOR_REPORTED = False


def _init_worker(
    spec: SolverSpec,
    overrides: dict,
    prepare_direct: bool,
    unregister_shm: bool,
    shared_handles: tuple = (),
    prepare_tiled: bool = False,
) -> None:
    global _WORKER_SOLVER, _WORKER_UNREGISTER_SHM, _WORKER_FACTOR_REPORTED
    _WORKER_UNREGISTER_SHM = unregister_shm
    _WORKER_FACTOR_REPORTED = False
    _WORKER_FACTOR_COUNTS["attached"] = 0
    _WORKER_FACTOR_COUNTS["rebuilt"] = 0
    # adopt the parent's published factors before any solver can factor:
    # the cache hit below turns every worker's prepare into a zero-copy view
    for handle in shared_handles:
        try:
            factor, segment = attach_shared_factor(handle, unregister=unregister_shm)
        except Exception:
            continue  # attach is an optimisation; the worker can still factor
        _WORKER_ATTACHED_SEGMENTS.append(segment)
        # nbytes=0: the pages are shared with every sibling, charging them
        # against this worker's private cache budget would evict real entries
        factor_cache().put(handle.key, factor, nbytes=0)
        _WORKER_FACTOR_COUNTS["attached"] += 1
    _WORKER_SOLVER = spec.build(**overrides)
    if prepare_direct:
        prepare = getattr(_WORKER_SOLVER, "prepare_direct", None)
        if prepare is not None:
            prepare()
    if prepare_tiled:
        prepare = getattr(_WORKER_SOLVER, "prepare_tiled", None)
        if prepare is not None:
            prepare()
    stats = getattr(_WORKER_SOLVER, "stats", None)
    if stats is not None:
        _WORKER_FACTOR_COUNTS["rebuilt"] += stats.n_factor_rebuilds


def _unreported_factor_counts() -> tuple[int, int]:
    """Init-time (attached, rebuilt) counts, returned once per worker."""
    global _WORKER_FACTOR_REPORTED
    if _WORKER_FACTOR_REPORTED:
        return 0, 0
    _WORKER_FACTOR_REPORTED = True
    return _WORKER_FACTOR_COUNTS["attached"], _WORKER_FACTOR_COUNTS["rebuilt"]


def _solve_with_stats_delta(
    solver: SubstrateSolver, v: np.ndarray
) -> tuple[np.ndarray, SolveStats]:
    """Solve a block and return the solve's :class:`SolveStats` delta.

    The solver's cumulative ``stats`` keep growing — iteration-aware dispatch
    (the FD solver's ``_expected_iterations``) feeds on the observed history,
    so it must survive across blocks — and the delta for this block alone is
    reconstructed from before/after counter snapshots.
    """
    stats = getattr(solver, "stats", None)
    if stats is None:
        stats = SolveStats()
        solver.stats = stats
    snap = (
        stats.n_iterative_solves,
        stats.n_direct_solves,
        stats.total_iterations,
        len(stats.iterations_per_solve),
        stats.n_factor_attaches,
        stats.n_factor_rebuilds,
    )
    out = solver.solve_many(v)
    stats = solver.stats
    delta = SolveStats(
        n_iterative_solves=stats.n_iterative_solves - snap[0],
        n_direct_solves=stats.n_direct_solves - snap[1],
        total_iterations=stats.total_iterations - snap[2],
        iterations_per_solve=list(stats.iterations_per_solve[snap[3]:]),
        n_factor_attaches=stats.n_factor_attaches - snap[4],
        n_factor_rebuilds=stats.n_factor_rebuilds - snap[5],
    )
    return out, delta


def _solve_shard(
    v_shard: np.ndarray, start: int, shm_name: str | None, shape: tuple[int, int]
):
    """Solve one contiguous column shard on the worker's persistent solver.

    Returns ``(start, width, result-or-None, stats delta, gauge constants)``;
    the result travels through the named shared-memory block when one is
    given, otherwise it is pickled back.
    """
    # chaos hook: an active fault plan can kill this worker (or delay/fail
    # the shard) deterministically — see repro.faults
    fault_hook("worker.solve", start=start, width=v_shard.shape[1])
    solver = _WORKER_SOLVER
    out, delta = _solve_with_stats_delta(solver, v_shard)
    # fold this worker's init-time factor provenance into its first delta
    attached, rebuilt = _unreported_factor_counts()
    delta.n_factor_attaches += attached
    delta.n_factor_rebuilds += rebuilt
    gauges = getattr(solver, "last_gauge_constants", None)
    width = v_shard.shape[1]
    if shm_name is not None:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=shm_name)
        try:
            block = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
            block[:, start : start + width] = out
        finally:
            shm.close()
            if _WORKER_UNREGISTER_SHM:
                try:
                    # a spawned worker's private resource tracker must not
                    # treat the parent-owned segment as leaked at exit;
                    # Python < 3.13 lacks SharedMemory(track=False)
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:
                    pass
        return start, width, None, delta, gauges
    return start, width, out, delta, gauges


def solve_in_subprocess(
    spec: SolverSpec, voltages: np.ndarray, **build_overrides: Any
) -> np.ndarray:
    """Round-trip helper: rebuild ``spec`` in one child process and solve there.

    Spins up a single-worker pool, ships the spec through pickle, solves the
    ``(n, k)`` block in the child and returns the result.  Used by the
    spec round-trip tests and handy for isolating a solve from the parent's
    process-wide caches.
    """
    ctx = _default_context()
    with ProcessPoolExecutor(
        max_workers=1,
        mp_context=ctx,
        initializer=_init_worker,
        initargs=(spec, build_overrides, False, ctx.get_start_method() != "fork"),
    ) as pool:
        v = np.asarray(voltages, dtype=float)
        _, _, out, _, _ = pool.submit(_solve_shard, v, 0, None, v.shape).result()
    return out


def _default_context() -> mp.context.BaseContext:
    """Fork where available (cheap start-up, inherits imports), else spawn."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _rendezvous(barrier) -> tuple[int, int]:
    """Hold one worker at a barrier until every worker has arrived.

    Each waiting worker occupies itself, so the pool cannot hand two
    rendezvous tasks to the same worker — by the time the barrier releases,
    every worker process has finished its (solver-building, possibly
    factoring) initializer.  Returns the worker's init-time factor
    provenance ``(attached, rebuilt)`` — exactly one rendezvous runs per
    worker, so the caller collects every worker's counts deterministically.
    """
    barrier.wait(timeout=600)
    return _unreported_factor_counts()


class ParallelExtractor(SubstrateSolver):
    """Substrate solver that shards ``solve_many`` columns across processes.

    Parameters
    ----------
    spec:
        Recipe for the solver every worker builds once at pool start-up.
    n_workers:
        Worker-process count; default ``os.cpu_count()``.  With one worker
        (or blocks too narrow to shard) the extractor solves inline on a
        private solver — no pool, no IPC.
    prepare_direct:
        Warm the direct factorisation during pool initialisation, so timed
        extraction measures solves only.  With ``share_factors`` the factor
        is built **once in the parent** and published to the plane; without
        it every worker runs its own ``prepare_direct()``.
    prepare_tiled:
        Same warm-up hook for the out-of-core tiled factorisation
        (``prepare_tiled()`` on solvers that have one).  In-RAM tiled
        factors travel through the factor plane like dense ones; spilled
        factors stay per-process and every worker rebuilds its own.
    min_parallel_columns:
        Blocks narrower than this are solved inline; sharding two columns
        across processes costs more in IPC than it saves.
    use_shared_memory:
        Write result shards into one ``multiprocessing.shared_memory`` block
        (automatic fallback to pickled returns when allocation fails).
    start_method:
        Override the multiprocessing start method (default: ``"fork"`` where
        available, else ``"spawn"``).
    share_factors:
        Publish the parent's cached direct factor through a shared-memory
        :class:`~repro.substrate.factor_cache.FactorPlane` so workers attach
        zero-copy instead of refactoring (default on; ignored for ``"dense"``
        specs, which have no factor).  Disable to benchmark per-worker
        refactorisation.
    """

    def __init__(
        self,
        spec: SolverSpec,
        n_workers: int | None = None,
        prepare_direct: bool = False,
        min_parallel_columns: int = 8,
        use_shared_memory: bool = True,
        start_method: str | None = None,
        share_factors: bool = True,
        prepare_tiled: bool = False,
        max_pool_rebuilds: int = 2,
    ) -> None:
        self.spec = spec
        self.layout = spec.layout
        self.n_workers = int(n_workers) if n_workers is not None else (os.cpu_count() or 1)
        if self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.prepare_direct = bool(prepare_direct)
        self.prepare_tiled = bool(prepare_tiled)
        self.min_parallel_columns = int(min_parallel_columns)
        self.use_shared_memory = bool(use_shared_memory)
        self.share_factors = bool(share_factors)
        self._context = (
            mp.get_context(start_method) if start_method else _default_context()
        )
        #: merged per-process solve statistics of everything this extractor ran
        self.stats = SolveStats()
        #: gauge constants of the most recent floating-backplane block
        self.last_gauge_constants: np.ndarray | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._local: SubstrateSolver | None = None
        self._plane: FactorPlane | None = None
        #: factor-cache keys published to the plane (diagnostics / tests)
        self.published_factor_keys: list[tuple] = []
        #: per-``solve_many`` pool-rebuild budget before degrading to an
        #: inline serial solve on the parent's local solver
        self.max_pool_rebuilds = int(max_pool_rebuilds)
        #: times a broken pool was torn down and rebuilt mid-block
        self.pool_rebuilds = 0
        #: columns served inline because the pool could not be resurrected
        self.degraded_solves = 0

    # ---------------------------------------------------------------- plumbing
    def _worker_overrides(self) -> dict[str, Any]:
        # one process = one core: the stacked DCTs inside a worker must not
        # spawn a second level of threads (oversubscription)
        return {} if self.spec.kind == "dense" else {"fft_workers": 1}

    def _parent_factors(self) -> list[tuple[tuple, Any]]:
        """Every parent-held factor worth shipping, as ``(key, factor)`` pairs.

        Prefers the factor objects held by the local solver (no cache-counter
        traffic); falls back to the process-wide cache.  With
        ``prepare_direct`` / ``prepare_tiled`` the parent builds the factor
        here — once, for the whole fleet — before the pool starts.  Spilled
        tiled factors are skipped at publish time (they are scratch files,
        not shippable pages).
        """
        local = self._local_solver()
        held: list[tuple[tuple, Any]] = []
        key = getattr(local, "factor_cache_key", None)
        if key is not None:
            if self.prepare_direct:
                prepare = getattr(local, "prepare_direct", None)
                if prepare is not None:
                    prepare()
            factor = getattr(local, "_direct_factor", None)
            if factor is None:
                engine = getattr(local, "_direct_engine", None)
                if engine is not None:
                    factor = engine._lu
            if factor is None and factor_cache().contains(key):
                factor = factor_cache().get(key)
            if factor is not None:
                held.append((key, factor))
        tiled_key = getattr(local, "tiled_factor_cache_key", None)
        if tiled_key is not None:
            if self.prepare_tiled:
                prepare = getattr(local, "prepare_tiled", None)
                if prepare is not None:
                    prepare()
            tiled = getattr(local, "_tiled_factor", None)
            if tiled is None and factor_cache().contains(tiled_key):
                tiled = factor_cache().get(tiled_key)
            if tiled is not None:
                held.append((tiled_key, tiled))
        return held

    def _export_factor_handles(self) -> tuple:
        """Publish the parent's factors to a shared plane; returns the handles."""
        if not self.share_factors or self.spec.kind == "dense":
            return ()
        if not self.spec.options.get("use_factor_cache", True):
            # workers built with a disabled factor cache never consult it,
            # so an attached payload could not reach them
            return ()
        held = self._parent_factors()
        if not held:
            return ()
        plane = FactorPlane()
        handles = []
        keys = []
        for key, factor in held:
            try:
                handles.append(plane.publish(key, factor))
            except (TypeError, OSError, ValueError):
                # unshippable factor kind (spilled tiled factor) or no shared
                # memory on this platform — workers fall back to their own
                # factorisation for this one
                continue
            keys.append(key)
        if not handles:
            plane.unlink()
            return ()
        self._plane = plane
        self.published_factor_keys = keys
        return tuple(handles)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            fork = self._context.get_start_method() == "fork"
            if fork and self.use_shared_memory:
                # forked workers inherit the parent's shared-memory resource
                # tracker; make sure it exists *before* the fork so every
                # worker shares it (segment registration then stays owned by
                # the parent, which unlinks it)
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.ensure_running()
                except Exception:
                    pass
            handles = self._export_factor_handles()
            # reprolint: owned-by(ParallelExtractor)
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                mp_context=self._context,
                initializer=_init_worker,
                initargs=(
                    self.spec,
                    self._worker_overrides(),
                    self.prepare_direct,
                    not fork,
                    handles,
                    self.prepare_tiled,
                ),
            )
        return self._pool

    def _local_solver(self) -> SubstrateSolver:
        if self._local is None:
            self._local = self.spec.build()
        return self._local

    def warm_up(self) -> None:
        """Start the pool and run worker initialisation now (untimed set-up).

        Submits one barrier-rendezvous task per worker — each blocks its
        worker until all have arrived — so that every worker process has
        built (and, with ``prepare_direct``, factored) its solver before the
        first timed block arrives.

        A worker that dies during initialisation breaks both the pool and
        the barrier its siblings are waiting on; both surface here as a
        :class:`PoolWarmupError` (after the pool has been shut down) rather
        than a raw ``BrokenProcessPool`` / ``BrokenBarrierError`` — or, in
        the worst pre-fix case, a caller parked on a 600 s barrier timeout.
        """
        if self.n_workers <= 1:
            local = self._local_solver()
            if self.prepare_direct:
                prepare = getattr(local, "prepare_direct", None)
                if prepare is not None:
                    prepare()
            if self.prepare_tiled:
                prepare = getattr(local, "prepare_tiled", None)
                if prepare is not None:
                    prepare()
            return
        pool = self._ensure_pool()
        try:
            with mp.Manager() as manager:
                barrier = manager.Barrier(self.n_workers)
                futures = [
                    pool.submit(_rendezvous, barrier) for _ in range(self.n_workers)
                ]
                for fut in futures:
                    attached, rebuilt = fut.result()
                    self.stats.record_factor_attach(attached)
                    self.stats.record_factor_rebuild(rebuilt)
        except POOL_FAILURE_ERRORS as exc:
            # the pool is unusable (and would hang or fail every later
            # submit); tear it down before telling the caller why
            self.close()
            raise PoolWarmupError(
                f"worker pool failed during warm-up: {type(exc).__name__}: {exc}"
            ) from exc

    def close(self) -> None:
        """Shut the worker pool down and unlink the factor plane (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._plane is not None:
            # workers are gone; remove the published segments so nothing
            # leaks into /dev/shm past the extractor's lifetime
            self._plane.unlink()
            self._plane = None

    def __enter__(self) -> "ParallelExtractor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ solves
    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        v = np.asarray(voltages, dtype=float)
        if v.shape != (self.n_contacts,):
            raise ValueError("expected one voltage per contact")
        return self.solve_many(v[:, None])[:, 0]

    def solve_many(self, voltages: np.ndarray) -> np.ndarray:
        """Shard the block's columns across the worker pool and merge results.

        Columns are split into one contiguous shard per worker; each worker
        serves its shard through its own solver's ``solve_many`` (adaptive
        dispatch included) and the per-process statistics, gauge constants
        and result columns are merged back.  Column ``j`` of the result
        matches the serial solver's ``solve_many`` on column ``j`` to solver
        tolerance, and narrow blocks short-circuit to an inline solve.
        """
        v = np.asarray(voltages, dtype=float)
        if v.ndim != 2 or v.shape[0] != self.n_contacts:
            raise ValueError("expected an (n_contacts, k) voltage block")
        k = v.shape[1]
        if k == 0:
            return np.empty_like(v)
        if self.n_workers <= 1 or k < max(self.min_parallel_columns, 2):
            return self._solve_inline(v)

        n_shards = min(self.n_workers, k)
        bounds = np.linspace(0, k, n_shards + 1, dtype=int)
        shards = [
            (int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)
            if hi > lo
        ]
        shm = None
        shm_name = None
        if self.use_shared_memory:
            try:
                from multiprocessing import shared_memory

                shm = shared_memory.SharedMemory(
                    create=True, size=max(v.shape[0] * k * 8, 1)
                )
                shm_name = shm.name
            except (OSError, ValueError):
                shm = None
                shm_name = None
        out = np.empty_like(v)
        gauges = np.full(k, np.nan)
        any_gauges = False
        try:
            pending = shards
            rebuilds_this_block = 0
            while pending:
                try:
                    pool = self._ensure_pool()
                    futures = [
                        (
                            pool.submit(
                                _solve_shard,
                                np.ascontiguousarray(v[:, lo:hi]),
                                lo,
                                shm_name,
                                v.shape,
                            ),
                            (lo, hi),
                        )
                        for lo, hi in pending
                    ]
                except POOL_FAILURE_ERRORS as exc:
                    self._note_pool_failure(exc)
                    futures = []
                failed: list[tuple[int, int]] = []
                failure: BaseException | None = None
                for fut, (lo, hi) in futures:
                    try:
                        start, width, data, stats, shard_gauges = fut.result()
                    except POOL_FAILURE_ERRORS as exc:
                        # a worker died: this future (and any sibling still
                        # in flight) reports the broken pool, not physics —
                        # remember the shard and re-solve it after a rebuild
                        failed.append((lo, hi))
                        failure = exc
                        continue
                    if data is not None:
                        out[:, start : start + width] = data
                    elif shm is not None:
                        block = np.ndarray(v.shape, dtype=np.float64, buffer=shm.buf)
                        out[:, start : start + width] = block[:, start : start + width]
                    self.stats.merge(stats)
                    if shard_gauges is not None:
                        gauges[start : start + width] = shard_gauges
                        any_gauges = True
                if not futures:
                    failed = list(pending)
                if not failed:
                    break
                pending = sorted(failed)
                rebuilds_this_block += 1
                if rebuilds_this_block > self.max_pool_rebuilds:
                    # the pool cannot be resurrected within budget: finish
                    # the block inline on the parent's serial solver rather
                    # than failing work that is still perfectly solvable
                    n_degraded = sum(hi - lo for lo, hi in pending)
                    warnings.warn(
                        f"worker pool broken {rebuilds_this_block - 1} times; "
                        f"degrading {n_degraded} remaining columns to an "
                        "inline serial solve",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    self.close()
                    for lo, hi in pending:
                        inline = self._solve_inline(np.ascontiguousarray(v[:, lo:hi]))
                        out[:, lo:hi] = inline
                        if self.last_gauge_constants is not None:
                            gauges[lo:hi] = self.last_gauge_constants
                            any_gauges = True
                    self.degraded_solves += n_degraded
                    break
                if failure is not None:
                    self._note_pool_failure(failure)
                self.pool_rebuilds += 1
                self._rebuild_pool()
        finally:
            if shm is not None:
                shm.close()
                shm.unlink()
        self.last_gauge_constants = gauges if any_gauges else None
        return out

    def _note_pool_failure(self, exc: BaseException) -> None:
        warnings.warn(
            f"worker pool failure during solve_many: {type(exc).__name__}: {exc}; "
            "tearing the pool down for rebuild",
            RuntimeWarning,
            stacklevel=3,
        )

    def _rebuild_pool(self) -> None:
        """Tear down the broken pool and let the next submit build a fresh one.

        ``close()`` also unlinks the shared factor plane, so the rebuild
        path re-publishes the parent's (still cached) factors through a new
        plane before the replacement workers initialise — the supervised
        restart pays attach cost, never a refactorisation.
        """
        self.close()

    def _solve_inline(self, v: np.ndarray) -> np.ndarray:
        solver = self._local_solver()
        out, delta = _solve_with_stats_delta(solver, v)
        self.stats.merge(delta)
        self.last_gauge_constants = getattr(solver, "last_gauge_constants", None)
        return out

    # ------------------------------------------------------------- convenience
    def extract_dense(self, **kwargs: Any) -> np.ndarray:
        """Parallel dense extraction (``extract_dense(self, ...)``)."""
        from .extraction import extract_dense

        return extract_dense(self, **kwargs)

    def extract_columns(self, columns: np.ndarray, **kwargs: Any) -> np.ndarray:
        """Parallel column extraction (``extract_columns(self, ...)``)."""
        from .extraction import extract_columns

        return extract_columns(self, columns, **kwargs)
