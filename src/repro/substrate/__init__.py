"""Substrate models and black-box solvers (Chapter 2)."""

from .dispatch import (
    DispatchDecision,
    DispatchPolicy,
    SolveCostModel,
    resolve_fft_workers,
)
from .extraction import (
    check_conductance_properties,
    extract_columns,
    extract_dense,
)
from .factor_cache import (
    FactorCache,
    FactorPlane,
    SharedFactorHandle,
    SharedSparseLU,
    attach_shared_factor,
    factor_cache,
    factor_cache_clear,
    factor_cache_info,
    set_factor_cache_budget,
)
from .parallel import ParallelExtractor, SolverSpec, solve_in_subprocess
from .tiled import TiledCholeskyFactor
from .profile import Layer, SubstrateProfile
from .solver_base import (
    CallableSolver,
    CountingSolver,
    DenseMatrixSolver,
    SolveStats,
    SubstrateSolver,
)

__all__ = [
    "Layer",
    "SubstrateProfile",
    "SubstrateSolver",
    "SolveStats",
    "CountingSolver",
    "DenseMatrixSolver",
    "CallableSolver",
    "DispatchPolicy",
    "DispatchDecision",
    "SolveCostModel",
    "resolve_fft_workers",
    "extract_dense",
    "extract_columns",
    "check_conductance_properties",
    "FactorCache",
    "FactorPlane",
    "SharedFactorHandle",
    "SharedSparseLU",
    "attach_shared_factor",
    "factor_cache",
    "factor_cache_clear",
    "factor_cache_info",
    "set_factor_cache_budget",
    "ParallelExtractor",
    "SolverSpec",
    "solve_in_subprocess",
    "TiledCholeskyFactor",
]
