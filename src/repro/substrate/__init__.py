"""Substrate models and black-box solvers (Chapter 2)."""

from .extraction import (
    check_conductance_properties,
    extract_columns,
    extract_dense,
)
from .profile import Layer, SubstrateProfile
from .solver_base import (
    CallableSolver,
    CountingSolver,
    DenseMatrixSolver,
    SubstrateSolver,
)

__all__ = [
    "Layer",
    "SubstrateProfile",
    "SubstrateSolver",
    "CountingSolver",
    "DenseMatrixSolver",
    "CallableSolver",
    "extract_dense",
    "extract_columns",
    "check_conductance_properties",
]
