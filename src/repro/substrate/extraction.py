"""Naive dense extraction of the conductance matrix and property checks.

The naive method (Section 1.2) applies the black-box solver once per contact:
``G e_i`` is the response to 1 V on contact ``i`` and 0 V elsewhere, so ``n``
solves produce the dense ``G``.  Section 2.4 lists the structural properties
the extracted matrix must satisfy (symmetry, diagonal dominance, sign
pattern, rank-one deficiency without a backplane); they are exposed here as
check functions used in tests and debugging.
"""

from __future__ import annotations

import numpy as np

from .solver_base import SubstrateSolver

__all__ = [
    "extract_dense",
    "extract_columns",
    "check_conductance_properties",
    "symmetry_error",
    "diagonal_dominance_margin",
]


def _unit_vector_block(n: int, columns: np.ndarray) -> np.ndarray:
    """Freshly allocated ``(n, len(columns))`` block of unit RHS vectors.

    Each call builds the block from scratch — no shared scratch vector is
    mutated between solves — so extraction is independent of call order and
    safe against solvers that retain references to their input.
    """
    block = np.zeros((n, columns.size))
    block[columns, np.arange(columns.size)] = 1.0
    return block


def extract_dense(
    solver: SubstrateSolver, symmetrize: bool = False, block_size: int | None = None
) -> np.ndarray:
    """Extract the full dense ``G`` with one solve per contact.

    The ``n`` unit-vector right-hand sides are submitted through
    :meth:`~repro.substrate.solver_base.SubstrateSolver.solve_many`, so
    backends with a batched path amortise their operator applies across the
    whole extraction (still ``n`` attributed black-box solves).

    Parameters
    ----------
    solver:
        The black-box substrate solver.
    symmetrize:
        If True, return ``(G + G') / 2``.  The exact operator is symmetric
        (Section 2.4) but iterative solvers introduce small asymmetries.
    block_size:
        Columns per :meth:`solve_many` submission.  The default (all at
        once) is usually right: backends chunk internally for memory, and
        backends with an adaptive dispatch policy
        (:class:`~repro.substrate.dispatch.DispatchPolicy`) route each
        submitted block as a whole, so submitting the full width lets a
        one-time factorisation amortise over the entire extraction.
    """
    n = solver.n_contacts
    return extract_columns(solver, np.arange(n), block_size=block_size, symmetrize=symmetrize)


def extract_columns(
    solver: SubstrateSolver,
    columns: np.ndarray,
    block_size: int | None = None,
    symmetrize: bool = False,
) -> np.ndarray:
    """Extract selected columns of ``G`` (one solve per requested column).

    Used for the larger examples of Table 4.3 where forming the whole ``G``
    is too expensive; errors are then measured on a column sample.  Columns
    are batched through ``solve_many``; ``symmetrize`` is only meaningful
    when all ``n`` columns are requested.
    """
    columns = np.asarray(columns, dtype=int)
    n = solver.n_contacts
    if symmetrize:
        # validate before paying for any solves
        unique, counts = np.unique(columns, return_counts=True)
        duplicated = unique[counts > 1]
        if duplicated.size:
            raise ValueError(
                "symmetrize requires extracting every column exactly once; "
                f"columns requested more than once: {duplicated.tolist()}"
            )
        if columns.size != n or not np.array_equal(unique, np.arange(n)):
            raise ValueError("symmetrize requires extracting every column exactly once")
    if block_size is None:
        block_size = columns.size
    block_size = max(int(block_size), 1)
    out = np.empty((n, columns.size))
    for start in range(0, columns.size, block_size):
        stop = min(start + block_size, columns.size)
        rhs = _unit_vector_block(n, columns[start:stop])
        out[:, start:stop] = solver.solve_many(rhs)
    if symmetrize:
        order = np.argsort(columns)
        full = out[:, order]
        full = 0.5 * (full + full.T)
        out = full[:, np.argsort(order)]
    return out


def symmetry_error(g: np.ndarray) -> float:
    """Relative symmetry error ``||G - G'|| / ||G||`` (Frobenius)."""
    denom = np.linalg.norm(g)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(g - g.T) / denom)


def diagonal_dominance_margin(g: np.ndarray) -> np.ndarray:
    """Per-row margin ``|G_ii| - sum_{j != i} |G_ij|``.

    Positive margins mean strict diagonal dominance; for a floating backplane
    the margins should be (numerically) zero (Section 2.4).
    """
    g = np.asarray(g, dtype=float)
    diag = np.abs(np.diag(g))
    offdiag = np.sum(np.abs(g), axis=1) - diag
    return diag - offdiag


def check_conductance_properties(
    g: np.ndarray,
    grounded_backplane: bool,
    symmetry_tol: float = 1e-6,
    sign_tol: float = 1e-10,
    dominance_tol: float = 1e-6,
) -> dict[str, bool]:
    """Check the structural properties of Section 2.4.

    Returns a dict of named boolean checks:

    * ``symmetric``: ``G`` is symmetric to ``symmetry_tol`` (relative).
    * ``positive_diagonal``: all diagonal entries are positive.
    * ``negative_offdiagonal``: all off-diagonal entries are <= ``sign_tol``.
    * ``diagonally_dominant``: every row has non-negative dominance margin
      (to a relative tolerance).
    * ``rank_deficient_as_expected``: with no backplane, row sums vanish
      (tight dominance / rank-one deficiency); with a grounded backplane the
      dominance is strict on average.
    """
    g = np.asarray(g, dtype=float)
    n = g.shape[0]
    scale = float(np.abs(np.diag(g)).max())
    margins = diagonal_dominance_margin(g)
    row_sums = g.sum(axis=1)
    checks = {
        "symmetric": symmetry_error(g) <= symmetry_tol,
        "positive_diagonal": bool(np.all(np.diag(g) > 0)),
        "negative_offdiagonal": bool(
            np.all(g[~np.eye(n, dtype=bool)] <= sign_tol * scale)
        ),
        "diagonally_dominant": bool(np.all(margins >= -dominance_tol * scale)),
    }
    if grounded_backplane:
        checks["rank_deficient_as_expected"] = bool(np.mean(margins) > 0)
    else:
        checks["rank_deficient_as_expected"] = bool(
            np.max(np.abs(row_sums)) <= 100 * dominance_tol * scale
        )
    return checks
