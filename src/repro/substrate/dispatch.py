"""Adaptive solver-dispatch policy for batched substrate solves.

The batched multi-RHS engine (``SubstrateSolver.solve_many``) has two
fundamentally different ways to serve a block of right-hand sides:

* **iterative** — stacked-RHS Krylov iterations (Jacobi-preconditioned CG for
  a grounded backplane, block MINRES on the bordered saddle-point system for a
  floating one).  Cost scales with ``iterations * k * N log N`` where ``N`` is
  the panel-grid size, and nothing is ever factorised.
* **direct** — assemble the dense contact-panel block ``A_cc`` once, factor it
  (Cholesky, or a bordered/Schur-complement factorisation for the floating
  saddle system) and turn every further column into two triangular solves.
  Cost is ``O(ncp^3)`` once plus ``O(ncp^2)`` per column.
* **tiled** — the same factor-once mathematics carried out-of-core
  (:mod:`repro.substrate.tiled`): the contact block is assembled and factored
  tile by tile, spilling to a memmapped scratch file past the cache budget.
  Same flop count as ``direct`` with every touched byte paying an I/O
  penalty; it exists for panel counts **above** ``max_direct_panels``, where
  the in-core dense factor is not allowed to exist.

No path wins everywhere: the direct path is ~1.7x faster for full dense
extraction at ``n_side = 32`` but pure waste for a handful of columns on a
fresh solver, while the iterative path is unbeatable for narrow blocks and —
below ``max_direct_panels`` — the only alternative to the dense factor.
:class:`DispatchPolicy` picks the path per ``solve_many`` block from a
calibrated crossover model of ``(n_panels, n_rhs, grid size)``, with optional
one-shot auto-tune probes (dense and sparse) that rescale the model's machine
constants, and a ``force_path`` override for debugging and benchmarking.

The module also hosts :func:`resolve_fft_workers`, the single place where the
``workers=`` argument of every ``scipy.fft`` DCT call in the package is gated
on :func:`os.cpu_count`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DISPATCH_PATHS",
    "DispatchDecision",
    "SolveCostModel",
    "DispatchPolicy",
    "resolve_fft_workers",
]

#: the engines a block can be routed to
DISPATCH_PATHS = ("direct", "tiled", "iterative")


def resolve_fft_workers(workers: int | None = None) -> int | None:
    """Resolve a user-facing ``fft_workers`` knob to a ``scipy.fft`` argument.

    ``None`` (the default) asks for all available CPUs when the host has more
    than one and stays single-threaded otherwise — spawning a worker pool on a
    single-core box only adds overhead.  Explicit positive counts are passed
    through (``1`` collapses to ``None``, scipy's single-threaded default) and
    negative counts keep scipy's own convention (``-1`` = all CPUs).
    """
    if workers is None:
        n = os.cpu_count() or 1
        return n if n > 1 else None
    w = int(workers)
    if w == 0:
        raise ValueError("fft_workers must be a nonzero int or None")
    if w < 0:
        return w
    return w if w > 1 else None


@dataclass
class DispatchDecision:
    """Outcome of one routing decision (kept on the solver for inspection)."""

    path: str
    reason: str
    direct_cost: float | None = None
    iterative_cost: float | None = None

    def __post_init__(self) -> None:
        if self.path not in DISPATCH_PATHS:
            raise ValueError(f"unknown dispatch path {self.path!r}")


@dataclass
class SolveCostModel:
    """Crossover model in abstract work units (1 unit = one dense-BLAS3 flop).

    The defaults were calibrated against the ``BENCH_batched.json`` and
    ``BENCH_factor_plane.json`` reference runs: dense factor/triangular-solve
    flops run near hardware speed, the scattered DCT pipeline (zero-pad,
    stacked transforms, gather) costs far more per nominal flop, and the
    dense-row assembly of ``A_cc`` sits in between because it skips the
    scatter half.  Absolute scale cancels in the comparison; only the ratios
    matter.
    """

    #: relative cost of one flop of the stacked-DCT apply pipeline.
    #: Recalibrated against the PR-4 reference measurements at n_side=32
    #: (ncp=4096, k=1024, 128x128 grid): iterative extraction measured 5.6 s
    #: against 0.9 s for the cold in-core direct path, a 6.2x ratio, which
    #: the model reproduces at fft_unit ~= 45 (the previous value of 12
    #: under-weighted the scattered DCT pipeline enough that the model called
    #: iterative cheaper than the tiled factor when the measurement said
    #: otherwise).
    fft_unit: float = 45.0
    #: relative cost of one flop of the dense ``A_cc`` row assembly
    assembly_unit: float = 3.0
    #: relative cost of one flop of the BLAS-1 vector updates per iteration
    axpy_unit: float = 10.0
    #: nominal flops per grid point and transform pass (2-D DCT round trip)
    fft_flops_per_point: float = 5.0
    #: BLAS-1 vector operations per Krylov iteration per contact panel
    vector_ops_per_iteration: float = 10.0
    #: expected Jacobi-PCG iterations for a grounded-backplane solve
    iterations_grounded: float = 8.0
    #: expected block-MINRES iterations for a floating-backplane solve
    iterations_floating: float = 32.0
    #: fill-in constant of a 3-D sparse LU: total factor nonzeros ~ c * n^(4/3)
    #: (measured ~16.6 on the 32x32x8 grid-of-resistors system via ``splu``)
    sparse_fill_unit: float = 16.0
    #: factor-flop constant of the sparse LU: flops ~ c * n^2 (measured
    #: against the triangular-solve throughput on the same systems)
    sparse_factor_unit: float = 8.7
    #: per-node work units of one FD PCG iteration over one RHS (sparse
    #: matvec + block preconditioner apply + vector updates)
    fd_iteration_units: float = 60.0
    #: default expected FD PCG iterations when the caller has no estimate
    iterations_fd: float = 16.0
    #: I/O penalty of the out-of-core tiled engine: every flop of the tiled
    #: factorisation and its triangular solves streams tiles through the
    #: page cache instead of staying in registers/L2, so it is charged this
    #: multiple of the in-core dense cost.  Calibrated against the PR-4
    #: measurements at ncp=4096: tiled extraction 3.7-4.1 s against 0.9 s
    #: in-core direct (a ~4.4x ratio once the transform-bound assembly term
    #: is taken out), matched at tiled_io_unit ~= 5.  Together with the
    #: recalibrated ``fft_unit`` the model now places tiled (~0.70x the
    #: iterative cost) on the measured side (~0.71x) of the grounded
    #: crossover at that scale.
    tiled_io_unit: float = 5.0

    def _fft_apply_units(self, grid_points: int) -> float:
        return self.fft_flops_per_point * grid_points * max(np.log2(grid_points), 1.0)

    def direct_cost(
        self,
        n_panels: int,
        n_rhs: int,
        grid_points: int,
        factor_cached: bool,
        grounded: bool,
    ) -> float:
        """Estimated cost of serving the block through the dense factor."""
        # two triangular solves per column
        cost = 2.0 * float(n_panels) ** 2 * n_rhs
        if not grounded:
            # Schur-complement gauge correction: one rank-1 update per column
            cost += 4.0 * n_panels * n_rhs * self.axpy_unit
        if not factor_cached:
            cost += float(n_panels) ** 3 / 3.0  # Cholesky
            # dense A_cc assembly: one weighted inverse transform per row
            cost += n_panels * self._fft_apply_units(grid_points) * self.assembly_unit
        return cost

    def iterative_cost(
        self, n_panels: int, n_rhs: int, grid_points: int, grounded: bool
    ) -> float:
        """Estimated cost of the stacked-RHS Krylov path for the block."""
        iters = self.iterations_grounded if grounded else self.iterations_floating
        per_column_iteration = (
            self._fft_apply_units(grid_points) * self.fft_unit
            + self.vector_ops_per_iteration * n_panels * self.axpy_unit
        )
        return iters * n_rhs * per_column_iteration

    def tiled_cost(
        self,
        n_panels: int,
        n_rhs: int,
        grid_points: int,
        factor_cached: bool,
        grounded: bool,
    ) -> float:
        """Estimated cost of the out-of-core tiled factor for the block.

        Identical flop structure to :meth:`direct_cost` with the factor and
        triangular-solve terms scaled by ``tiled_io_unit`` (the assembly term
        is transform-bound either way and is charged at the same rate).
        """
        cost = 2.0 * float(n_panels) ** 2 * n_rhs * self.tiled_io_unit
        if not grounded:
            cost += 4.0 * n_panels * n_rhs * self.axpy_unit
        if not factor_cached:
            cost += float(n_panels) ** 3 / 3.0 * self.tiled_io_unit
            cost += n_panels * self._fft_apply_units(grid_points) * self.assembly_unit
        return cost

    def sparse_direct_cost(
        self, n_nodes: int, n_rhs: int, factor_cached: bool
    ) -> float:
        """Estimated cost of serving the block through a sparse LU factor.

        Two triangular sweeps over the fill per column, plus the one-time
        factorisation when no factor is cached.  The exponents are the
        standard 3-D nested-dissection bounds (fill ``O(n^{4/3})``, factor
        flops ``O(n^2)``); the constants were calibrated against ``splu``
        timings of the grid-of-resistors system.
        """
        fill = self.sparse_fill_unit * float(n_nodes) ** (4.0 / 3.0)
        cost = 2.0 * fill * n_rhs
        if not factor_cached:
            cost += self.sparse_factor_unit * float(n_nodes) ** 2
        return cost

    def sparse_iterative_cost(
        self, n_nodes: int, n_rhs: int, iterations: float | None = None
    ) -> float:
        """Estimated cost of the multi-RHS PCG path for an FD block.

        Unlike the eigenfunction model, the expected iteration count varies
        by two orders of magnitude with the preconditioner (the area-weighted
        fast-Poisson preconditioner converges in ~1-2 iterations on laterally
        uniform profiles; Jacobi needs >100), so callers pass their observed
        or prior ``iterations``.
        """
        iters = self.iterations_fd if iterations is None else max(float(iterations), 1.0)
        return iters * n_rhs * self.fd_iteration_units * n_nodes


class DispatchPolicy:
    """Chooses the solve engine for each ``solve_many`` block.

    Parameters
    ----------
    max_direct_panels:
        Ceiling on contact panels for which a dense factorisation may be built
        and cached (memory is ``O(ncp^2)``); ``0`` disables the direct path.
    force_path:
        ``"direct"``, ``"tiled"`` or ``"iterative"`` pins every block to one
        engine (debugging / benchmarking).  A forced direct or tiled path
        still falls back to iterative when the factorisation is impossible
        (too many panels, or a failed factorisation), with the reason
        recorded on the decision.
    cost_model:
        The crossover model; defaults to a calibrated :class:`SolveCostModel`.
    auto_tune:
        Run one-shot timing probes on the first decision and rescale the
        model's machine constants: ``choose`` probes dense Cholesky vs. the
        stacked DCT (``fft_unit``), ``choose_sparse`` probes a sparse LU of a
        grid Laplacian vs. its matvec (``sparse_factor_unit`` /
        ``fd_iteration_units``).
    min_direct_rhs:
        Never factor for blocks narrower than this when no factor is cached
        (guards the cost model against degenerate inputs).
    max_direct_nodes:
        Ceiling on FD grid nodes for which a sparse LU may be built
        (:meth:`choose_sparse`); fill memory grows like ``n^(4/3)``, so very
        fine grids must stay iterative.  ``0`` disables the FD direct path.
    max_tiled_panels:
        Ceiling on contact panels for the out-of-core tiled engine
        (:mod:`repro.substrate.tiled`).  Adaptive routing considers the tiled
        path only **above** ``max_direct_panels`` (in-core always wins below
        it); a forced ``"tiled"`` path runs at any size up to this ceiling.
        ``0`` disables the tiled path; the default (``None``) resolves to
        32768 panels — or to 0 when ``max_direct_panels`` is 0, preserving
        that knob's documented "iterative only" meaning.
    """

    def __init__(
        self,
        max_direct_panels: int = 4096,
        force_path: str | None = None,
        cost_model: SolveCostModel | None = None,
        auto_tune: bool = False,
        min_direct_rhs: int = 2,
        max_direct_nodes: int = 200_000,
        max_tiled_panels: int | None = None,
    ) -> None:
        if force_path is not None and force_path not in DISPATCH_PATHS:
            raise ValueError(
                f"force_path must be one of {DISPATCH_PATHS} or None, got {force_path!r}"
            )
        self.max_direct_panels = int(max_direct_panels)
        self.force_path = force_path
        self.cost_model = cost_model if cost_model is not None else SolveCostModel()
        self.auto_tune = bool(auto_tune)
        self.min_direct_rhs = int(min_direct_rhs)
        self.max_direct_nodes = int(max_direct_nodes)
        if max_tiled_panels is None:
            # max_direct_panels=0 is the documented "iterative only" switch;
            # it must not leave a factored back door through the tiled tier
            max_tiled_panels = 0 if self.max_direct_panels == 0 else 32_768
        self.max_tiled_panels = int(max_tiled_panels)
        self._tuned = False
        self._sparse_tuned = False

    # -------------------------------------------------------------- auto-tune
    def auto_tune_probe(self, size: int = 160, batch: int = 8, grid: int = 64) -> float:
        """One-shot machine probe: measured DCT-vs-Cholesky flop-cost ratio.

        Times a small dense Cholesky (BLAS-3 throughput) against a stacked 2-D
        DCT round trip (transform-pipeline throughput) and updates
        ``cost_model.fft_unit`` with the measured ratio, clamped to a sane
        range.  Runs at most once per policy; returns the ratio used.
        """
        if self._tuned:
            return self.cost_model.fft_unit
        self._tuned = True
        try:
            from scipy import fft as sp_fft

            rng = np.random.default_rng(0)
            a = rng.standard_normal((size, size))
            spd = a @ a.T + size * np.eye(size)
            start = time.perf_counter()
            np.linalg.cholesky(spd)
            chol_s = max(time.perf_counter() - start, 1e-9)
            chol_per_flop = chol_s / (size**3 / 3.0)

            block = rng.standard_normal((batch, grid, grid))
            start = time.perf_counter()
            modal = sp_fft.dctn(block, type=2, norm="ortho", axes=(1, 2))
            sp_fft.idctn(modal, type=2, norm="ortho", axes=(1, 2))
            fft_s = max(time.perf_counter() - start, 1e-9)
            points = batch * grid * grid
            fft_per_flop = fft_s / (
                self.cost_model.fft_flops_per_point * points * np.log2(grid * grid)
            )
            ratio = float(np.clip(fft_per_flop / chol_per_flop, 1.0, 100.0))
        except Exception:  # pragma: no cover - probe must never break a solve
            return self.cost_model.fft_unit
        self.cost_model.fft_unit = ratio
        return ratio

    def auto_tune_sparse_probe(self, n_side: int = 14) -> tuple[float, float]:
        """One-shot machine probe for the sparse (FD) crossover constants.

        Factors a small 3-D grid Laplacian with ``splu`` and times one
        multi-RHS triangular solve and one block matvec.  The triangular
        sweep is taken as the model's reference scale (its cost in work units
        is ``2 * fill`` by construction), and ``sparse_factor_unit`` /
        ``fd_iteration_units`` are rescaled so the measured factor and
        per-iteration times sit at the right ratio to it on this machine.
        Runs at most once per policy; returns the updated pair.
        """
        model = self.cost_model
        if self._sparse_tuned:
            return model.sparse_factor_unit, model.fd_iteration_units
        self._sparse_tuned = True
        try:
            from scipy import sparse as sp
            from scipy.sparse.linalg import splu

            m = int(n_side)
            one = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(m, m))
            eye = sp.identity(m)
            lap = (
                sp.kron(sp.kron(one, eye), eye)
                + sp.kron(sp.kron(eye, one), eye)
                + sp.kron(sp.kron(eye, eye), one)
                + sp.identity(m**3)
            ).tocsc()
            n = lap.shape[0]
            rng = np.random.default_rng(0)
            b = rng.standard_normal((n, 8))

            start = time.perf_counter()
            lu = splu(lap)
            factor_s = max(time.perf_counter() - start, 1e-9)
            start = time.perf_counter()
            lu.solve(b)
            solve_s = max(time.perf_counter() - start, 1e-9) / b.shape[1]
            start = time.perf_counter()
            for _ in range(4):
                lap @ b
            matvec_s = max(time.perf_counter() - start, 1e-9) / (4 * b.shape[1])

            # reference scale: the per-column triangular sweep costs 2*fill
            # work units by definition, and `solve_s` seconds as measured
            fill = model.sparse_fill_unit * float(n) ** (4.0 / 3.0)
            units_per_second = 2.0 * fill / solve_s
            # one PCG iteration ~ matvec + preconditioner + vector updates
            # (~3 matvec-equivalents, the calibration used by the defaults)
            iter_units = 3.0 * matvec_s * units_per_second / n
            factor_units = factor_s * units_per_second / float(n) ** 2
            model.fd_iteration_units = float(np.clip(iter_units, 5.0, 2000.0))
            model.sparse_factor_unit = float(np.clip(factor_units, 0.5, 500.0))
        except Exception:  # pragma: no cover - probe must never break a solve
            return model.sparse_factor_unit, model.fd_iteration_units
        return model.sparse_factor_unit, model.fd_iteration_units

    # --------------------------------------------------------------- decision
    def choose(
        self,
        n_panels: int,
        n_rhs: int,
        grid_points: int,
        grounded: bool,
        factor_cached: bool = False,
        factor_failed: bool = False,
        tiled_factor_cached: bool = False,
    ) -> DispatchDecision:
        """Route one ``solve_many`` block.

        The decision is made once per block on the *full* column count — the
        chosen engine then applies its own ``max_batch`` memory chunking — so
        the one-time factorisation cost is amortised over the whole block, not
        over a single chunk.  ``factor_cached`` refers to the in-core dense
        factor, ``tiled_factor_cached`` to a finished out-of-core tiled
        factor held by the solver; ``factor_failed`` latches a failed
        Cholesky of ``A_cc`` and disables both factored paths (same matrix,
        same failure).
        """
        if self.auto_tune and not self._tuned:
            self.auto_tune_probe()

        direct_possible = (
            not factor_failed and 0 < n_panels <= self.max_direct_panels
        )
        tiled_possible = not factor_failed and 0 < n_panels <= self.max_tiled_panels
        if self.force_path is not None:
            if self.force_path == "direct" and not direct_possible:
                return DispatchDecision(
                    "iterative",
                    "forced direct path unavailable "
                    + ("(factorisation failed)" if factor_failed else "(panel ceiling)"),
                )
            if self.force_path == "tiled" and not tiled_possible:
                return DispatchDecision(
                    "iterative",
                    "forced tiled path unavailable "
                    + ("(factorisation failed)" if factor_failed else "(panel ceiling)"),
                )
            return DispatchDecision(self.force_path, "forced")
        if direct_possible:
            if not factor_cached and n_rhs < self.min_direct_rhs:
                return DispatchDecision(
                    "iterative",
                    f"block narrower than min_direct_rhs {self.min_direct_rhs}",
                )
            direct = self.cost_model.direct_cost(
                n_panels, n_rhs, grid_points, factor_cached, grounded
            )
            iterative = self.cost_model.iterative_cost(
                n_panels, n_rhs, grid_points, grounded
            )
            if direct <= iterative:
                return DispatchDecision(
                    "direct",
                    "cached factor" if factor_cached else "crossover model",
                    direct_cost=direct,
                    iterative_cost=iterative,
                )
            return DispatchDecision(
                "iterative",
                "crossover model",
                direct_cost=direct,
                iterative_cost=iterative,
            )
        if tiled_possible:
            # above the in-core ceiling: out-of-core factor vs. iterating
            if not tiled_factor_cached and n_rhs < self.min_direct_rhs:
                return DispatchDecision(
                    "iterative",
                    f"block narrower than min_direct_rhs {self.min_direct_rhs}",
                )
            tiled = self.cost_model.tiled_cost(
                n_panels, n_rhs, grid_points, tiled_factor_cached, grounded
            )
            iterative = self.cost_model.iterative_cost(
                n_panels, n_rhs, grid_points, grounded
            )
            if tiled <= iterative:
                return DispatchDecision(
                    "tiled",
                    "cached tiled factor"
                    if tiled_factor_cached
                    else "tiled crossover model",
                    direct_cost=tiled,
                    iterative_cost=iterative,
                )
            return DispatchDecision(
                "iterative",
                "tiled crossover model",
                direct_cost=tiled,
                iterative_cost=iterative,
            )
        reason = (
            "factorisation previously failed"
            if factor_failed
            else f"n_panels {n_panels} exceeds max_tiled_panels {self.max_tiled_panels}"
        )
        return DispatchDecision("iterative", reason)

    def choose_sparse(
        self,
        n_nodes: int,
        n_rhs: int,
        factor_cached: bool = False,
        factor_failed: bool = False,
        expected_iterations: float | None = None,
    ) -> DispatchDecision:
        """Route one FD ``solve_many`` block (sparse LU vs. multi-RHS PCG).

        Same contract as :meth:`choose`, but against the sparse cost model:
        the caller passes its observed (or prior) PCG iteration count, since
        the FD preconditioners span two orders of magnitude in convergence
        speed and a fixed iteration constant would misroute the fast-Poisson
        path.  The block-level decision amortises the one-time sparse
        factorisation over the whole block width.

        With ``auto_tune`` the first sparse decision runs
        :meth:`auto_tune_sparse_probe` to rescale the sparse cost constants
        to this machine (the ROADMAP's FD counterpart of the dense probe).
        """
        if self.auto_tune and not self._sparse_tuned:
            self.auto_tune_sparse_probe()
        direct_possible = not factor_failed and 0 < n_nodes <= self.max_direct_nodes
        if self.force_path is not None:
            if self.force_path == "direct" and not direct_possible:
                return DispatchDecision(
                    "iterative",
                    "forced direct path unavailable "
                    + ("(factorisation failed)" if factor_failed else "(node ceiling)"),
                )
            return DispatchDecision(self.force_path, "forced")
        if not direct_possible:
            reason = (
                "factorisation previously failed"
                if factor_failed
                else f"n_nodes {n_nodes} exceeds max_direct_nodes {self.max_direct_nodes}"
            )
            return DispatchDecision("iterative", reason)
        if not factor_cached and n_rhs < self.min_direct_rhs:
            return DispatchDecision(
                "iterative", f"block narrower than min_direct_rhs {self.min_direct_rhs}"
            )
        direct = self.cost_model.sparse_direct_cost(n_nodes, n_rhs, factor_cached)
        iterative = self.cost_model.sparse_iterative_cost(
            n_nodes, n_rhs, expected_iterations
        )
        if direct <= iterative:
            return DispatchDecision(
                "direct",
                "cached factor" if factor_cached else "sparse crossover model",
                direct_cost=direct,
                iterative_cost=iterative,
            )
        return DispatchDecision(
            "iterative",
            "sparse crossover model",
            direct_cost=direct,
            iterative_cost=iterative,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DispatchPolicy(max_direct_panels={self.max_direct_panels}, "
            f"force_path={self.force_path!r}, auto_tune={self.auto_tune})"
        )
