"""Eigenfunction-based (surface-variable) substrate solver.

Given contact voltages, the solver finds the contact-panel currents ``q`` such
that the potential produced by ``q`` equals the prescribed voltage on every
contact panel (non-contact panels carry zero current), then sums panel
currents per contact.  This is the black-box solver of Section 2.3 used for
most of the paper's experiments.

For a grounded backplane the contact-panel block ``A_cc`` is symmetric
positive definite and a preconditioned conjugate-gradient iteration is used.
For a floating backplane the potential is only determined up to an additive
constant and net injected current must vanish; the solver then solves the
bordered (saddle-point) system

    [ A_cc  1 ] [q]   [v]
    [ 1'    0 ] [c] = [0]

with MINRES, which yields the gauge constant ``c`` alongside the currents.

Batched solves (:meth:`EigenfunctionSolver.solve_many`) are routed per block
by a :class:`~repro.substrate.dispatch.DispatchPolicy` between the stacked-RHS
Krylov engines and a factor-once/solve-all direct engine: dense Cholesky of
``A_cc`` for a grounded backplane, and a Schur-complement (bordered Cholesky)
factorisation of the saddle-point system for a floating one, so wide floating
blocks no longer pay one MINRES iteration history per column.
"""

from __future__ import annotations

import warnings

import numpy as np
from scipy import sparse
from scipy.linalg import LinAlgError, cho_factor, cho_solve, lu_factor, lu_solve
from scipy.sparse.linalg import LinearOperator, cg, minres

from ...geometry.contact import ContactLayout
from ...geometry.panels import PanelGrid
from ..dispatch import DispatchDecision, DispatchPolicy
from ..factor_cache import factor_cache
from ..profile import SubstrateProfile
from ..solver_base import SolveStats, SubstrateSolver
from ..tiled import DEFAULT_TILE, TiledCholeskyFactor
from .operator import SurfaceOperator

#: factor-cache kind string of the dense contact-block factorisations
BEM_FACTOR_KIND = "bem_direct_factor"
#: factor-cache kind string of the in-RAM tiled contact-block factorisations
BEM_TILED_KIND = "bem_tiled_factor"

__all__ = ["EigenfunctionSolver"]


def _minres_block(
    matmat,
    b: np.ndarray,
    diag: np.ndarray,
    rtol: float,
    maxiter: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Preconditioned MINRES carried simultaneously over the rows of ``b``.

    Standard Paige–Saunders recurrences with every scalar promoted to a
    per-RHS vector.  The iteration is **batch-major**: ``b`` is a ``(k, n)``
    block whose rows are independent right-hand sides, ``matmat`` applies the
    (symmetric, possibly indefinite) operator to such a block, and ``diag`` is
    a positive diagonal preconditioner given as a ``(1, n)`` row.  Keeping the
    batch axis first leaves each RHS's panel data contiguous through the
    stacked DCTs — the same layout the grounded CG path uses.  Rows are frozen
    once their preconditioned relative residual estimate drops below ``rtol``.

    Returns ``(x, iterations_per_rhs, still_active_mask)``.
    """
    n_rhs = b.shape[0]
    eps = np.finfo(float).eps
    x = np.zeros_like(b)
    r1 = b.copy()
    y = r1 / diag
    beta1 = np.sqrt(np.maximum(np.einsum("ij,ij->i", r1, y), 0.0))
    active = beta1 > 0.0
    iters = np.zeros(n_rhs, dtype=int)
    if not active.any():
        return x, iters, active
    safe_beta1 = np.where(active, beta1, 1.0)

    oldb = np.zeros(n_rhs)
    beta = beta1.copy()
    dbar = np.zeros(n_rhs)
    epsln = np.zeros(n_rhs)
    phibar = beta1.copy()
    cs = -np.ones(n_rhs)
    sn = np.zeros(n_rhs)
    w = np.zeros_like(b)
    w2 = np.zeros_like(b)
    r2 = r1.copy()

    for itn in range(1, maxiter + 1):
        safe_beta = np.where(beta > 0, beta, 1.0)
        v = y / safe_beta[:, None]
        y = matmat(v)
        if itn >= 2:
            y -= (beta / np.where(oldb > 0, oldb, 1.0))[:, None] * r1
        alfa = np.einsum("ij,ij->i", v, y)
        y -= (alfa / safe_beta)[:, None] * r2
        r1 = r2
        r2 = y
        y = r2 / diag
        oldb = beta
        beta = np.sqrt(np.maximum(np.einsum("ij,ij->i", r2, y), 0.0))

        oldeps = epsln
        delta = cs * dbar + sn * alfa
        gbar = sn * dbar - cs * alfa
        epsln = sn * beta
        dbar = -cs * beta
        gamma = np.maximum(np.hypot(gbar, beta), eps)
        cs = gbar / gamma
        sn = beta / gamma
        phi = cs * phibar
        phibar = sn * phibar

        w1 = w2
        w2 = w
        w = (v - oldeps[:, None] * w1 - delta[:, None] * w2) / gamma[:, None]
        x[active] += phi[active, None] * w[active]
        iters[active] += 1
        active = active & (np.abs(phibar) / safe_beta1 > rtol)
        if not active.any():
            break
    return x, iters, active


class EigenfunctionSolver(SubstrateSolver):
    """Black-box substrate solver using the DCT eigendecomposition operator.

    Parameters
    ----------
    layout:
        Contact layout.
    profile:
        Layered substrate profile (lateral size must match the layout).
    panels_per_contact:
        Minimum number of panels across the smallest contact side.
    max_panels:
        Cap on panels per side.
    rtol:
        Relative residual tolerance of the iterative solve.
    use_fft:
        Forwarded to :class:`SurfaceOperator`.
    max_batch:
        Largest number of right-hand-side columns iterated at once by
        :meth:`solve_many`; wider blocks are split into chunks of this size to
        bound peak memory on **both** engines (the iterative path holds a few
        ``(max_batch, nx, ny)`` work arrays, the direct path a
        ``(ncp, max_batch)`` RHS/solution pair).
    max_direct_panels:
        Ceiling on the number of contact panels for which :meth:`solve_many`
        may build and cache a dense factorisation of the contact-panel block
        (memory is ``O(ncp^2)``).  Shorthand for the same knob on the default
        :class:`~repro.substrate.dispatch.DispatchPolicy`; ignored when an
        explicit ``dispatch`` policy is given.  Set to 0 to force the
        iterative path.
    dispatch:
        Adaptive :class:`~repro.substrate.dispatch.DispatchPolicy` routing
        each ``solve_many`` block between the direct and iterative engines.
        ``None`` builds a default policy from ``max_direct_panels``.
    fft_workers:
        Worker-thread count for the stacked ``scipy.fft`` transforms,
        resolved through
        :func:`~repro.substrate.dispatch.resolve_fft_workers` (default: all
        CPUs when the host has more than one).
    use_factor_cache:
        Consult (and populate) the process-wide
        :mod:`~repro.substrate.factor_cache` for the dense contact-block
        factorisation, so a second solver over the same
        ``(layout, profile, grid)`` pays ~zero factor cost.  Disable to force
        a private factorisation (benchmarking cold paths).
    tile_panels:
        Tile edge of the out-of-core tiled engine
        (:class:`~repro.substrate.tiled.TiledCholeskyFactor`), used when the
        dispatch policy routes a block to the ``"tiled"`` path (panel counts
        above ``max_direct_panels``).
    tiled_spill_bytes:
        Spill threshold of the tiled engine; factors larger than this go to
        a memmapped scratch file.  ``None`` (default) uses the process-wide
        factor-cache budget.
    """

    def __init__(
        self,
        layout: ContactLayout,
        profile: SubstrateProfile,
        panels_per_contact: int = 2,
        max_panels: int = 256,
        rtol: float = 1e-8,
        use_fft: bool = True,
        max_batch: int = 256,
        max_direct_panels: int = 4096,
        dispatch: DispatchPolicy | None = None,
        fft_workers: int | None = None,
        use_factor_cache: bool = True,
        tile_panels: int = DEFAULT_TILE,
        tiled_spill_bytes: int | None = None,
    ) -> None:
        self.layout = layout
        self.profile = profile
        self.grid = PanelGrid.for_layout(
            layout, panels_per_min_contact=panels_per_contact, max_panels=max_panels
        )
        self.operator = SurfaceOperator(
            self.grid, profile, use_fft=use_fft, fft_workers=fft_workers
        )
        self.rtol = rtol
        self.max_batch = int(max_batch)
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.stats = SolveStats()
        self.dispatch = (
            dispatch
            if dispatch is not None
            else DispatchPolicy(max_direct_panels=max_direct_panels)
        )
        #: routing decision of the most recent solve_many block (diagnostics)
        self.last_dispatch: DispatchDecision | None = None
        #: gauge constants ``c`` (one per column) of the most recent
        #: floating-backplane solve, on either engine
        self.last_gauge_constants: np.ndarray | None = None
        #: cached dense factorisation for the direct path; one of
        #: ("chol", factor) for grounded backplanes,
        #: ("schur", factor, w, s) or ("bordered", lu, piv) for floating ones
        self._direct_factor: tuple | None = None
        self._direct_failed = False
        #: out-of-core factorisation for the tiled path; one of
        #: ("tiled_chol", tf) or ("tiled_schur", tf, w, s)
        self._tiled_factor: tuple | None = None
        self.tile_panels = int(tile_panels)
        self.tiled_spill_bytes = tiled_spill_bytes
        self.use_factor_cache = bool(use_factor_cache)
        #: process-wide factor-cache key of this solver's direct factorisation
        self._factor_cache_key = (
            BEM_FACTOR_KIND,
            layout.fingerprint,
            profile.cache_key,
            self.grid.nx,
            self.grid.ny,
        )
        #: process-wide cache key of the in-RAM tiled factorisation
        self._tiled_cache_key = (
            BEM_TILED_KIND,
            layout.fingerprint,
            profile.cache_key,
            self.grid.nx,
            self.grid.ny,
        )
        self._incidence: sparse.csr_matrix | None = None
        self._jacobi = self.operator.contact_block_diagonal()
        if np.any(self._jacobi <= 0):
            # floating backplane has a zero uniform mode; the diagonal stays
            # positive in practice, but guard against degenerate grids.
            self._jacobi = np.maximum(self._jacobi, np.max(self._jacobi) * 1e-12 + 1e-300)

    @property
    def max_direct_panels(self) -> int:
        """Dense-factorisation panel ceiling (delegates to the policy)."""
        return self.dispatch.max_direct_panels

    @property
    def factor_cache_key(self) -> tuple:
        """Process-wide factor-cache key of this solver's direct factor.

        The parallel engine's shared-memory factor plane publishes the
        parent's factor under this key so worker processes attach instead of
        refactoring.
        """
        return self._factor_cache_key

    @property
    def tiled_factor_cache_key(self) -> tuple:
        """Process-wide cache key of this solver's in-RAM tiled factor.

        Only RAM-stored tiled factors are shared (through the process-wide
        cache and the factor plane); a spilled factor *is* its memmapped
        scratch file and stays per-process.
        """
        return self._tiled_cache_key

    # ----------------------------------------------------------------- solves
    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        voltages = np.asarray(voltages, dtype=float)
        if voltages.shape != (self.layout.n_contacts,):
            raise ValueError("expected one voltage per contact")
        v_panel = self.grid.spread_contact_values(voltages)[
            self.grid.all_contact_panels
        ]
        if self.profile.grounded_backplane:
            q_panel = self._solve_grounded(v_panel)
        else:
            q_panel = self._solve_floating(v_panel)
        full = np.zeros(self.grid.n_panels)
        full[self.grid.all_contact_panels] = q_panel
        return self.grid.sum_panel_values(full)

    def _solve_grounded(self, v_panel: np.ndarray) -> np.ndarray:
        ncp = self.grid.n_contact_panels
        a_cc = LinearOperator(
            (ncp, ncp), matvec=self.operator.apply_contact_panels, dtype=float
        )
        m_inv = LinearOperator(
            (ncp, ncp), matvec=lambda r: r / self._jacobi, dtype=float
        )
        iterations = 0

        def cb(_xk: np.ndarray) -> None:
            nonlocal iterations
            iterations += 1

        x0 = v_panel / self._jacobi
        sol, info = cg(a_cc, v_panel, x0=x0, rtol=self.rtol, maxiter=2000, M=m_inv, callback=cb)
        if info > 0:
            raise RuntimeError(f"CG did not converge in {info} iterations")
        self.stats.record(iterations)
        return sol

    def _solve_floating(self, v_panel: np.ndarray) -> np.ndarray:
        ncp = self.grid.n_contact_panels
        ones = np.ones(ncp)
        scale = float(np.mean(self._jacobi))

        def matvec(x: np.ndarray) -> np.ndarray:
            q, c = x[:-1], x[-1]
            top = self.operator.apply_contact_panels(q) + c * scale * ones
            bottom = scale * float(ones @ q)
            return np.concatenate([top, [bottom]])

        k = LinearOperator((ncp + 1, ncp + 1), matvec=matvec, dtype=float)
        diag = np.concatenate([self._jacobi, [scale]])
        m_inv = LinearOperator(
            (ncp + 1, ncp + 1), matvec=lambda r: r / diag, dtype=float
        )
        rhs = np.concatenate([v_panel, [0.0]])
        iterations = 0

        def cb(_xk: np.ndarray) -> None:
            nonlocal iterations
            iterations += 1

        sol, info = minres(k, rhs, rtol=self.rtol, maxiter=4000, M=m_inv, callback=cb)
        if info > 0:
            raise RuntimeError("MINRES did not converge")
        self.stats.record(iterations)
        # the MINRES border unknown is scaled; the physical gauge constant
        # satisfies A_cc q + c 1 = v
        self.last_gauge_constants = np.array([scale * sol[-1]])
        return sol[:-1]

    # ---------------------------------------------------------- batched solves
    def solve_many(self, voltages: np.ndarray) -> np.ndarray:
        """Batched black-box solve with adaptive direct/iterative dispatch.

        The :class:`~repro.substrate.dispatch.DispatchPolicy` routes the whole
        block once — so a one-time factorisation is amortised over every
        column of the block — and the chosen engine then chunks internally at
        ``max_batch`` columns to bound peak memory.  Column ``j`` of the
        result matches ``solve_currents(voltages[:, j])`` to the solver
        tolerance on either engine.
        """
        v = np.asarray(voltages, dtype=float)
        if v.ndim != 2 or v.shape[0] != self.layout.n_contacts:
            raise ValueError("expected an (n_contacts, k) voltage block")
        if v.shape[1] == 0:
            return np.empty_like(v)
        decision = self.dispatch.choose(
            n_panels=self.grid.n_contact_panels,
            n_rhs=v.shape[1],
            grid_points=self.grid.n_panels,
            grounded=self.profile.grounded_backplane,
            factor_cached=self._factor_available(),
            factor_failed=self._direct_failed,
            tiled_factor_cached=self._tiled_factor_available(),
        )
        self.last_dispatch = decision
        if decision.path == "direct":
            solved = self._solve_many_direct(v)
            if solved is not None:
                return solved
            warnings.warn(
                "dense contact-block factorisation failed (numerically non-SPD "
                "contact block); falling back to the iterative path",
                RuntimeWarning,
                stacklevel=2,
            )
            self.last_dispatch = DispatchDecision(
                "iterative", "direct factorisation failed"
            )
        elif decision.path == "tiled":
            solved = self._solve_many_tiled(v)
            if solved is not None:
                return solved
            warnings.warn(
                "tiled contact-block factorisation failed (numerically non-SPD "
                "contact block); falling back to the iterative path",
                RuntimeWarning,
                stacklevel=2,
            )
            self.last_dispatch = DispatchDecision(
                "iterative", "tiled factorisation failed"
            )
        out = np.empty_like(v)
        # accumulate per-column gauge constants across chunks (each floating
        # chunk solve overwrites last_gauge_constants with its own columns)
        gauges = None if self.profile.grounded_backplane else np.empty(v.shape[1])
        for start in range(0, v.shape[1], self.max_batch):
            chunk = slice(start, min(start + self.max_batch, v.shape[1]))
            out[:, chunk] = self._solve_many_chunk(v[:, chunk])
            if gauges is not None:
                gauges[chunk] = self.last_gauge_constants
        if gauges is not None:
            self.last_gauge_constants = gauges
        return out

    # -------------------------------------------------------------- direct path
    def _factor_available(self) -> bool:
        """A direct factor is held, or sits warm in the process-wide cache."""
        return self._direct_factor is not None or (
            self.use_factor_cache and factor_cache().contains(self._factor_cache_key)
        )

    def prepare_direct(self) -> bool:
        """Build (or load from the factor cache) the direct factor now.

        Returns True when a factor is held afterwards; False when the direct
        path is unavailable (panel ceiling, or a failed factorisation, which
        is also remembered so dispatch never retries it).  Used to warm
        worker processes before timed parallel extraction.
        """
        if self._direct_failed:
            return False
        if not 0 < self.grid.n_contact_panels <= self.dispatch.max_direct_panels:
            return False
        try:
            self._ensure_direct_factor()
        except LinAlgError:
            self._direct_failed = True
            return False
        return True

    def _ensure_direct_factor(self) -> None:
        """Build (once) and factor the dense contact-panel system.

        Grounded backplane: Cholesky of ``A_cc``.  Floating backplane: the
        bordered saddle-point system is factored through its Schur complement
        — Cholesky of ``A_cc`` (SPD whenever the contacts do not tile the
        whole surface, since the excluded uniform mode cannot be represented
        by a current pattern supported on a strict panel subset) plus the
        solved border column ``w = A_cc^{-1} 1`` and pivot ``s = 1' w``.  If
        that Cholesky fails the full bordered matrix is LU-factored instead.

        The finished factor is shared through the process-wide
        :mod:`~repro.substrate.factor_cache` (unless ``use_factor_cache`` is
        off), so sibling solvers over the same substrate skip the build.
        """
        if self._direct_factor is not None:
            return
        if self.use_factor_cache:
            cached = factor_cache().get(self._factor_cache_key)
            if cached is not None:
                self._direct_factor = cached
                return
        a_cc = self.operator.contact_block_matrix(max_batch=self.max_batch)
        # the exact operator is symmetric; remove transform round-off before
        # factorising
        a_cc = 0.5 * (a_cc + a_cc.T)
        if self.profile.grounded_backplane:
            self._set_direct_factor(
                ("chol", cho_factor(a_cc, lower=True, overwrite_a=True))
            )
            return
        ncp = a_cc.shape[0]
        ones = np.ones(ncp)
        try:
            chol = cho_factor(a_cc, lower=True)
            w = cho_solve(chol, ones)
            s = float(ones @ w)
            if not np.isfinite(s) or s <= 0.0:
                raise LinAlgError("degenerate Schur complement")
            self._set_direct_factor(("schur", chol, w, s))
            return
        except LinAlgError:
            # contacts tiling the whole surface make A_cc singular (the gauge
            # direction); the bordered matrix itself is still invertible.
            bordered = np.zeros((ncp + 1, ncp + 1))
            bordered[:ncp, :ncp] = a_cc
            bordered[:ncp, -1] = 1.0
            bordered[-1, :ncp] = 1.0
            lu, piv = lu_factor(bordered)
            u_diag = np.abs(np.diag(lu))
            if u_diag.min() <= ncp * np.finfo(float).eps * u_diag.max():
                raise LinAlgError("bordered saddle-point matrix is singular") from None
            self._set_direct_factor(("bordered", lu, piv))

    def _set_direct_factor(self, factor: tuple) -> None:
        """Hold the freshly built factor and share it through the cache."""
        self._direct_factor = factor
        # this factor was computed here, not loaded or attached — the factor
        # plane's "zero per-worker refactorisations" gate watches this counter
        self.stats.record_factor_rebuild()
        if self.use_factor_cache:
            factor_cache().put(self._factor_cache_key, factor)

    def _ensure_incidence(self) -> np.ndarray:
        """Contact->panel owner gather plus the cached panel->contact sum.

        Both factored paths (in-core direct and tiled) spread contact
        voltages to panels through the returned ``owner`` index and gather
        panel currents back through the cached sparse incidence product.
        """
        owner = self.grid.panel_to_contact[self.grid.all_contact_panels]
        if self._incidence is None:
            ncp = owner.size
            self._incidence = sparse.csr_matrix(
                (np.ones(ncp), (owner, np.arange(ncp))),
                shape=(self.layout.n_contacts, ncp),
            )
        return owner

    def _solve_many_direct(self, v: np.ndarray) -> np.ndarray | None:
        """Factor-once / solve-all path; returns None on factorisation failure.

        The RHS/solution pair is processed in ``max_batch``-column chunks so a
        very wide block never materialises the full ``(ncp, k)`` panel arrays
        at once — the same memory bound the iterative path observes.
        """
        try:
            self._ensure_direct_factor()
        except LinAlgError:
            # numerically non-SPD / singular contact block (degenerate grid):
            # the caller falls back to the iterative path with a warning.
            self._direct_failed = True
            return None
        owner = self._ensure_incidence()
        kind = self._direct_factor[0]
        k_total = v.shape[1]
        grounded = self.profile.grounded_backplane
        out = np.empty_like(v)
        gauges = None if grounded else np.empty(k_total)
        for start in range(0, k_total, self.max_batch):
            chunk = slice(start, min(start + self.max_batch, k_total))
            v_panel = v[:, chunk][owner]
            if kind == "chol":
                q_panel = cho_solve(self._direct_factor[1], v_panel)
            elif kind == "schur":
                _, chol, w, s = self._direct_factor
                q0 = cho_solve(chol, v_panel)
                c = q0.sum(axis=0) / s
                q_panel = q0 - w[:, None] * c
                gauges[chunk] = c
            else:  # bordered LU
                _, lu, piv = self._direct_factor
                rhs = np.vstack([v_panel, np.zeros((1, v_panel.shape[1]))])
                sol = lu_solve((lu, piv), rhs)
                q_panel = sol[:-1]
                gauges[chunk] = sol[-1]
            out[:, chunk] = self._incidence @ q_panel
        if gauges is not None:
            self.last_gauge_constants = gauges
        self.stats.record_direct(k_total)
        return out

    # --------------------------------------------------------------- tiled path
    def prepare_tiled(self) -> bool:
        """Build the out-of-core tiled factor now (untimed warm-up hook).

        Returns True when a tiled factor is held afterwards; False when the
        tiled path is unavailable (policy ceiling, or a failed ``A_cc``
        Cholesky, which also latches ``_direct_failed`` — it is the same
        matrix the dense path would factor).
        """
        if self._direct_failed:
            return False
        if not 0 < self.grid.n_contact_panels <= self.dispatch.max_tiled_panels:
            return False
        try:
            self._ensure_tiled_factor()
        except LinAlgError:
            self._direct_failed = True
            return False
        return True

    def _tiled_factor_available(self) -> bool:
        """A tiled factor is held, or sits warm in the process-wide cache."""
        return self._tiled_factor is not None or (
            self.use_factor_cache and factor_cache().contains(self._tiled_cache_key)
        )

    def _ensure_tiled_factor(self) -> None:
        """Assemble and factor ``A_cc`` tile by tile (out-of-core Cholesky).

        Grounded backplane: blocked Cholesky ``A_cc = L L^T`` over tiled
        storage.  Floating backplane: the same tiled factor plus the solved
        border column ``w = A_cc^{-1} 1`` and Schur pivot ``s = 1' w`` (the
        bordered-LU fallback of the dense path has no out-of-core analogue;
        a singular ``A_cc`` raises and the caller falls back to iterative).

        **In-RAM** tiled factors are shared through the process-wide
        :mod:`~repro.substrate.factor_cache` (and, from there, the parallel
        engine's shared-memory factor plane), so sibling solvers and service
        workers skip the tile-by-tile rebuild.  A *spilled* factor is its
        memmapped scratch file — there is nothing to share — and stays per
        solver.
        """
        if self._tiled_factor is not None:
            return
        if self.use_factor_cache:
            cached = factor_cache().get(self._tiled_cache_key)
            if cached is not None:
                self._tiled_factor = cached
                return
        ncp = self.grid.n_contact_panels
        tf = TiledCholeskyFactor(
            ncp, tile=self.tile_panels, spill_over_bytes=self.tiled_spill_bytes
        )
        rows = self.operator.contact_block_rows

        def assemble(start: int, stop: int) -> np.ndarray:
            return rows(start, stop, max_batch=self.max_batch)

        try:
            tf.factor(assemble)
        except LinAlgError:
            tf.close()
            raise
        self.stats.record_factor_rebuild()
        if self.profile.grounded_backplane:
            self._tiled_factor = ("tiled_chol", tf)
        else:
            ones = np.ones(ncp)
            w = tf.solve(ones)
            s = float(ones @ w)
            if not np.isfinite(s) or s <= 0.0:
                tf.close()
                raise LinAlgError("degenerate Schur complement on the tiled factor")
            self._tiled_factor = ("tiled_schur", tf, w, s)
        if self.use_factor_cache and not tf.spilled:
            # the cache (and everyone who loads from it) now co-owns the
            # storage: close_tiled() must not release it from under them
            tf.shared = True
            factor_cache().put(self._tiled_cache_key, self._tiled_factor, nbytes=tf.nbytes)

    def _solve_many_tiled(self, v: np.ndarray) -> np.ndarray | None:
        """Out-of-core factor-once / solve-all path; None on factor failure.

        Identical contact->panel plumbing to :meth:`_solve_many_direct`, with
        the triangular solves served by the tiled factor in
        ``max_batch``-column chunks (the blocked substitution stages one tile
        of ``L`` in RAM at a time).
        """
        try:
            self._ensure_tiled_factor()
        except LinAlgError:
            self._direct_failed = True
            return None
        owner = self._ensure_incidence()
        kind = self._tiled_factor[0]
        k_total = v.shape[1]
        grounded = self.profile.grounded_backplane
        out = np.empty_like(v)
        gauges = None if grounded else np.empty(k_total)
        for start in range(0, k_total, self.max_batch):
            chunk = slice(start, min(start + self.max_batch, k_total))
            v_panel = v[:, chunk][owner]
            if kind == "tiled_chol":
                q_panel = self._tiled_factor[1].solve(v_panel)
            else:  # tiled Schur complement (floating backplane)
                _, tf, w, s = self._tiled_factor
                q0 = tf.solve(v_panel)
                c = q0.sum(axis=0) / s
                q_panel = q0 - w[:, None] * c
                gauges[chunk] = c
            out[:, chunk] = self._incidence @ q_panel
        if gauges is not None:
            self.last_gauge_constants = gauges
        self.stats.record_direct(k_total)
        return out

    def close_tiled(self) -> None:
        """Release the tiled factor's scratch storage (idempotent).

        A factor whose storage is shared (held by the process-wide cache or
        attached through the factor plane) is only dropped, never released —
        :class:`~repro.substrate.tiled.TiledCholeskyFactor.close` handles
        the distinction.
        """
        if self._tiled_factor is not None:
            self._tiled_factor[1].close()
            self._tiled_factor = None

    # ----------------------------------------------------------- iterative path
    def _solve_many_chunk(self, v: np.ndarray) -> np.ndarray:
        if v.shape[1] == 0:
            return np.empty_like(v)
        v_panel = self.grid.spread_contact_values(v)[self.grid.all_contact_panels]
        if self.profile.grounded_backplane:
            q_panel, iters = self._solve_grounded_block(v_panel)
        else:
            q_panel, iters = self._solve_floating_block(v_panel)
        for it in iters:
            self.stats.record(int(it))
        full = np.zeros((self.grid.n_panels, v.shape[1]))
        full[self.grid.all_contact_panels] = q_panel
        return self.grid.sum_panel_values(full)

    def _solve_grounded_block(self, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Jacobi-preconditioned CG over all columns of ``b`` at once.

        Per-column step lengths keep every column on its own CG trajectory
        (this is vectorised CG, not block-Krylov subspace sharing), so each
        column converges to the same solution as the sequential solve —
        same Jacobi preconditioner, same ``x0``, but the operator is applied
        to the whole block per iteration.  The iteration is carried
        batch-major (``(k, ncp)`` arrays) so every column's panel data stays
        contiguous through the stacked DCTs.
        """
        bt = np.ascontiguousarray(b.T)
        jac = self._jacobi[None, :]
        n_rhs = bt.shape[0]
        apply_block = self.operator.apply_contact_panels_block
        x = bt / jac
        r = bt - apply_block(x)
        tol = self.rtol * np.linalg.norm(bt, axis=1)
        iters = np.zeros(n_rhs, dtype=int)
        active = np.linalg.norm(r, axis=1) > tol
        z = r / jac
        p = z.copy()
        rz = np.einsum("ij,ij->i", r, z)
        for _ in range(2000):
            if not active.any():
                break
            ap = apply_block(p)
            pap = np.einsum("ij,ij->i", p, ap)
            alpha = np.where(active & (pap > 0), rz / np.where(pap > 0, pap, 1.0), 0.0)
            x += alpha[:, None] * p
            r -= alpha[:, None] * ap
            iters[active] += 1
            active &= np.linalg.norm(r, axis=1) > tol
            z = r / jac
            rz_new = np.einsum("ij,ij->i", r, z)
            beta = np.where(rz > 0, rz_new / np.where(rz > 0, rz, 1.0), 0.0)
            p = z + beta[:, None] * p
            rz = rz_new
        if active.any():
            raise RuntimeError(
                f"batched CG did not converge for {int(active.sum())} column(s)"
            )
        return x.T, iters

    def _solve_floating_block(self, v_panel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch-major vectorised MINRES on the bordered (saddle-point) system.

        Same formulation and preconditioner as the sequential
        :meth:`_solve_floating`, with the Lanczos/Givens recurrences carried
        per RHS and the operator applied to the whole block at once through
        the batch-major ``apply_contact_panels_block`` fast path (one stacked
        DCT pipeline per iteration, like the grounded CG path).
        """
        n_rhs = v_panel.shape[1]
        scale = float(np.mean(self._jacobi))
        diag = np.concatenate([self._jacobi, [scale]])[None, :]
        apply_block = self.operator.apply_contact_panels_block

        def matmat(x: np.ndarray) -> np.ndarray:
            q, c = x[:, :-1], x[:, -1:]
            top = apply_block(q) + scale * c  # c broadcasts over the ones row
            bottom = scale * q.sum(axis=1, keepdims=True)
            return np.concatenate([top, bottom], axis=1)

        rhs = np.concatenate(
            [np.ascontiguousarray(v_panel.T), np.zeros((n_rhs, 1))], axis=1
        )
        x, iters, active = _minres_block(matmat, rhs, diag, self.rtol, maxiter=4000)
        if active.any():
            raise RuntimeError(
                f"batched MINRES did not converge for {int(active.sum())} column(s)"
            )
        self.last_gauge_constants = scale * x[:, -1]
        return x[:, :-1].T, iters

    # ------------------------------------------------------------ convenience
    def conductance_matrix(self) -> np.ndarray:
        """Extract the dense ``G`` (one solve per contact) — small layouts only."""
        from ..extraction import extract_dense

        return extract_dense(self)

    def mean_iterations_per_solve(self) -> float:
        """Average Krylov iterations per **iterative** black-box solve.

        Solves served by the cached dense factorisation run zero Krylov
        iterations and are excluded from this mean (they are reported
        separately via ``stats.n_direct_solves``); see
        :class:`~repro.substrate.solver_base.SolveStats`.
        """
        return self.stats.mean_iterations
