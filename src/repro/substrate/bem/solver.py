"""Eigenfunction-based (surface-variable) substrate solver.

Given contact voltages, the solver finds the contact-panel currents ``q`` such
that the potential produced by ``q`` equals the prescribed voltage on every
contact panel (non-contact panels carry zero current), then sums panel
currents per contact.  This is the black-box solver of Section 2.3 used for
most of the paper's experiments.

For a grounded backplane the contact-panel block ``A_cc`` is symmetric
positive definite and a preconditioned conjugate-gradient iteration is used.
For a floating backplane the potential is only determined up to an additive
constant and net injected current must vanish; the solver then solves the
bordered (saddle-point) system

    [ A_cc  1 ] [q]   [v]
    [ 1'    0 ] [c] = [0]

with MINRES, which yields the gauge constant ``c`` alongside the currents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.sparse.linalg import LinearOperator, cg, minres

from ...geometry.contact import ContactLayout
from ...geometry.panels import PanelGrid
from ..profile import SubstrateProfile
from ..solver_base import SubstrateSolver
from .operator import SurfaceOperator

__all__ = ["EigenfunctionSolver"]


@dataclass
class _SolveStats:
    """Bookkeeping for Table 2.2-style reporting."""

    n_solves: int = 0
    total_iterations: int = 0
    iterations_per_solve: list[int] = field(default_factory=list)

    def record(self, iterations: int) -> None:
        self.n_solves += 1
        self.total_iterations += iterations
        self.iterations_per_solve.append(iterations)

    @property
    def mean_iterations(self) -> float:
        return self.total_iterations / self.n_solves if self.n_solves else 0.0


class EigenfunctionSolver(SubstrateSolver):
    """Black-box substrate solver using the DCT eigendecomposition operator.

    Parameters
    ----------
    layout:
        Contact layout.
    profile:
        Layered substrate profile (lateral size must match the layout).
    panels_per_contact:
        Minimum number of panels across the smallest contact side.
    max_panels:
        Cap on panels per side.
    rtol:
        Relative residual tolerance of the iterative solve.
    use_fft:
        Forwarded to :class:`SurfaceOperator`.
    """

    def __init__(
        self,
        layout: ContactLayout,
        profile: SubstrateProfile,
        panels_per_contact: int = 2,
        max_panels: int = 256,
        rtol: float = 1e-8,
        use_fft: bool = True,
    ) -> None:
        self.layout = layout
        self.profile = profile
        self.grid = PanelGrid.for_layout(
            layout, panels_per_min_contact=panels_per_contact, max_panels=max_panels
        )
        self.operator = SurfaceOperator(self.grid, profile, use_fft=use_fft)
        self.rtol = rtol
        self.stats = _SolveStats()
        self._jacobi = self.operator.contact_block_diagonal()
        if np.any(self._jacobi <= 0):
            # floating backplane has a zero uniform mode; the diagonal stays
            # positive in practice, but guard against degenerate grids.
            self._jacobi = np.maximum(self._jacobi, np.max(self._jacobi) * 1e-12 + 1e-300)

    # ----------------------------------------------------------------- solves
    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        voltages = np.asarray(voltages, dtype=float)
        if voltages.shape != (self.layout.n_contacts,):
            raise ValueError("expected one voltage per contact")
        v_panel = self.grid.spread_contact_values(voltages)[
            self.grid.all_contact_panels
        ]
        if self.profile.grounded_backplane:
            q_panel = self._solve_grounded(v_panel)
        else:
            q_panel = self._solve_floating(v_panel)
        full = np.zeros(self.grid.n_panels)
        full[self.grid.all_contact_panels] = q_panel
        return self.grid.sum_panel_values(full)

    def _solve_grounded(self, v_panel: np.ndarray) -> np.ndarray:
        ncp = self.grid.n_contact_panels
        a_cc = LinearOperator(
            (ncp, ncp), matvec=self.operator.apply_contact_panels, dtype=float
        )
        m_inv = LinearOperator(
            (ncp, ncp), matvec=lambda r: r / self._jacobi, dtype=float
        )
        iterations = 0

        def cb(_xk: np.ndarray) -> None:
            nonlocal iterations
            iterations += 1

        x0 = v_panel / self._jacobi
        sol, info = cg(a_cc, v_panel, x0=x0, rtol=self.rtol, maxiter=2000, M=m_inv, callback=cb)
        if info > 0:
            raise RuntimeError(f"CG did not converge in {info} iterations")
        self.stats.record(iterations)
        return sol

    def _solve_floating(self, v_panel: np.ndarray) -> np.ndarray:
        ncp = self.grid.n_contact_panels
        ones = np.ones(ncp)
        scale = float(np.mean(self._jacobi))

        def matvec(x: np.ndarray) -> np.ndarray:
            q, c = x[:-1], x[-1]
            top = self.operator.apply_contact_panels(q) + c * scale * ones
            bottom = scale * float(ones @ q)
            return np.concatenate([top, [bottom]])

        k = LinearOperator((ncp + 1, ncp + 1), matvec=matvec, dtype=float)
        diag = np.concatenate([self._jacobi, [scale]])
        m_inv = LinearOperator(
            (ncp + 1, ncp + 1), matvec=lambda r: r / diag, dtype=float
        )
        rhs = np.concatenate([v_panel, [0.0]])
        iterations = 0

        def cb(_xk: np.ndarray) -> None:
            nonlocal iterations
            iterations += 1

        sol, info = minres(k, rhs, rtol=self.rtol, maxiter=4000, M=m_inv, callback=cb)
        if info > 0:
            raise RuntimeError("MINRES did not converge")
        self.stats.record(iterations)
        return sol[:-1]

    # ------------------------------------------------------------ convenience
    def conductance_matrix(self) -> np.ndarray:
        """Extract the dense ``G`` (one solve per contact) — small layouts only."""
        from ..extraction import extract_dense

        return extract_dense(self)

    def mean_iterations_per_solve(self) -> float:
        """Average iterative-solver iterations per black-box solve (Table 2.2)."""
        return self.stats.mean_iterations
