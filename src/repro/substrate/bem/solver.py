"""Eigenfunction-based (surface-variable) substrate solver.

Given contact voltages, the solver finds the contact-panel currents ``q`` such
that the potential produced by ``q`` equals the prescribed voltage on every
contact panel (non-contact panels carry zero current), then sums panel
currents per contact.  This is the black-box solver of Section 2.3 used for
most of the paper's experiments.

For a grounded backplane the contact-panel block ``A_cc`` is symmetric
positive definite and a preconditioned conjugate-gradient iteration is used.
For a floating backplane the potential is only determined up to an additive
constant and net injected current must vanish; the solver then solves the
bordered (saddle-point) system

    [ A_cc  1 ] [q]   [v]
    [ 1'    0 ] [c] = [0]

with MINRES, which yields the gauge constant ``c`` alongside the currents.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import sparse
from scipy.linalg import LinAlgError, cho_factor, cho_solve
from scipy.sparse.linalg import LinearOperator, cg, minres

from ...geometry.contact import ContactLayout
from ...geometry.panels import PanelGrid
from ..profile import SubstrateProfile
from ..solver_base import SubstrateSolver
from .operator import SurfaceOperator

__all__ = ["EigenfunctionSolver"]


def _minres_block(
    matmat,
    b: np.ndarray,
    diag: np.ndarray,
    rtol: float,
    maxiter: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Preconditioned MINRES carried simultaneously over the columns of ``b``.

    Standard Paige–Saunders recurrences with every scalar promoted to a
    per-column vector; ``matmat`` applies the (symmetric, possibly indefinite)
    operator to a whole column block and ``diag`` is a positive diagonal
    preconditioner given as an ``(n, 1)`` column.  Columns are frozen once
    their preconditioned relative residual estimate drops below ``rtol``.

    Returns ``(x, iterations_per_column, still_active_mask)``.
    """
    n_rhs = b.shape[1]
    eps = np.finfo(float).eps
    x = np.zeros_like(b)
    r1 = b.copy()
    y = r1 / diag
    beta1 = np.sqrt(np.maximum(np.einsum("ij,ij->j", r1, y), 0.0))
    active = beta1 > 0.0
    iters = np.zeros(n_rhs, dtype=int)
    if not active.any():
        return x, iters, active
    safe_beta1 = np.where(active, beta1, 1.0)

    oldb = np.zeros(n_rhs)
    beta = beta1.copy()
    dbar = np.zeros(n_rhs)
    epsln = np.zeros(n_rhs)
    phibar = beta1.copy()
    cs = -np.ones(n_rhs)
    sn = np.zeros(n_rhs)
    w = np.zeros_like(b)
    w2 = np.zeros_like(b)
    r2 = r1.copy()

    for itn in range(1, maxiter + 1):
        safe_beta = np.where(beta > 0, beta, 1.0)
        v = y / safe_beta
        y = matmat(v)
        if itn >= 2:
            y -= (beta / np.where(oldb > 0, oldb, 1.0)) * r1
        alfa = np.einsum("ij,ij->j", v, y)
        y -= (alfa / safe_beta) * r2
        r1 = r2
        r2 = y
        y = r2 / diag
        oldb = beta
        beta = np.sqrt(np.maximum(np.einsum("ij,ij->j", r2, y), 0.0))

        oldeps = epsln
        delta = cs * dbar + sn * alfa
        gbar = sn * dbar - cs * alfa
        epsln = sn * beta
        dbar = -cs * beta
        gamma = np.maximum(np.hypot(gbar, beta), eps)
        cs = gbar / gamma
        sn = beta / gamma
        phi = cs * phibar
        phibar = sn * phibar

        w1 = w2
        w2 = w
        w = (v - oldeps * w1 - delta * w2) / gamma
        x[:, active] += phi[active] * w[:, active]
        iters[active] += 1
        active = active & (np.abs(phibar) / safe_beta1 > rtol)
        if not active.any():
            break
    return x, iters, active


@dataclass
class _SolveStats:
    """Bookkeeping for Table 2.2-style reporting.

    Direct (factor-once) solves run no Krylov iterations and are counted
    separately so :attr:`mean_iterations` keeps meaning "iterations per
    *iterative* solve" even for workloads that mix both engines.
    """

    n_solves: int = 0
    n_direct_solves: int = 0
    total_iterations: int = 0
    iterations_per_solve: list[int] = field(default_factory=list)

    def record(self, iterations: int) -> None:
        self.n_solves += 1
        self.total_iterations += iterations
        self.iterations_per_solve.append(iterations)

    def record_direct(self, n_solves: int) -> None:
        self.n_direct_solves += n_solves

    @property
    def mean_iterations(self) -> float:
        return self.total_iterations / self.n_solves if self.n_solves else 0.0


class EigenfunctionSolver(SubstrateSolver):
    """Black-box substrate solver using the DCT eigendecomposition operator.

    Parameters
    ----------
    layout:
        Contact layout.
    profile:
        Layered substrate profile (lateral size must match the layout).
    panels_per_contact:
        Minimum number of panels across the smallest contact side.
    max_panels:
        Cap on panels per side.
    rtol:
        Relative residual tolerance of the iterative solve.
    use_fft:
        Forwarded to :class:`SurfaceOperator`.
    max_batch:
        Largest number of right-hand-side columns iterated at once by
        :meth:`solve_many`; wider blocks are split into chunks of this size to
        bound peak memory (each chunk holds a few ``(nx, ny, max_batch)``
        work arrays).
    max_direct_panels:
        Ceiling on the number of contact panels for which :meth:`solve_many`
        may build and cache a dense Cholesky factorisation of the
        contact-panel block (memory is ``O(ncp^2)``).  Wide grounded RHS
        blocks then amortise one factorisation across all columns — the
        multi-RHS analogue of a direct solver.  Set to 0 to force the
        iterative path.
    """

    def __init__(
        self,
        layout: ContactLayout,
        profile: SubstrateProfile,
        panels_per_contact: int = 2,
        max_panels: int = 256,
        rtol: float = 1e-8,
        use_fft: bool = True,
        max_batch: int = 256,
        max_direct_panels: int = 4096,
    ) -> None:
        self.layout = layout
        self.profile = profile
        self.grid = PanelGrid.for_layout(
            layout, panels_per_min_contact=panels_per_contact, max_panels=max_panels
        )
        self.operator = SurfaceOperator(self.grid, profile, use_fft=use_fft)
        self.rtol = rtol
        self.max_batch = int(max_batch)
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.stats = _SolveStats()
        self.max_direct_panels = int(max_direct_panels)
        #: cached Cholesky factor of A_cc for the wide-block direct path
        self._chol: tuple[np.ndarray, bool] | None = None
        self._chol_failed = False
        self._incidence: sparse.csr_matrix | None = None
        self._jacobi = self.operator.contact_block_diagonal()
        if np.any(self._jacobi <= 0):
            # floating backplane has a zero uniform mode; the diagonal stays
            # positive in practice, but guard against degenerate grids.
            self._jacobi = np.maximum(self._jacobi, np.max(self._jacobi) * 1e-12 + 1e-300)

    # ----------------------------------------------------------------- solves
    def solve_currents(self, voltages: np.ndarray) -> np.ndarray:
        voltages = np.asarray(voltages, dtype=float)
        if voltages.shape != (self.layout.n_contacts,):
            raise ValueError("expected one voltage per contact")
        v_panel = self.grid.spread_contact_values(voltages)[
            self.grid.all_contact_panels
        ]
        if self.profile.grounded_backplane:
            q_panel = self._solve_grounded(v_panel)
        else:
            q_panel = self._solve_floating(v_panel)
        full = np.zeros(self.grid.n_panels)
        full[self.grid.all_contact_panels] = q_panel
        return self.grid.sum_panel_values(full)

    def _solve_grounded(self, v_panel: np.ndarray) -> np.ndarray:
        ncp = self.grid.n_contact_panels
        a_cc = LinearOperator(
            (ncp, ncp), matvec=self.operator.apply_contact_panels, dtype=float
        )
        m_inv = LinearOperator(
            (ncp, ncp), matvec=lambda r: r / self._jacobi, dtype=float
        )
        iterations = 0

        def cb(_xk: np.ndarray) -> None:
            nonlocal iterations
            iterations += 1

        x0 = v_panel / self._jacobi
        sol, info = cg(a_cc, v_panel, x0=x0, rtol=self.rtol, maxiter=2000, M=m_inv, callback=cb)
        if info > 0:
            raise RuntimeError(f"CG did not converge in {info} iterations")
        self.stats.record(iterations)
        return sol

    def _solve_floating(self, v_panel: np.ndarray) -> np.ndarray:
        ncp = self.grid.n_contact_panels
        ones = np.ones(ncp)
        scale = float(np.mean(self._jacobi))

        def matvec(x: np.ndarray) -> np.ndarray:
            q, c = x[:-1], x[-1]
            top = self.operator.apply_contact_panels(q) + c * scale * ones
            bottom = scale * float(ones @ q)
            return np.concatenate([top, [bottom]])

        k = LinearOperator((ncp + 1, ncp + 1), matvec=matvec, dtype=float)
        diag = np.concatenate([self._jacobi, [scale]])
        m_inv = LinearOperator(
            (ncp + 1, ncp + 1), matvec=lambda r: r / diag, dtype=float
        )
        rhs = np.concatenate([v_panel, [0.0]])
        iterations = 0

        def cb(_xk: np.ndarray) -> None:
            nonlocal iterations
            iterations += 1

        sol, info = minres(k, rhs, rtol=self.rtol, maxiter=4000, M=m_inv, callback=cb)
        if info > 0:
            raise RuntimeError("MINRES did not converge")
        self.stats.record(iterations)
        return sol[:-1]

    # ---------------------------------------------------------- batched solves
    def solve_many(self, voltages: np.ndarray) -> np.ndarray:
        """Batched black-box solve: one Krylov iteration over stacked RHS.

        All columns share the operator applies — a single stacked 2-D DCT per
        iteration instead of one DCT pipeline per contact — which is where the
        multi-RHS extraction speedup comes from.  Column ``j`` of the result
        matches ``solve_currents(voltages[:, j])`` to the solver tolerance.
        """
        v = np.asarray(voltages, dtype=float)
        if v.ndim != 2 or v.shape[0] != self.layout.n_contacts:
            raise ValueError("expected an (n_contacts, k) voltage block")
        if self._use_direct(v.shape[1]):
            solved = self._solve_many_direct(v)
            if solved is not None:
                return solved
        out = np.empty_like(v)
        for start in range(0, v.shape[1], self.max_batch):
            chunk = slice(start, min(start + self.max_batch, v.shape[1]))
            out[:, chunk] = self._solve_many_chunk(v[:, chunk])
        return out

    # -------------------------------------------------- wide-block direct path
    def _use_direct(self, n_rhs: int) -> bool:
        """Whether the dense factor-once / solve-all path should serve a block.

        A dense Cholesky of ``A_cc`` costs ``O(ncp^3)`` once but turns every
        further column into two triangular solves, so it wins for wide blocks
        (``k`` at least a modest fraction of ``ncp``) and for any block once
        the factor is cached.  Grounded backplane only — the floating saddle
        system keeps the vectorised MINRES path.
        """
        if not self.profile.grounded_backplane or self._chol_failed:
            return False
        ncp = self.grid.n_contact_panels
        if ncp > self.max_direct_panels:
            return False
        if self._chol is not None:
            return True
        return n_rhs >= max(16, ncp // 8)

    def _ensure_cholesky(self) -> None:
        """Build (once) the dense ``A_cc`` via batched applies and factor it."""
        if self._chol is not None:
            return
        a_cc = self.operator.contact_block_matrix(max_batch=self.max_batch)
        # the exact operator is symmetric; remove transform round-off before
        # factorising
        a_cc = 0.5 * (a_cc + a_cc.T)
        self._chol = cho_factor(a_cc, lower=True, overwrite_a=True)

    def _solve_many_direct(self, v: np.ndarray) -> np.ndarray | None:
        """Factor-once / solve-all path; returns None on factorisation failure."""
        try:
            self._ensure_cholesky()
        except LinAlgError:
            # numerically non-SPD contact block (degenerate grid): fall back
            # to the iterative path for the lifetime of this solver.
            self._chol_failed = True
            return None
        # contact -> panel spread and panel -> contact sum, restricted to the
        # contact panels (owner gather / sparse incidence product)
        owner = self.grid.panel_to_contact[self.grid.all_contact_panels]
        if self._incidence is None:
            ncp = owner.size
            self._incidence = sparse.csr_matrix(
                (np.ones(ncp), (owner, np.arange(ncp))),
                shape=(self.layout.n_contacts, ncp),
            )
        q_panel = cho_solve(self._chol, v[owner])
        self.stats.record_direct(v.shape[1])
        return self._incidence @ q_panel

    def _solve_many_chunk(self, v: np.ndarray) -> np.ndarray:
        if v.shape[1] == 0:
            return np.empty_like(v)
        v_panel = self.grid.spread_contact_values(v)[self.grid.all_contact_panels]
        if self.profile.grounded_backplane:
            q_panel, iters = self._solve_grounded_block(v_panel)
        else:
            q_panel, iters = self._solve_floating_block(v_panel)
        for it in iters:
            self.stats.record(int(it))
        full = np.zeros((self.grid.n_panels, v.shape[1]))
        full[self.grid.all_contact_panels] = q_panel
        return self.grid.sum_panel_values(full)

    def _solve_grounded_block(self, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Jacobi-preconditioned CG over all columns of ``b`` at once.

        Per-column step lengths keep every column on its own CG trajectory
        (this is vectorised CG, not block-Krylov subspace sharing), so each
        column converges to the same solution as the sequential solve —
        same Jacobi preconditioner, same ``x0``, but the operator is applied
        to the whole block per iteration.  The iteration is carried
        batch-major (``(k, ncp)`` arrays) so every column's panel data stays
        contiguous through the stacked DCTs.
        """
        bt = np.ascontiguousarray(b.T)
        jac = self._jacobi[None, :]
        n_rhs = bt.shape[0]
        apply_block = self.operator.apply_contact_panels_block
        x = bt / jac
        r = bt - apply_block(x)
        tol = self.rtol * np.linalg.norm(bt, axis=1)
        iters = np.zeros(n_rhs, dtype=int)
        active = np.linalg.norm(r, axis=1) > tol
        z = r / jac
        p = z.copy()
        rz = np.einsum("ij,ij->i", r, z)
        for _ in range(2000):
            if not active.any():
                break
            ap = apply_block(p)
            pap = np.einsum("ij,ij->i", p, ap)
            alpha = np.where(active & (pap > 0), rz / np.where(pap > 0, pap, 1.0), 0.0)
            x += alpha[:, None] * p
            r -= alpha[:, None] * ap
            iters[active] += 1
            active &= np.linalg.norm(r, axis=1) > tol
            z = r / jac
            rz_new = np.einsum("ij,ij->i", r, z)
            beta = np.where(rz > 0, rz_new / np.where(rz > 0, rz, 1.0), 0.0)
            p = z + beta[:, None] * p
            rz = rz_new
        if active.any():
            raise RuntimeError(
                f"batched CG did not converge for {int(active.sum())} column(s)"
            )
        return x.T, iters

    def _solve_floating_block(self, v_panel: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised MINRES on the bordered (saddle-point) system.

        Same formulation and preconditioner as the sequential
        :meth:`_solve_floating`, with the Lanczos/Givens recurrences carried
        per column and the operator applied to the whole block at once.
        """
        ncp = self.grid.n_contact_panels
        n_rhs = v_panel.shape[1]
        ones = np.ones(ncp)
        scale = float(np.mean(self._jacobi))
        diag = np.concatenate([self._jacobi, [scale]])[:, None]

        def matmat(x: np.ndarray) -> np.ndarray:
            q, c = x[:-1], x[-1:]
            top = self.operator.apply_contact_panels(q) + scale * (ones[:, None] * c)
            bottom = scale * q.sum(axis=0, keepdims=True)
            return np.concatenate([top, bottom], axis=0)

        rhs = np.concatenate([v_panel, np.zeros((1, n_rhs))], axis=0)
        x, iters, active = _minres_block(matmat, rhs, diag, self.rtol, maxiter=4000)
        if active.any():
            raise RuntimeError(
                f"batched MINRES did not converge for {int(active.sum())} column(s)"
            )
        return x[:-1], iters

    # ------------------------------------------------------------ convenience
    def conductance_matrix(self) -> np.ndarray:
        """Extract the dense ``G`` (one solve per contact) — small layouts only."""
        from ..extraction import extract_dense

        return extract_dense(self)

    def mean_iterations_per_solve(self) -> float:
        """Average iterative-solver iterations per black-box solve (Table 2.2)."""
        return self.stats.mean_iterations
