"""Eigenfunction (surface-variable) substrate solver of Section 2.3."""

from .eigenvalues import (
    eigenvalue_coefficient_recursion,
    eigenvalue_table,
    eigenvalue_table_cache_clear,
    eigenvalue_table_cache_info,
    mode_eigenvalue,
)
from .operator import SurfaceOperator
from .solver import EigenfunctionSolver

__all__ = [
    "mode_eigenvalue",
    "eigenvalue_table",
    "eigenvalue_table_cache_clear",
    "eigenvalue_table_cache_info",
    "eigenvalue_coefficient_recursion",
    "SurfaceOperator",
    "EigenfunctionSolver",
]
