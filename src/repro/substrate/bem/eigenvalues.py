"""Eigenvalues of the layered-substrate current-to-potential operator.

Section 2.3.1: the operator ``A`` taking top-surface current density to
top-surface potential has the cosine eigenfunctions

    f_mn(x, y) = cos(m pi x / a) cos(n pi y / b)

with eigenvalues ``lambda_mn`` determined by the layer thicknesses and
conductivities.  The thesis derives a coefficient recursion (eqs. 2.34-2.36);
here the same quantity is computed through a numerically robust *surface
admittance* recursion that never forms growing exponentials:

Within one layer of conductivity ``sigma`` and thickness ``t`` the quantity
``Y = sigma * psi'(z) / psi(z)`` propagates from the layer bottom to the layer
top as

    Y_top = sigma*gamma * (tanh(gamma t) + Y_bot/(sigma*gamma))
                        / (1 + (Y_bot/(sigma*gamma)) * tanh(gamma t)),

``Y`` is continuous across layer interfaces (both ``psi`` and ``sigma psi'``
are continuous), and the eigenvalue is ``lambda = 1 / Y_surface``.  A grounded
backplane means ``Y = +inf`` at the bottom; a floating backplane means
``Y = 0``.  For the uniform mode (``gamma = 0``) the recursion degenerates to
resistances in series; with a floating backplane ``lambda_00`` is infinite
(you cannot push net DC current into a floating substrate), which callers
handle by excluding the uniform mode.

The thesis's coefficient recursion is also implemented
(:func:`eigenvalue_coefficient_recursion`) and used as a cross-check in the
tests for moderate ``gamma * d`` where it does not overflow.
"""

from __future__ import annotations

import numpy as np

from ..factor_cache import factor_cache
from ..profile import SubstrateProfile

__all__ = [
    "mode_eigenvalue",
    "eigenvalue_table",
    "eigenvalue_table_cache_clear",
    "eigenvalue_table_cache_info",
    "eigenvalue_coefficient_recursion",
]


def mode_eigenvalue(gamma: float, profile: SubstrateProfile) -> float:
    """Eigenvalue ``lambda`` of the surface operator for spatial frequency ``gamma``.

    Parameters
    ----------
    gamma:
        ``sqrt((m pi / a)^2 + (n pi / b)^2)`` for mode (m, n).
    profile:
        The layered substrate.

    Returns
    -------
    ``lambda`` with units of (potential) / (surface current density);
    ``numpy.inf`` for the uniform mode of a floating-backplane substrate.
    """
    sigmas = profile.conductivities[::-1]  # bottom to top
    thicknesses = profile.thicknesses[::-1]

    if gamma == 0.0:
        if not profile.grounded_backplane:
            return np.inf
        # resistances in series per unit area
        return float(np.sum(thicknesses / sigmas))

    if profile.grounded_backplane:
        # Y_bot = inf: start with the closed form for the bottom layer and
        # continue upward from its top.
        sigma0, t0 = sigmas[0], thicknesses[0]
        tanh0 = np.tanh(gamma * t0)
        if tanh0 == 0.0:
            return 0.0
        y = sigma0 * gamma / tanh0
        start = 1
    else:
        y = 0.0
        start = 0

    for sigma, t in zip(sigmas[start:], thicknesses[start:], strict=True):
        sg = sigma * gamma
        tanh = np.tanh(gamma * t)
        y = sg * (tanh + y / sg) / (1.0 + (y / sg) * tanh)
    return float(1.0 / y)


#: eigenvalue tables are memoised in the process-wide factor cache
#: (:mod:`repro.substrate.factor_cache`), keyed on the physical profile and
#: the mode counts.  Experiments rebuild solvers for the same substrate over
#: and over (every table row, every benchmark repetition); the table is a
#: pure function of ``(profile, n_modes)`` so recomputation is pure waste.
#: The historical entry-count bound of 32 is kept as a per-kind cap on top of
#: the cache's byte budget.
_TABLE_KIND = "eigenvalue_table"
_TABLE_CACHE_MAX = 32
factor_cache().set_kind_limit(_TABLE_KIND, _TABLE_CACHE_MAX)


def eigenvalue_table_cache_clear() -> None:
    """Drop all memoised eigenvalue tables (tests / memory pressure)."""
    factor_cache().clear(_TABLE_KIND)


def eigenvalue_table_cache_info() -> dict[str, int]:
    """Current size and bound of the eigenvalue-table LRU.

    ``size`` can never exceed ``max_size``: every insertion evicts the
    least-recently-used entries down to the bound (pinned by the cache tests).
    """
    return {"size": factor_cache().count(_TABLE_KIND), "max_size": _TABLE_CACHE_MAX}


def eigenvalue_table(
    n_modes_x: int, n_modes_y: int, profile: SubstrateProfile
) -> np.ndarray:
    """Table of ``lambda_mn`` for ``m < n_modes_x``, ``n < n_modes_y``.

    For a floating backplane the (0, 0) entry is set to 0 (the uniform mode is
    excluded from the operator; see :mod:`repro.substrate.bem.operator`).

    Results are memoised per ``(n_modes_x, n_modes_y, profile.cache_key)`` in
    the process-wide factor cache; the returned array is marked read-only
    because it is shared between callers.
    """
    cache = factor_cache()
    key = (_TABLE_KIND, int(n_modes_x), int(n_modes_y), profile.cache_key)
    cached = cache.get(key)
    if cached is not None:
        return cached
    a, b = profile.size_x, profile.size_y
    m = np.arange(n_modes_x)
    n = np.arange(n_modes_y)
    gamma = np.sqrt((m[:, None] * np.pi / a) ** 2 + (n[None, :] * np.pi / b) ** 2)
    table = np.empty((n_modes_x, n_modes_y))
    for i in range(n_modes_x):
        for j in range(n_modes_y):
            lam = mode_eigenvalue(float(gamma[i, j]), profile)
            table[i, j] = 0.0 if np.isinf(lam) else lam
    table.setflags(write=False)
    return cache.put(key, table)


def eigenvalue_coefficient_recursion(
    gamma: float, profile: SubstrateProfile
) -> float:
    """Eigenvalue via the thesis's coefficient recursion (eqs. 2.34-2.35).

    The potential in layer ``k`` (counting from the bottom) is
    ``psi_k(z) = zeta_k exp(gamma (d + z)) + xi_k exp(-gamma (d + z))``.
    Starting from ``(zeta, xi) = (1, -1)`` for a grounded backplane or
    ``(1, 1)`` for a floating one, the interface conditions propagate the
    coefficients upward, and

        lambda = psi(0) / (sigma_top * psi'(0)).

    This form overflows for large ``gamma * d``; it exists for validation of
    :func:`mode_eigenvalue` on moderate arguments only.
    """
    if gamma == 0.0:
        return mode_eigenvalue(0.0, profile)
    d = profile.depth
    sigmas = profile.conductivities[::-1]  # bottom to top
    thicknesses = profile.thicknesses[::-1]
    # interface heights measured from the bottom
    heights = np.cumsum(thicknesses)[:-1]

    if profile.grounded_backplane:
        zeta, xi = 1.0, -1.0
    else:
        zeta, xi = 1.0, 1.0

    for k, h in enumerate(heights):
        sigma_below, sigma_above = sigmas[k], sigmas[k + 1]
        u = gamma * h
        ep, em = np.exp(u), np.exp(-u)
        # continuity of psi and of sigma * psi' at the interface
        psi = zeta * ep + xi * em
        dpsi = gamma * (zeta * ep - xi * em) * sigma_below / sigma_above
        # solve for the coefficients above the interface
        zeta = 0.5 * (psi + dpsi / gamma) * em
        xi = 0.5 * (psi - dpsi / gamma) * ep
        # normalise to avoid overflow while preserving the ratio
        scale = max(abs(zeta), abs(xi))
        if scale > 0:
            zeta /= scale
            xi /= scale

    u = gamma * d
    ep, em = np.exp(u), np.exp(-u)
    psi0 = zeta * ep + xi * em
    dpsi0 = gamma * (zeta * ep - xi * em)
    return float(psi0 / (sigmas[-1] * dpsi0))
