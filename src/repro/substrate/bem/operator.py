"""Panel current-to-potential operator via the eigendecomposition (Figure 2-6).

The surface is discretised into a uniform ``nx x ny`` panel grid
(:class:`~repro.geometry.panels.PanelGrid`).  Given total currents per panel,
the operator

1. forms the cosine-mode coefficients of the surface current density
   (a 2-D DCT of the panel currents),
2. scales each mode by its eigenvalue ``lambda_mn`` (and the cosine-basis
   normalisation), and
3. evaluates the resulting potential at the panel centres (inverse DCT).

With collocation at panel centres the whole operator is exactly
``A = C' diag(w_mn) C`` where ``C`` is the (non-normalised) 2-D DCT-II matrix
and ``w_mn = lambda_mn * eps_m * eps_n / (a b)``; it is therefore symmetric
positive semi-definite by construction, which Section 2.4 relies on.

Two apply paths are provided: a cached cosine-matrix path (used for modest
grids and as the reference in tests) and an FFT path using
``scipy.fft.dct`` that is asymptotically ``O(N log N)``.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sp_fft

from ...geometry.panels import PanelGrid
from ..dispatch import resolve_fft_workers
from ..profile import SubstrateProfile
from .eigenvalues import eigenvalue_table

__all__ = ["SurfaceOperator"]


class SurfaceOperator:
    """Current-to-potential operator on the panel grid.

    Parameters
    ----------
    grid:
        Panel discretisation of the top surface.
    profile:
        Layered substrate profile (must have the same lateral size as the
        grid's layout).
    use_fft:
        Apply through ``scipy.fft.dct`` (True, default) or through cached
        cosine matrices (False).
    fft_workers:
        Worker-thread count passed to every ``scipy.fft`` transform, resolved
        through :func:`~repro.substrate.dispatch.resolve_fft_workers`
        (default: all CPUs when the host has more than one, else
        single-threaded).
    """

    def __init__(
        self,
        grid: PanelGrid,
        profile: SubstrateProfile,
        use_fft: bool = True,
        fft_workers: int | None = None,
    ) -> None:
        if not np.isclose(grid.layout.size_x, profile.size_x) or not np.isclose(
            grid.layout.size_y, profile.size_y
        ):
            raise ValueError("panel grid and substrate profile sizes disagree")
        self.grid = grid
        self.profile = profile
        self.use_fft = use_fft
        #: resolved ``workers=`` argument for every scipy.fft call (None = 1)
        self.fft_workers = resolve_fft_workers(fft_workers)

        nx, ny = grid.nx, grid.ny
        lam = eigenvalue_table(nx, ny, profile)
        eps_m = np.where(np.arange(nx) == 0, 1.0, 2.0)
        eps_n = np.where(np.arange(ny) == 0, 1.0, 2.0)
        area = profile.size_x * profile.size_y
        #: modal weights w_mn = lambda_mn * eps_m * eps_n / (a*b)
        self.weights = lam * (eps_m[:, None] * eps_n[None, :]) / area
        #: the same operator through orthonormal DCTs: A = C_o' diag(w_o) C_o
        #: with C_o the orthonormal DCT-II, for which the eps factors cancel
        #: into w_o = lambda_mn * nx * ny / (a*b).
        self.weights_ortho = lam * (nx * ny) / area

        self._cos_x: np.ndarray | None = None
        self._cos_y: np.ndarray | None = None
        self._block_buffer: np.ndarray | None = None
        if not use_fft:
            self._build_cosine_matrices()

    # ----------------------------------------------------------------- set-up
    def _build_cosine_matrices(self) -> None:
        nx, ny = self.grid.nx, self.grid.ny
        m = np.arange(nx)[:, None]
        i = np.arange(nx)[None, :]
        self._cos_x = np.cos(np.pi * m * (i + 0.5) / nx)
        n = np.arange(ny)[:, None]
        j = np.arange(ny)[None, :]
        self._cos_y = np.cos(np.pi * n * (j + 0.5) / ny)

    # ------------------------------------------------------------------ apply
    def apply_grid(self, panel_currents: np.ndarray) -> np.ndarray:
        """Apply the operator to panel currents on the grid.

        Accepts a single ``(nx, ny)`` array or a stacked ``(nx, ny, k)`` block
        of ``k`` independent current distributions; the block form runs the
        2-D DCTs over all columns in one library call, which is the fast path
        of the multi-RHS solves.
        """
        q = np.asarray(panel_currents, dtype=float)
        if q.ndim not in (2, 3) or q.shape[:2] != (self.grid.nx, self.grid.ny):
            raise ValueError("panel current array has the wrong shape")
        if self.use_fft:
            return self._apply_fft(q)
        return self._apply_matrix(q)

    def _batch_weights(self, ndim: int) -> np.ndarray:
        return self.weights if ndim == 2 else self.weights[:, :, None]

    def _apply_matrix(self, q: np.ndarray) -> np.ndarray:
        if self._cos_x is None or self._cos_y is None:
            self._build_cosine_matrices()
        if q.ndim == 2:
            modal = self._cos_x @ q @ self._cos_y.T
            modal *= self.weights
            return self._cos_x.T @ modal @ self._cos_y
        # batched: pairwise BLAS contractions (a naive triple einsum would be
        # O(nx^2 ny^2) per column)
        modal = np.einsum(
            "mi,ijk,nj->mnk", self._cos_x, q, self._cos_y, optimize=True
        )
        modal *= self.weights[:, :, None]
        return np.einsum(
            "mi,mnk,nj->ijk", self._cos_x, modal, self._cos_y, optimize=True
        )

    def _apply_fft(self, q: np.ndarray) -> np.ndarray:
        workers = self.fft_workers
        # forward: C q  (DCT-II without normalisation is 2*C per axis);
        # axes (0, 1) leave an optional trailing batch axis untouched.
        modal = sp_fft.dctn(q, type=2, norm=None, axes=(0, 1), workers=workers) * 0.25
        modal *= self._batch_weights(q.ndim)
        # backward: C' y per axis; C'[i,m] y[m] = 0.5*(dct3(y)[i] + y[0])
        tmp = 0.5 * (
            sp_fft.dct(modal, type=3, axis=0, norm=None, workers=workers) + modal[0:1]
        )
        out = 0.5 * (
            sp_fft.dct(tmp, type=3, axis=1, norm=None, workers=workers) + tmp[:, 0:1]
        )
        return out

    def apply_flat(self, panel_currents_flat: np.ndarray) -> np.ndarray:
        """Apply to flat panel currents (flat index ``i*ny + j``).

        Accepts ``(n_panels,)`` vectors or ``(n_panels, k)`` blocks.
        """
        q = np.asarray(panel_currents_flat, dtype=float)
        shaped = q.reshape((self.grid.nx, self.grid.ny) + q.shape[1:])
        return self.apply_grid(shaped).reshape(q.shape)

    def apply_contact_panels(self, q_contact: np.ndarray) -> np.ndarray:
        """Apply the operator restricted to contact panels.

        Non-contact panels carry zero current (the "zero-padding" step of
        Figure 2-6); the result is the potential at the contact panels only
        (the "lifting" step restricted to contacts).  Accepts single vectors
        or ``(n_contact_panels, k)`` blocks.
        """
        q_contact = np.asarray(q_contact, dtype=float)
        full = np.zeros((self.grid.n_panels,) + q_contact.shape[1:])
        full[self.grid.all_contact_panels] = q_contact
        pot = self.apply_flat(full)
        return pot[self.grid.all_contact_panels]

    def apply_contact_panels_block(self, q_block: np.ndarray) -> np.ndarray:
        """Apply the contact-panel block to a batch-major ``(k, ncp)`` block.

        This is the hot path of the multi-RHS solves.  The batch-major layout
        keeps each column's ``(nx, ny)`` grid contiguous for the stacked DCTs,
        the full-grid scatter buffer is reused across calls (non-contact
        panels stay zero between calls because only contact positions are
        ever written), and the orthonormal-DCT factorisation
        ``A = C_o' diag(w_o) C_o`` needs no correction terms.
        """
        q_block = np.asarray(q_block, dtype=float)
        if not self.use_fft:
            return self.apply_contact_panels(q_block.T).T
        k = q_block.shape[0]
        buf = self._block_buffer
        if buf is None or buf.shape[0] < k:
            buf = self._block_buffer = np.zeros((k, self.grid.n_panels))
        work = buf[:k]
        cp = self.grid.all_contact_panels
        work[:, cp] = q_block
        grid = work.reshape(k, self.grid.nx, self.grid.ny)
        workers = self.fft_workers
        modal = sp_fft.dctn(grid, type=2, norm="ortho", axes=(1, 2), workers=workers)
        modal *= self.weights_ortho
        pot = sp_fft.idctn(modal, type=2, norm="ortho", axes=(1, 2), workers=workers)
        return pot.reshape(k, -1)[:, cp]

    # ------------------------------------------------------------- diagnostics
    def contact_block_diagonal(self) -> np.ndarray:
        """Diagonal of the contact-panel block ``A_cc`` (Jacobi preconditioner).

        ``A_pp = sum_mn w_mn cos_m(x_p)^2 cos_n(y_p)^2`` which factorises into
        two small matrix products.
        """
        nx, ny = self.grid.nx, self.grid.ny
        if self._cos_x is None or self._cos_y is None:
            self._build_cosine_matrices()
        cx2 = self._cos_x ** 2  # (modes m, panels i)
        cy2 = self._cos_y ** 2
        diag_grid = cx2.T @ self.weights @ cy2  # (i, j)
        return diag_grid.ravel()[self.grid.all_contact_panels]

    def dense_contact_block(self) -> np.ndarray:
        """Explicitly form ``A_cc`` (small problems / tests only)."""
        ncp = self.grid.n_contact_panels
        out = np.empty((ncp, ncp))
        e = np.zeros(ncp)
        for k in range(ncp):
            e[k] = 1.0
            out[:, k] = self.apply_contact_panels(e)
            e[k] = 0.0
        return out

    def contact_block_rows(
        self, row_start: int, row_stop: int, max_batch: int = 256
    ) -> np.ndarray:
        """Rows ``A_cc[row_start:row_stop, :]`` from closed-form modal rows.

        The forward transform of a unit panel vector is an outer product of
        cosine columns, ``C_o e_p = d_x cos_x[:, i_p] (x) d_y cos_y[:, j_p]``,
        so each row of ``A_cc`` costs only the *backward* transform of its
        weighted modal image — half the work of :meth:`apply_contact_panels`
        and no scatter.  Feeds the factor-once direct solve (whole matrix via
        :meth:`contact_block_matrix`) and the tiled out-of-core engine, which
        assembles one row block at a time and never holds all of ``A_cc``.
        """
        if self._cos_x is None or self._cos_y is None:
            self._build_cosine_matrices()
        grid = self.grid
        nx, ny = grid.nx, grid.ny
        cp = grid.all_contact_panels
        row_panels = cp[row_start:row_stop]
        dx = np.where(np.arange(nx) == 0, np.sqrt(1.0 / nx), np.sqrt(2.0 / nx))
        dy = np.where(np.arange(ny) == 0, np.sqrt(1.0 / ny), np.sqrt(2.0 / ny))
        cox = dx[:, None] * self._cos_x  # orthonormal DCT-II basis columns
        coy = dy[:, None] * self._cos_y
        out = np.empty((row_panels.size, grid.n_contact_panels))
        for start in range(0, row_panels.size, max_batch):
            panels = row_panels[start:start + max_batch]
            modal = (
                self.weights_ortho
                * cox[:, panels // ny].T[:, :, None]
                * coy[:, panels % ny].T[:, None, :]
            )
            rows = sp_fft.idctn(
                modal, type=2, norm="ortho", axes=(1, 2), workers=self.fft_workers
            )
            out[start:start + panels.size] = rows.reshape(panels.size, -1)[:, cp]
        return out

    def contact_block_matrix(self, max_batch: int = 256) -> np.ndarray:
        """Dense ``A_cc`` assembled from closed-form modal rows (fast path).

        See :meth:`contact_block_rows`; this materialises all rows at once
        and feeds the in-core factor-once multi-RHS direct solve.
        """
        ncp = self.grid.n_contact_panels
        return self.contact_block_rows(0, ncp, max_batch=max_batch)
