"""Panel current-to-potential operator via the eigendecomposition (Figure 2-6).

The surface is discretised into a uniform ``nx x ny`` panel grid
(:class:`~repro.geometry.panels.PanelGrid`).  Given total currents per panel,
the operator

1. forms the cosine-mode coefficients of the surface current density
   (a 2-D DCT of the panel currents),
2. scales each mode by its eigenvalue ``lambda_mn`` (and the cosine-basis
   normalisation), and
3. evaluates the resulting potential at the panel centres (inverse DCT).

With collocation at panel centres the whole operator is exactly
``A = C' diag(w_mn) C`` where ``C`` is the (non-normalised) 2-D DCT-II matrix
and ``w_mn = lambda_mn * eps_m * eps_n / (a b)``; it is therefore symmetric
positive semi-definite by construction, which Section 2.4 relies on.

Two apply paths are provided: a cached cosine-matrix path (used for modest
grids and as the reference in tests) and an FFT path using
``scipy.fft.dct`` that is asymptotically ``O(N log N)``.
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sp_fft

from ...geometry.panels import PanelGrid
from ..profile import SubstrateProfile
from .eigenvalues import eigenvalue_table

__all__ = ["SurfaceOperator"]


class SurfaceOperator:
    """Current-to-potential operator on the panel grid.

    Parameters
    ----------
    grid:
        Panel discretisation of the top surface.
    profile:
        Layered substrate profile (must have the same lateral size as the
        grid's layout).
    use_fft:
        Apply through ``scipy.fft.dct`` (True, default) or through cached
        cosine matrices (False).
    """

    def __init__(
        self, grid: PanelGrid, profile: SubstrateProfile, use_fft: bool = True
    ) -> None:
        if not np.isclose(grid.layout.size_x, profile.size_x) or not np.isclose(
            grid.layout.size_y, profile.size_y
        ):
            raise ValueError("panel grid and substrate profile sizes disagree")
        self.grid = grid
        self.profile = profile
        self.use_fft = use_fft

        nx, ny = grid.nx, grid.ny
        lam = eigenvalue_table(nx, ny, profile)
        eps_m = np.where(np.arange(nx) == 0, 1.0, 2.0)
        eps_n = np.where(np.arange(ny) == 0, 1.0, 2.0)
        area = profile.size_x * profile.size_y
        #: modal weights w_mn = lambda_mn * eps_m * eps_n / (a*b)
        self.weights = lam * (eps_m[:, None] * eps_n[None, :]) / area

        self._cos_x: np.ndarray | None = None
        self._cos_y: np.ndarray | None = None
        if not use_fft:
            self._build_cosine_matrices()

    # ----------------------------------------------------------------- set-up
    def _build_cosine_matrices(self) -> None:
        nx, ny = self.grid.nx, self.grid.ny
        m = np.arange(nx)[:, None]
        i = np.arange(nx)[None, :]
        self._cos_x = np.cos(np.pi * m * (i + 0.5) / nx)
        n = np.arange(ny)[:, None]
        j = np.arange(ny)[None, :]
        self._cos_y = np.cos(np.pi * n * (j + 0.5) / ny)

    # ------------------------------------------------------------------ apply
    def apply_grid(self, panel_currents: np.ndarray) -> np.ndarray:
        """Apply the operator to an ``(nx, ny)`` array of panel currents."""
        q = np.asarray(panel_currents, dtype=float)
        if q.shape != (self.grid.nx, self.grid.ny):
            raise ValueError("panel current array has the wrong shape")
        if self.use_fft:
            return self._apply_fft(q)
        return self._apply_matrix(q)

    def _apply_matrix(self, q: np.ndarray) -> np.ndarray:
        if self._cos_x is None or self._cos_y is None:
            self._build_cosine_matrices()
        modal = self._cos_x @ q @ self._cos_y.T
        modal *= self.weights
        return self._cos_x.T @ modal @ self._cos_y

    def _apply_fft(self, q: np.ndarray) -> np.ndarray:
        # forward: C q  (DCT-II without normalisation is 2*C per axis)
        modal = sp_fft.dctn(q, type=2, norm=None) * 0.25
        modal *= self.weights
        # backward: C' y per axis; C'[i,m] y[m] = 0.5*(dct3(y)[i] + y[0])
        tmp = 0.5 * (sp_fft.dct(modal, type=3, axis=0, norm=None) + modal[0:1, :])
        out = 0.5 * (sp_fft.dct(tmp, type=3, axis=1, norm=None) + tmp[:, 0:1])
        return out

    def apply_flat(self, panel_currents_flat: np.ndarray) -> np.ndarray:
        """Apply to a flat vector of panel currents (flat index ``i*ny + j``)."""
        q = np.asarray(panel_currents_flat, dtype=float).reshape(
            self.grid.nx, self.grid.ny
        )
        return self.apply_grid(q).ravel()

    def apply_contact_panels(self, q_contact: np.ndarray) -> np.ndarray:
        """Apply the operator restricted to contact panels.

        Non-contact panels carry zero current (the "zero-padding" step of
        Figure 2-6); the result is the potential at the contact panels only
        (the "lifting" step restricted to contacts).
        """
        full = np.zeros(self.grid.n_panels)
        full[self.grid.all_contact_panels] = q_contact
        pot = self.apply_flat(full)
        return pot[self.grid.all_contact_panels]

    # ------------------------------------------------------------- diagnostics
    def contact_block_diagonal(self) -> np.ndarray:
        """Diagonal of the contact-panel block ``A_cc`` (Jacobi preconditioner).

        ``A_pp = sum_mn w_mn cos_m(x_p)^2 cos_n(y_p)^2`` which factorises into
        two small matrix products.
        """
        nx, ny = self.grid.nx, self.grid.ny
        if self._cos_x is None or self._cos_y is None:
            self._build_cosine_matrices()
        cx2 = self._cos_x ** 2  # (modes m, panels i)
        cy2 = self._cos_y ** 2
        diag_grid = cx2.T @ self.weights @ cy2  # (i, j)
        return diag_grid.ravel()[self.grid.all_contact_panels]

    def dense_contact_block(self) -> np.ndarray:
        """Explicitly form ``A_cc`` (small problems / tests only)."""
        ncp = self.grid.n_contact_panels
        out = np.empty((ncp, ncp))
        e = np.zeros(ncp)
        for k in range(ncp):
            e[k] = 1.0
            out[:, k] = self.apply_contact_panels(e)
            e[k] = 0.0
        return out
