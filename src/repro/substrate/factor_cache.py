"""Process-wide factor/plan cache shared by every substrate solver.

Extraction workloads build the *same* solver over and over: every benchmark
repetition, every table row, every worker process reconstructs an
:class:`~repro.substrate.bem.solver.EigenfunctionSolver` or
:class:`~repro.substrate.fd.solver.FiniteDifferenceSolver` for an identical
``(layout, profile, discretisation)`` and then re-derives the exact same
expensive objects — eigenvalue tables, the dense ``A_cc`` Cholesky (or
bordered/Schur) factor, the FD sparse LU of the interior Laplacian.  This
module holds those objects in one memory-budgeted, process-wide LRU so a
second solver over the same substrate pays ~zero factor cost.

Keys are tuples whose first element is a *kind* string (``"eigenvalue_table"``,
``"bem_direct_factor"``, ``"fd_direct_factor"``) followed by the identity of
the physics and discretisation, typically
``(ContactLayout.fingerprint, SubstrateProfile.cache_key, grid shape)``.
Values are opaque to the cache; byte sizes are estimated from the numpy /
scipy-sparse payloads (or passed explicitly) and the least-recently-used
entries are evicted once the budget is exceeded.  Individual kinds can also
carry an entry-count cap (the eigenvalue-table LRU keeps its historical bound
of 32 entries).

The cache is **per process**: worker processes of the parallel extraction
engine (:mod:`repro.substrate.parallel`) each warm their own copy.  Factors
cached here are shared between solver instances, so they are treated as
read-only by all consumers.

Environment knob: ``REPRO_FACTOR_CACHE_BYTES`` overrides the default budget
(512 MiB) for the process-wide instance.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np

__all__ = [
    "FactorCache",
    "factor_cache",
    "factor_cache_info",
    "factor_cache_clear",
    "set_factor_cache_budget",
    "DEFAULT_BUDGET_BYTES",
]

DEFAULT_BUDGET_BYTES = 512 * 1024 * 1024


def _estimate_nbytes(value: Any) -> int:
    """Best-effort byte size of a cached value (arrays, factors, containers)."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_estimate_nbytes(v) for v in value) + 64
    if isinstance(value, dict):
        return sum(_estimate_nbytes(v) for v in value.values()) + 64
    data = getattr(value, "data", None)
    if isinstance(data, np.ndarray):  # scipy sparse matrices
        total = int(data.nbytes)
        for attr in ("indices", "indptr", "row", "col"):
            arr = getattr(value, attr, None)
            if isinstance(arr, np.ndarray):
                total += int(arr.nbytes)
        return total
    nnz = getattr(value, "nnz", None)
    if isinstance(nnz, (int, np.integer)):  # e.g. a SuperLU factorisation
        # one double plus one int32 index per stored entry
        return int(nnz) * 12 + 64
    return 64


class FactorCache:
    """Memory-budgeted LRU cache for solver factorisations and plans.

    Parameters
    ----------
    max_bytes:
        Total budget across all entries.  An entry larger than the whole
        budget is returned to the caller but never stored (counted in
        ``oversized``).
    """

    def __init__(self, max_bytes: int = DEFAULT_BUDGET_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[Hashable, tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self._kind_limits: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversized = 0
        self._kind_hits: dict[str, int] = {}
        self._kind_misses: dict[str, int] = {}

    # ------------------------------------------------------------------ config
    def set_budget(self, max_bytes: int) -> None:
        """Change the byte budget and evict down to it immediately."""
        with self._lock:
            self.max_bytes = int(max_bytes)
            self._evict_to_budget()

    def set_kind_limit(self, kind: str, max_entries: int) -> None:
        """Cap the number of entries whose key starts with ``kind``."""
        with self._lock:
            self._kind_limits[kind] = int(max_entries)
            self._evict_kind(kind)

    @staticmethod
    def _kind_of(key: Hashable) -> str:
        if isinstance(key, tuple) and key and isinstance(key[0], str):
            return key[0]
        return ""

    # ------------------------------------------------------------------ access
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency; counts one hit or miss."""
        kind = self._kind_of(key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._kind_misses[kind] = self._kind_misses.get(kind, 0) + 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            self._kind_hits[kind] = self._kind_hits.get(kind, 0) + 1
            return entry[0]

    def contains(self, key: Hashable) -> bool:
        """Pure membership probe: no counters, no recency update.

        Used by dispatch policies to ask "would a factor be free?" without
        skewing the hit/miss statistics reported in benchmark records.
        """
        with self._lock:
            return key in self._entries

    def put(self, key: Hashable, value: Any, nbytes: int | None = None) -> Any:
        """Insert ``value`` under ``key`` (replacing any old entry) and return it."""
        size = _estimate_nbytes(value) if nbytes is None else int(nbytes)
        with self._lock:
            if size > self.max_bytes:
                self.oversized += 1
                return value
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, size)
            self._bytes += size
            self._evict_to_budget()
            self._evict_kind(self._kind_of(key))
        return value

    def get_or_build(
        self, key: Hashable, builder: Callable[[], Any], nbytes: int | None = None
    ) -> Any:
        """Return the cached value, building and inserting it on a miss."""
        found = object()
        value = self.get(key, default=found)
        if value is not found:
            return value
        return self.put(key, builder(), nbytes=nbytes)

    # ---------------------------------------------------------------- eviction
    def _evict_to_budget(self) -> None:
        while self._bytes > self.max_bytes and self._entries:
            _, (_, size) = self._entries.popitem(last=False)
            self._bytes -= size
            self.evictions += 1

    def _evict_kind(self, kind: str) -> None:
        limit = self._kind_limits.get(kind)
        if limit is None:
            return
        while True:
            of_kind = [k for k in self._entries if self._kind_of(k) == kind]
            if len(of_kind) <= limit:
                return
            victim = of_kind[0]  # OrderedDict iterates LRU-first
            _, size = self._entries.pop(victim)
            self._bytes -= size
            self.evictions += 1

    # ------------------------------------------------------------- maintenance
    def clear(self, kind: str | None = None) -> None:
        """Drop all entries, or only those of one ``kind``; counters survive."""
        with self._lock:
            if kind is None:
                self._entries.clear()
                self._bytes = 0
                return
            for key in [k for k in self._entries if self._kind_of(k) == kind]:
                _, size = self._entries.pop(key)
                self._bytes -= size

    def count(self, kind: str) -> int:
        """Number of entries whose key starts with ``kind``."""
        with self._lock:
            return sum(1 for k in self._entries if self._kind_of(k) == kind)

    def cache_info(self) -> dict:
        """Snapshot of occupancy and hit/miss counters (benchmark records)."""
        with self._lock:
            by_kind: dict[str, dict[str, int]] = {}
            for key, (_, size) in self._entries.items():
                slot = by_kind.setdefault(
                    self._kind_of(key), {"entries": 0, "bytes": 0}
                )
                slot["entries"] += 1
                slot["bytes"] += size
            for kind in set(self._kind_hits) | set(self._kind_misses):
                slot = by_kind.setdefault(kind, {"entries": 0, "bytes": 0})
                slot["hits"] = self._kind_hits.get(kind, 0)
                slot["misses"] = self._kind_misses.get(kind, 0)
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "oversized": self.oversized,
                "by_kind": by_kind,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"FactorCache(entries={len(self._entries)}, bytes={self._bytes}, "
            f"max_bytes={self.max_bytes})"
        )


def _default_budget() -> int:
    env = os.environ.get("REPRO_FACTOR_CACHE_BYTES")
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    return DEFAULT_BUDGET_BYTES


#: the process-wide instance every solver consults before factoring
_GLOBAL = FactorCache(max_bytes=_default_budget())


def factor_cache() -> FactorCache:
    """The process-wide :class:`FactorCache` instance."""
    return _GLOBAL


def factor_cache_info() -> dict:
    """``cache_info()`` of the process-wide cache."""
    return _GLOBAL.cache_info()


def factor_cache_clear(kind: str | None = None) -> None:
    """Clear the process-wide cache (optionally only one entry kind)."""
    _GLOBAL.clear(kind)


def set_factor_cache_budget(max_bytes: int) -> None:
    """Change the process-wide cache budget, evicting down to it."""
    _GLOBAL.set_budget(max_bytes)
