"""Process-wide factor/plan cache shared by every substrate solver.

Extraction workloads build the *same* solver over and over: every benchmark
repetition, every table row, every worker process reconstructs an
:class:`~repro.substrate.bem.solver.EigenfunctionSolver` or
:class:`~repro.substrate.fd.solver.FiniteDifferenceSolver` for an identical
``(layout, profile, discretisation)`` and then re-derives the exact same
expensive objects — eigenvalue tables, the dense ``A_cc`` Cholesky (or
bordered/Schur) factor, the FD sparse LU of the interior Laplacian.  This
module holds those objects in one memory-budgeted, process-wide LRU so a
second solver over the same substrate pays ~zero factor cost.

Keys are tuples whose first element is a *kind* string (``"eigenvalue_table"``,
``"bem_direct_factor"``, ``"fd_direct_factor"``) followed by the identity of
the physics and discretisation, typically
``(ContactLayout.fingerprint, SubstrateProfile.cache_key, grid shape)``.
Values are opaque to the cache; byte sizes are estimated from the numpy /
scipy-sparse payloads (or passed explicitly) and the least-recently-used
entries are evicted once the budget is exceeded.  Individual kinds can also
carry an entry-count cap (the eigenvalue-table LRU keeps its historical bound
of 32 entries).

The cache is **per process**: worker processes of the parallel extraction
engine (:mod:`repro.substrate.parallel`) each warm their own copy.  Factors
cached here are shared between solver instances, so they are treated as
read-only by all consumers.

On top of the per-process cache this module also provides the
**shared-memory factor plane**: :class:`FactorPlane` serialises a cached
factor's array payload (dense Cholesky/Schur/bordered factors, the component
arrays of a sparse LU) into one ``multiprocessing.shared_memory`` segment and
hands out picklable :class:`SharedFactorHandle` descriptors;
:func:`attach_shared_factor` reconstructs the factor in another process as
zero-copy numpy views over the same physical pages.  The parallel extraction
engine uses this to ship the parent's factors to its worker pool instead of
letting every worker refactor.

On top of the in-RAM cache, an optional **content-addressed artifact store**
(:class:`FactorArtifactStore`) persists factor payloads to disk under the
digest of their cache key: the cache consults it on a miss before any caller
rebuilds, and writes freshly built factors through to it, so a *restarted*
process (whose RAM cache is empty) skips the cold factorisation entirely.
The store reuses the same flatten/rebuild contract as the shared-memory
plane, so exactly the shippable factor kinds are persistable.  No store is
attached by default — the extraction service wires one in when it is given a
state directory.

Environment knob: ``REPRO_FACTOR_CACHE_BYTES`` overrides the default budget
(512 MiB) for the process-wide instance.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Hashable

import numpy as np

__all__ = [
    "FactorCache",
    "FactorArtifactStore",
    "FactorPlane",
    "SharedFactorHandle",
    "SharedSparseLU",
    "attach_shared_factor",
    "factor_cache",
    "factor_cache_info",
    "factor_cache_clear",
    "set_factor_cache_budget",
    "DEFAULT_BUDGET_BYTES",
    "PERSISTED_FACTOR_KINDS",
]

DEFAULT_BUDGET_BYTES = 512 * 1024 * 1024

#: cache-entry kinds the artifact store persists — exactly the factor kinds
#: the flatten/rebuild contract below can serialise (eigenvalue tables are
#: cheap to rebuild and stay RAM-only)
PERSISTED_FACTOR_KINDS = (
    "bem_direct_factor",
    "bem_tiled_factor",
    "fd_direct_factor",
)


def _estimate_nbytes(value: Any) -> int:
    """Best-effort byte size of a cached value (arrays, factors, containers)."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_estimate_nbytes(v) for v in value) + 64
    if isinstance(value, dict):
        return sum(_estimate_nbytes(v) for v in value.values()) + 64
    nb = getattr(value, "nbytes", None)
    if isinstance(nb, (int, np.integer)):  # e.g. a SharedSparseLU
        return int(nb)
    data = getattr(value, "data", None)
    if isinstance(data, np.ndarray):  # scipy sparse matrices
        total = int(data.nbytes)
        for attr in ("indices", "indptr", "row", "col"):
            arr = getattr(value, attr, None)
            if isinstance(arr, np.ndarray):
                total += int(arr.nbytes)
        return total
    nnz = getattr(value, "nnz", None)
    if isinstance(nnz, (int, np.integer)):  # e.g. a SuperLU factorisation
        # one double plus one int32 index per stored entry
        return int(nnz) * 12 + 64
    return 64


class FactorCache:
    """Memory-budgeted LRU cache for solver factorisations and plans.

    Parameters
    ----------
    max_bytes:
        Total budget across all entries.  An entry larger than the whole
        budget is returned to the caller but never stored (counted in
        ``oversized``).
    """

    def __init__(self, max_bytes: int = DEFAULT_BUDGET_BYTES) -> None:
        self.max_bytes = int(max_bytes)  # reprolint: guarded-by(_lock)
        # reprolint: guarded-by(_lock)
        self._entries: "OrderedDict[Hashable, tuple[Any, int]]" = OrderedDict()
        self._bytes = 0  # reprolint: guarded-by(_lock)
        self._lock = threading.RLock()
        self._kind_limits: dict[str, int] = {}  # reprolint: guarded-by(_lock)
        self.hits = 0  # reprolint: guarded-by(_lock)
        self.misses = 0  # reprolint: guarded-by(_lock)
        self.evictions = 0  # reprolint: guarded-by(_lock)
        self.oversized = 0  # reprolint: guarded-by(_lock)
        self._kind_hits: dict[str, int] = {}  # reprolint: guarded-by(_lock)
        self._kind_misses: dict[str, int] = {}  # reprolint: guarded-by(_lock)
        #: optional on-disk artifact store consulted on a RAM miss (and
        #: written through on put) for the persistable factor kinds
        # reprolint: guarded-by(_lock)
        self._artifact_store: "FactorArtifactStore | None" = None
        self.artifact_hits = 0  # reprolint: guarded-by(_lock)
        self.artifact_misses = 0  # reprolint: guarded-by(_lock)

    # ---------------------------------------------------------------- artifacts
    @property
    def artifact_store(self) -> "FactorArtifactStore | None":
        with self._lock:
            return self._artifact_store

    def set_artifact_store(self, store: "FactorArtifactStore | None") -> None:
        """Attach (or detach, with ``None``) the on-disk artifact store.

        While attached, :meth:`get` falls through to the store on a RAM miss
        for the :data:`PERSISTED_FACTOR_KINDS` and :meth:`put` writes freshly
        built factors through to it — so a restarted process warm-starts its
        factors from disk instead of refactoring.
        """
        with self._lock:
            self._artifact_store = store

    # ------------------------------------------------------------------ config
    def set_budget(self, max_bytes: int) -> None:
        """Change the byte budget and evict down to it immediately."""
        with self._lock:
            self.max_bytes = int(max_bytes)
            self._evict_to_budget()

    def set_kind_limit(self, kind: str, max_entries: int) -> None:
        """Cap the number of entries whose key starts with ``kind``."""
        with self._lock:
            self._kind_limits[kind] = int(max_entries)
            self._evict_kind(kind)

    @staticmethod
    def _kind_of(key: Hashable) -> str:
        if isinstance(key, tuple) and key and isinstance(key[0], str):
            return key[0]
        return ""

    # ------------------------------------------------------------------ access
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency; counts one hit or miss.

        With an artifact store attached, a RAM miss on a persistable factor
        kind falls through to disk: a loaded artifact is admitted into the
        RAM cache and counted as a hit (the caller was served without a
        rebuild), plus one ``artifact_hits``.
        """
        kind = self._kind_of(key)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                self._kind_hits[kind] = self._kind_hits.get(kind, 0) + 1
                return entry[0]
            store = self._artifact_store
            if store is not None and store.handles(key):
                value = store.load(key)
                if value is not None:
                    self.artifact_hits += 1
                    size = _estimate_nbytes(value)
                    if size <= self.max_bytes:
                        self._entries[key] = (value, size)
                        self._bytes += size
                        self._evict_to_budget()
                        self._evict_kind(kind)
                    self.hits += 1
                    self._kind_hits[kind] = self._kind_hits.get(kind, 0) + 1
                    return value
                self.artifact_misses += 1
            self.misses += 1
            self._kind_misses[kind] = self._kind_misses.get(kind, 0) + 1
            return default

    def contains(self, key: Hashable) -> bool:
        """Pure membership probe: no counters, no recency update.

        Used by dispatch policies to ask "would a factor be free?" without
        skewing the hit/miss statistics reported in benchmark records.
        """
        with self._lock:
            return key in self._entries

    def put(self, key: Hashable, value: Any, nbytes: int | None = None) -> Any:
        """Insert ``value`` under ``key`` (replacing any old entry) and return it.

        With an artifact store attached, persistable factor kinds are also
        written through to disk (content-addressed — an existing artifact is
        never rewritten), outside the cache lock.
        """
        size = _estimate_nbytes(value) if nbytes is None else int(nbytes)
        with self._lock:
            store = self._artifact_store
            if size > self.max_bytes:
                self.oversized += 1
            else:
                old = self._entries.pop(key, None)
                if old is not None:
                    self._bytes -= old[1]
                self._entries[key] = (value, size)
                self._bytes += size
                self._evict_to_budget()
                self._evict_kind(self._kind_of(key))
        if store is not None and store.handles(key):
            store.save(key, value)
        return value

    def get_or_build(
        self, key: Hashable, builder: Callable[[], Any], nbytes: int | None = None
    ) -> Any:
        """Return the cached value, building and inserting it on a miss."""
        found = object()
        value = self.get(key, default=found)
        if value is not found:
            return value
        return self.put(key, builder(), nbytes=nbytes)

    # ---------------------------------------------------------------- eviction
    # reprolint: holds(_lock)
    def _evict_to_budget(self) -> None:
        while self._bytes > self.max_bytes and self._entries:
            _, (_, size) = self._entries.popitem(last=False)
            self._bytes -= size
            self.evictions += 1

    # reprolint: holds(_lock)
    def _evict_kind(self, kind: str) -> None:
        limit = self._kind_limits.get(kind)
        if limit is None:
            return
        while True:
            of_kind = [k for k in self._entries if self._kind_of(k) == kind]
            if len(of_kind) <= limit:
                return
            victim = of_kind[0]  # OrderedDict iterates LRU-first
            _, size = self._entries.pop(victim)
            self._bytes -= size
            self.evictions += 1

    # ------------------------------------------------------------- maintenance
    def clear(self, kind: str | None = None) -> None:
        """Drop all entries, or only those of one ``kind``; counters survive."""
        with self._lock:
            if kind is None:
                self._entries.clear()
                self._bytes = 0
                return
            for key in [k for k in self._entries if self._kind_of(k) == kind]:
                _, size = self._entries.pop(key)
                self._bytes -= size

    def count(self, kind: str) -> int:
        """Number of entries whose key starts with ``kind``."""
        with self._lock:
            return sum(1 for k in self._entries if self._kind_of(k) == kind)

    def cache_info(self) -> dict:
        """Snapshot of occupancy and hit/miss counters (benchmark records)."""
        with self._lock:
            by_kind: dict[str, dict[str, int]] = {}
            for key, (_, size) in self._entries.items():
                slot = by_kind.setdefault(
                    self._kind_of(key), {"entries": 0, "bytes": 0}
                )
                slot["entries"] += 1
                slot["bytes"] += size
            for kind in set(self._kind_hits) | set(self._kind_misses):
                slot = by_kind.setdefault(kind, {"entries": 0, "bytes": 0})
                slot["hits"] = self._kind_hits.get(kind, 0)
                slot["misses"] = self._kind_misses.get(kind, 0)
            info = {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "oversized": self.oversized,
                "artifact_hits": self.artifact_hits,
                "artifact_misses": self.artifact_misses,
                "by_kind": by_kind,
            }
            if self._artifact_store is not None:
                info["artifacts"] = self._artifact_store.info()
            return info

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        with self._lock:
            return (
                f"FactorCache(entries={len(self._entries)}, bytes={self._bytes}, "
                f"max_bytes={self.max_bytes})"
            )


def _default_budget() -> int:
    env = os.environ.get("REPRO_FACTOR_CACHE_BYTES")
    if env:
        try:
            return int(env)
        except ValueError:
            pass
    return DEFAULT_BUDGET_BYTES


#: the process-wide instance every solver consults before factoring
_GLOBAL = FactorCache(max_bytes=_default_budget())


def factor_cache() -> FactorCache:
    """The process-wide :class:`FactorCache` instance."""
    return _GLOBAL


def factor_cache_info() -> dict:
    """``cache_info()`` of the process-wide cache."""
    return _GLOBAL.cache_info()


def factor_cache_clear(kind: str | None = None) -> None:
    """Clear the process-wide cache (optionally only one entry kind)."""
    _GLOBAL.clear(kind)


def set_factor_cache_budget(max_bytes: int) -> None:
    """Change the process-wide cache budget, evicting down to it."""
    _GLOBAL.set_budget(max_bytes)


# ===================================================================== plane
# Shared-memory shipping of factor payloads between processes.
#
# A factor is *flattened* into (meta, arrays): ``meta`` is a small picklable
# description of the factor's structure, ``arrays`` the ordered list of numpy
# payloads.  The plane packs the arrays back-to-back (8-byte aligned) into one
# ``multiprocessing.shared_memory`` segment; attaching rebuilds the factor
# with read-only ndarray views over the segment, so N worker processes share
# one physical copy of the factor instead of N private rebuilds.


class SharedSparseLU:
    """Solver-compatible stand-in for a ``scipy.sparse.linalg.SuperLU``.

    Holds the LU decomposition's component arrays (``Pr A Pc = L U`` with the
    permutations given as index vectors) and serves :meth:`solve` through two
    sparse triangular sweeps — the same contract ``FDDirectEngine`` expects
    from a native SuperLU object.  The component arrays may be views into a
    shared-memory segment; they are never written.  The CSR forms needed by
    the triangular solver are derived lazily on first solve (a worker-private
    copy of the fill, made only when the factor is actually used).

    Requires factors built without equilibration (``options={"Equil": False}``
    at ``splu`` time): SuperLU does not expose its row/column scalings, so an
    equilibrated factor cannot be reconstructed from components.
    """

    def __init__(
        self,
        l_data: np.ndarray,
        l_indices: np.ndarray,
        l_indptr: np.ndarray,
        u_data: np.ndarray,
        u_indices: np.ndarray,
        u_indptr: np.ndarray,
        perm_r: np.ndarray,
        perm_c: np.ndarray,
        shape: tuple[int, int],
    ) -> None:
        from scipy.sparse import csc_matrix

        self.shape = (int(shape[0]), int(shape[1]))
        self._l = csc_matrix((l_data, l_indices, l_indptr), shape=self.shape)
        self._u = csc_matrix((u_data, u_indices, u_indptr), shape=self.shape)
        self.perm_r = np.asarray(perm_r)
        self.perm_c = np.asarray(perm_c)
        self._l_csr = None
        self._u_csr = None

    @classmethod
    def from_superlu(cls, lu: Any) -> "SharedSparseLU":
        """Decompose a (non-equilibrated) SuperLU into its component arrays."""
        l_csc = lu.L.tocsc()
        u_csc = lu.U.tocsc()
        return cls(
            l_csc.data,
            l_csc.indices,
            l_csc.indptr,
            u_csc.data,
            u_csc.indices,
            u_csc.indptr,
            lu.perm_r,
            lu.perm_c,
            lu.shape,
        )

    @property
    def nnz(self) -> int:
        return int(self._l.nnz + self._u.nnz)

    @property
    def nbytes(self) -> int:
        """Total bytes of the component arrays (cache accounting)."""
        total = 0
        for mat in (self._l, self._u):
            total += mat.data.nbytes + mat.indices.nbytes + mat.indptr.nbytes
        return total + self.perm_r.nbytes + self.perm_c.nbytes

    def component_arrays(self) -> list[np.ndarray]:
        """The flattenable payload, in :class:`SharedSparseLU` argument order."""
        return [
            self._l.data,
            self._l.indices,
            self._l.indptr,
            self._u.data,
            self._u.indices,
            self._u.indptr,
            self.perm_r,
            self.perm_c,
        ]

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` from the components: ``x = Pc U^-1 L^-1 Pr b``."""
        from scipy.sparse.linalg import spsolve_triangular

        if self._l_csr is None:
            self._l_csr = self._l.tocsr()
            self._u_csr = self._u.tocsr()
        b = np.asarray(b, dtype=float)
        squeeze = b.ndim == 1
        if squeeze:
            b = b[:, None]
        prb = np.empty_like(b)
        prb[self.perm_r] = b
        z = spsolve_triangular(self._l_csr, prb, lower=True)
        w = spsolve_triangular(self._u_csr, z, lower=False)
        x = w[self.perm_c]
        return x[:, 0] if squeeze else x


def _flatten_factor(factor: Any) -> tuple[dict, list[np.ndarray]]:
    """Decompose a cacheable factor into (picklable meta, array payloads).

    Supported shapes are exactly the factor kinds the solvers cache: the BEM
    dense tuples (``("chol", (c, lower))``, ``("schur", (c, lower), w, s)``,
    ``("bordered", lu, piv)``), the in-RAM tiled tuples
    (``("tiled_chol", tf)``, ``("tiled_schur", tf, w, s)`` around a
    non-spilled :class:`~repro.substrate.tiled.TiledCholeskyFactor`) and
    sparse LUs (native SuperLU or an already reconstructed
    :class:`SharedSparseLU`).  Raises ``TypeError`` for anything else —
    including a *spilled* tiled factor, which is its scratch file and has
    nothing to put in shared memory — so callers can skip unshippable cache
    entries.
    """
    if isinstance(factor, tuple) and factor and isinstance(factor[0], str):
        kind = factor[0]
        if kind == "chol":
            c, lower = factor[1]
            return {"factor": "chol", "lower": bool(lower)}, [np.ascontiguousarray(c)]
        if kind == "schur":
            (c, lower), w, s = factor[1], factor[2], factor[3]
            return (
                {"factor": "schur", "lower": bool(lower), "s": float(s)},
                [np.ascontiguousarray(c), np.ascontiguousarray(w)],
            )
        if kind == "bordered":
            lu, piv = factor[1], factor[2]
            return {"factor": "bordered"}, [
                np.ascontiguousarray(lu),
                np.ascontiguousarray(piv),
            ]
        if kind in ("tiled_chol", "tiled_schur"):
            tf = factor[1]
            if getattr(tf, "spilled", True) or getattr(tf, "_l", None) is None:
                raise TypeError("spilled or closed tiled factors cannot be shared")
            meta = {"factor": kind, "tile": int(tf.tile)}
            arrays = [np.ascontiguousarray(tf._l)]
            if kind == "tiled_schur":
                meta["s"] = float(factor[3])
                arrays.append(np.ascontiguousarray(factor[2]))
            return meta, arrays
        raise TypeError(f"unknown dense factor kind {kind!r}")
    if isinstance(factor, SharedSparseLU):
        return {"factor": "sparse_lu", "shape": factor.shape}, [
            np.ascontiguousarray(a) for a in factor.component_arrays()
        ]
    if hasattr(factor, "perm_r") and hasattr(factor, "L"):  # native SuperLU
        return _flatten_factor(SharedSparseLU.from_superlu(factor))
    raise TypeError(f"cannot flatten factor of type {type(factor).__name__}")


def _rebuild_factor(meta: dict, arrays: list[np.ndarray]) -> Any:
    """Inverse of :func:`_flatten_factor` over (possibly shared) arrays."""
    kind = meta["factor"]
    if kind == "chol":
        return ("chol", (arrays[0], meta["lower"]))
    if kind == "schur":
        return ("schur", (arrays[0], meta["lower"]), arrays[1], meta["s"])
    if kind == "bordered":
        return ("bordered", arrays[0], arrays[1])
    if kind == "sparse_lu":
        return SharedSparseLU(*arrays, shape=tuple(meta["shape"]))
    if kind in ("tiled_chol", "tiled_schur"):
        from .tiled import TiledCholeskyFactor

        tf = TiledCholeskyFactor.from_factored_array(arrays[0], tile=meta["tile"])
        if kind == "tiled_chol":
            return ("tiled_chol", tf)
        return ("tiled_schur", tf, arrays[1], meta["s"])
    raise TypeError(f"unknown flattened factor kind {kind!r}")


def _align8(n: int) -> int:
    return (n + 7) & ~7


@dataclass(frozen=True)
class SharedFactorHandle:
    """Picklable descriptor of one factor published in a shared segment.

    ``specs`` lists, per payload array, ``(byte offset, shape, dtype string)``
    inside the segment named ``segment_name``; ``meta`` is the structural
    description consumed by :func:`_rebuild_factor`.
    """

    key: tuple
    segment_name: str
    meta: dict
    specs: tuple[tuple[int, tuple[int, ...], str], ...]
    nbytes: int


@dataclass
class FactorPlane:
    """Parent-side owner of the shared-memory factor segments.

    ``publish`` serialises one factor per call into its own segment and
    returns the handle workers attach through; the plane keeps the live
    ``SharedMemory`` objects so the segments survive until :meth:`unlink`.
    The creating process owns the segments: closing only drops this process's
    mapping, unlinking removes the backing ``/dev/shm`` entries (idempotent,
    also run by ``__del__`` as a last resort).
    """

    _segments: list = field(default_factory=list)
    _unlinked: bool = False

    def publish(self, key: tuple, factor: Any) -> SharedFactorHandle:
        """Serialise ``factor`` into a fresh segment; returns the handle."""
        from multiprocessing import shared_memory

        meta, arrays = _flatten_factor(factor)
        specs: list[tuple[int, tuple[int, ...], str]] = []
        offset = 0
        for arr in arrays:
            specs.append((offset, arr.shape, arr.dtype.str))
            offset = _align8(offset + arr.nbytes)
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        try:
            for arr, (off, _, _) in zip(arrays, specs, strict=True):
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=off)
                view[...] = arr
        except Exception:
            # the handle was never appended to _segments, so close()/unlink()
            # would skip it — release it here or the /dev/shm entry outlives
            # this failed publish
            shm.close()
            shm.unlink()
            raise
        self._segments.append(shm)
        return SharedFactorHandle(
            key=key,
            segment_name=shm.name,
            meta=meta,
            specs=tuple(specs),
            nbytes=offset,
        )

    def close(self) -> None:
        """Drop this process's mappings (the segments stay alive)."""
        for shm in self._segments:
            try:
                shm.close()
            except Exception:
                pass

    def unlink(self) -> None:
        """Remove the backing shared-memory entries (idempotent)."""
        if self._unlinked:
            return
        self._unlinked = True
        for shm in self._segments:
            try:
                shm.close()
            except Exception:
                pass
            try:
                shm.unlink()
            except Exception:
                pass
        self._segments = []

    def __enter__(self) -> "FactorPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.unlink()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown guard
        try:
            self.unlink()
        except Exception:
            pass


def attach_shared_factor(
    handle: SharedFactorHandle, unregister: bool = False
) -> tuple[Any, Any]:
    """Reconstruct a published factor as views over its shared segment.

    Returns ``(factor, segment)`` — the caller must keep ``segment``
    referenced for as long as the factor is in use (the views borrow its
    buffer).  The views are marked read-only: the plane shares one physical
    copy between processes, so no consumer may write through it.  With
    ``unregister`` the segment is removed from this process's
    ``resource_tracker`` registration (spawn-started workers get a private
    tracker that must not treat the parent-owned segment as leaked).
    """
    from multiprocessing import shared_memory

    from ..faults import fault_hook

    # chaos hook: a fault plan can simulate a torn/corrupt segment here;
    # every caller treats attach as an optimisation and falls back to its
    # own factorisation, which is exactly the path this fault exercises
    fault_hook("shm.attach", key=str(handle.key[0]) if handle.key else None)
    shm = shared_memory.SharedMemory(name=handle.segment_name)
    if unregister:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    try:
        arrays = []
        for off, shape, dtype in handle.specs:
            view = np.ndarray(
                tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf, offset=off
            )
            view.flags.writeable = False
            arrays.append(view)
        return _rebuild_factor(handle.meta, arrays), shm
    except Exception:
        # rebuild failed (torn handle, truncated segment): the caller never
        # received the segment, so this process must drop its mapping
        shm.close()
        raise


# ================================================================== artifacts
# Content-addressed on-disk persistence of factor payloads.  The same
# (meta, arrays) flattening that ships factors between processes also makes
# them durable: each artifact is one ``<digest>.npz`` of the payload arrays
# plus a ``<digest>.json`` sidecar holding the structural meta and the
# human-readable cache key, where ``digest`` addresses the *cache key* — the
# full identity of the physics, discretisation and factor kind.  A restarted
# process therefore finds exactly the factors it would otherwise rebuild.


def _key_digest(key: Hashable) -> str:
    """Stable hex digest of a cache key (filenames of its artifacts)."""
    import hashlib

    return hashlib.blake2b(repr(key).encode(), digest_size=16).hexdigest()


class FactorArtifactStore:
    """Content-addressed on-disk cache of serialised factor payloads.

    Parameters
    ----------
    root:
        Directory the artifacts live under (created on first use).  Writes
        are atomic (temp file + ``os.replace``) so a crash mid-write never
        leaves a half-readable artifact; corrupted or unreadable artifacts
        are skipped with a warning, never raised to the solver.

    Only the :data:`PERSISTED_FACTOR_KINDS` are handled; values that the
    flatten contract cannot serialise (e.g. a *spilled* tiled factor, which
    is its scratch file) are silently skipped.  All methods are thread-safe.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0  # reprolint: guarded-by(_lock)
        self.misses = 0  # reprolint: guarded-by(_lock)
        self.saves = 0  # reprolint: guarded-by(_lock)
        self.save_skips = 0  # reprolint: guarded-by(_lock)

    # ------------------------------------------------------------------ helpers
    @staticmethod
    def handles(key: Hashable) -> bool:
        """True when ``key`` names a factor kind this store persists."""
        return (
            isinstance(key, tuple)
            and bool(key)
            and key[0] in PERSISTED_FACTOR_KINDS
        )

    def _paths(self, key: Hashable) -> tuple[Path, Path]:
        digest = _key_digest(key)
        return self.root / f"{digest}.json", self.root / f"{digest}.npz"

    # ------------------------------------------------------------------- access
    def contains(self, key: Hashable) -> bool:
        """Pure membership probe — no counters."""
        meta_path, payload_path = self._paths(key)
        return meta_path.exists() and payload_path.exists()

    def save(self, key: Hashable, factor: Any) -> bool:
        """Persist one factor; returns True when an artifact exists afterwards.

        Content-addressed: a key whose artifact is already on disk is never
        rewritten (the key digests the full factor identity, so the payload
        cannot differ).  Unserialisable factors and I/O failures are counted
        in ``save_skips`` and otherwise ignored — persistence must never fail
        a solve.
        """
        if not self.handles(key):
            return False
        meta_path, payload_path = self._paths(key)
        if meta_path.exists() and payload_path.exists():
            return True
        try:
            meta, arrays = _flatten_factor(factor)
        except TypeError:
            with self._lock:
                self.save_skips += 1
            return False
        try:
            tmp_payload = payload_path.with_name(payload_path.name + ".tmp")
            # write through a handle: np.savez would append ".npz" to the
            # temp *name*, breaking the atomic rename
            with open(tmp_payload, "wb") as fh:
                np.savez(fh, **{f"a{i}": a for i, a in enumerate(arrays)})
            os.replace(tmp_payload, payload_path)
            doc = {
                "meta": meta,
                "key": repr(key),
                "n_arrays": len(arrays),
                "nbytes": int(sum(a.nbytes for a in arrays)),
            }
            tmp_meta = meta_path.with_name(meta_path.name + ".tmp")
            tmp_meta.write_text(json.dumps(doc, sort_keys=True))
            # the meta sidecar lands last: an artifact without its sidecar is
            # invisible to load(), so a crash between the two writes is safe
            os.replace(tmp_meta, meta_path)
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"could not persist factor artifact for {key!r}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            with self._lock:
                self.save_skips += 1
            return False
        with self._lock:
            self.saves += 1
        return True

    def load(self, key: Hashable) -> Any | None:
        """Rebuild one persisted factor, or ``None`` when absent/corrupt."""
        if not self.handles(key):
            return None
        meta_path, payload_path = self._paths(key)
        if not meta_path.exists():
            with self._lock:
                self.misses += 1
            return None
        try:
            doc = json.loads(meta_path.read_text())
            with np.load(payload_path, allow_pickle=False) as payload:
                arrays = [payload[f"a{i}"] for i in range(int(doc["n_arrays"]))]
            factor = _rebuild_factor(doc["meta"], arrays)
        except Exception as exc:  # noqa: BLE001 - any corruption means "absent"
            warnings.warn(
                f"skipping corrupted factor artifact {meta_path.name}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return factor

    # -------------------------------------------------------------- maintenance
    def info(self) -> dict:
        """Occupancy and hit/miss counters (service metrics / benchmarks)."""
        entries = 0
        total_bytes = 0
        try:
            for path in self.root.glob("*.npz"):
                entries += 1
                total_bytes += path.stat().st_size
        except OSError:
            pass
        with self._lock:
            return {
                "root": str(self.root),
                "artifacts": entries,
                "bytes": total_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "saves": self.saves,
                "save_skips": self.save_skips,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FactorArtifactStore(root={str(self.root)!r})"
