"""Quickstart: extract and sparsify a substrate coupling matrix.

Builds a small regular grid of contacts on the paper's two-layer substrate,
extracts a sparse representation ``G ~ Q Gw Q'`` of the contact conductance
matrix with the low-rank method (Chapter 4), and compares it entry-by-entry
against the exact dense extraction.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CountingSolver,
    EigenfunctionSolver,
    SquareHierarchy,
    SubstrateProfile,
    extract_dense,
    regular_grid,
)
from repro.analysis import evaluate_against_dense
from repro.core.lowrank import LowRankSparsifier


def main() -> None:
    # 1. the substrate: 128 x 128 x 40 two-layer stack, emulated floating backplane
    layout = regular_grid(n_side=16, size=128.0, fill=0.5)
    profile = SubstrateProfile.two_layer_example(size=128.0, resistive_bottom=True)
    print(f"layout: {layout.n_contacts} contacts on a {layout.size_x:g} x {layout.size_y:g} surface")
    print(f"substrate: {profile}")

    # 2. the black-box solver (contact voltages -> contact currents)
    solver = CountingSolver(EigenfunctionSolver(layout, profile, max_panels=128))

    # 3. sparsified extraction with the low-rank method
    hierarchy = SquareHierarchy(layout, max_level=4)
    sparsifier = LowRankSparsifier(hierarchy, max_rank=6)
    sparsifier.build(solver)
    representation = sparsifier.to_sparsified()
    print(f"\nextraction used {solver.solve_count} black-box solves "
          f"(naive extraction would use {layout.n_contacts})")
    print(f"Gw nonzeros: {representation.nnz_gw}  "
          f"(sparsity factor {representation.sparsity_factor():.1f}x, "
          f"Q sparsity {representation.q_sparsity_factor():.1f}x)")

    # 4. compare against the exact dense G
    solver.reset()
    g_exact = extract_dense(solver, symmetrize=True)
    report = evaluate_against_dense(representation, g_exact)
    print(f"\naccuracy vs exact G: max relative error {100 * report.max_relative_error:.2f}%, "
          f"entries off by >10%: {100 * report.fraction_above_10pct:.2f}%")

    # 5. the representation is an operator: apply it to a voltage pattern
    voltages = np.zeros(layout.n_contacts)
    voltages[0] = 1.0  # 1 V on the corner contact
    currents = representation.apply(voltages)
    exact = g_exact @ voltages
    print("\ncurrent response to 1 V on contact 0 (approx vs exact):")
    for idx in (0, 1, 17, layout.n_contacts - 1):
        print(f"  contact {idx:4d}: {currents[idx]:+.4e}   {exact[idx]:+.4e}")


if __name__ == "__main__":
    main()
