"""Large-layout extraction: solve reduction without ever forming the dense G.

Reproduces the workflow of the paper's larger examples (Table 4.3): the
conductance matrix of a 1024-contact alternating-size layout is never formed
densely; the low-rank method extracts a sparse representation directly from
the black-box solver with far fewer solves than contacts, and the accuracy is
checked on a random sample of exact columns.

Run with:  python examples/large_layout_extraction.py          (1024 contacts)
           python examples/large_layout_extraction.py 16       (256 contacts, quick)
"""

import sys
import time

import numpy as np

from repro import (
    CountingSolver,
    EigenfunctionSolver,
    SquareHierarchy,
    SubstrateProfile,
    alternating_size_grid,
)
from repro.analysis import evaluate_against_columns
from repro.core.lowrank import LowRankSparsifier
from repro.substrate import extract_columns


def main() -> None:
    n_side = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    layout = alternating_size_grid(n_side=n_side, size=8.0 * n_side)
    profile = SubstrateProfile.two_layer_example(size=8.0 * n_side, resistive_bottom=True)
    print(f"{layout.n_contacts} contacts, alternating sizes")

    solver = CountingSolver(EigenfunctionSolver(layout, profile, max_panels=256))
    hierarchy = SquareHierarchy(layout, max_level=max(2, (n_side - 1).bit_length()))

    start = time.perf_counter()
    sparsifier = LowRankSparsifier(hierarchy, max_rank=6)
    sparsifier.build(solver)
    rep = sparsifier.to_sparsified()
    elapsed = time.perf_counter() - start
    rep_t = rep.threshold_to_sparsity(rep.sparsity_factor() * 6)

    print(f"\nextraction time: {elapsed:.1f} s")
    print(f"black-box solves: {solver.solve_count} "
          f"(solve reduction {rep.solve_reduction_factor():.1f}x over naive)")
    print(f"Gw sparsity factor: {rep.sparsity_factor():.1f}x unthresholded, "
          f"{rep_t.sparsity_factor():.1f}x thresholded")
    print(f"Q sparsity factor: {rep.q_sparsity_factor():.1f}x")

    # accuracy on a 10% column sample (the paper's procedure for large examples)
    solver.reset()
    rng = np.random.default_rng(0)
    n_sample = max(8, layout.n_contacts // 10)
    columns = np.sort(rng.choice(layout.n_contacts, size=n_sample, replace=False))
    print(f"\nchecking accuracy on {n_sample} sampled columns of the exact G ...")
    g_columns = extract_columns(solver, columns)
    for label, r in (("unthresholded", rep), ("thresholded", rep_t)):
        report = evaluate_against_columns(r, columns, g_columns)
        print(f"  {label:14s}: max rel. error {100 * report.max_relative_error:6.2f}%, "
              f"entries >10% off: {100 * report.fraction_above_10pct:5.2f}%")


if __name__ == "__main__":
    main()
