"""Mixed-signal substrate noise coupling with a sparsified substrate macromodel.

The scenario the paper's introduction motivates: a digital block injects
switching noise into the substrate and a sensitive analog node picks it up.
This example

1. builds a layout with a digital contact cluster, an analog sense contact and
   a grounded guard ring between them,
2. extracts the substrate conductance matrix and its sparsified form,
3. stamps the substrate into a small circuit (driver resistance, analog load,
   guard-ring ground strap) and solves the DC noise transfer with the dense
   block and with the sparsified operator, and
4. shows the guard ring's effect by re-solving with the ring left floating.

Run with:  python examples/mixed_signal_noise.py
"""

from repro import EigenfunctionSolver, extract_dense
from repro.circuits import Circuit, MNASolver, SubstrateMacromodel
from repro.core import WaveletSparsifier
from repro.geometry import Contact, ContactLayout, SquareHierarchy, ring_contact
from repro.substrate import DenseMatrixSolver, Layer, SubstrateProfile


def build_layout() -> tuple[ContactLayout, list[str]]:
    """Digital cluster (left), guard ring (centre), analog contact (right)."""
    size = 128.0
    contacts: list[Contact] = []
    names: list[str] = []

    # digital block: 3 x 3 cluster of switching contacts
    for j in range(3):
        for i in range(3):
            contacts.append(Contact(8.0 + 10.0 * i, 48.0 + 10.0 * j, 6.0, 6.0))
            names.append("dig")

    # guard ring around the middle of the die
    for piece in ring_contact(52.0, 44.0, outer=24.0, thickness=3.0, name="guard"):
        for sub in piece.split_at_gridlines(8.0):
            contacts.append(sub)
            names.append("guard")

    # analog sense contact on the right
    contacts.append(Contact(100.0, 58.0, 8.0, 8.0))
    names.append("ana")

    return ContactLayout(contacts, size, size), names


def solve(macromodel: SubstrateMacromodel, guard_grounded: bool, sparsified: bool) -> float:
    ckt = Circuit()
    ckt.add_voltage_source("vnoise", "0", 1.0, name="Vnoise")
    ckt.add_resistor("vnoise", "dig", 25.0)     # digital driver impedance
    ckt.add_resistor("ana", "0", 10_000.0)      # analog node load
    if guard_grounded:
        ckt.add_resistor("guard", "0", 0.5)     # guard ring ground strap
    ckt.add_substrate(macromodel)
    solver = MNASolver(ckt)
    sol = solver.solve_sparsified() if sparsified else solver.solve_dense()
    return sol.voltage("ana")


def main() -> None:
    layout, names = build_layout()
    # a lightly doped (high-resistivity) substrate with a floating backplane:
    # the regime where surface guard rings are effective
    profile = SubstrateProfile(128.0, 128.0, [Layer(40.0, 1.0)], grounded_backplane=False)
    print(f"layout: {layout.n_contacts} contacts "
          f"({names.count('dig')} digital, {names.count('guard')} guard, 1 analog)")

    solver = EigenfunctionSolver(layout, profile, max_panels=128)
    g = extract_dense(solver, symmetrize=True)

    hierarchy = SquareHierarchy(layout, max_level=4, strict_containment=False)
    rep = WaveletSparsifier(hierarchy, order=2).extract(DenseMatrixSolver(g, layout))
    print(f"sparsified substrate model: sparsity {rep.sparsity_factor():.1f}x, "
          f"{rep.nnz_gw} nonzeros vs {g.size} dense entries")

    dense_model = SubstrateMacromodel(names, dense=g)
    sparse_model = SubstrateMacromodel(names, sparsified=rep)

    v_dense = solve(dense_model, guard_grounded=True, sparsified=False)
    v_sparse = solve(sparse_model, guard_grounded=True, sparsified=True)
    v_noguard = solve(dense_model, guard_grounded=False, sparsified=False)

    print("\nanalog node noise for 1 V digital switching step:")
    print(f"  dense substrate model, guard grounded : {1e3 * v_dense:8.3f} mV")
    print(f"  sparsified model,      guard grounded : {1e3 * v_sparse:8.3f} mV "
          f"({100 * abs(v_sparse - v_dense) / abs(v_dense):.2f}% off)")
    print(f"  dense substrate model, guard floating : {1e3 * v_noguard:8.3f} mV")
    print(f"\ngrounding the guard ring suppresses the coupled noise by "
          f"{v_noguard / v_dense:.1f}x on this lightly doped substrate")


if __name__ == "__main__":
    main()
