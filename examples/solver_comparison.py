"""Compare the finite-difference and eigenfunction substrate solvers.

Reproduces the flavour of Tables 2.1 and 2.2: the same contact layout is
solved with the 3-D grid-of-resistors solver (several preconditioners) and
with the surface-variable eigenfunction solver, reporting iterations and time
per solve, and checking that the two solvers agree on the coupling pattern.

Run with:  python examples/solver_comparison.py
"""

import time

import numpy as np

from repro import (
    EigenfunctionSolver,
    FiniteDifferenceSolver,
    SubstrateProfile,
    extract_dense,
    regular_grid,
)


def main() -> None:
    layout = regular_grid(n_side=8, size=128.0, fill=0.5)
    profile = SubstrateProfile.two_layer_example(size=128.0, grounded_backplane=True)
    rng = np.random.default_rng(0)
    n_solves = 5
    print(f"{layout.n_contacts} contacts; {n_solves} random-voltage solves per configuration\n")

    print("Table 2.1 — preconditioner effectiveness (finite-difference solver)")
    for name in ("fast_poisson_dirichlet", "fast_poisson_neumann", "fast_poisson_area", "ic", "jacobi"):
        solver = FiniteDifferenceSolver(
            layout, profile, nx=32, ny=32, planes_per_layer=(2, 5), preconditioner=name
        )
        start = time.perf_counter()
        for _ in range(n_solves):
            solver.solve_currents(rng.standard_normal(layout.n_contacts))
        dt = (time.perf_counter() - start) / n_solves
        print(f"  {name:26s} {solver.mean_iterations_per_solve():6.1f} iterations/solve  "
              f"{1e3 * dt:8.1f} ms/solve")

    print("\nTable 2.2 — finite-difference versus eigenfunction solver")
    fd = FiniteDifferenceSolver(layout, profile, nx=32, ny=32, planes_per_layer=(2, 5))
    bem = EigenfunctionSolver(layout, profile, max_panels=128)
    for label, solver in (("finite difference", fd), ("eigenfunction", bem)):
        start = time.perf_counter()
        for _ in range(n_solves):
            solver.solve_currents(rng.standard_normal(layout.n_contacts))
        dt = (time.perf_counter() - start) / n_solves
        print(f"  {label:18s} {solver.mean_iterations_per_solve():6.1f} iterations/solve  "
              f"{1e3 * dt:8.1f} ms/solve")

    print("\nagreement between the two solvers (coupling of contact 0):")
    g_fd = extract_dense(fd, symmetrize=True)
    g_bem = extract_dense(bem, symmetrize=True)
    row_fd = g_fd[0] / abs(g_fd[0, 0])
    row_bem = g_bem[0] / abs(g_bem[0, 0])
    for idx in (1, 8, 9, layout.n_contacts - 1):
        print(f"  normalised G[0,{idx:2d}]: FD {row_fd[idx]:+.4f}   eigenfunction {row_bem[idx]:+.4f}")


if __name__ == "__main__":
    main()
