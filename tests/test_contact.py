"""Unit tests for Contact and ContactLayout."""

import numpy as np
import pytest

from repro.geometry import Contact, ContactLayout


class TestContact:
    def test_basic_properties(self):
        c = Contact(2.0, 3.0, 4.0, 6.0, name="a")
        assert c.x2 == 6.0
        assert c.y2 == 9.0
        assert c.area == 24.0
        assert c.centroid == (4.0, 6.0)

    @pytest.mark.parametrize("w,h", [(0.0, 1.0), (1.0, 0.0), (-1.0, 1.0), (1.0, -2.0)])
    def test_invalid_dimensions_rejected(self, w, h):
        with pytest.raises(ValueError):
            Contact(0.0, 0.0, w, h)

    def test_contains_point(self):
        c = Contact(0.0, 0.0, 2.0, 2.0)
        assert c.contains_point(1.0, 1.0)
        assert c.contains_point(0.0, 2.0)  # boundary inclusive
        assert not c.contains_point(2.5, 1.0)

    def test_overlap_detection(self):
        a = Contact(0.0, 0.0, 2.0, 2.0)
        b = Contact(1.0, 1.0, 2.0, 2.0)
        c = Contact(2.0, 0.0, 2.0, 2.0)  # touching edge: no positive-area overlap
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_translated(self):
        c = Contact(1.0, 2.0, 3.0, 4.0, name="x")
        t = c.translated(10.0, -1.0)
        assert (t.x, t.y, t.width, t.height, t.name) == (11.0, 1.0, 3.0, 4.0, "x")

    def test_split_preserves_area(self):
        c = Contact(0.0, 0.0, 10.0, 6.0)
        pieces = c.split(4.0)
        assert len(pieces) == 3 * 2
        assert np.isclose(sum(p.area for p in pieces), c.area)
        for p in pieces:
            assert p.width <= 4.0 + 1e-12 and p.height <= 4.0 + 1e-12

    def test_split_no_op_when_small(self):
        c = Contact(0.0, 0.0, 1.0, 1.0)
        assert c.split(2.0) == [c]

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            Contact(0, 0, 1, 1).split(0.0)

    def test_zeroth_moment_is_area(self):
        c = Contact(1.0, 2.0, 3.0, 5.0)
        assert np.isclose(c.moment(0, 0, (0.0, 0.0)), c.area)

    def test_first_moment_about_centroid_vanishes(self):
        c = Contact(1.0, 2.0, 3.0, 5.0)
        assert abs(c.moment(1, 0, c.centroid)) < 1e-12
        assert abs(c.moment(0, 1, c.centroid)) < 1e-12

    def test_moment_matches_numerical_quadrature(self):
        c = Contact(0.5, 1.25, 2.0, 0.75)
        center = (1.0, 1.0)
        xs = np.linspace(c.x, c.x2, 201)
        ys = np.linspace(c.y, c.y2, 201)
        xx, yy = np.meshgrid(xs, ys, indexing="ij")
        for alpha, beta in [(0, 0), (1, 0), (0, 1), (2, 0), (1, 1), (0, 2)]:
            integrand = (xx - center[0]) ** alpha * (yy - center[1]) ** beta
            numeric = np.trapezoid(np.trapezoid(integrand, ys, axis=1), xs)
            assert np.isclose(c.moment(alpha, beta, center), numeric, rtol=1e-4)


class TestContactLayout:
    def test_counts_and_iteration(self):
        contacts = [Contact(i * 2.0, 0.0, 1.0, 1.0) for i in range(5)]
        layout = ContactLayout(contacts, 16.0, 16.0)
        assert layout.n_contacts == 5
        assert len(layout) == 5
        assert list(layout)[2] == contacts[2]
        assert layout[4] == contacts[4]

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ValueError):
            ContactLayout([Contact(15.5, 0.0, 1.0, 1.0)], 16.0, 16.0)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ContactLayout([Contact(0, 0, 1, 1)], 0.0, 16.0)

    def test_centroids_and_areas(self):
        layout = ContactLayout(
            [Contact(0, 0, 2, 2), Contact(4, 4, 1, 3)], 16.0, 16.0
        )
        assert layout.centroids.shape == (2, 2)
        assert np.allclose(layout.areas, [4.0, 3.0])
        assert np.isclose(layout.total_contact_area, 7.0)
        assert np.isclose(layout.coverage, 7.0 / 256.0)

    def test_overlap_detection(self):
        good = ContactLayout([Contact(0, 0, 2, 2), Contact(3, 3, 2, 2)], 16, 16)
        bad = ContactLayout([Contact(0, 0, 2, 2), Contact(1, 1, 2, 2)], 16, 16)
        assert not good.has_overlaps()
        assert bad.has_overlaps()

    def test_split_for_level_respects_square_size(self):
        layout = ContactLayout([Contact(0, 0, 10, 3)], 16.0, 16.0)
        split = layout.split_for_level(3)  # squares of side 2
        assert split.n_contacts > 1
        assert np.isclose(split.total_contact_area, layout.total_contact_area)
        side = 16.0 / 2 ** 3
        for c in split:
            assert c.width <= side + 1e-9 and c.height <= side + 1e-9

    def test_subset(self):
        layout = ContactLayout(
            [Contact(i * 2.0, 0.0, 1.0, 1.0, name=f"c{i}") for i in range(4)], 16, 16
        )
        sub = layout.subset([0, 3])
        assert sub.n_contacts == 2
        assert sub[1].name == "c3"
