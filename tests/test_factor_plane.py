"""Tests for the shared-memory factor plane.

The plane serialises cached factor payloads into
``multiprocessing.shared_memory`` segments (:class:`FactorPlane` /
:func:`attach_shared_factor`) so parallel-extractor workers attach zero-copy
instead of refactoring.  These tests pin the payload round-trips for every
factor kind, the worker attach/rebuild counters surfaced through
``SolveStats.merge``, and that no ``/dev/shm`` segment outlives the pool.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest
from scipy.linalg import cho_factor, cho_solve, lu_factor, lu_solve
from scipy.sparse import diags, eye as speye, kron
from scipy.sparse.linalg import splu

from repro import (
    CountingSolver,
    FactorPlane,
    ParallelExtractor,
    SharedSparseLU,
    SolverSpec,
    SubstrateProfile,
    attach_shared_factor,
    extract_dense,
    factor_cache,
    regular_grid,
)
from repro.substrate.factor_cache import _flatten_factor, _rebuild_factor


@pytest.fixture(scope="module")
def tiny_layout():
    return regular_grid(n_side=4, size=64.0, fill=0.5)


def _profile(grounded: bool = True) -> SubstrateProfile:
    return SubstrateProfile.two_layer_example(size=64.0, grounded_backplane=grounded)


def _bem_spec(layout, grounded=True, **options):
    options.setdefault("max_panels", 32)
    options.setdefault("fft_workers", 1)
    return SolverSpec.bem(layout, _profile(grounded), **options)


def _fd_spec(layout, grounded=True, **options):
    options.setdefault("nx", 8)
    options.setdefault("ny", 8)
    options.setdefault("planes_per_layer", 2)
    options.setdefault("fft_workers", 1)
    return SolverSpec.fd(layout, _profile(grounded), **options)


def _spd(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


def _sparse_system(m: int = 6):
    one = diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(m, m))
    i = speye(m)
    return (
        kron(kron(one, i), i) + kron(kron(i, one), i) + kron(kron(i, i), one)
        + speye(m**3)
    ).tocsc()


def _shm_entries() -> set:
    return set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()


# ---------------------------------------------------------- payload round-trip
def test_flatten_rebuild_chol_factor():
    a = _spd(12)
    factor = ("chol", cho_factor(a, lower=True))
    meta, arrays = _flatten_factor(factor)
    rebuilt = _rebuild_factor(meta, [a.copy() for a in arrays])
    b = np.arange(12.0)
    ref = cho_solve(factor[1], b)
    assert np.allclose(cho_solve(rebuilt[1], b), ref, atol=1e-14)


def test_flatten_rebuild_schur_factor():
    a = _spd(10)
    chol = cho_factor(a, lower=True)
    ones = np.ones(10)
    w = cho_solve(chol, ones)
    s = float(ones @ w)
    meta, arrays = _flatten_factor(("schur", chol, w, s))
    rebuilt = _rebuild_factor(meta, arrays)
    assert rebuilt[0] == "schur"
    assert rebuilt[3] == pytest.approx(s)
    assert np.allclose(rebuilt[2], w)


def test_flatten_rebuild_bordered_factor():
    a = _spd(9)
    lu, piv = lu_factor(a)
    meta, arrays = _flatten_factor(("bordered", lu, piv))
    rebuilt = _rebuild_factor(meta, arrays)
    b = np.arange(9.0)
    assert np.allclose(lu_solve((rebuilt[1], rebuilt[2]), b), lu_solve((lu, piv), b))


def test_flatten_rejects_unknown_kinds():
    with pytest.raises(TypeError):
        _flatten_factor(("mystery", np.eye(2)))
    with pytest.raises(TypeError):
        _flatten_factor(object())


def test_shared_sparse_lu_matches_superlu():
    a = _sparse_system()
    lu = splu(a, options={"Equil": False})
    shared = SharedSparseLU.from_superlu(lu)
    rng = np.random.default_rng(1)
    b = rng.standard_normal((a.shape[0], 4))
    assert np.allclose(shared.solve(b), lu.solve(b), atol=1e-12)
    # vector RHS keeps its shape
    assert shared.solve(b[:, 0]).shape == (a.shape[0],)
    # tocsc() may drop explicit zeros, so the component nnz is a lower bound
    assert 0 < shared.nnz <= lu.nnz
    assert shared.nbytes > 0


def test_shared_sparse_lu_roundtrips_through_flatten():
    a = _sparse_system(5)
    lu = splu(a, options={"Equil": False})
    meta, arrays = _flatten_factor(lu)  # native SuperLU flattens too
    rebuilt = _rebuild_factor(meta, arrays)
    assert isinstance(rebuilt, SharedSparseLU)
    b = np.arange(float(a.shape[0]))
    assert np.allclose(rebuilt.solve(b), lu.solve(b), atol=1e-12)


# ------------------------------------------------------------- plane lifecycle
def test_plane_publish_attach_roundtrip_and_unlink():
    a = _spd(16, seed=3)
    factor = ("chol", cho_factor(a, lower=True))
    before = _shm_entries()
    plane = FactorPlane()
    handle = plane.publish(("bem_direct_factor", "k"), factor)
    assert handle.nbytes >= a.nbytes
    # the handle pickles (it rides in the pool's initargs)
    handle = pickle.loads(pickle.dumps(handle))
    attached, segment = attach_shared_factor(handle)
    b = np.linspace(0.0, 1.0, 16)
    assert np.allclose(cho_solve(attached[1], b), cho_solve(factor[1], b))
    # attached views are read-only: the factor is shared physical memory
    with pytest.raises((ValueError, RuntimeError)):
        attached[1][0][0, 0] = 1.0
    segment.close()
    plane.unlink()
    plane.unlink()  # idempotent
    assert _shm_entries() <= before


def test_plane_context_manager_unlinks():
    before = _shm_entries()
    with FactorPlane() as plane:
        plane.publish(("k",), ("chol", cho_factor(_spd(6), lower=True)))
        assert _shm_entries() != before or not os.path.isdir("/dev/shm")
    assert _shm_entries() <= before


# --------------------------------------------------- extractor worker counters
@pytest.mark.parametrize("grounded", [True, False], ids=["grounded", "floating"])
def test_workers_attach_with_zero_rebuilds_on_warm_parent(tiny_layout, grounded):
    """The tentpole gate: with a shared plane, a warm parent cache means no
    worker ever refactors — every worker attaches exactly once."""
    spec = _bem_spec(tiny_layout, grounded, rtol=1e-10)
    serial = spec.build()
    g_serial = extract_dense(serial)
    with ParallelExtractor(
        spec, n_workers=2, prepare_direct=True, min_parallel_columns=2
    ) as ex:
        ex.warm_up()
        counting = CountingSolver(ex)
        g_parallel = extract_dense(counting)
        stats = ex.stats
    assert stats.n_factor_attaches == 2
    assert stats.n_factor_rebuilds == 0
    assert counting.solve_count == tiny_layout.n_contacts
    scale = np.abs(g_serial).max()
    assert np.abs(g_parallel - g_serial).max() <= 1e-10 * scale


def test_workers_attach_fd_backend(tiny_layout):
    spec = _fd_spec(tiny_layout, rtol=1e-10)
    serial = spec.build()
    g_serial = extract_dense(serial)
    with ParallelExtractor(
        spec, n_workers=2, prepare_direct=True, min_parallel_columns=2
    ) as ex:
        ex.warm_up()
        g_parallel = ex.extract_dense()
        stats = ex.stats
    assert stats.n_factor_attaches == 2
    assert stats.n_factor_rebuilds == 0
    assert np.abs(g_parallel - g_serial).max() <= 1e-10 * np.abs(g_serial).max()


def test_share_factors_off_means_no_attaches(tiny_layout):
    """Without the plane (and without a consultable cache) every worker pays
    its own factorisation, visible in the merged rebuild counter."""
    spec = _bem_spec(tiny_layout, rtol=1e-10, use_factor_cache=False)
    with ParallelExtractor(
        spec,
        n_workers=2,
        prepare_direct=True,
        min_parallel_columns=2,
        share_factors=False,
    ) as ex:
        ex.warm_up()
        ex.extract_dense()
        stats = ex.stats
    assert stats.n_factor_attaches == 0
    assert stats.n_factor_rebuilds == 2


def test_published_segments_unlinked_on_close(tiny_layout):
    """No shared-memory entry may outlive the extractor (leak check)."""
    before = _shm_entries()
    spec = _bem_spec(tiny_layout, rtol=1e-10)
    ex = ParallelExtractor(spec, n_workers=2, prepare_direct=True, min_parallel_columns=2)
    ex.warm_up()
    assert ex.published_factor_keys  # the parent actually published
    ex.extract_dense()
    ex.close()
    assert _shm_entries() <= before
    ex.close()  # idempotent


def test_no_publish_when_factor_cache_disabled(tiny_layout):
    """A spec that disables the factor cache cannot receive attachments, so
    the parent must not publish a plane for it."""
    spec = _bem_spec(tiny_layout, rtol=1e-10, use_factor_cache=False)
    with ParallelExtractor(spec, n_workers=2, prepare_direct=True) as ex:
        ex.warm_up()
        assert ex.published_factor_keys == []


def test_attached_factor_lands_in_worker_cache_key(tiny_layout):
    """The plane publishes under the solver's public factor_cache_key, which
    is what the worker's prepare consults."""
    spec = _bem_spec(tiny_layout, rtol=1e-10)
    solver = spec.build()
    assert solver.prepare_direct()
    key = solver.factor_cache_key
    assert factor_cache().contains(key)
    with ParallelExtractor(spec, n_workers=2, prepare_direct=True) as ex:
        ex.warm_up()
        assert ex.published_factor_keys == [key]
