"""Tests for the tiled (out-of-core) direct engine.

``TiledCholeskyFactor`` must agree with an in-core dense Cholesky to
round-off, in RAM and when spilled to a memmapped scratch file, and the
eigenfunction solver's ``"tiled"`` dispatch path must extract the same ``G``
as the in-core direct engine above ``max_direct_panels`` — including the
floating-backplane (Schur/bordered) case.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from scipy.linalg import LinAlgError

from repro import (
    DispatchPolicy,
    EigenfunctionSolver,
    SubstrateProfile,
    TiledCholeskyFactor,
    extract_dense,
    regular_grid,
)
from repro.substrate.dispatch import SolveCostModel


@pytest.fixture(scope="module")
def tiny_layout():
    return regular_grid(n_side=4, size=64.0, fill=0.5)


def _profile(grounded: bool = True) -> SubstrateProfile:
    return SubstrateProfile.two_layer_example(size=64.0, grounded_backplane=grounded)


def _spd(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


def _factor_from(a: np.ndarray, **kwargs) -> TiledCholeskyFactor:
    tf = TiledCholeskyFactor(a.shape[0], **kwargs)
    return tf.factor(lambda lo, hi: a[lo:hi])


# ------------------------------------------------------------------ raw engine
@pytest.mark.parametrize("tile", [7, 16, 64, 1024])
def test_tiled_cholesky_matches_dense_solve(tile):
    """Tile edges that divide, straddle and exceed the matrix dimension."""
    a = _spd(45)
    rng = np.random.default_rng(1)
    b = rng.standard_normal((45, 3))
    tf = _factor_from(a, tile=tile)
    assert not tf.spilled
    ref = np.linalg.solve(a, b)
    assert np.abs(tf.solve(b) - ref).max() <= 1e-10 * np.abs(ref).max()
    tf.close()


def test_tiled_cholesky_spills_and_cleans_scratch():
    a = _spd(33, seed=2)
    b = np.linspace(0.0, 1.0, 33)
    tf = _factor_from(a, tile=8, spill_over_bytes=0)
    assert tf.spilled
    path = tf.scratch_path
    assert path is not None and os.path.exists(path)
    ref = np.linalg.solve(a, b)
    assert np.abs(tf.solve(b) - ref).max() <= 1e-10 * np.abs(ref).max()
    tf.close()
    assert not os.path.exists(path)
    tf.close()  # idempotent


def test_tiled_cholesky_rejects_non_spd():
    a = -np.eye(12)
    with pytest.raises(LinAlgError):
        _factor_from(a, tile=5)


def test_tiled_factor_validates_inputs():
    with pytest.raises(ValueError):
        TiledCholeskyFactor(0)
    with pytest.raises(ValueError):
        TiledCholeskyFactor(4, tile=0)
    tf = _factor_from(_spd(6), tile=4)
    with pytest.raises(ValueError):
        tf.solve(np.zeros(7))
    tf.close()
    with pytest.raises(RuntimeError):
        tf.solve(np.zeros(6))


def test_unfactored_solve_raises():
    tf = TiledCholeskyFactor(5, tile=2)
    with pytest.raises(RuntimeError):
        tf.solve(np.zeros(5))
    tf.close()


# --------------------------------------------------------------- dispatch tier
def test_cost_model_tiled_is_direct_plus_io_penalty():
    model = SolveCostModel()
    direct = model.direct_cost(512, 64, 4096, factor_cached=False, grounded=True)
    tiled = model.tiled_cost(512, 64, 4096, factor_cached=False, grounded=True)
    assert tiled > direct
    # with the factor amortised both collapse to the per-column solves ratio
    d2 = model.direct_cost(512, 64, 4096, factor_cached=True, grounded=True)
    t2 = model.tiled_cost(512, 64, 4096, factor_cached=True, grounded=True)
    assert t2 == pytest.approx(d2 * model.tiled_io_unit)


def test_policy_routes_tiled_only_above_direct_ceiling():
    policy = DispatchPolicy(max_direct_panels=4096)
    d = policy.choose(n_panels=1024, n_rhs=512, grid_points=4096, grounded=True)
    assert d.path == "direct"  # in-core always wins below the ceiling
    policy = DispatchPolicy(max_direct_panels=512)
    d = policy.choose(n_panels=1024, n_rhs=512, grid_points=4096, grounded=True)
    assert d.path == "tiled"
    assert d.direct_cost is not None and d.iterative_cost is not None
    # narrow blocks on a cold tiled factor are not worth factoring for
    d = policy.choose(n_panels=1024, n_rhs=1, grid_points=4096, grounded=True)
    assert d.path == "iterative"
    # ...but a held tiled factor serves even a single column
    d = policy.choose(
        n_panels=1024, n_rhs=1, grid_points=4096, grounded=True,
        tiled_factor_cached=True,
    )
    assert d.path == "tiled"
    assert d.reason == "cached tiled factor"


def test_policy_forced_tiled_runs_below_the_ceiling_too():
    policy = DispatchPolicy(force_path="tiled")
    d = policy.choose(n_panels=64, n_rhs=4, grid_points=4096, grounded=True)
    assert d.path == "tiled"
    capped = DispatchPolicy(force_path="tiled", max_tiled_panels=10)
    d = capped.choose(n_panels=64, n_rhs=4, grid_points=4096, grounded=True)
    assert d.path == "iterative"


def test_solver_max_direct_panels_zero_still_means_iterative_only(tiny_layout):
    # the policy itself resolves the shorthand: no tiled back door
    assert DispatchPolicy(max_direct_panels=0).max_tiled_panels == 0
    assert DispatchPolicy(max_direct_panels=0, max_tiled_panels=64).max_tiled_panels == 64
    solver = EigenfunctionSolver(
        tiny_layout, _profile(), max_panels=32, max_direct_panels=0, fft_workers=1
    )
    solver.solve_many(np.eye(tiny_layout.n_contacts))
    assert solver.last_dispatch.path == "iterative"
    assert solver.stats.n_direct_solves == 0


# ----------------------------------------------------------- solver tiled path
@pytest.mark.parametrize("grounded", [True, False], ids=["grounded", "floating"])
def test_tiled_extraction_matches_direct(tiny_layout, grounded):
    """The acceptance gate: above max_direct_panels the tiled path extracts
    an identical G — including the floating (Schur-complement) case."""
    kwargs = {"max_panels": 32, "rtol": 1e-10, "fft_workers": 1, "use_factor_cache": False}
    ref = EigenfunctionSolver(
        tiny_layout, _profile(grounded),
        dispatch=DispatchPolicy(force_path="direct"), **kwargs,
    )
    g_ref = extract_dense(ref)
    ncp = ref.grid.n_contact_panels
    tiled = EigenfunctionSolver(
        tiny_layout, _profile(grounded),
        dispatch=DispatchPolicy(max_direct_panels=ncp // 2),
        tile_panels=48, **kwargs,
    )
    g_tiled = extract_dense(tiled)
    assert tiled.last_dispatch.path == "tiled"
    assert tiled.stats.n_direct_solves == tiny_layout.n_contacts
    assert tiled.stats.n_factor_rebuilds == 1
    scale = np.abs(g_ref).max()
    assert np.abs(g_tiled - g_ref).max() <= 1e-10 * scale
    tiled.close_tiled()
    tiled.close_tiled()  # idempotent


def test_tiled_gauge_constants_match_direct(tiny_layout):
    kwargs = {"max_panels": 32, "rtol": 1e-10, "fft_workers": 1, "use_factor_cache": False}
    ref = EigenfunctionSolver(
        tiny_layout, _profile(False),
        dispatch=DispatchPolicy(force_path="direct"), **kwargs,
    )
    v = np.eye(tiny_layout.n_contacts)
    ref.solve_many(v)
    gauges_ref = ref.last_gauge_constants
    tiled = EigenfunctionSolver(
        tiny_layout, _profile(False),
        dispatch=DispatchPolicy(force_path="tiled"), tile_panels=48, **kwargs,
    )
    tiled.solve_many(v)
    assert tiled.last_gauge_constants is not None
    scale = np.abs(gauges_ref).max()
    assert np.abs(tiled.last_gauge_constants - gauges_ref).max() <= 1e-10 * scale


def test_tiled_spilled_extraction_matches(tiny_layout):
    """Forcing the scratch file (spill_over_bytes=0) changes storage, not
    results."""
    kwargs = {"max_panels": 32, "rtol": 1e-10, "fft_workers": 1, "use_factor_cache": False}
    ref = EigenfunctionSolver(
        tiny_layout, _profile(),
        dispatch=DispatchPolicy(force_path="direct"), **kwargs,
    )
    g_ref = extract_dense(ref)
    tiled = EigenfunctionSolver(
        tiny_layout, _profile(),
        dispatch=DispatchPolicy(force_path="tiled"),
        tile_panels=32, tiled_spill_bytes=0, **kwargs,
    )
    g_tiled = extract_dense(tiled)
    assert tiled._tiled_factor[1].spilled
    scratch = tiled._tiled_factor[1].scratch_path
    assert scratch is not None and os.path.exists(scratch)
    assert np.abs(g_tiled - g_ref).max() <= 1e-10 * np.abs(g_ref).max()
    tiled.close_tiled()
    assert not os.path.exists(scratch)


def test_prepare_tiled_warm_then_solve_reuses_factor(tiny_layout):
    solver = EigenfunctionSolver(
        tiny_layout, _profile(), max_panels=32, rtol=1e-10, fft_workers=1,
        dispatch=DispatchPolicy(force_path="tiled"), use_factor_cache=False,
    )
    assert solver.prepare_tiled()
    assert solver.stats.n_factor_rebuilds == 1
    solver.solve_many(np.eye(tiny_layout.n_contacts))
    assert solver.stats.n_factor_rebuilds == 1  # no second factorisation


# -------------------------------------------------------------- sparse probe
def test_sparse_auto_tune_probe_runs_once_and_clamps():
    policy = DispatchPolicy(auto_tune=True)
    factor_unit, iter_units = policy.auto_tune_sparse_probe()
    assert 0.5 <= factor_unit <= 500.0
    assert 5.0 <= iter_units <= 2000.0
    assert policy.cost_model.sparse_factor_unit == factor_unit
    assert policy.cost_model.fd_iteration_units == iter_units
    marker = (-1.0, -2.0)
    policy.cost_model.sparse_factor_unit = marker[0]
    policy.cost_model.fd_iteration_units = marker[1]
    assert policy.auto_tune_sparse_probe() == marker  # second probe is a no-op


def test_choose_sparse_triggers_probe_when_auto_tune():
    policy = DispatchPolicy(auto_tune=True)
    assert not policy._sparse_tuned
    policy.choose_sparse(n_nodes=1000, n_rhs=16)
    assert policy._sparse_tuned


# ------------------------------------------------- lifecycle / sharing (PR 5)
def test_tiled_context_manager_releases_storage():
    a = _spd(20, seed=3)
    with _factor_from(a, tile=8) as tf:
        x = tf.solve(np.ones(20))
        assert np.abs(a @ x - 1.0).max() < 1e-8
    with pytest.raises(RuntimeError):
        tf.solve(np.ones(20))
    tf.close()
    tf.close()  # idempotent after context exit too


def test_tiled_scratch_files_never_leak(tmp_path, monkeypatch):
    """Every spilled factor's scratch file is gone once the factor is closed,
    whether through the context manager or an explicit close."""
    monkeypatch.setenv("REPRO_TILED_SCRATCH_DIR", str(tmp_path))
    a = _spd(24, seed=5)
    with _factor_from(a, tile=8, spill_over_bytes=0) as tf:
        assert list(tmp_path.glob("repro_tiled_*"))
        x = tf.solve(np.ones(24))
        assert np.abs(a @ x - 1.0).max() < 1e-8
    assert not list(tmp_path.glob("repro_tiled_*"))
    tf2 = _factor_from(a, tile=8, spill_over_bytes=0)
    tf2.close()
    tf2.close()
    assert not list(tmp_path.glob("repro_tiled_*"))


def test_from_factored_array_is_shared_and_close_is_a_noop():
    a = _spd(18, seed=6)
    owner = _factor_from(a, tile=8)
    shared = TiledCholeskyFactor.from_factored_array(owner._l, tile=8)
    assert shared.shared and not shared.spilled
    b = np.linspace(-1.0, 1.0, 18)
    ref = np.linalg.solve(a, b)
    assert np.abs(shared.solve(b) - ref).max() <= 1e-10 * np.abs(ref).max()
    shared.close()  # no-op: the owner's storage must survive
    assert np.abs(shared.solve(b) - ref).max() <= 1e-10 * np.abs(ref).max()
    with pytest.raises(ValueError):
        TiledCholeskyFactor.from_factored_array(np.zeros((3, 4)))
    owner.close()


def test_factor_plane_round_trips_tiled_payloads():
    """tiled_chol / tiled_schur payloads attach as read-only shared views."""
    from repro.substrate.factor_cache import FactorPlane, attach_shared_factor

    a = _spd(30, seed=7)
    tf = _factor_from(a, tile=9)
    ones = np.ones(30)
    w = np.linalg.solve(a, ones)
    s = float(ones @ w)
    b = np.linspace(0.0, 1.0, 30)
    ref = np.linalg.solve(a, b)
    with FactorPlane() as plane:
        h_chol = plane.publish(("k1",), ("tiled_chol", tf))
        h_schur = plane.publish(("k2",), ("tiled_schur", tf, w, s))
        got_chol, seg1 = attach_shared_factor(h_chol)
        got_schur, seg2 = attach_shared_factor(h_schur)
        assert got_chol[0] == "tiled_chol"
        attached = got_chol[1]
        assert isinstance(attached, TiledCholeskyFactor) and attached.shared
        assert not attached._l.flags.writeable
        assert np.abs(attached.solve(b) - ref).max() <= 1e-10 * np.abs(ref).max()
        kind, tf2, w2, s2 = got_schur
        assert kind == "tiled_schur"
        np.testing.assert_array_equal(w2, w)
        assert s2 == pytest.approx(s)
        assert np.abs(tf2.solve(b) - ref).max() <= 1e-10 * np.abs(ref).max()
        seg1.close()
        seg2.close()
    tf.close()


def test_factor_plane_rejects_spilled_tiled_factor():
    from repro.substrate.factor_cache import FactorPlane

    a = _spd(16, seed=8)
    tf = _factor_from(a, tile=8, spill_over_bytes=0)
    assert tf.spilled
    with FactorPlane() as plane:
        with pytest.raises(TypeError):
            plane.publish(("k",), ("tiled_chol", tf))
    tf.close()


@pytest.mark.parametrize("grounded", [True, False], ids=["grounded", "floating"])
def test_second_solver_adopts_cached_tiled_factor(tiny_layout, grounded):
    """An in-RAM tiled factor is shared through the process-wide cache: the
    second solver skips the rebuild, and neither close_tiled breaks the
    other's storage."""
    from repro.substrate.factor_cache import factor_cache_clear

    factor_cache_clear("bem_tiled_factor")
    try:
        kwargs = {"max_panels": 32, "rtol": 1e-10, "fft_workers": 1}
        first = EigenfunctionSolver(
            tiny_layout, _profile(grounded),
            dispatch=DispatchPolicy(force_path="tiled"), **kwargs,
        )
        assert first.prepare_tiled()
        assert first.stats.n_factor_rebuilds == 1
        second = EigenfunctionSolver(
            tiny_layout, _profile(grounded),
            dispatch=DispatchPolicy(force_path="tiled"), **kwargs,
        )
        assert second.prepare_tiled()
        assert second.stats.n_factor_rebuilds == 0  # adopted, not rebuilt
        g_first = extract_dense(first)
        first.close_tiled()  # shared storage: must not break the second solver
        g_second = extract_dense(second)
        np.testing.assert_array_equal(g_first, g_second)  # same factor, same G
        second.close_tiled()
    finally:
        factor_cache_clear("bem_tiled_factor")


def test_parallel_extractor_ships_tiled_factor_to_workers(tiny_layout):
    """The service path: a warm in-RAM tiled factor travels through the
    factor plane, so workers attach instead of re-running the tile-by-tile
    factorisation."""
    from repro.substrate.factor_cache import factor_cache_clear
    from repro.substrate.parallel import ParallelExtractor, SolverSpec

    factor_cache_clear("bem_tiled_factor")
    # a dense factor cached by another test under the same substrate key
    # would be published alongside and double the attach count
    factor_cache_clear("bem_direct_factor")
    try:
        spec = SolverSpec.bem(
            tiny_layout, _profile(), max_panels=32, rtol=1e-10,
            dispatch=DispatchPolicy(force_path="tiled"),
        )
        ref = EigenfunctionSolver(
            tiny_layout, _profile(),
            dispatch=DispatchPolicy(force_path="direct"),
            max_panels=32, rtol=1e-10, fft_workers=1, use_factor_cache=False,
        )
        g_ref = extract_dense(ref)
        with ParallelExtractor(
            spec, n_workers=2, prepare_tiled=True, min_parallel_columns=2
        ) as extractor:
            extractor.warm_up()
            assert any(
                key[0] == "bem_tiled_factor" for key in extractor.published_factor_keys
            )
            assert extractor.stats.n_factor_attaches == 2  # one per worker
            assert extractor.stats.n_factor_rebuilds == 0
            g = extractor.extract_dense()
        assert np.abs(g - g_ref).max() <= 1e-10 * np.abs(g_ref).max()
    finally:
        factor_cache_clear("bem_tiled_factor")
