"""Tests for the sparsity-pattern (spy) utilities."""

import numpy as np
from scipy import sparse

from repro.analysis.spy import bandwidth_profile, spy_statistics, spy_text


class TestSpyStatistics:
    def test_identity_statistics(self):
        stats = spy_statistics(sparse.eye(50))
        assert stats["nnz"] == 50
        assert stats["fraction_on_diagonal"] == 1.0
        assert stats["sparsity_factor"] == 50.0

    def test_dense_statistics(self):
        stats = spy_statistics(np.ones((10, 10)))
        assert stats["density"] == 1.0
        assert stats["sparsity_factor"] == 1.0

    def test_empty_matrix(self):
        stats = spy_statistics(sparse.csr_matrix((5, 5)))
        assert stats["nnz"] == 0
        assert stats["sparsity_factor"] == float("inf")


class TestSpyText:
    def test_render_dimensions(self):
        text = spy_text(sparse.eye(100), width=20)
        lines = text.splitlines()
        assert len(lines) == 20
        assert all(len(line) == 20 for line in lines)

    def test_diagonal_pattern_visible(self):
        text = spy_text(sparse.eye(64), width=8)
        lines = text.splitlines()
        for k, line in enumerate(lines):
            assert line[k] == "#"

    def test_small_matrix(self):
        text = spy_text(np.array([[1.0, 0.0], [0.0, 1.0]]), width=16)
        assert "#" in text


class TestBandwidthProfile:
    def test_diagonal_matrix_all_mass_in_first_bin(self):
        profile = bandwidth_profile(sparse.eye(40), n_bins=8)
        assert profile[0] == 1.0
        assert np.isclose(profile.sum(), 1.0)

    def test_dense_matrix_spreads_mass(self):
        profile = bandwidth_profile(np.ones((40, 40)), n_bins=8)
        assert profile[0] < 1.0
        assert np.isclose(profile.sum(), 1.0)

    def test_empty(self):
        assert np.allclose(bandwidth_profile(sparse.csr_matrix((5, 5))), 0.0)
