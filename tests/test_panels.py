"""Tests for the panel discretisation of the top surface."""

import numpy as np
import pytest

from repro.geometry import Contact, ContactLayout, PanelGrid, regular_grid


@pytest.fixture(scope="module")
def grid():
    return PanelGrid(regular_grid(n_side=4, size=64.0, fill=0.5), 32, 32)


class TestAssignment:
    def test_every_contact_gets_panels(self, grid):
        assert all(p.size > 0 for p in grid.contact_panels)

    def test_panel_owners_consistent(self, grid):
        for idx, panels in enumerate(grid.contact_panels):
            assert np.all(grid.panel_to_contact[panels] == idx)

    def test_contact_panel_count_matches_area(self, grid):
        # a contact of side 8 on a 2-unit panel grid covers 4x4 panels
        assert all(p.size == 16 for p in grid.contact_panels)

    def test_tiny_contact_snaps_to_nearest_panel(self):
        layout = ContactLayout([Contact(10.05, 10.05, 0.2, 0.2)], 64.0, 64.0)
        grid = PanelGrid(layout, 16, 16)
        assert grid.contact_panels[0].size == 1

    def test_too_coarse_grid_rejected(self):
        with pytest.raises(ValueError):
            PanelGrid(regular_grid(n_side=4, size=64.0), 1, 8)

    def test_for_layout_resolves_smallest_contact(self):
        layout = regular_grid(n_side=8, size=128.0, fill=0.25)
        grid = PanelGrid.for_layout(layout, panels_per_min_contact=2, max_panels=256)
        min_side = min(min(c.width, c.height) for c in layout.contacts)
        assert grid.hx <= min_side / 2 + 1e-9


class TestValueTransfer:
    def test_spread_then_sum_roundtrip(self, grid):
        values = np.arange(1.0, grid.layout.n_contacts + 1)
        panel_vals = grid.spread_contact_values(values)
        # summing panel values counts each panel once
        sums = grid.sum_panel_values(panel_vals)
        sizes = np.array([p.size for p in grid.contact_panels])
        assert np.allclose(sums, values * sizes)

    def test_spread_requires_correct_length(self, grid):
        with pytest.raises(ValueError):
            grid.spread_contact_values(np.ones(3))

    def test_incidence_matrix_shape_and_content(self, grid):
        inc = grid.contact_incidence()
        assert inc.shape == (grid.n_contact_panels, grid.layout.n_contacts)
        assert np.allclose(inc.sum(axis=0), [p.size for p in grid.contact_panels])
        assert np.allclose(inc.sum(axis=1), 1.0)

    def test_panel_centers(self, grid):
        centers = grid.panel_centers()
        assert centers.shape == (grid.n_panels, 2)
        assert centers[:, 0].min() == pytest.approx(grid.hx / 2)
        assert centers[:, 1].max() == pytest.approx(64.0 - grid.hy / 2)
