"""Tests for the finite-difference grid, assembly, preconditioners and solver."""

import numpy as np
import pytest
from scipy.sparse.linalg import eigsh

from repro import FiniteDifferenceSolver, SubstrateProfile, extract_dense, regular_grid
from repro.substrate.extraction import check_conductance_properties
from repro.substrate.fd import (
    FDAssembly,
    FastPoissonPreconditioner,
    Grid3D,
    PRECONDITIONER_NAMES,
    make_preconditioner,
)


@pytest.fixture(scope="module")
def tiny_layout():
    return regular_grid(n_side=3, size=48.0, fill=0.5)


@pytest.fixture(scope="module")
def tiny_profile():
    return SubstrateProfile.two_layer_example(size=48.0, grounded_backplane=True)


@pytest.fixture(scope="module")
def tiny_grid(tiny_layout, tiny_profile):
    return Grid3D(tiny_layout, tiny_profile, nx=12, ny=12, planes_per_layer=(2, 3))


@pytest.fixture(scope="module")
def tiny_assembly(tiny_grid):
    return FDAssembly(tiny_grid)


class TestGrid3D:
    def test_plane_counts_and_conductivities(self, tiny_grid):
        assert tiny_grid.nz == 5
        assert np.allclose(tiny_grid.sigma[:2], 1.0)
        assert np.allclose(tiny_grid.sigma[2:], 100.0)

    def test_vertical_spacing_covers_depth(self, tiny_grid, tiny_profile):
        assert np.isclose(tiny_grid.hz.sum(), tiny_profile.depth)

    def test_every_contact_has_top_nodes(self, tiny_grid, tiny_layout):
        assert len(tiny_grid.contact_top_nodes) == tiny_layout.n_contacts
        assert all(nodes.size > 0 for nodes in tiny_grid.contact_top_nodes)

    def test_contact_area_fraction_close_to_layout_coverage(self, tiny_grid, tiny_layout):
        assert abs(tiny_grid.contact_area_fraction() - tiny_layout.coverage) < 0.15

    def test_layer_boundary_conductance_series_formula(self, tiny_grid):
        gz = tiny_grid.vertical_conductances()
        area = tiny_grid.hx * tiny_grid.hy
        # boundary between plane 1 (sigma=1) and plane 2 (sigma=100)
        expected = 1.0 / (
            0.5 * tiny_grid.hz[1] / (1.0 * area) + 0.5 * tiny_grid.hz[2] / (100.0 * area)
        )
        assert np.isclose(gz[1], expected)

    def test_node_indexing_roundtrip(self, tiny_grid):
        idx = tiny_grid.node_index(3, 4, 2)
        assert idx == (2 * tiny_grid.nx + 3) * tiny_grid.ny + 4

    def test_too_coarse_rejected(self, tiny_layout, tiny_profile):
        with pytest.raises(ValueError):
            Grid3D(tiny_layout, tiny_profile, nx=1, ny=8)


class TestAssembly:
    def test_matrix_symmetric(self, tiny_assembly):
        a = tiny_assembly.matrix
        assert abs(a - a.T).max() < 1e-10

    def test_matrix_positive_definite(self, tiny_assembly):
        smallest = eigsh(tiny_assembly.matrix, k=1, which="SA", return_eigenvectors=False)
        assert smallest[0] > 0

    def test_interior_row_sums_vanish(self, tiny_assembly, tiny_grid):
        """Rows not touching a Dirichlet boundary are exactly balanced (KCL)."""
        a = tiny_assembly.matrix
        row_sums = np.asarray(a.sum(axis=1)).ravel()
        # pick an interior node away from top and bottom planes
        node = tiny_grid.node_index(5, 5, 2)
        assert abs(row_sums[node]) < 1e-9 * a.diagonal().max()

    def test_rhs_only_under_contacts(self, tiny_assembly, tiny_grid):
        v = np.arange(1.0, 10.0)
        b = tiny_assembly.rhs_for_contact_voltages(v)
        nz = np.flatnonzero(b)
        allowed = np.concatenate(tiny_grid.contact_top_nodes)
        assert set(nz) <= set(allowed)

    def test_currents_balance_with_grounded_backplane(self, tiny_assembly):
        """All contacts at 1 V push net positive current into the substrate."""
        v = np.ones(9)
        b = tiny_assembly.rhs_for_contact_voltages(v)
        from scipy.sparse.linalg import spsolve

        phi = spsolve(tiny_assembly.matrix.tocsc(), b)
        currents = tiny_assembly.contact_currents(v, phi)
        assert np.all(currents > 0)


class TestFastPoissonPreconditioner:
    def test_symmetric_positive_definite(self, tiny_grid):
        pre = FastPoissonPreconditioner(tiny_grid, "area_weighted")
        m_inv = pre.as_dense()
        assert np.allclose(m_inv, m_inv.T, rtol=1e-8, atol=1e-10)
        assert np.linalg.eigvalsh(0.5 * (m_inv + m_inv.T)).min() > 0

    def test_exact_for_uniform_top_bc(self, tiny_layout, tiny_profile):
        """With full contact coverage the Dirichlet-mode fast solver is an exact inverse."""
        full = regular_grid(n_side=1, size=48.0, fill=0.999)
        grid = Grid3D(full, tiny_profile, nx=8, ny=8, planes_per_layer=(1, 2))
        assembly = FDAssembly(grid)
        pre = FastPoissonPreconditioner(grid, "dirichlet")
        rng = np.random.default_rng(0)
        r = rng.standard_normal(grid.n_nodes)
        x = pre.solve(assembly.matrix @ r)
        assert np.allclose(x, r, rtol=1e-8, atol=1e-8)

    def test_fraction_resolution(self, tiny_grid):
        assert FastPoissonPreconditioner(tiny_grid, "dirichlet").top_fraction == 1.0
        assert FastPoissonPreconditioner(tiny_grid, "neumann").top_fraction == 0.0
        area = FastPoissonPreconditioner(tiny_grid, "area_weighted").top_fraction
        assert 0.0 < area < 1.0
        assert FastPoissonPreconditioner(tiny_grid, 0.3).top_fraction == 0.3

    def test_invalid_mode(self, tiny_grid):
        with pytest.raises(ValueError):
            FastPoissonPreconditioner(tiny_grid, "bogus")
        with pytest.raises(ValueError):
            FastPoissonPreconditioner(tiny_grid, 1.5)


class TestPreconditionerFactory:
    @pytest.mark.parametrize("name", PRECONDITIONER_NAMES)
    def test_all_named_preconditioners_build_and_apply(self, name, tiny_assembly):
        m = make_preconditioner(name, tiny_assembly)
        if name == "none":
            assert m is None
            return
        r = np.ones(tiny_assembly.grid.n_nodes)
        out = m @ r
        assert out.shape == r.shape
        assert np.all(np.isfinite(out))

    def test_unknown_name_rejected(self, tiny_assembly):
        with pytest.raises(ValueError):
            make_preconditioner("does-not-exist", tiny_assembly)


class TestFiniteDifferenceSolver:
    @pytest.fixture(scope="class")
    def solver(self, tiny_layout, tiny_profile):
        return FiniteDifferenceSolver(
            tiny_layout, tiny_profile, nx=12, ny=12, planes_per_layer=(2, 3)
        )

    def test_conductance_properties(self, solver):
        g = extract_dense(solver, symmetrize=True)
        checks = check_conductance_properties(g, grounded_backplane=True, symmetry_tol=1e-5)
        assert all(checks.values()), checks

    def test_matches_bem_solver_shape(self, solver, tiny_layout):
        """FD and BEM agree on the coupling *pattern* (ratios), not absolute values."""
        from repro import EigenfunctionSolver

        profile = SubstrateProfile.two_layer_example(size=48.0, grounded_backplane=True)
        bem = EigenfunctionSolver(tiny_layout, profile, max_panels=32)
        g_fd = extract_dense(solver, symmetrize=True)
        g_bem = extract_dense(bem, symmetrize=True)
        # normalised nearest-neighbour vs far coupling ratios agree within a factor 3
        r_fd = abs(g_fd[0, 1] / g_fd[0, 8])
        r_bem = abs(g_bem[0, 1] / g_bem[0, 8])
        assert 1.0 / 3.0 < r_fd / r_bem < 3.0

    def test_fast_poisson_preconditioners_beat_jacobi(self, tiny_layout, tiny_profile, rng):
        """Table 2.1 direction: fast-solver preconditioners need far fewer iterations."""
        iters = {}
        for name in ("fast_poisson_dirichlet", "fast_poisson_neumann", "fast_poisson_area", "jacobi"):
            s = FiniteDifferenceSolver(
                tiny_layout, tiny_profile, nx=12, ny=12, planes_per_layer=(2, 3),
                preconditioner=name,
            )
            for _ in range(3):
                s.solve_currents(rng.standard_normal(9))
            iters[name] = s.mean_iterations_per_solve()
        for name in ("fast_poisson_dirichlet", "fast_poisson_neumann", "fast_poisson_area"):
            assert iters[name] < 0.5 * iters["jacobi"]

    def test_ic_preconditioner_converges(self, tiny_layout, tiny_profile, rng):
        s = FiniteDifferenceSolver(
            tiny_layout, tiny_profile, nx=10, ny=10, planes_per_layer=(1, 2),
            preconditioner="ic",
        )
        currents = s.solve_currents(rng.standard_normal(9))
        assert np.all(np.isfinite(currents))
        assert s.mean_iterations_per_solve() < 200

    def test_wrong_voltage_length(self, solver):
        with pytest.raises(ValueError):
            solver.solve_currents(np.ones(5))

    def test_solve_potentials_shape(self, solver):
        phi = solver.solve_potentials(np.ones(9))
        assert phi.shape == (solver.grid.n_nodes,)
