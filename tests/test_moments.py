"""Tests for polynomial moments and moment-shift matrices."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.moments import (
    contact_moment_matrix,
    moment_count,
    moment_orders,
    moment_shift_matrix,
)
from repro.geometry import Contact, ContactLayout


class TestOrders:
    @pytest.mark.parametrize("p,count", [(0, 1), (1, 3), (2, 6), (3, 10)])
    def test_moment_count(self, p, count):
        assert moment_count(p) == count
        assert len(moment_orders(p)) == count

    def test_orders_graded(self):
        orders = moment_orders(2)
        assert orders[0] == (0, 0)
        assert set(orders) == {(0, 0), (1, 0), (0, 1), (2, 0), (1, 1), (0, 2)}

    def test_negative_order_rejected(self):
        with pytest.raises(ValueError):
            moment_orders(-1)


class TestContactMomentMatrix:
    def test_zeroth_row_is_area(self):
        layout = ContactLayout([Contact(0, 0, 2, 3), Contact(5, 5, 1, 1)], 16, 16)
        m = contact_moment_matrix(layout, np.array([0, 1]), (0.0, 0.0), 2)
        assert m.shape == (6, 2)
        assert np.allclose(m[0], [6.0, 1.0])

    def test_voltage_vector_moments_are_linear(self):
        layout = ContactLayout([Contact(0, 0, 2, 2), Contact(4, 0, 2, 2)], 16, 16)
        m = contact_moment_matrix(layout, np.array([0, 1]), (3.0, 1.0), 2)
        v = np.array([2.0, -1.0])
        expected = 2.0 * m[:, 0] - 1.0 * m[:, 1]
        assert np.allclose(m @ v, expected)


class TestShiftMatrix:
    def test_identity_for_zero_shift(self):
        s = moment_shift_matrix((1.0, 2.0), (1.0, 2.0), 2)
        assert np.allclose(s, np.eye(6))

    def test_shift_matches_direct_computation(self):
        layout = ContactLayout([Contact(1.0, 2.0, 3.0, 2.0)], 16, 16)
        old_center = (2.0, 3.0)
        new_center = (0.5, 1.0)
        m_old = contact_moment_matrix(layout, np.array([0]), old_center, 2)
        m_new = contact_moment_matrix(layout, np.array([0]), new_center, 2)
        shift = moment_shift_matrix(old_center, new_center, 2)
        assert np.allclose(shift @ m_old, m_new, rtol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(
        dx1=st.floats(-5, 5), dy1=st.floats(-5, 5),
        dx2=st.floats(-5, 5), dy2=st.floats(-5, 5),
    )
    def test_property_shift_composition(self, dx1, dy1, dx2, dy2):
        """Shifting A->B then B->C equals shifting A->C."""
        a = (0.0, 0.0)
        b = (dx1, dy1)
        c = (dx1 + dx2, dy1 + dy2)
        s_ab = moment_shift_matrix(a, b, 2)
        s_bc = moment_shift_matrix(b, c, 2)
        s_ac = moment_shift_matrix(a, c, 2)
        assert np.allclose(s_bc @ s_ab, s_ac, atol=1e-8)

    def test_shift_invertible(self):
        s = moment_shift_matrix((0.0, 0.0), (2.0, -1.0), 2)
        s_inv = moment_shift_matrix((2.0, -1.0), (0.0, 0.0), 2)
        assert np.allclose(s @ s_inv, np.eye(6), atol=1e-12)
