"""Schema-first wire protocol: exact round trips, envelopes, typed errors.

The contract under test is *fingerprint exactness*: a spec JSON-encoded,
shipped, and decoded must be the same coalescing key — same
``SolverSpec.fingerprint`` — and solve to the same columns, or the result
corpus / factor artifacts / cross-request coalescing would silently stop
matching across the wire boundary.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import regular_grid
from repro.experiments.examples import paper_examples
from repro.service import (
    JobExpiredError,
    JobRequest,
    QueueSaturatedError,
    UnknownJobError,
    WireFormatError,
    request_from_wire,
    request_to_wire,
    spec_from_wire,
    spec_to_wire,
)
from repro.service.jobs import SCHEMA_VERSION
from repro.service.wire import (
    BadRequestError,
    LegacyPickleDisabledError,
    ServiceError,
    decode_array,
    decode_value,
    encode_array,
    encode_value,
    error_envelope,
    raise_for_envelope,
    snapshot_to_wire,
)
from repro.substrate.extraction import extract_columns
from repro.substrate.parallel import SolverSpec


def roundtrip(doc):
    """Through real JSON text — exactly what the HTTP wire does."""
    return json.loads(json.dumps(doc))


# ------------------------------------------------------- fingerprint exactness
@pytest.mark.parametrize("name", ["1a", "1b", "2", "3"])
def test_every_example_spec_roundtrips_fingerprint_exact(name):
    """Each paper ExampleConfig (bem and fd kinds, tuple-valued options)
    crosses the JSON wire with an identical fingerprint."""
    cfg = paper_examples(n_side=4)[name]
    spec = cfg.build_spec()
    decoded = spec_from_wire(roundtrip(spec_to_wire(spec)))
    assert decoded.fingerprint == spec.fingerprint
    assert decoded.kind == spec.kind
    assert decoded.options == spec.options


@pytest.mark.parametrize("name", ["1a", "1b"])
def test_decoded_spec_solves_identically(name):
    """Columns solved from a decoded spec agree with the original to 1e-10."""
    cfg = paper_examples(n_side=4)[name]
    spec = cfg.build_spec()
    decoded = spec_from_wire(roundtrip(spec_to_wire(spec)))
    cols = np.array([0, 3, 7])
    original = extract_columns(spec.build(), cols)
    recovered = extract_columns(decoded.build(), cols)
    scale = np.abs(original).max()
    assert np.abs(recovered - original).max() / scale < 1e-10


def test_dense_spec_roundtrips_matrix_digest_exact():
    """An ndarray-valued option (the dense G) survives bit-exactly, so the
    digest-based fingerprint item matches."""
    layout = regular_grid(n_side=2, size=128.0, fill=0.5)
    rng = np.random.default_rng(7)
    matrix = rng.normal(size=(4, 4))
    matrix = matrix + matrix.T
    spec = SolverSpec.dense(matrix, layout)
    decoded = spec_from_wire(roundtrip(spec_to_wire(spec)))
    assert decoded.fingerprint == spec.fingerprint
    np.testing.assert_array_equal(decoded.options["matrix"], matrix)


def test_request_roundtrip_preserves_every_field(small_layout, small_profile):
    spec = SolverSpec.bem(small_layout, small_profile, max_panels=32, rtol=1e-10)
    request = JobRequest(
        spec,
        columns=(0, 5),
        pairs=((1, 2), (3, 4)),
        tolerance=3e-9,
        priority=7,
        timeout_s=12.5,
    )
    decoded = request_from_wire(roundtrip(request_to_wire(request)))
    assert decoded.columns == request.columns
    assert decoded.pairs == request.pairs
    assert decoded.tolerance == request.tolerance
    assert decoded.priority == request.priority
    assert decoded.timeout_s == request.timeout_s
    # layouts/profiles compare by identity; the value-level contract is the
    # fingerprint, which folds in every geometric and physical parameter
    assert decoded.spec.options == request.spec.options
    assert decoded.fingerprint == request.fingerprint


# ------------------------------------------------------------- tagged values
def test_tuple_options_do_not_decay_to_lists():
    """repr((2, 4, 2)) != repr([2, 4, 2]) — a decayed tuple would change the
    fingerprint, so tuples travel tagged."""
    value = {"planes_per_layer": (2, 4, 2), "plain": [1, 2]}
    decoded = decode_value(roundtrip(encode_value(value)))
    assert decoded == value
    assert isinstance(decoded["planes_per_layer"], tuple)
    assert isinstance(decoded["plain"], list)


def test_nested_and_scalar_values_roundtrip():
    value = {
        "a": None,
        "b": True,
        "c": 3,
        "d": 2.5,
        "e": "s",
        "f": ((1, 2), [3, (4,)]),
    }
    assert decode_value(roundtrip(encode_value(value))) == value


def test_numpy_scalars_encode_as_python_scalars():
    assert encode_value(np.float64(1.5)) == 1.5
    assert encode_value(np.int64(3)) == 3


def test_reserved_tag_key_is_rejected():
    with pytest.raises(WireFormatError, match="reserved"):
        encode_value({"__wire__": "nope"})
    with pytest.raises(WireFormatError, match="unknown wire tag"):
        decode_value({"__wire__": "mystery"})


def test_unencodable_value_is_rejected():
    with pytest.raises(WireFormatError, match="not wire-encodable"):
        encode_value(object())
    with pytest.raises(WireFormatError, match="string-keyed"):
        encode_value({1: "x"})


# ------------------------------------------------------------------- ndarrays
@pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64, np.complex128])
def test_array_roundtrip_bit_exact(dtype):
    rng = np.random.default_rng(0)
    array = rng.normal(size=(5, 3)).astype(dtype)
    decoded = decode_array(roundtrip(encode_array(array)))
    assert decoded.dtype == array.dtype
    np.testing.assert_array_equal(decoded, array)


def test_non_contiguous_array_roundtrips():
    array = np.arange(24, dtype=float).reshape(4, 6)[::2, ::3]
    decoded = decode_array(roundtrip(encode_array(array)))
    np.testing.assert_array_equal(decoded, array)


def test_malformed_array_documents_are_rejected():
    good = encode_array(np.ones(4))
    with pytest.raises(WireFormatError, match="size does not match"):
        decode_array({**good, "shape": [5]})
    with pytest.raises(WireFormatError, match="object dtypes"):
        decode_array({**good, "dtype": "O"})
    with pytest.raises(WireFormatError, match="malformed ndarray"):
        decode_array({"__wire__": "ndarray"})


# ------------------------------------------------------------------- requests
def test_unknown_schema_version_fails_loudly():
    doc = {"schema_version": SCHEMA_VERSION + 1, "spec": None}
    with pytest.raises(WireFormatError, match="unsupported schema_version"):
        request_from_wire(doc)


def test_malformed_spec_documents_are_rejected():
    with pytest.raises(WireFormatError, match="kind"):
        spec_from_wire({"kind": "quantum", "layout": None})
    with pytest.raises(WireFormatError):
        spec_from_wire({"kind": "bem", "layout": {"contacts": []}})
    with pytest.raises(WireFormatError):
        request_from_wire("not a dict")


# ----------------------------------------------------------- error envelopes
def test_error_envelope_shape():
    doc = error_envelope("queue_saturated", "busy", retry_after=2.5)
    assert doc == {
        "error": {"code": "queue_saturated", "message": "busy", "retry_after": 2.5}
    }


@pytest.mark.parametrize(
    "code,status,exc_type",
    [
        ("bad_request", 400, BadRequestError),
        ("unknown_job", 404, UnknownJobError),
        ("job_expired", 410, JobExpiredError),
        ("queue_saturated", 429, QueueSaturatedError),
        ("unavailable", 503, ServiceError),
        ("legacy_pickle_disabled", 410, LegacyPickleDisabledError),
        ("something_else", 500, ServiceError),
    ],
)
def test_envelopes_decode_to_typed_exceptions(code, status, exc_type):
    with pytest.raises(exc_type):
        raise_for_envelope(status, error_envelope(code, "boom"))


def test_queue_saturated_envelope_carries_retry_hint():
    with pytest.raises(QueueSaturatedError) as info:
        raise_for_envelope(429, error_envelope("queue_saturated", "busy", 4.0))
    assert info.value.retry_after_s == 4.0


def test_unknown_job_is_a_keyerror_with_a_clean_message():
    with pytest.raises(UnknownJobError) as info:
        raise_for_envelope(404, error_envelope("unknown_job", "unknown job id 'x'"))
    assert isinstance(info.value, KeyError)
    assert str(info.value) == "unknown job id 'x'"  # no KeyError repr-quoting


def test_non_envelope_body_still_raises():
    with pytest.raises(ServiceError) as info:
        raise_for_envelope(503, {"ok": False})
    assert info.value.status == 503


# ------------------------------------------------------------------ snapshots
def test_snapshot_to_wire_encodes_arrays():
    snapshot = {
        "schema_version": SCHEMA_VERSION,
        "status": "done",
        "result": [[1.0, 2.0], [3.0, 4.0]],
        "pair_values": [5.0],
    }
    doc = roundtrip(snapshot_to_wire(snapshot))
    assert doc["result"]["__wire__"] == "ndarray"
    np.testing.assert_array_equal(
        decode_array(doc["result"]), [[1.0, 2.0], [3.0, 4.0]]
    )
    np.testing.assert_array_equal(decode_array(doc["pair_values"]), [5.0])
