"""Tests for the black-box solver interface and wrappers."""

import numpy as np
import pytest

from repro import CountingSolver, DenseMatrixSolver
from repro.geometry import Contact, ContactLayout
from repro.substrate import CallableSolver


@pytest.fixture
def two_contact_layout():
    return ContactLayout([Contact(2, 2, 4, 4), Contact(20, 20, 4, 4)], 32, 32)


class TestDenseMatrixSolver:
    def test_apply_alias(self, two_contact_layout):
        g = np.array([[2.0, -1.0], [-1.0, 2.0]])
        solver = DenseMatrixSolver(g, two_contact_layout)
        v = np.array([1.0, 0.0])
        assert np.allclose(solver.apply(v), solver.solve_currents(v))
        assert solver.n_contacts == 2

    def test_rejects_nonsquare(self, two_contact_layout):
        with pytest.raises(ValueError):
            DenseMatrixSolver(np.ones((2, 3)), two_contact_layout)


class TestCountingSolver:
    def test_counts_and_reduction(self, two_contact_layout):
        g = np.eye(2)
        counting = CountingSolver(DenseMatrixSolver(g, two_contact_layout))
        assert counting.solve_reduction_factor() == float("inf")
        counting.solve_currents(np.ones(2))
        counting.solve_currents(np.ones(2))
        assert counting.solve_count == 2
        assert counting.solve_reduction_factor() == pytest.approx(1.0)

    def test_forwards_layout(self, two_contact_layout):
        counting = CountingSolver(DenseMatrixSolver(np.eye(2), two_contact_layout))
        assert counting.layout is two_contact_layout


class TestCallableSolver:
    def test_wraps_function(self, two_contact_layout):
        solver = CallableSolver(lambda v: 3.0 * v, two_contact_layout)
        assert np.allclose(solver.solve_currents(np.array([1.0, 2.0])), [3.0, 6.0])
