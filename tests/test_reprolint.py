"""Fixture suite for the reprolint static analyzer (``tools/reprolint``).

Every rule family is exercised through the public API (:func:`lint_source`
and :func:`lint_paths`) with a known-bad snippet that must fire and a
known-good snippet that must stay quiet, so a regression in either
direction (missed bug or new false positive) fails loudly.  The closing
test lints the real repo tree — the same invocation CI runs — and pins it
clean, which is what makes the in-source annotations trustworthy.
"""

from __future__ import annotations

import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import RULES, explain, lint_paths, lint_source  # noqa: E402
from tools.reprolint.__main__ import main as reprolint_main  # noqa: E402


def rules_of(diags) -> list[str]:
    return [diag.rule for diag in diags]


def lint(snippet: str, path: str = "src/repro/fixture.py"):
    return lint_source(textwrap.dedent(snippet), path=path)


# ---------------------------------------------------------------- RL100 locks
LOCK_BAD = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0  # reprolint: guarded-by(_lock)

        def bump(self):
            self.total += 1
"""

LOCK_GOOD = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.total = 0  # reprolint: guarded-by(_lock)

        def bump(self):
            with self._lock:
                self.total += 1

        # reprolint: holds(_lock)
        def _bump_locked(self):
            self.total += 1
"""


def test_lock_rule_fires_on_unguarded_access():
    diags = lint(LOCK_BAD)
    assert rules_of(diags) == ["RL100"]
    assert "total" in diags[0].message and "_lock" in diags[0].message


def test_lock_rule_quiet_on_guarded_and_holds_access():
    assert lint(LOCK_GOOD) == []


def test_lock_rule_init_is_exempt_but_nested_function_is_not():
    snippet = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.total = 0  # reprolint: guarded-by(_lock)
                self.total = 1  # re-assignment in __init__ stays legal

            def schedule(self):
                def on_timer():
                    self.total += 1  # escapes the lock scope
                return on_timer
    """
    assert rules_of(lint(snippet)) == ["RL100"]


def test_lock_annotation_on_non_attribute_is_malformed():
    snippet = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                total = 0  # reprolint: guarded-by(_lock)
    """
    assert "RL101" in rules_of(lint(snippet))


def test_holds_with_unknown_lock_is_malformed():
    snippet = """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.total = 0  # reprolint: guarded-by(_lock)

            # reprolint: holds(_mutex)
            def peek(self):
                return 1
    """
    assert "RL101" in rules_of(lint(snippet))


# ---------------------------------------------------------------- RR200 leaks
LEAK_BAD_NO_RELEASE = """
    from multiprocessing import shared_memory

    def scratch():
        shm = shared_memory.SharedMemory(create=True, size=16)
        shm.buf[0] = 1
"""

LEAK_BAD_HAPPY_PATH_ONLY = """
    import sqlite3

    def rows(path):
        conn = sqlite3.connect(path)
        out = conn.execute("select 1").fetchall()
        conn.close()
        return out
"""

LEAK_GOOD = """
    import sqlite3
    from multiprocessing import shared_memory

    def rows_ctx(path):
        with sqlite3.connect(path) as conn:
            return conn.execute("select 1").fetchall()

    def rows_finally(path):
        conn = sqlite3.connect(path)
        try:
            return conn.execute("select 1").fetchall()
        finally:
            conn.close()

    def make_conn(path):
        return sqlite3.connect(path)

    class Plane:
        def __init__(self):
            # reprolint: owned-by(Plane)
            self._shm = shared_memory.SharedMemory(create=True, size=16)
"""


def test_leak_rule_fires_when_resource_never_released():
    assert rules_of(lint(LEAK_BAD_NO_RELEASE)) == ["RR200"]


def test_leak_rule_fires_on_happy_path_only_release():
    diags = lint(LEAK_BAD_HAPPY_PATH_ONLY)
    assert rules_of(diags) == ["RR201"]
    assert "happy path" in diags[0].message


def test_leak_rule_quiet_on_with_finally_return_and_owned_by():
    assert lint(LEAK_GOOD) == []


def test_leak_rule_fires_on_unannotated_self_storage():
    snippet = """
        from concurrent.futures import ProcessPoolExecutor

        class Runner:
            def start(self):
                self._pool = ProcessPoolExecutor(max_workers=2)
    """
    assert rules_of(lint(snippet)) == ["RR200"]


def test_leak_rule_attribute_read_is_not_an_ownership_escape():
    # returning shm.name copies a field; the segment itself still leaks
    snippet = """
        from multiprocessing import shared_memory

        def publish():
            shm = shared_memory.SharedMemory(create=True, size=16)
            return shm.name
    """
    assert rules_of(lint(snippet)) == ["RR200"]


# -------------------------------------------------------------- RP300 pickles
PICKLE_SNIPPET = """
    import pickle

    def read(blob):
        return pickle.loads(blob)
"""

HANDLER_UNGUARDED = """
    import pickle

    class Handler:
        def do_POST(self):
            payload = pickle.loads(self.rfile.read(10))
            self.respond(payload)
"""

HANDLER_GUARDED = """
    import pickle

    class Handler:
        def do_POST(self):
            if not self._require_legacy_pickle_optin():
                return
            payload = pickle.loads(self.rfile.read(10))
            self.respond(payload)
"""

HANDLER_OLD_GUARD = """
    import pickle

    class Handler:
        def do_POST(self):
            if not self._require_trusted_peer():
                return
            payload = pickle.loads(self.rfile.read(10))
            self.respond(payload)
"""


def test_pickle_rule_fires_outside_allowlist():
    diags = lint(PICKLE_SNIPPET, path="src/repro/service/jobs.py")
    assert rules_of(diags) == ["RP300"]


def test_pickle_rule_quiet_in_allowlisted_and_dev_paths():
    assert lint(PICKLE_SNIPPET, path="src/repro/service/persistence.py") == []
    assert lint(PICKLE_SNIPPET, path="src/repro/substrate/parallel.py") == []
    assert lint(PICKLE_SNIPPET, path="tests/test_roundtrip.py") == []
    assert lint(PICKLE_SNIPPET, path="benchmarks/bench_pickle.py") == []


def test_pickle_rule_requires_guard_in_server_handlers():
    for server in (
        "src/repro/service/server.py",
        "src/repro/service/aserver.py",
    ):
        assert rules_of(lint(HANDLER_UNGUARDED, path=server)) == ["RP301"]
        assert lint(HANDLER_GUARDED, path=server) == []


def test_pickle_rule_rejects_the_retired_loopback_guard():
    """The pre-/v1 guard name no longer counts: unpickling must sit behind
    the explicit legacy opt-in gate, not just the loopback check."""
    server = "src/repro/service/server.py"
    assert rules_of(lint(HANDLER_OLD_GUARD, path=server)) == ["RP301"]


def test_pickle_rule_sees_through_import_aliases():
    snippet = """
        import pickle as pkl

        def read(blob):
            return pkl.loads(blob)
    """
    assert rules_of(lint(snippet)) == ["RP300"]


# -------------------------------------------------------- RS400 suppressions
def test_suppression_with_reason_silences_the_finding():
    snippet = """
        import pickle

        def read(blob):
            # reprolint: disable=RP300 -- fixture bytes written by this test
            return pickle.loads(blob)
    """
    assert lint(snippet) == []


def test_suppression_without_reason_is_rejected_and_suppresses_nothing():
    snippet = """
        import pickle

        def read(blob):
            # reprolint: disable=RP300
            return pickle.loads(blob)
    """
    fired = rules_of(lint(snippet))
    assert "RS400" in fired and "RP300" in fired


def test_suppression_for_other_rule_does_not_mask_the_finding():
    snippet = """
        import pickle

        def read(blob):
            # reprolint: disable=RR200 -- wrong rule id on purpose
            return pickle.loads(blob)
    """
    fired = rules_of(lint(snippet))
    assert "RP300" in fired and "RL101" not in fired


# -------------------------------------------------------- engine / CLI / misc
def test_syntax_error_reports_rx000():
    assert rules_of(lint_source("def broken(:\n", path="x.py")) == ["RX000"]


def test_unconsumed_annotation_is_flagged():
    snippet = """
        def free_function():
            x = 1  # reprolint: owned-by(Nobody)
            return x
    """
    assert "RL101" in rules_of(lint(snippet))


def test_rule_catalogue_and_explain_cover_every_rule():
    assert {"RL100", "RL101", "RR200", "RR201", "RP300", "RP301", "RS400", "RX000"} <= set(
        RULES
    )
    for rule_id in RULES:
        text = explain(rule_id)
        assert rule_id in text and RULES[rule_id]["title"] in text


def test_cli_explain_and_exit_codes(tmp_path, capsys):
    assert reprolint_main(["--explain", "RR200"]) == 0
    assert "RR200" in capsys.readouterr().out
    assert reprolint_main(["--explain", "ZZ999"]) == 2
    capsys.readouterr()

    bad = tmp_path / "bad.py"
    bad.write_text(textwrap.dedent(LEAK_BAD_NO_RELEASE), encoding="utf-8")
    report = tmp_path / "report.txt"
    assert reprolint_main([str(bad), "--report", str(report)]) == 1
    assert "RR200" in report.read_text(encoding="utf-8")
    capsys.readouterr()

    good = tmp_path / "good.py"
    good.write_text("x = 1\n", encoding="utf-8")
    assert reprolint_main([str(good)]) == 0
    assert "clean" in capsys.readouterr().out


def test_diagnostics_carry_position_and_format():
    diags = lint(LOCK_BAD, path="pkg/mod.py")
    (diag,) = diags
    assert diag.path == "pkg/mod.py" and diag.line > 1 and diag.col >= 1
    formatted = diag.format()
    assert formatted.startswith("pkg/mod.py:") and ":RL100 " not in formatted
    assert " RL100 " in formatted


# ------------------------------------------------------------ the real tree
def test_repository_tree_is_lint_clean():
    """The exact invocation CI blocks on: src/ tests/ benchmarks/ are clean."""
    diags, n_files = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    )
    assert [diag.format() for diag in diags] == []
    assert n_files > 50  # the sweep actually walked the tree


def test_annotated_modules_really_carry_annotations():
    """Guard against the annotations being refactored away while the lint
    keeps passing vacuously."""
    expected = {
        "src/repro/service/scheduler.py": "guarded-by(_cv)",
        "src/repro/service/result_store.py": "guarded-by(_lock)",
        "src/repro/service/metrics.py": "guarded-by(_lock)",
        "src/repro/service/persistence.py": "guarded-by(_lock); owned-by(SqliteResultBackend)",
        "src/repro/substrate/factor_cache.py": "guarded-by(_lock)",
        "src/repro/substrate/parallel.py": "owned-by(ParallelExtractor)",
        "src/repro/substrate/tiled.py": "owned-by(TiledCholeskyFactor)",
    }
    for rel_path, marker in expected.items():
        text = (REPO_ROOT / rel_path).read_text(encoding="utf-8")
        assert f"reprolint: {marker}" in text, rel_path


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
