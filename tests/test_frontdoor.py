"""Asyncio front door: /v1 routes, NDJSON streaming, HTTP micro-batching.

The load-bearing assertions here are the PR's acceptance criteria: streamed
columns reach the client *before their job completes* (all ``columns``
events of a coalesced group precede every ``done`` event of that group),
concurrent streaming clients are served from one event loop, micro-batched
pair queries collapse into fewer scheduler submits (counter-pinned), no
pickle crosses the wire unless explicitly revived, and every error body is
the one envelope.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.service import (
    AsyncExtractionServer,
    JobRequest,
    JobState,
    LegacyPickleDisabledError,
    QueueSaturatedError,
    Scheduler,
    ServiceClient,
    UnknownJobError,
)
from repro.service.wire import request_to_wire
from repro.substrate.parallel import SolverSpec


# ------------------------------------------------------------------- fixtures
@pytest.fixture(scope="module")
def small_layout_module():
    from repro import regular_grid

    return regular_grid(n_side=4, size=128.0, fill=0.5)


@pytest.fixture(scope="module")
def small_profile_module():
    from repro import SubstrateProfile

    return SubstrateProfile.two_layer_example(size=128.0, resistive_bottom=True)


@pytest.fixture(scope="module")
def small_g_module(small_layout_module, small_profile_module):
    from repro import EigenfunctionSolver, extract_dense

    solver = EigenfunctionSolver(
        small_layout_module, small_profile_module, max_panels=32, rtol=1e-10
    )
    return extract_dense(solver, symmetrize=True)


@pytest.fixture(scope="module")
def bem_spec(small_layout_module, small_profile_module):
    return SolverSpec.bem(
        small_layout_module, small_profile_module, max_panels=32, rtol=1e-10
    )


@pytest.fixture(scope="module")
def dense_spec(small_g_module, small_layout_module):
    return SolverSpec.dense(small_g_module, small_layout_module)


def get_json(url: str, expect_status: int | None = None):
    """Raw GET: (status, parsed body, headers) without the typed client."""
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as exc:
        body = json.loads(exc.read() or b"{}")
        if expect_status is not None:
            assert exc.code == expect_status
        return exc.code, body, exc.headers


# --------------------------------------------------------------- happy path
def test_async_end_to_end_matches_reference(bem_spec, small_g_module):
    with AsyncExtractionServer(n_workers=1) as server:
        with ServiceClient(server.url, timeout_s=60.0) as client:
            assert client.healthz()["ok"] is True
            block = client.extract(
                JobRequest(bem_spec, columns=(0, 2, 5)), timeout_s=60.0
            )
            scale = np.abs(small_g_module).max()
            # 1e-8 against the *symmetrized* dense reference (same bound the
            # scheduler tests use); exact 1e-10 decoded-vs-original agreement
            # is pinned in test_wire.py
            assert np.abs(block - small_g_module[:, [0, 2, 5]]).max() / scale < 1e-8
            stats = client.stats()
            assert stats["schema_version"] == 1
            # the schema wire carried everything: no pickle was served
            assert stats["frontdoor"]["legacy_pickle_submits"] == 0


def test_snapshot_schema_version_and_wire_arrays(dense_spec):
    with AsyncExtractionServer(n_workers=1) as server:
        with ServiceClient(server.url, timeout_s=30.0) as client:
            job_id = client.submit(JobRequest(dense_spec, columns=(1,)))
            snapshot = client.wait(job_id, timeout_s=30.0)
            assert snapshot["schema_version"] == 1
            assert snapshot["status"] == JobState.DONE
            assert isinstance(snapshot["result"], np.ndarray)
            assert snapshot["columns"] == [1]


# ---------------------------------------------------------------- streaming
def test_streamed_columns_arrive_before_job_completion(dense_spec, small_g_module):
    """Two same-substrate requests coalesce into one solve; every streamed
    ``columns`` event lands before either job's ``done`` event — a client
    sees its columns while the jobs are still RUNNING."""
    scheduler = Scheduler(n_workers=1, autostart=False)
    try:
        with AsyncExtractionServer(scheduler=scheduler) as server:
            client = ServiceClient(server.url, timeout_s=30.0)
            requests = [
                JobRequest(dense_spec, columns=(0, 1)),
                JobRequest(dense_spec, columns=(2, 3)),
            ]
            events: list[dict] = []
            consumed = threading.Event()

            def consume() -> None:
                events.extend(client.stream(requests, timeout_s=30.0))
                consumed.set()

            thread = threading.Thread(target=consume)
            thread.start()
            # both submits land before any solving: the drain is manual
            deadline = threading.Event()
            for _ in range(200):
                if scheduler.queue_depth == 2:
                    break
                deadline.wait(0.05)
            assert scheduler.queue_depth == 2
            served = scheduler.step()
            assert served == 2
            assert consumed.wait(timeout=30.0)
            thread.join(timeout=10.0)

            kinds = [event["event"] for event in events]
            assert kinds[0] == "submitted" and kinds[1] == "submitted"
            assert kinds[-1] == "end"
            column_positions = [i for i, k in enumerate(kinds) if k == "columns"]
            done_positions = [i for i, k in enumerate(kinds) if k == "done"]
            assert len(done_positions) == 2
            assert column_positions, "no columns were streamed"
            # the acceptance criterion: columns precede every completion
            assert max(column_positions) < min(done_positions)
            # streamed blocks are the exact solved columns
            for event in events:
                if event["event"] == "columns":
                    expected = small_g_module[:, list(event["columns"])]
                    np.testing.assert_allclose(event["block"], expected, rtol=1e-12)
                if event["event"] == "done":
                    assert event["status"] == JobState.DONE
                    assert event["snapshot"]["schema_version"] == 1
    finally:
        scheduler.close()


def test_store_hits_stream_before_any_solve(dense_spec):
    with AsyncExtractionServer(n_workers=1) as server:
        with ServiceClient(server.url, timeout_s=30.0) as client:
            client.extract(JobRequest(dense_spec, columns=(0, 1)), timeout_s=30.0)
            events = list(
                client.stream(JobRequest(dense_spec, columns=(0, 1)), timeout_s=30.0)
            )
            sources = [e["source"] for e in events if e["event"] == "columns"]
            assert sources == ["store"]  # already-paid-for columns, zero solves


def test_concurrent_streaming_clients(dense_spec, small_g_module):
    """Several clients stream at once from the one event loop; each sees its
    own columns and completion."""
    with AsyncExtractionServer(n_workers=1, coalesce_window_s=0.02) as server:
        column_sets = [(0, 1), (2, 3), (4, 5), (1, 2)]
        results: dict[int, list] = {}

        def run(i: int) -> None:
            with ServiceClient(server.url, timeout_s=60.0) as client:
                results[i] = list(
                    client.stream(
                        JobRequest(dense_spec, columns=column_sets[i]),
                        timeout_s=60.0,
                    )
                )

        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert sorted(results) == [0, 1, 2, 3]
        for i, events in results.items():
            kinds = [e["event"] for e in events]
            assert "done" in kinds and kinds[-1] == "end"
            streamed = {
                c
                for e in events
                if e["event"] == "columns"
                for c in e["columns"]
            }
            assert streamed == set(column_sets[i])
        stats = ServiceClient(server.url).stats()
        assert stats["frontdoor"]["streams_opened"] == 4
        assert stats["frontdoor"]["stream_columns"] == sum(
            len(cols) for cols in column_sets
        )


def test_stream_reports_bad_request_inline(dense_spec):
    with AsyncExtractionServer(n_workers=1) as server:
        with ServiceClient(server.url, timeout_s=30.0) as client:
            good = JobRequest(dense_spec, columns=(0,))
            docs = [
                {"schema_version": 1, "spec": None},  # malformed
            ]
            # hand-build the body so one request of the stream is broken
            from repro.service.wire import request_to_wire

            body = json.dumps(
                {"requests": [request_to_wire(good)] + docs}
            ).encode()
            req = urllib.request.Request(
                server.url + "/v1/stream",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(req, timeout=30.0) as response:
                events = [json.loads(line) for line in response if line.strip()]
            by_kind = {}
            for e in events:
                by_kind.setdefault(e["event"], []).append(e)
            assert len(by_kind["error"]) == 1
            assert by_kind["error"][0]["error"]["code"] == "bad_request"
            assert len(by_kind["done"]) == 1  # the good request still completed


# ------------------------------------------------------------ micro-batching
def test_pair_queries_microbatch_into_fewer_submits(dense_spec, small_g_module):
    """Concurrent /v1/pairs queries over one fingerprint coalesce at the
    HTTP layer: counters pin queries > submits, and every caller gets
    exactly its values."""
    queries = [
        [(0, 1)],
        [(1, 2), (2, 3)],
        [(0, 1), (3, 4)],
        [(5, 6)],
        [(2, 3)],
        [(4, 5)],
    ]
    with AsyncExtractionServer(
        n_workers=1, pair_window_s=0.5, pair_max_batch=64
    ) as server:
        answers: dict[int, np.ndarray] = {}

        def run(i: int) -> None:
            with ServiceClient(server.url, timeout_s=60.0) as client:
                answers[i] = client.pairs(dense_spec, queries[i], timeout_s=60.0)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(len(queries))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        for i, pairs in enumerate(queries):
            expected = [small_g_module[a, b] for a, b in pairs]
            np.testing.assert_allclose(answers[i], expected, rtol=1e-12)
        stats = ServiceClient(server.url).stats()
        frontdoor = stats["frontdoor"]
        assert frontdoor["microbatch_queries"] == len(queries)
        # the pin: six queries collapsed into strictly fewer submits
        assert 1 <= frontdoor["microbatch_submits"] < len(queries)
        assert stats["jobs"]["submitted"] == frontdoor["microbatch_submits"]


def test_pairs_endpoint_validates_documents(dense_spec):
    with AsyncExtractionServer(n_workers=1) as server:
        from repro.service.wire import spec_to_wire

        body = json.dumps({"spec": spec_to_wire(dense_spec), "pairs": []}).encode()
        req = urllib.request.Request(
            server.url + "/v1/pairs",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10.0)
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"]["code"] == "bad_request"


# ------------------------------------------------------------ error envelope
def test_error_envelope_conformance(dense_spec):
    """404 and 429 from the async server all carry the one envelope."""
    scheduler = Scheduler(n_workers=1, autostart=False, max_queue_depth=1)
    try:
        with AsyncExtractionServer(scheduler=scheduler) as server:
            client = ServiceClient(server.url, timeout_s=10.0)
            # 404 unknown_job
            status, body, _ = get_json(server.url + "/v1/jobs/job-999999")
            assert status == 404 and body["error"]["code"] == "unknown_job"
            with pytest.raises(UnknownJobError):
                client.result("job-999999")
            # 404 not_found for an unknown path
            status, body, _ = get_json(server.url + "/v1/nope")
            assert status == 404 and body["error"]["code"] == "not_found"
            # 429 queue_saturated: typed via the client...
            client.submit(JobRequest(dense_spec, columns=(0,)))
            with pytest.raises(QueueSaturatedError) as info:
                client.submit(JobRequest(dense_spec, columns=(1,)))
            assert info.value.retry_after_s > 0
            # ...and the raw envelope + Retry-After header on the wire
            body = json.dumps(
                request_to_wire(JobRequest(dense_spec, columns=(2,)))
            ).encode()
            req = urllib.request.Request(
                server.url + "/v1/jobs",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(req, timeout=10.0)
            assert err.value.code == 429
            assert int(err.value.headers["Retry-After"]) >= 1
            envelope = json.loads(err.value.read())
            assert envelope["error"]["code"] == "queue_saturated"
            assert envelope["error"]["retry_after"] > 0
    finally:
        scheduler.close()


def test_bad_json_body_is_a_bad_request_envelope(dense_spec):
    with AsyncExtractionServer(n_workers=1) as server:
        req = urllib.request.Request(
            server.url + "/v1/jobs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10.0)
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"]["code"] == "bad_request"


# ------------------------------------------------- legacy aliases and pickle
def test_legacy_aliases_carry_deprecation_header():
    with AsyncExtractionServer(n_workers=1) as server:
        for path, v1_path in (("/healthz", "/v1/healthz"), ("/stats", "/v1/stats")):
            _, _, headers = get_json(server.url + path)
            assert headers.get("Deprecation") == "true"
            assert "successor-version" in headers.get("Link", "")
            _, _, v1_headers = get_json(server.url + v1_path)
            assert v1_headers.get("Deprecation") is None


def test_legacy_pickle_endpoint_is_gone_by_default(dense_spec):
    """The async front door answers 410 to /submit unless the operator
    explicitly revived the pickle wire."""
    with AsyncExtractionServer(n_workers=1) as server:
        with ServiceClient(server.url, timeout_s=10.0) as client:
            with pytest.raises(LegacyPickleDisabledError):
                with pytest.warns(DeprecationWarning):
                    client.submit_pickle(JobRequest(dense_spec, columns=(0,)))
            stats = client.stats()
            assert stats["frontdoor"]["legacy_pickle_submits"] == 0


def test_legacy_pickle_endpoint_behind_explicit_optin(dense_spec):
    with AsyncExtractionServer(n_workers=1, allow_legacy_pickle=True) as server:
        with ServiceClient(server.url, timeout_s=30.0) as client:
            with pytest.warns(DeprecationWarning):
                job_id = client.submit_pickle(JobRequest(dense_spec, columns=(0,)))
            snapshot = client.wait(job_id, timeout_s=30.0)
            assert snapshot["status"] == JobState.DONE
            assert client.stats()["frontdoor"]["legacy_pickle_submits"] == 1


def test_legacy_result_alias_serves_nested_lists(dense_spec):
    with AsyncExtractionServer(n_workers=1) as server:
        with ServiceClient(server.url, timeout_s=30.0) as client:
            job_id = client.submit(JobRequest(dense_spec, columns=(0,)))
            client.wait(job_id, timeout_s=30.0)
        status, body, headers = get_json(
            server.url + f"/result?job_id={job_id}&wait_s=5"
        )
        assert status == 200
        assert headers.get("Deprecation") == "true"
        assert isinstance(body["result"], list)  # the old nested-list shape


# ------------------------------------------------------------------- client
def test_client_context_manager_lifecycle(dense_spec):
    with AsyncExtractionServer(n_workers=1) as server:
        client = ServiceClient(server.url, timeout_s=10.0)
        with client:
            assert client.healthz()["ok"] is True
        with pytest.raises(RuntimeError, match="closed"):
            client.submit(JobRequest(dense_spec, columns=(0,)))
        with pytest.raises(RuntimeError, match="closed"):
            client.stream(JobRequest(dense_spec, columns=(0,)))


def test_cancel_via_client(dense_spec):
    scheduler = Scheduler(n_workers=1, autostart=False)
    try:
        with AsyncExtractionServer(scheduler=scheduler) as server:
            client = ServiceClient(server.url, timeout_s=10.0)
            job_id = client.submit(JobRequest(dense_spec, columns=(0,)))
            assert client.cancel(job_id) is True
            assert client.result(job_id)["status"] == JobState.CANCELLED
    finally:
        scheduler.close()
