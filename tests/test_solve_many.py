"""Equivalence and accounting tests for the batched multi-RHS solve engine.

``solve_many`` must be a pure batching device: column ``j`` of its result has
to match ``solve_currents`` on column ``j`` for every backend (grounded and
floating backplane), and a block of ``k`` columns must be charged as exactly
``k`` black-box solves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CountingSolver,
    DenseMatrixSolver,
    EigenfunctionSolver,
    SubstrateProfile,
    extract_columns,
    extract_dense,
    regular_grid,
)
from repro.core.lowrank import LowRankSparsifier
from repro.core.wavelet import WaveletSparsifier
from repro.substrate.bem.eigenvalues import eigenvalue_table
from repro.substrate.fd import FiniteDifferenceSolver
from repro.substrate.solver_base import CallableSolver, SubstrateSolver


@pytest.fixture(scope="module")
def tiny_layout():
    return regular_grid(n_side=4, size=64.0, fill=0.5)


def _profile(grounded: bool) -> SubstrateProfile:
    return SubstrateProfile.two_layer_example(size=64.0, grounded_backplane=grounded)


def _column_by_column(solver: SubstrateSolver, v: np.ndarray) -> np.ndarray:
    return np.column_stack([solver.solve_currents(v[:, j]) for j in range(v.shape[1])])


# --------------------------------------------------------------- equivalence
@pytest.mark.parametrize("grounded", [True, False], ids=["grounded", "floating"])
def test_eigenfunction_solve_many_matches_sequential(tiny_layout, grounded):
    solver = EigenfunctionSolver(tiny_layout, _profile(grounded), max_panels=32, rtol=1e-10)
    rng = np.random.default_rng(7)
    v = rng.standard_normal((tiny_layout.n_contacts, 6))
    batched = solver.solve_many(v)
    sequential = _column_by_column(solver, v)
    scale = np.abs(sequential).max()
    assert np.allclose(batched, sequential, rtol=0.0, atol=1e-8 * scale)


@pytest.mark.parametrize("grounded", [True, False], ids=["grounded", "floating"])
@pytest.mark.parametrize("preconditioner", ["fast_poisson_area", "jacobi", "ic"])
def test_fd_solve_many_matches_sequential(tiny_layout, grounded, preconditioner):
    solver = FiniteDifferenceSolver(
        tiny_layout,
        _profile(grounded),
        nx=8,
        ny=8,
        planes_per_layer=2,
        preconditioner=preconditioner,
        rtol=1e-10,
    )
    rng = np.random.default_rng(11)
    v = rng.standard_normal((tiny_layout.n_contacts, 5))
    batched = solver.solve_many(v)
    sequential = _column_by_column(solver, v)
    scale = np.abs(sequential).max()
    assert np.allclose(batched, sequential, rtol=0.0, atol=1e-8 * scale)


def test_dense_matrix_solve_many_matches_sequential(rng, small_g, small_layout):
    solver = DenseMatrixSolver(small_g, small_layout)
    v = rng.standard_normal((small_layout.n_contacts, 9))
    assert np.allclose(solver.solve_many(v), _column_by_column(solver, v))


def test_callable_solver_uses_loop_fallback(rng, small_g, small_layout):
    calls = []

    def func(v):
        calls.append(v.copy())
        return small_g @ v

    solver = CallableSolver(func, small_layout)
    v = rng.standard_normal((small_layout.n_contacts, 4))
    out = solver.solve_many(v)
    assert len(calls) == 4
    assert np.allclose(out, small_g @ v)


def test_solve_many_fallback_passes_fresh_copies(rng, small_g, small_layout):
    """A solver that mutates its input must not corrupt the caller's block."""

    def mutating(v):
        out = small_g @ v
        v[:] = np.nan  # hostile black box
        return out

    solver = CallableSolver(mutating, small_layout)
    v = rng.standard_normal((small_layout.n_contacts, 3))
    v_copy = v.copy()
    out = solver.solve_many(v)
    assert np.array_equal(v, v_copy)
    assert np.allclose(out, small_g @ v_copy)


def test_solve_many_rejects_wrong_shapes(small_g, small_layout):
    solver = DenseMatrixSolver(small_g, small_layout)
    with pytest.raises(ValueError):
        solver.solve_many(np.zeros(small_layout.n_contacts))
    with pytest.raises(ValueError):
        solver.solve_many(np.zeros((small_layout.n_contacts + 1, 3)))


def test_eigenfunction_solve_many_chunks_and_zero_columns(tiny_layout):
    solver = EigenfunctionSolver(
        tiny_layout, _profile(True), max_panels=32, rtol=1e-10, max_batch=3
    )
    rng = np.random.default_rng(3)
    v = rng.standard_normal((tiny_layout.n_contacts, 8))
    v[:, 2] = 0.0  # an exactly-zero column must come back exactly zero
    batched = solver.solve_many(v)
    assert np.array_equal(batched[:, 2], np.zeros(tiny_layout.n_contacts))
    sequential = _column_by_column(solver, v)
    scale = np.abs(sequential).max()
    assert np.allclose(batched, sequential, rtol=0.0, atol=1e-8 * scale)


def test_solve_many_is_linear(tiny_layout):
    """solve_many(V) C == solve_many(V C) — batching is a linear operator."""
    solver = EigenfunctionSolver(tiny_layout, _profile(True), max_panels=32, rtol=1e-12)
    rng = np.random.default_rng(5)
    v = rng.standard_normal((tiny_layout.n_contacts, 3))
    c = rng.standard_normal((3, 3))
    lhs = solver.solve_many(v) @ c
    rhs = solver.solve_many(v @ c)
    assert np.allclose(lhs, rhs, rtol=0.0, atol=1e-8 * np.abs(lhs).max())


# ----------------------------------------------------------------- accounting
def test_counting_solver_charges_one_solve_per_column(small_g, small_layout, rng):
    counting = CountingSolver(DenseMatrixSolver(small_g, small_layout))
    counting.solve_many(rng.standard_normal((small_layout.n_contacts, 7)))
    assert counting.solve_count == 7
    counting.solve_currents(rng.standard_normal(small_layout.n_contacts))
    assert counting.solve_count == 8
    assert counting.solve_reduction_factor() == small_layout.n_contacts / 8


def test_counting_solver_forwards_block_in_one_submission(small_g, small_layout, rng):
    submissions = []

    class Spy(DenseMatrixSolver):
        def solve_many(self, voltages):
            submissions.append(voltages.shape)
            return super().solve_many(voltages)

    counting = CountingSolver(Spy(small_g, small_layout))
    counting.solve_many(rng.standard_normal((small_layout.n_contacts, 5)))
    assert submissions == [(small_layout.n_contacts, 5)]


# --------------------------------------------------- extraction through blocks
def test_extract_dense_matches_sequential_reference(tiny_layout):
    solver = EigenfunctionSolver(tiny_layout, _profile(True), max_panels=32, rtol=1e-10)
    n = tiny_layout.n_contacts
    reference = _column_by_column(solver, np.eye(n))
    g = extract_dense(solver)
    assert np.allclose(g, reference, rtol=0.0, atol=1e-8 * np.abs(reference).max())


def test_extract_dense_counts_n_solves(small_g, small_layout):
    counting = CountingSolver(DenseMatrixSolver(small_g, small_layout))
    extract_dense(counting)
    assert counting.solve_count == small_layout.n_contacts


def test_extract_columns_independent_of_call_order(small_g, small_layout):
    """RHS construction is fresh per block: any column order gives the same G."""
    solver = DenseMatrixSolver(small_g, small_layout)
    n = small_layout.n_contacts
    forward = extract_columns(solver, np.arange(n))
    shuffled = np.random.default_rng(0).permutation(n)
    scrambled = extract_columns(solver, shuffled, block_size=5)
    assert np.array_equal(scrambled[:, np.argsort(shuffled)], forward)
    # interleaving extractions of different solvers must not interfere either
    a = extract_columns(solver, np.array([3, 1]))
    b = extract_columns(solver, np.array([1, 3]))
    assert np.array_equal(a[:, ::-1], b)


def test_extract_dense_block_size_one_matches_full_block(tiny_layout):
    solver = EigenfunctionSolver(tiny_layout, _profile(True), max_panels=32, rtol=1e-12)
    g_full = extract_dense(solver)
    g_one = extract_dense(solver, block_size=1)
    assert np.allclose(g_full, g_one, rtol=0.0, atol=1e-8 * np.abs(g_full).max())


def test_extract_columns_symmetrize_requires_all_columns(small_g, small_layout):
    solver = DenseMatrixSolver(small_g, small_layout)
    with pytest.raises(ValueError):
        extract_columns(solver, np.array([0, 1]), symmetrize=True)


# ------------------------------------------------ solve-count regression (3.5)
class _SequentialOnly(SubstrateSolver):
    """Black box without a batched path — forces the generic column loop."""

    def __init__(self, matrix, layout):
        self.matrix = matrix
        self.layout = layout

    def solve_currents(self, voltages):
        return self.matrix @ np.asarray(voltages, dtype=float)


def test_wavelet_solve_counts_unchanged_by_batching(small_g, small_layout, small_hierarchy):
    """Batching groups RHS; the attributed solve count (the paper's headline
    metric) must be identical to the sequential black-box path."""
    batched = CountingSolver(DenseMatrixSolver(small_g, small_layout))
    rep_batched = WaveletSparsifier(small_hierarchy, order=2).extract(batched)

    sequential = CountingSolver(_SequentialOnly(small_g, small_layout))
    rep_sequential = WaveletSparsifier(small_hierarchy, order=2).extract(sequential)

    assert batched.solve_count == sequential.solve_count
    assert rep_batched.n_solves == rep_sequential.n_solves == batched.solve_count
    # and the extracted representations agree (exact black box -> exact match)
    diff = (rep_batched.gw - rep_sequential.gw)
    assert np.abs(diff.toarray()).max() < 1e-10


def test_lowrank_solve_counts_unchanged_by_batching(small_g, small_layout, small_hierarchy):
    batched = CountingSolver(DenseMatrixSolver(small_g, small_layout))
    lr_batched = LowRankSparsifier(small_hierarchy, max_rank=6, seed=0).build(batched)

    sequential = CountingSolver(_SequentialOnly(small_g, small_layout))
    lr_sequential = LowRankSparsifier(small_hierarchy, max_rank=6, seed=0).build(sequential)

    assert batched.solve_count == sequential.solve_count
    assert lr_batched.n_solves == lr_sequential.n_solves == batched.solve_count
    rep_b = lr_batched.to_sparsified()
    rep_s = lr_sequential.to_sparsified()
    assert np.abs((rep_b.gw - rep_s.gw).toarray()).max() < 1e-10


def test_batched_operator_fft_matches_cosine_matrices(tiny_layout):
    """The stacked-DCT apply equals the cosine-matrix reference on 3-D blocks."""
    s_fft = EigenfunctionSolver(tiny_layout, _profile(True), max_panels=32, use_fft=True)
    s_mat = EigenfunctionSolver(tiny_layout, _profile(True), max_panels=32, use_fft=False)
    rng = np.random.default_rng(2)
    q = rng.standard_normal((s_fft.grid.nx, s_fft.grid.ny, 4))
    a = s_fft.operator.apply_grid(q)
    b = s_mat.operator.apply_grid(q)
    assert np.allclose(a, b, rtol=1e-12, atol=1e-12 * np.abs(a).max())
    # batch-major contact-panel block apply agrees with the generic path
    ncp = s_fft.grid.n_contact_panels
    block = rng.standard_normal((5, ncp))
    fast = s_fft.operator.apply_contact_panels_block(block)
    ref = s_fft.operator.apply_contact_panels(block.T).T
    assert np.allclose(fast, ref, rtol=1e-12, atol=1e-12 * np.abs(ref).max())


def test_matrix_path_solver_solve_many_matches_sequential(tiny_layout):
    solver = EigenfunctionSolver(
        tiny_layout, _profile(True), max_panels=32, rtol=1e-10, use_fft=False
    )
    rng = np.random.default_rng(9)
    v = rng.standard_normal((tiny_layout.n_contacts, 5))
    batched = solver.solve_many(v)
    sequential = _column_by_column(solver, v)
    scale = np.abs(sequential).max()
    assert np.allclose(batched, sequential, rtol=0.0, atol=1e-8 * scale)


def test_contact_block_matrix_matches_loop_reference(tiny_layout):
    solver = EigenfunctionSolver(tiny_layout, _profile(True), max_panels=32)
    a_ref = solver.operator.dense_contact_block()
    a_fast = solver.operator.contact_block_matrix(max_batch=7)
    assert np.allclose(a_fast, a_ref, rtol=1e-12, atol=1e-12 * np.abs(a_ref).max())


# ------------------------------------------------------------ eigenvalue cache
def test_eigenvalue_table_is_cached_per_profile():
    profile = SubstrateProfile.two_layer_example(size=64.0)
    first = eigenvalue_table(16, 16, profile)
    again = eigenvalue_table(16, 16, profile)
    assert first is again  # memoised
    assert not first.flags.writeable
    equivalent = SubstrateProfile.two_layer_example(size=64.0)
    assert eigenvalue_table(16, 16, equivalent) is first  # keyed on physics
    other = SubstrateProfile.two_layer_example(size=64.0, grounded_backplane=True)
    assert eigenvalue_table(16, 16, other) is not first
