"""Fault injection and the fault-tolerant service: faults, supervision, retry.

Covers the :mod:`repro.faults` harness itself (plans, budgets, tokens,
activation paths), the supervised :class:`ParallelExtractor` (pool rebuild
after a worker kill, inline degradation, warm-up failure surfacing), and the
scheduler's resilience layer (retry with backoff, per-fingerprint circuit
breaker, admission control with priority shedding + HTTP 429, sqlite fault
degradation, journal replay after a mid-batch crash).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import faults
from repro.faults import FaultPlan, FaultSpec, InjectedFault, fault_hook
from repro.service import (
    ExtractionServer,
    JobRequest,
    JobState,
    QueueSaturatedError,
    RetryPolicy,
    Scheduler,
    ServiceClient,
)
from repro.service.scheduler import CircuitBreaker, _truncated_traceback
from repro.substrate.parallel import ParallelExtractor, PoolWarmupError, SolverSpec


@pytest.fixture(autouse=True)
def _clean_fault_state():
    """Every test leaves the process with fault injection disabled."""
    yield
    faults.clear_plan()


@pytest.fixture(scope="module")
def tiny_layout():
    from repro import regular_grid

    return regular_grid(n_side=4, size=64.0, fill=0.5)


@pytest.fixture(scope="module")
def dense_spec(tiny_layout):
    rng = np.random.default_rng(7)
    n = tiny_layout.n_contacts
    g = rng.normal(size=(n, n))
    g = g + g.T + 2.0 * n * np.eye(n)  # symmetric, well-conditioned
    return SolverSpec.dense(g, tiny_layout)


@pytest.fixture(scope="module")
def bem_spec(tiny_layout):
    from repro import SubstrateProfile

    profile = SubstrateProfile.two_layer_example(size=64.0, resistive_bottom=True)
    return SolverSpec.bem(tiny_layout, profile, max_panels=32, rtol=1e-10)


#: retry policy used throughout: instant retries keep the suite fast
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0, cap_s=0.0, jitter=0.0)


# ------------------------------------------------------------ FaultSpec/Plan
def test_fault_spec_validates_action_exception_and_budgets():
    with pytest.raises(ValueError, match="action"):
        FaultSpec(site="x", action="explode")
    with pytest.raises(ValueError, match="exception"):
        FaultSpec(site="x", exception="SystemExit")  # not in the allowlist
    with pytest.raises(ValueError, match="times"):
        FaultSpec(site="x", times=-1)
    with pytest.raises(ValueError, match="after"):
        FaultSpec(site="x", after=-1)
    with pytest.raises(ValueError, match="unknown fault spec keys"):
        FaultSpec.from_dict({"site": "x", "actoin": "raise"})
    with pytest.raises(ValueError, match="site"):
        FaultSpec.from_dict({"action": "raise"})


def test_fault_plan_json_roundtrip_and_list_shorthand():
    plan = FaultPlan.from_json(
        {
            "token_dir": "/tmp/x",
            "faults": [
                {"site": "a.b", "action": "delay", "delay_s": 0.5, "times": 3},
                {"site": "c.d", "match": {"k": 1}},
            ],
        }
    )
    again = FaultPlan.from_json(plan.to_json())
    assert again.token_dir == "/tmp/x"
    assert again.specs == plan.specs
    bare = FaultPlan.from_json('[{"site": "a.b", "action": "drop"}]')
    assert bare.specs[0].action == "drop"
    with pytest.raises(ValueError, match="object or list"):
        FaultPlan.from_json('"just a string"')


def test_fire_honours_times_after_and_match():
    plan = FaultPlan([FaultSpec(site="s", action="raise", after=1, times=2)])
    assert plan.fire("s", {}) is False  # skipped by after=1
    for _ in range(2):
        with pytest.raises(InjectedFault):
            plan.fire("s", {})
    assert plan.fire("s", {}) is False  # budget exhausted
    assert plan.counters()[0] == {"site": "s", "action": "raise", "hits": 4, "fires": 2}

    matched = FaultPlan([FaultSpec(site="s", match={"k": 1}, times=None)])
    assert matched.fire("s", {"k": 2}) is False
    assert matched.fire("other", {"k": 1}) is False
    with pytest.raises(InjectedFault):
        matched.fire("s", {"k": 1})


def test_named_exception_and_delay_and_drop():
    plan = FaultPlan(
        [
            FaultSpec(site="err", exception="OSError", message="disk gone"),
            FaultSpec(site="slow", action="delay", delay_s=0.05),
            FaultSpec(site="skip", action="drop"),
        ]
    )
    with pytest.raises(OSError, match="disk gone"):
        plan.fire("err", {})
    start = time.perf_counter()
    assert plan.fire("slow", {}) is False
    assert time.perf_counter() - start >= 0.04
    assert plan.fire("skip", {}) is True
    assert ("skip", "drop") in plan.fired


def test_once_key_token_is_cross_plan_exactly_once(tmp_path):
    spec = FaultSpec(site="s", once_key="only-one", times=None)
    first = FaultPlan([spec], token_dir=str(tmp_path))
    with pytest.raises(InjectedFault):
        first.fire("s", {})
    assert first.once_tripped("only-one")
    # a fresh plan (fresh counters — a rebuilt worker) must NOT fire again
    second = FaultPlan([spec], token_dir=str(tmp_path))
    assert second.fire("s", {}) is False
    assert (tmp_path / "only-one.tripped").exists()


# ------------------------------------------------------------- activation
def test_fault_hook_is_inert_without_a_plan():
    faults.clear_plan()
    assert fault_hook("anything", key="value") is False


def test_install_and_inject_scoping():
    with faults.inject([{"site": "s", "action": "drop", "times": None}]) as plan:
        assert faults.active_plan() is plan
        assert fault_hook("s") is True
    assert faults.active_plan() is None
    assert fault_hook("s") is False


def test_env_var_activation_inline_and_file(tmp_path, monkeypatch):
    monkeypatch.setenv(faults.ENV_VAR, '[{"site": "s", "action": "drop"}]')
    plan = faults.reload_env_plan()
    assert plan is not None and fault_hook("s") is True

    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"faults": [{"site": "t", "action": "drop"}]}))
    monkeypatch.setenv(faults.ENV_VAR, f"@{path}")
    plan = faults.reload_env_plan()
    assert fault_hook("t") is True
    assert fault_hook("s") is False  # the old plan is gone

    monkeypatch.delenv(faults.ENV_VAR)
    assert faults.reload_env_plan() is None


def test_kill_action_exits_the_process():
    code = (
        "from repro.faults import fault_hook\n"
        "fault_hook('die')\n"
        "print('survived')\n"
    )
    env = dict(
        os.environ,
        REPRO_FAULTS='[{"site": "die", "action": "kill", "exit_code": 7}]',
        PYTHONPATH="src",
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert proc.returncode == 7
    assert "survived" not in proc.stdout


# ------------------------------------------------- supervised ParallelExtractor
def _kill_plan_env(monkeypatch, tmp_path, once_key="test-kill", match=None):
    """Activate a worker-kill plan via the env (workers inherit it)."""
    plan = {
        "token_dir": str(tmp_path),
        "faults": [
            {
                "site": "worker.solve",
                "action": "kill",
                "once_key": once_key,
                **({"match": match} if match else {}),
            }
        ],
    }
    monkeypatch.setenv(faults.ENV_VAR, json.dumps(plan))
    return faults.reload_env_plan()


def test_pool_recovers_from_worker_kill(dense_spec, tmp_path, monkeypatch):
    n = dense_spec.layout.n_contacts
    v = np.eye(n)
    with ParallelExtractor(dense_spec, n_workers=2) as serial_free:
        expected = serial_free._solve_inline(v)
    plan = _kill_plan_env(monkeypatch, tmp_path, match={"start": 0})
    with ParallelExtractor(dense_spec, n_workers=2) as engine:
        with pytest.warns(RuntimeWarning, match="worker pool failure"):
            out = engine.solve_many(v)
        assert engine.pool_rebuilds == 1
        assert engine.degraded_solves == 0
        # the rebuilt pool keeps serving without further incident
        again = engine.solve_many(v)
    assert plan.once_tripped("test-kill")
    np.testing.assert_allclose(out, expected, rtol=0, atol=1e-12)
    np.testing.assert_allclose(again, expected, rtol=0, atol=1e-12)


def test_pool_degrades_inline_when_rebuilds_keep_failing(
    dense_spec, monkeypatch
):
    # no once_key and no budget: every worker generation dies again
    monkeypatch.setenv(
        faults.ENV_VAR,
        '[{"site": "worker.solve", "action": "kill", "times": null}]',
    )
    faults.reload_env_plan()
    n = dense_spec.layout.n_contacts
    v = np.eye(n)
    with ParallelExtractor(dense_spec, n_workers=2, max_pool_rebuilds=1) as engine:
        expected = engine._solve_inline(v)  # inline path never hits the hook
        with pytest.warns(RuntimeWarning) as caught:
            out = engine.solve_many(v)
        assert any("degrading" in str(w.message) for w in caught)
        assert engine.pool_rebuilds == 1
        assert engine.degraded_solves == n
    np.testing.assert_allclose(out, expected, rtol=0, atol=1e-12)


def test_warm_up_failure_raises_pool_warmup_error(dense_spec, monkeypatch):
    import repro.substrate.parallel as parallel_mod

    def broken_manager(*args, **kwargs):
        raise OSError("manager pipe torn")

    monkeypatch.setattr(parallel_mod.mp, "Manager", broken_manager)
    engine = ParallelExtractor(dense_spec, n_workers=2)
    try:
        with pytest.raises(PoolWarmupError, match="manager pipe torn"):
            engine.warm_up()
        # the broken pool was torn down, not left to hang later submits
        assert engine._pool is None
    finally:
        engine.close()


def test_shm_attach_fault_falls_back_to_worker_rebuild(bem_spec, monkeypatch):
    # a torn shared segment must cost a refactorisation, never a crash
    n = bem_spec.layout.n_contacts
    with ParallelExtractor(bem_spec, n_workers=2) as reference:
        expected = reference._solve_inline(np.eye(n))
    monkeypatch.setenv(
        faults.ENV_VAR, '[{"site": "shm.attach", "action": "raise", "times": null}]'
    )
    faults.reload_env_plan()
    with ParallelExtractor(
        bem_spec, n_workers=2, prepare_direct=True, share_factors=True
    ) as engine:
        engine.warm_up()
        out = engine.solve_many(np.eye(n))
        # worker stats ride back with the shards: nobody attached a shared
        # segment (each worker served from its own factor — inherited on
        # fork, or refactored under spawn), and the answer is unchanged
        assert engine.stats.n_factor_attaches == 0
        assert engine.stats.n_direct_solves == n
    np.testing.assert_allclose(out, expected, rtol=1e-10, atol=1e-12)


def test_attach_shared_factor_hook_fires_before_segment_io():
    from repro.substrate.factor_cache import SharedFactorHandle, attach_shared_factor

    bogus = SharedFactorHandle(
        key=("k",), segment_name="no-such-segment", meta={}, specs=[], nbytes=0
    )
    with faults.inject([{"site": "shm.attach", "action": "raise"}]):
        with pytest.raises(InjectedFault):
            attach_shared_factor(bogus)


# --------------------------------------------------------- scheduler resilience
def test_retry_policy_backoff_and_validation():
    policy = RetryPolicy(max_attempts=4, base_delay_s=0.1, cap_s=0.3, jitter=0.0)
    assert policy.delay_s(1) == pytest.approx(0.1)
    assert policy.delay_s(2) == pytest.approx(0.2)
    assert policy.delay_s(3) == pytest.approx(0.3)  # capped
    assert policy.delay_s(4) == pytest.approx(0.3)
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=-1.0)


def test_circuit_breaker_state_machine():
    breaker = CircuitBreaker(failure_threshold=2, reset_s=1000.0)
    assert breaker.allow()
    assert breaker.record_failure() is False
    assert breaker.allow()
    assert breaker.record_failure() is True  # trips at the threshold
    assert breaker.state == "open"
    assert not breaker.allow()
    breaker.opened_at -= 2000.0  # reset window elapsed
    assert breaker.allow()  # half-open probe
    assert breaker.state == "half_open"
    assert breaker.record_failure() is True  # a failed probe re-opens
    breaker.opened_at -= 2000.0
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == "closed" and breaker.consecutive_failures == 0


def test_transient_failure_is_retried_with_history(dense_spec):
    with Scheduler(n_workers=1, autostart=False, retry_policy=FAST_RETRY) as sched:
        with faults.inject(
            [{"site": "factor.build", "action": "raise", "times": 1}]
        ):
            job_id = sched.submit(JobRequest(dense_spec, columns=(0, 1)))
            sched.step()
        job = sched.result(job_id)
        assert job.status == JobState.DONE
        assert job.attempts == 2
        assert len(job.history) == 1
        assert "InjectedFault" in job.history[0]["error"]
        assert "factor.build" in job.history[0]["traceback"]
        assert sched.metrics.retries == 1
        assert sched.attributed_solves == 2  # retry did not double-count
        snapshot = sched.snapshot(job_id)
        assert snapshot["attempts"] == 2
        assert snapshot["history"][0]["attempt"] == 1


def test_exhausted_retries_fail_with_truncated_traceback(dense_spec):
    with Scheduler(
        n_workers=1,
        autostart=False,
        retry_policy=FAST_RETRY,
        breaker_failure_threshold=100,
    ) as sched:
        with faults.inject(
            [{"site": "factor.build", "action": "raise", "times": None}]
        ):
            job_id = sched.submit(JobRequest(dense_spec, columns=(0,)))
            sched.step()
        snapshot = sched.snapshot(job_id)
        assert snapshot["status"] == JobState.FAILED
        assert snapshot["attempts"] == FAST_RETRY.max_attempts
        assert len(snapshot["history"]) == FAST_RETRY.max_attempts
        assert snapshot["error"].startswith("InjectedFault")
        assert "fault_hook" in snapshot["error_traceback"]
        assert len(snapshot["error_traceback"]) < 2100
        assert sched.metrics.retries == FAST_RETRY.max_attempts - 1


def test_truncated_traceback_keeps_the_tail():
    try:
        raise RuntimeError("x" * 500)
    except RuntimeError:
        text = _truncated_traceback(limit=100)
    assert text.startswith("... (truncated)")
    assert len(text) <= 100 + len("... (truncated)\n")
    assert text.endswith("x" * 50)


def test_breaker_trips_fails_fast_and_half_open_recovers(dense_spec):
    with Scheduler(
        n_workers=1,
        autostart=False,
        retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
        breaker_failure_threshold=2,
        breaker_reset_s=1000.0,
    ) as sched:
        with faults.inject(
            [{"site": "factor.build", "action": "raise", "times": None}]
        ):
            first = sched.submit(JobRequest(dense_spec, columns=(0,)))
            sched.step()  # 2 failed attempts -> breaker trips at threshold 2
            assert sched.result(first).status == JobState.FAILED
            assert sched.metrics.breaker_open == 1
            # while open: the group fails instantly, without touching the pool
            second = sched.submit(JobRequest(dense_spec, columns=(0,)))
            sched.step()
        job = sched.result(second)
        assert job.status == JobState.FAILED
        assert "circuit breaker open" in job.error
        assert job.attempts == 0  # never attempted
        assert sched.health()["open_breakers"] == 1
        # reset window elapsed -> half-open probe; the fault is gone, so the
        # probe succeeds and the breaker closes
        breaker = sched._breakers[JobRequest(dense_spec, columns=(0,)).fingerprint]
        breaker.opened_at -= 2000.0
        third = sched.submit(JobRequest(dense_spec, columns=(0,)))
        sched.step()
        assert sched.result(third).status == JobState.DONE
        assert breaker.state == "closed"
        assert sched.health()["open_breakers"] == 0


def test_dispatch_cycle_drop_leaves_queue_intact(dense_spec):
    with Scheduler(n_workers=1, autostart=False, retry_policy=FAST_RETRY) as sched:
        job_id = sched.submit(JobRequest(dense_spec, columns=(0,)))
        with faults.inject([{"site": "dispatch.cycle", "action": "drop", "times": 1}]):
            assert sched.step() == 0
            assert sched.queue_depth == 1
            assert sched.step() == 1  # budget spent: the next cycle drains
        assert sched.result(job_id).status == JobState.DONE


# ------------------------------------------------------------ admission control
def test_queue_sheds_lowest_priority_and_rejects_underdogs(dense_spec):
    with Scheduler(
        n_workers=1, autostart=False, retry_policy=FAST_RETRY, max_queue_depth=2
    ) as sched:
        low_a = sched.submit(JobRequest(dense_spec, columns=(0,), priority=1))
        low_b = sched.submit(JobRequest(dense_spec, columns=(1,), priority=1))
        # a higher-priority submission displaces the YOUNGEST weakest job
        high = sched.submit(JobRequest(dense_spec, columns=(2,), priority=5))
        shed = sched.result(low_b)
        assert shed.status == JobState.SHED
        assert "shed" in shed.error
        # an equal-priority submission outranks nothing: refused with 429
        with pytest.raises(QueueSaturatedError) as info:
            sched.submit(JobRequest(dense_spec, columns=(3,), priority=1))
        assert info.value.retry_after_s > 0
        assert sched.metrics.jobs_shed == 1
        assert sched.metrics.submits_rejected == 1
        assert sched.stats()["faults"]["shed"] == 2
        sched.step()
        assert sched.result(low_a).status == JobState.DONE
        assert sched.result(high).status == JobState.DONE


def test_shed_state_is_terminal_in_snapshot_and_metrics(dense_spec):
    with Scheduler(
        n_workers=1, autostart=False, retry_policy=FAST_RETRY, max_queue_depth=1
    ) as sched:
        victim = sched.submit(JobRequest(dense_spec, columns=(0,), priority=0))
        sched.submit(JobRequest(dense_spec, columns=(1,), priority=9))
        snapshot = sched.snapshot(victim)
        assert snapshot["status"] == "shed"
        assert snapshot["result"] is None
        jobs = sched.stats()["jobs"]
        assert jobs["shed"] == 1 and jobs["pending"] == 1


def test_http_429_with_retry_after_header(dense_spec):
    sched = Scheduler(
        n_workers=1, autostart=False, retry_policy=FAST_RETRY, max_queue_depth=1
    )
    try:
        with ExtractionServer(scheduler=sched) as server:
            client = ServiceClient(server.url, timeout_s=30.0)
            kept = client.submit(JobRequest(dense_spec, columns=(0,), priority=0))
            with pytest.raises(QueueSaturatedError) as info:
                client.submit(JobRequest(dense_spec, columns=(1,), priority=0))
            assert info.value.retry_after_s > 0
            # raw HTTP: status 429 and a whole-seconds Retry-After header
            blob = client_payload(dense_spec)
            request = urllib.request.Request(
                server.url + "/submit",
                data=blob,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as http_info:
                urllib.request.urlopen(request, timeout=30.0)
            assert http_info.value.code == 429
            assert int(http_info.value.headers["Retry-After"]) >= 1
            sched.step()
            assert client.result(kept, wait_s=30.0)["status"] == "done"
            assert client.healthz()["faults"]["submits_rejected"] == 2
    finally:
        sched.close()


def client_payload(spec) -> bytes:
    import base64
    import pickle

    request = JobRequest(spec, columns=(2,), priority=0)
    blob = base64.b64encode(pickle.dumps(request)).decode()
    return json.dumps({"request_pickle": blob}).encode()


# --------------------------------------------------------- durability under fault
def test_sqlite_write_fault_degrades_to_ram_only(dense_spec, tmp_path):
    with Scheduler(
        n_workers=1,
        autostart=False,
        retry_policy=FAST_RETRY,
        persistence=str(tmp_path / "state"),
    ) as sched:
        with faults.inject(
            [
                {
                    "site": "sqlite.write",
                    "action": "raise",
                    "exception": "OSError",
                    "times": None,
                }
            ]
        ):
            job_id = sched.submit(JobRequest(dense_spec, columns=(0, 1)))
            with pytest.warns(RuntimeWarning, match="backend save failed"):
                sched.step()
        job = sched.result(job_id)
        assert job.status == JobState.DONE  # availability beats durability
        assert sched.store.backend_errors == 2
        assert sched.store.info()["backend_errors"] == 2


def test_journal_replays_job_accepted_before_midbatch_crash(dense_spec, tmp_path):
    state_dir = str(tmp_path / "state")
    # the dispatcher "crashes" after the journal accept fsync'd but before
    # any terminal mark: autostart=False means nothing serves the job, and
    # close() deliberately skips the terminal journal record for still-
    # pending work (same contract a kill -9 leaves behind)
    crashed = Scheduler(
        n_workers=1, autostart=False, retry_policy=FAST_RETRY, persistence=state_dir
    )
    job_id = crashed.submit(JobRequest(dense_spec, columns=(0, 2)))
    crashed.close()

    with Scheduler(n_workers=1, retry_policy=FAST_RETRY, persistence=state_dir) as sched:
        assert sched.metrics.jobs_replayed == 1
        job = sched.result(job_id, wait_s=60.0)  # original id, replayed once
        assert job.status == JobState.DONE
        assert job.result is not None and job.result.shape[1] == 2

    # the terminal journal record carries the attempt count of the replay
    lines = [
        json.loads(line)
        for line in (tmp_path / "state" / "journal.jsonl").read_text().splitlines()
    ]
    terminal = [doc for doc in lines if doc["event"] == "terminal"]
    assert terminal and terminal[-1]["job_id"] == job_id
    assert terminal[-1]["attempts"] == 1

    # the replay completed and was journaled terminal: a third start must
    # not replay it again
    with Scheduler(
        n_workers=1, autostart=False, retry_policy=FAST_RETRY, persistence=state_dir
    ) as sched:
        assert sched.metrics.jobs_replayed == 0
        with pytest.raises(KeyError):
            sched.result("job-999999")
