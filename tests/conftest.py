"""Shared fixtures: small layouts, substrate profiles and cached conductance matrices.

The conductance matrices used as exact references are expensive to extract
(one black-box solve per contact), so they are session-scoped and kept small.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DenseMatrixSolver,
    EigenfunctionSolver,
    SquareHierarchy,
    SubstrateProfile,
    alternating_size_grid,
    extract_dense,
    regular_grid,
)


@pytest.fixture(scope="session")
def small_layout():
    """8 x 8 regular grid of identical contacts (64 contacts)."""
    return regular_grid(n_side=8, size=128.0, fill=0.5)


@pytest.fixture(scope="session")
def small_profile():
    """Two-layer profile with the resistive bottom layer (slow coupling decay)."""
    return SubstrateProfile.two_layer_example(size=128.0, resistive_bottom=True)


@pytest.fixture(scope="session")
def grounded_profile():
    """Two-layer profile with a grounded backplane."""
    return SubstrateProfile.two_layer_example(size=128.0, grounded_backplane=True)


@pytest.fixture(scope="session")
def small_solver(small_layout, small_profile):
    """Eigenfunction black-box solver for the small layout."""
    return EigenfunctionSolver(small_layout, small_profile, max_panels=64)


@pytest.fixture(scope="session")
def small_g(small_solver):
    """Exact dense conductance matrix of the small layout (64 x 64)."""
    return extract_dense(small_solver, symmetrize=True)


@pytest.fixture(scope="session")
def small_hierarchy(small_layout):
    return SquareHierarchy(small_layout, max_level=3)


@pytest.fixture(scope="session")
def small_dense_solver(small_g, small_layout):
    """Exact-G black box (used to study sparsification in isolation)."""
    return DenseMatrixSolver(small_g, small_layout)


@pytest.fixture(scope="session")
def medium_layout():
    """16 x 16 regular grid (256 contacts) — large enough for real sparsification."""
    return regular_grid(n_side=16, size=128.0, fill=0.5)


@pytest.fixture(scope="session")
def medium_g(medium_layout, small_profile):
    solver = EigenfunctionSolver(medium_layout, small_profile, max_panels=128)
    return extract_dense(solver, symmetrize=True)


@pytest.fixture(scope="session")
def medium_hierarchy(medium_layout):
    return SquareHierarchy(medium_layout, max_level=4)


@pytest.fixture(scope="session")
def alternating_layout():
    """16 x 16 alternating-size grid — the wavelet method's difficult case."""
    return alternating_size_grid(n_side=16, size=128.0)


@pytest.fixture(scope="session")
def alternating_g(alternating_layout, small_profile):
    solver = EigenfunctionSolver(alternating_layout, small_profile, max_panels=128)
    return extract_dense(solver, symmetrize=True)


@pytest.fixture(scope="session")
def alternating_hierarchy(alternating_layout):
    return SquareHierarchy(alternating_layout, max_level=4)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
