"""Tests for the layered substrate profile."""

import numpy as np
import pytest

from repro.substrate import Layer, SubstrateProfile


class TestLayer:
    def test_valid(self):
        layer = Layer(2.0, 10.0)
        assert layer.thickness == 2.0 and layer.conductivity == 10.0

    @pytest.mark.parametrize("t,s", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0), (1.0, -2.0)])
    def test_invalid(self, t, s):
        with pytest.raises(ValueError):
            Layer(t, s)


class TestSubstrateProfile:
    def test_depth_and_arrays(self):
        prof = SubstrateProfile(10, 10, [Layer(1.0, 1.0), Layer(3.0, 100.0)])
        assert prof.depth == 4.0
        assert prof.n_layers == 2
        assert np.allclose(prof.conductivities, [1.0, 100.0])
        assert np.allclose(prof.thicknesses, [1.0, 3.0])
        assert np.allclose(prof.interface_depths(), [1.0])

    def test_requires_layers(self):
        with pytest.raises(ValueError):
            SubstrateProfile(10, 10, [])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SubstrateProfile(0, 10, [Layer(1, 1)])

    def test_conductivity_at_depth(self):
        prof = SubstrateProfile(10, 10, [Layer(1.0, 1.0), Layer(3.0, 100.0)])
        assert prof.conductivity_at_depth(0.5) == 1.0
        assert prof.conductivity_at_depth(2.0) == 100.0
        with pytest.raises(ValueError):
            prof.conductivity_at_depth(5.0)

    def test_vertical_resistance_series(self):
        prof = SubstrateProfile(10, 10, [Layer(1.0, 2.0), Layer(3.0, 6.0)])
        assert np.isclose(prof.vertical_resistance_per_area(), 1.0 / 2.0 + 3.0 / 6.0)

    def test_two_layer_example(self):
        prof = SubstrateProfile.two_layer_example(size=128.0)
        assert prof.size_x == 128.0
        assert np.isclose(prof.depth, 40.0)
        assert prof.conductivities[1] / prof.conductivities[0] == pytest.approx(100.0)

    def test_two_layer_example_resistive_bottom(self):
        prof = SubstrateProfile.two_layer_example(resistive_bottom=True)
        assert prof.n_layers == 3
        assert prof.grounded_backplane
        assert prof.conductivities[-1] < prof.conductivities[0]
        assert np.isclose(prof.depth, 40.0)

    def test_uniform(self):
        prof = SubstrateProfile.uniform(64.0, 20.0, 5.0)
        assert prof.n_layers == 1
        assert prof.depth == 20.0
