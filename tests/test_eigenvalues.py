"""Tests for the layered-substrate eigenvalue recursion (Section 2.3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.substrate import Layer, SubstrateProfile
from repro.substrate.bem import (
    eigenvalue_coefficient_recursion,
    eigenvalue_table,
    eigenvalue_table_cache_clear,
    eigenvalue_table_cache_info,
    mode_eigenvalue,
)


def uniform(depth=20.0, sigma=2.0, grounded=True):
    return SubstrateProfile.uniform(64.0, depth, sigma, grounded_backplane=grounded)


class TestSingleLayerClosedForms:
    @pytest.mark.parametrize("gamma", [0.05, 0.3, 1.0, 4.0])
    def test_grounded_matches_tanh(self, gamma):
        prof = uniform()
        expected = np.tanh(gamma * prof.depth) / (prof.conductivities[0] * gamma)
        assert np.isclose(mode_eigenvalue(gamma, prof), expected, rtol=1e-12)

    @pytest.mark.parametrize("gamma", [0.05, 0.3, 1.0, 4.0])
    def test_floating_matches_coth(self, gamma):
        prof = uniform(grounded=False)
        expected = 1.0 / (np.tanh(gamma * prof.depth) * prof.conductivities[0] * gamma)
        assert np.isclose(mode_eigenvalue(gamma, prof), expected, rtol=1e-12)

    def test_uniform_mode_grounded_is_series_resistance(self):
        prof = SubstrateProfile(64, 64, [Layer(1.0, 2.0), Layer(3.0, 6.0)])
        assert np.isclose(mode_eigenvalue(0.0, prof), 0.5 + 0.5)

    def test_uniform_mode_floating_is_infinite(self):
        prof = uniform(grounded=False)
        assert np.isinf(mode_eigenvalue(0.0, prof))

    def test_large_gamma_limit_is_halfspace(self):
        # for gamma*d >> 1 the eigenvalue approaches 1/(sigma*gamma)
        prof = uniform(depth=40.0, sigma=3.0)
        gamma = 50.0
        assert np.isclose(mode_eigenvalue(gamma, prof), 1.0 / (3.0 * gamma), rtol=1e-10)

    def test_no_overflow_for_huge_gamma(self):
        prof = SubstrateProfile.two_layer_example()
        val = mode_eigenvalue(1e4, prof)
        assert np.isfinite(val) and val > 0


class TestMultiLayer:
    def test_matches_coefficient_recursion(self):
        prof = SubstrateProfile(
            64, 64, [Layer(0.5, 1.0), Layer(10.0, 100.0), Layer(2.0, 0.1)]
        )
        for gamma in [0.05, 0.2, 0.5, 1.0]:
            a = mode_eigenvalue(gamma, prof)
            b = eigenvalue_coefficient_recursion(gamma, prof)
            assert np.isclose(a, b, rtol=1e-8)

    def test_matches_coefficient_recursion_floating(self):
        prof = SubstrateProfile(
            64, 64, [Layer(1.0, 1.0), Layer(5.0, 10.0)], grounded_backplane=False
        )
        for gamma in [0.1, 0.4, 1.0]:
            assert np.isclose(
                mode_eigenvalue(gamma, prof),
                eigenvalue_coefficient_recursion(gamma, prof),
                rtol=1e-8,
            )

    def test_eigenvalues_positive_and_decay_with_gamma(self):
        prof = SubstrateProfile.two_layer_example()
        gammas = np.linspace(0.01, 10.0, 40)
        vals = np.array([mode_eigenvalue(g, prof) for g in gammas])
        assert np.all(vals > 0)
        assert np.all(np.diff(vals) < 1e-12)  # non-increasing

    def test_more_conductive_substrate_has_smaller_eigenvalues(self):
        low = SubstrateProfile.uniform(64, 20.0, 1.0)
        high = SubstrateProfile.uniform(64, 20.0, 10.0)
        for gamma in [0.1, 1.0]:
            assert mode_eigenvalue(gamma, high) < mode_eigenvalue(gamma, low)


class TestEigenvalueTable:
    def test_shape_and_symmetric_in_mn_for_square_substrate(self):
        prof = SubstrateProfile.two_layer_example()
        table = eigenvalue_table(8, 8, prof)
        assert table.shape == (8, 8)
        assert np.allclose(table, table.T, rtol=1e-12)

    def test_floating_uniform_mode_entry_zeroed(self):
        prof = SubstrateProfile.two_layer_example(grounded_backplane=False)
        table = eigenvalue_table(4, 4, prof)
        assert table[0, 0] == 0.0
        assert np.all(table.ravel()[1:] > 0)


class TestEigenvalueTableCache:
    def test_returned_table_is_read_only_and_mutation_raises(self):
        prof = SubstrateProfile.two_layer_example()
        table = eigenvalue_table(6, 6, prof)
        assert not table.flags.writeable
        with pytest.raises(ValueError):
            table[0, 0] = 123.0
        # the read-only flag survives the cache round-trip: a second lookup
        # hands out the same immutable array, not a writable copy
        again = eigenvalue_table(6, 6, prof)
        assert again is table
        assert not again.flags.writeable
        with pytest.raises(ValueError):
            again[1, 1] = -1.0

    def test_lru_eviction_bounds_growth(self):
        eigenvalue_table_cache_clear()
        info = eigenvalue_table_cache_info()
        assert info["size"] == 0
        max_size = info["max_size"]
        prof = SubstrateProfile.uniform(64, 20.0)
        # fill past the bound with distinct (n_modes_x, n_modes_y) keys
        first = eigenvalue_table(2, 2, prof)
        for m in range(3, max_size + 4):
            eigenvalue_table(m, 2, prof)
        info = eigenvalue_table_cache_info()
        assert info["size"] <= max_size  # eviction actually fired
        # the least-recently-used entry (the first key) was dropped: a fresh
        # lookup recomputes rather than returning the original object
        assert eigenvalue_table(2, 2, prof) is not first
        eigenvalue_table_cache_clear()

    def test_lru_recency_is_refreshed_on_hit(self):
        eigenvalue_table_cache_clear()
        max_size = eigenvalue_table_cache_info()["max_size"]
        prof = SubstrateProfile.uniform(64, 20.0)
        keep = eigenvalue_table(2, 2, prof)
        # touch `keep` between insertions so it is never the LRU victim
        for m in range(3, max_size + 4):
            eigenvalue_table(m, 2, prof)
            assert eigenvalue_table(2, 2, prof) is keep
        eigenvalue_table_cache_clear()


@settings(max_examples=30, deadline=None)
@given(
    gamma=st.floats(min_value=1e-3, max_value=50.0),
    sigma1=st.floats(min_value=0.1, max_value=10.0),
    sigma2=st.floats(min_value=0.1, max_value=10.0),
    t1=st.floats(min_value=0.2, max_value=5.0),
    t2=st.floats(min_value=0.2, max_value=30.0),
)
def test_property_eigenvalue_positive_and_bounded(gamma, sigma1, sigma2, t1, t2):
    """Eigenvalues are positive and bounded by the least-conductive half-space value."""
    prof = SubstrateProfile(64, 64, [Layer(t1, sigma1), Layer(t2, sigma2)])
    lam = mode_eigenvalue(gamma, prof)
    assert lam > 0
    assert lam <= 1.0 / (min(sigma1, sigma2) * gamma) * (1.0 / np.tanh(gamma * (t1 + t2)) + 1e-9)
