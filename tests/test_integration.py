"""End-to-end integration tests: solver -> sparsification -> circuit use.

These exercise the whole pipeline the way a downstream user would, on sizes
small enough for the exact dense reference to be available.
"""

import pytest

from repro import (
    CountingSolver,
    EigenfunctionSolver,
    SquareHierarchy,
    extract_dense,
)
from repro.analysis import evaluate_against_dense
from repro.circuits import Circuit, MNASolver, SubstrateMacromodel
from repro.core import WaveletSparsifier
from repro.core.lowrank import LowRankSparsifier
from repro.experiments import get_example, run_method_comparison, run_preconditioner_table


class TestEndToEndPipeline:
    def test_wavelet_pipeline_from_physical_solver(self, small_layout, small_profile):
        """Extract with the real black box (not a cached G) and check accuracy."""
        solver = EigenfunctionSolver(small_layout, small_profile, max_panels=64)
        g_exact = extract_dense(solver, symmetrize=True)
        hierarchy = SquareHierarchy(small_layout, max_level=3)
        counting = CountingSolver(solver)
        rep = WaveletSparsifier(hierarchy, order=2).extract(counting)
        report = evaluate_against_dense(rep, g_exact)
        assert report.max_relative_error < 0.05
        assert counting.solve_count <= small_layout.n_contacts

    def test_lowrank_pipeline_from_physical_solver(self, small_layout, small_profile):
        solver = EigenfunctionSolver(small_layout, small_profile, max_panels=64)
        g_exact = extract_dense(solver, symmetrize=True)
        hierarchy = SquareHierarchy(small_layout, max_level=3)
        counting = CountingSolver(solver)
        sp = LowRankSparsifier(hierarchy, max_rank=6, seed=1)
        sp.build(counting)
        rep = sp.to_sparsified()
        report = evaluate_against_dense(rep, g_exact)
        assert report.max_relative_error < 0.20
        assert report.fraction_above_10pct < 0.02

    def test_sparsified_substrate_in_circuit(self, small_layout, small_g, small_hierarchy):
        """The sparsified model predicts nearly the same coupled noise as the dense G."""
        from repro import DenseMatrixSolver

        rep = WaveletSparsifier(small_hierarchy, order=2).extract(
            DenseMatrixSolver(small_g, small_layout)
        )
        nodes = [f"sub{i}" for i in range(small_layout.n_contacts)]
        nodes[0] = "dig"
        nodes[-1] = "ana"

        def build(macro):
            ckt = Circuit()
            ckt.add_voltage_source("dig", "0", 1.0)
            ckt.add_resistor("ana", "0", 1e4)
            for name in nodes[1:-1]:
                ckt.add_resistor(name, "0", 1e6)
            ckt.add_substrate(macro)
            return MNASolver(ckt)

        sol_dense = build(SubstrateMacromodel(nodes, dense=small_g)).solve_dense()
        sol_sparse = build(SubstrateMacromodel(nodes, sparsified=rep)).solve_sparsified()
        v_dense = sol_dense.voltage("ana")
        v_sparse = sol_sparse.voltage("ana")
        assert v_dense > 0
        assert v_sparse == pytest.approx(v_dense, rel=0.05)


class TestExperimentRunners:
    def test_method_comparison_runner_small(self):
        config = get_example("ch4-2", n_side=8)
        config.max_panels = 64
        results = run_method_comparison(config)
        assert set(results) == {"wavelet", "lowrank", "wavelet@lowrank-sparsity"}
        lr = results["lowrank"]
        wv_equal = results["wavelet@lowrank-sparsity"]
        # unthresholded low-rank accuracy is good even on the difficult layout
        assert lr.unthresholded.max_relative_error < 0.20
        assert lr.unthresholded.n_contacts == 64
        # Table 4.2 direction: at equal sparsity the wavelet method has far
        # more entries off by >10% than the low-rank method
        assert lr.thresholded.fraction_above_10pct < wv_equal.thresholded.fraction_above_10pct

    def test_preconditioner_table_runner(self):
        config = get_example("1b", n_side=4)
        config.fd_resolution = (16, 16)
        config.fd_planes_per_layer = (1, 2, 1)
        rows = run_preconditioner_table(config, preconditioners=("fast_poisson_area", "jacobi"), n_solves=2)
        by_name = {r["preconditioner"]: r for r in rows}
        assert by_name["fast_poisson_area"]["mean_iterations"] < by_name["jacobi"]["mean_iterations"]

    def test_example_lookup(self):
        with pytest.raises(KeyError):
            get_example("nope")
        cfg = get_example("1a", n_side=8)
        assert cfg.build_layout().n_contacts == 64
