"""Cross-cutting property-based tests on the core data structures."""

import numpy as np
from hypothesis import given, settings, strategies as st
from scipy import sparse

from repro import (
    DenseMatrixSolver,
    EigenfunctionSolver,
    SubstrateProfile,
    check_conductance_properties,
    extract_dense,
)
from repro.core.sparsified import SparsifiedConductance
from repro.geometry import Contact, SquareHierarchy, regular_grid


@settings(max_examples=30, deadline=None)
@given(
    x=st.floats(0.0, 100.0), y=st.floats(0.0, 100.0),
    w=st.floats(0.5, 30.0), h=st.floats(0.5, 30.0),
    pitch=st.floats(1.0, 16.0),
)
def test_property_gridline_split_preserves_area_and_bounds(x, y, w, h, pitch):
    """Splitting at gridlines preserves total area and never leaves the original box."""
    c = Contact(x, y, w, h)
    pieces = c.split_at_gridlines(pitch)
    assert np.isclose(sum(p.area for p in pieces), c.area, rtol=1e-9)
    for p in pieces:
        assert p.x >= c.x - 1e-9 and p.x2 <= c.x2 + 1e-9
        assert p.y >= c.y - 1e-9 and p.y2 <= c.y2 + 1e-9
        # every piece fits in one gridline cell
        assert np.floor(p.x / pitch + 1e-9) == np.floor((p.x2 - 1e-9) / pitch) or p.width <= pitch + 1e-9


@settings(max_examples=20, deadline=None)
@given(n_side=st.sampled_from([4, 8, 16]))
def test_property_hierarchy_levels_partition_contacts(n_side):
    """At every level the non-empty squares partition the full contact set."""
    layout = regular_grid(n_side=n_side, size=128.0, fill=0.5)
    hier = SquareHierarchy(layout, max_level=max(2, n_side.bit_length() - 1))
    for level in hier.levels():
        squares = hier.squares_at_level(level)
        all_contacts = np.concatenate([s.contact_indices for s in squares])
        assert np.array_equal(np.sort(all_contacts), np.arange(layout.n_contacts))
        assert all_contacts.size == np.unique(all_contacts).size


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), scale=st.floats(0.1, 10.0))
def test_property_sparsified_apply_is_linear_and_symmetric(seed, scale):
    """Q Gw Q' with symmetric Gw is a symmetric linear operator."""
    rng = np.random.default_rng(seed)
    n = 12
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    gw = rng.standard_normal((n, n))
    gw = scale * 0.5 * (gw + gw.T)
    rep = SparsifiedConductance(sparse.csr_matrix(q), sparse.csr_matrix(gw))
    x, y = rng.standard_normal(n), rng.standard_normal(n)
    assert np.isclose(y @ rep.apply(x), x @ rep.apply(y), rtol=1e-9, atol=1e-9)
    assert np.allclose(rep.apply(2.0 * x + y), 2.0 * rep.apply(x) + rep.apply(y), rtol=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    n_keep=st.integers(3, 10),
    seed=st.integers(0, 100),
)
def test_property_layout_subset_preserves_contacts(n_keep, seed):
    layout = regular_grid(n_side=4, size=64.0)
    rng = np.random.default_rng(seed)
    idx = rng.choice(16, size=min(n_keep, 16), replace=False)
    sub = layout.subset(idx.tolist())
    assert sub.n_contacts == idx.size
    for k, i in enumerate(idx):
        assert sub[k] == layout[int(i)]


# ------------------------------------------------- batched extraction engine
def _batched_g(n_side: float, fill: float, grounded: bool) -> np.ndarray:
    layout = regular_grid(n_side=n_side, size=64.0, fill=fill)
    profile = SubstrateProfile.two_layer_example(
        size=64.0, grounded_backplane=grounded
    )
    solver = EigenfunctionSolver(layout, profile, max_panels=32)
    return extract_dense(solver, symmetrize=True)


@settings(max_examples=8, deadline=None)
@given(
    n_side=st.sampled_from([3, 4]),
    fill=st.sampled_from([0.4, 0.5, 0.6]),
    grounded=st.booleans(),
)
def test_property_batched_extraction_satisfies_conductance_structure(
    n_side, fill, grounded
):
    """Section 2.4 structure must survive the batched (solve_many) path.

    ``G`` extracted entirely through the multi-RHS engine keeps symmetry,
    positive diagonal, non-positive off-diagonal, diagonal dominance, and the
    rank-one deficiency of the floating-backplane case.
    """
    g = _batched_g(n_side, fill, grounded)
    checks = check_conductance_properties(g, grounded_backplane=grounded)
    assert all(checks.values()), checks


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500), k=st.integers(1, 6))
def test_property_solve_many_matches_matrix_action(seed, k):
    """For an exact black box, solve_many(V) is exactly G V for any block."""
    rng = np.random.default_rng(seed)
    layout = regular_grid(n_side=3, size=64.0, fill=0.5)
    n = layout.n_contacts
    g = rng.standard_normal((n, n))
    g = g @ g.T + n * np.eye(n)
    solver = DenseMatrixSolver(g, layout)
    v = rng.standard_normal((n, k))
    assert np.allclose(solver.solve_many(v), g @ v, rtol=1e-12, atol=1e-12)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 200), grounded=st.booleans())
def test_property_batched_extraction_permutation_equivariant(seed, grounded):
    """Relabelling contacts permutes G accordingly (no hidden order state).

    Extracting through ``solve_many`` on a permuted unit block must equal the
    permutation of the extracted ``G`` — this pins down that the batched RHS
    construction carries no dependence on submission order.
    """
    layout = regular_grid(n_side=3, size=64.0, fill=0.5)
    profile = SubstrateProfile.two_layer_example(
        size=64.0, grounded_backplane=grounded
    )
    solver = EigenfunctionSolver(layout, profile, max_panels=32, rtol=1e-10)
    n = layout.n_contacts
    perm = np.random.default_rng(seed).permutation(n)
    g = extract_dense(solver)
    basis = np.zeros((n, n))
    basis[perm, np.arange(n)] = 1.0
    g_perm = solver.solve_many(basis)
    assert np.allclose(g_perm, g[:, perm], rtol=0.0, atol=1e-7 * np.abs(g).max())
