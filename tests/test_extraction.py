"""Tests for naive dense extraction and conductance-matrix property checks."""

import numpy as np
import pytest

from repro import CountingSolver, DenseMatrixSolver, extract_dense, regular_grid
from repro.substrate import CallableSolver
from repro.substrate.extraction import (
    check_conductance_properties,
    diagonal_dominance_margin,
    extract_columns,
    symmetry_error,
)


@pytest.fixture(scope="module")
def layout():
    return regular_grid(n_side=3, size=48.0)


@pytest.fixture(scope="module")
def reference_matrix():
    rng_module = np.random.default_rng(3)
    a = rng_module.standard_normal((9, 9))
    spd = a @ a.T + 9 * np.eye(9)
    # make it look like a conductance matrix: negative off-diagonals
    off = -np.abs(spd - np.diag(np.diag(spd)))
    return np.diag(np.abs(off).sum(axis=1) + 1.0) + off


class TestExtraction:
    def test_extract_dense_recovers_matrix(self, layout, reference_matrix):
        solver = DenseMatrixSolver(reference_matrix, layout)
        g = extract_dense(solver)
        assert np.allclose(g, reference_matrix)

    def test_extract_counts_solves(self, layout, reference_matrix):
        counting = CountingSolver(DenseMatrixSolver(reference_matrix, layout))
        extract_dense(counting)
        assert counting.solve_count == 9
        assert counting.solve_reduction_factor() == pytest.approx(1.0)
        counting.reset()
        assert counting.solve_count == 0

    def test_extract_columns(self, layout, reference_matrix):
        solver = DenseMatrixSolver(reference_matrix, layout)
        cols = np.array([0, 4, 8])
        out = extract_columns(solver, cols)
        assert np.allclose(out, reference_matrix[:, cols])

    def test_symmetrize_option(self, layout):
        asym = np.array([[2.0, -0.5], [-0.4, 2.0]])
        small_layout = regular_grid(n_side=1, size=48.0).subset([0])
        from repro.geometry import Contact, ContactLayout

        two = ContactLayout([Contact(4, 4, 4, 4), Contact(30, 30, 4, 4)], 48, 48)
        solver = DenseMatrixSolver(asym, two)
        g = extract_dense(solver, symmetrize=True)
        assert np.allclose(g, 0.5 * (asym + asym.T))

    def test_callable_solver(self, layout, reference_matrix):
        solver = CallableSolver(lambda v: reference_matrix @ v, layout)
        assert np.allclose(extract_dense(solver), reference_matrix)

    def test_symmetrize_duplicate_columns_named_in_error(self, layout, reference_matrix):
        """A duplicate-column request must fail with a message naming the
        duplicated columns, not a confusing downstream argsort failure."""
        solver = DenseMatrixSolver(reference_matrix, layout)
        n = layout.n_contacts
        columns = np.arange(n)
        columns[1] = 4  # duplicates 4, drops 1 — still n columns long
        with pytest.raises(ValueError, match=r"more than once: \[4\]"):
            extract_columns(solver, columns, symmetrize=True)
        with pytest.raises(ValueError, match="more than once"):
            extract_columns(solver, np.array([0, 0, 1]), symmetrize=True)
        # duplicates without symmetrize stay allowed (plain column sampling)
        out = extract_columns(solver, np.array([2, 2]))
        assert np.allclose(out[:, 0], out[:, 1])

    def test_symmetrize_incomplete_columns_still_rejected(self, layout, reference_matrix):
        solver = DenseMatrixSolver(reference_matrix, layout)
        with pytest.raises(ValueError, match="every column exactly once"):
            extract_columns(solver, np.array([0, 1, 2]), symmetrize=True)

    def test_dense_solver_validation(self, layout):
        with pytest.raises(ValueError):
            DenseMatrixSolver(np.ones((3, 4)), layout)
        with pytest.raises(ValueError):
            DenseMatrixSolver(np.ones((4, 4)), layout)


class TestPropertyChecks:
    def test_symmetry_error(self):
        a = np.array([[1.0, 2.0], [2.0, 1.0]])
        assert symmetry_error(a) == 0.0
        b = np.array([[1.0, 2.0], [0.0, 1.0]])
        assert symmetry_error(b) > 0

    def test_dominance_margin(self):
        g = np.array([[3.0, -1.0], [-1.0, 1.0]])
        margins = diagonal_dominance_margin(g)
        assert np.allclose(margins, [2.0, 0.0])

    def test_checks_pass_for_valid_grounded_matrix(self, reference_matrix):
        checks = check_conductance_properties(reference_matrix, grounded_backplane=True)
        assert all(checks.values())

    def test_checks_fail_for_positive_offdiagonal(self):
        g = np.array([[2.0, 0.5], [0.5, 2.0]])
        checks = check_conductance_properties(g, grounded_backplane=True)
        assert not checks["negative_offdiagonal"]

    def test_checks_floating_requires_zero_row_sums(self):
        g = np.array([[1.0, -1.0], [-1.0, 1.0]])
        checks = check_conductance_properties(g, grounded_backplane=False)
        assert checks["rank_deficient_as_expected"]
        g2 = np.array([[2.0, -1.0], [-1.0, 2.0]])
        checks2 = check_conductance_properties(g2, grounded_backplane=False)
        assert not checks2["rank_deficient_as_expected"]
