"""Tests for the MNA circuit solver and the substrate macromodel stamping."""

import numpy as np
import pytest
from scipy import sparse

from repro.circuits import (
    Circuit,
    MNASolver,
    Resistor,
    SubstrateMacromodel,
)
from repro.core.sparsified import SparsifiedConductance


class TestNetlistValidation:
    def test_resistor_validation(self):
        with pytest.raises(ValueError):
            Resistor("a", "b", 0.0)

    def test_macromodel_needs_a_model(self):
        with pytest.raises(ValueError):
            SubstrateMacromodel(["a", "b"])

    def test_macromodel_shape_check(self):
        with pytest.raises(ValueError):
            SubstrateMacromodel(["a", "b"], dense=np.eye(3))

    def test_node_names_order_and_ground_exclusion(self):
        ckt = Circuit()
        ckt.add_resistor("a", "b", 1.0)
        ckt.add_voltage_source("c", "0", 1.0)
        ckt.add_current_source("0", "a", 1.0)
        assert ckt.node_names() == ["a", "b", "c"]


class TestBasicCircuits:
    def test_voltage_divider(self):
        ckt = Circuit()
        ckt.add_voltage_source("in", "0", 10.0, name="V1")
        ckt.add_resistor("in", "mid", 1000.0)
        ckt.add_resistor("mid", "0", 3000.0)
        sol = MNASolver(ckt).solve_dense()
        assert sol.voltage("mid") == pytest.approx(7.5)
        assert sol.voltage("in") == pytest.approx(10.0)
        assert sol.source_currents["V1"] == pytest.approx(-10.0 / 4000.0)

    def test_current_source_into_resistor(self):
        ckt = Circuit()
        ckt.add_current_source("0", "a", 2e-3)
        ckt.add_resistor("a", "0", 500.0)
        sol = MNASolver(ckt).solve_dense()
        assert sol.voltage("a") == pytest.approx(1.0)

    def test_voltage_between(self):
        ckt = Circuit()
        ckt.add_voltage_source("a", "0", 5.0)
        ckt.add_resistor("a", "b", 100.0)
        ckt.add_resistor("b", "0", 100.0)
        sol = MNASolver(ckt).solve_dense()
        assert sol.voltage_between("a", "b") == pytest.approx(2.5)


class TestSubstrateMacromodel:
    def _substrate_g(self):
        # simple 3-terminal conductance: strongly diagonally dominant
        return np.array(
            [[5.0, -1.0, -0.5], [-1.0, 4.0, -0.8], [-0.5, -0.8, 6.0]]
        ) * 1e-3

    def _circuit(self, macro):
        ckt = Circuit()
        # digital driver injecting noise into contact d, analog sense node a
        ckt.add_voltage_source("vdd", "0", 1.0, name="Vdd")
        ckt.add_resistor("vdd", "dig", 50.0)
        ckt.add_resistor("ana", "0", 2000.0)
        ckt.add_resistor("guard", "0", 10.0)
        ckt.add_substrate(macro)
        return ckt

    def test_dense_stamp_produces_coupling(self):
        g = self._substrate_g()
        macro = SubstrateMacromodel(["dig", "ana", "guard"], dense=g)
        sol = MNASolver(self._circuit(macro)).solve_dense()
        # noise couples from the digital contact into the analog node
        assert sol.voltage("ana") > 0
        assert sol.voltage("ana") < sol.voltage("dig")

    def test_sparsified_iterative_matches_dense(self):
        g = self._substrate_g()
        rep = SparsifiedConductance(sparse.eye(3).tocsr(), sparse.csr_matrix(g))
        macro_dense = SubstrateMacromodel(["dig", "ana", "guard"], dense=g)
        macro_sparse = SubstrateMacromodel(["dig", "ana", "guard"], sparsified=rep)
        sol_dense = MNASolver(self._circuit(macro_dense)).solve_dense()
        sol_sparse = MNASolver(self._circuit(macro_sparse)).solve_sparsified()
        for node in ("dig", "ana", "guard"):
            assert sol_sparse.voltage(node) == pytest.approx(sol_dense.voltage(node), rel=1e-6)
        assert sol_sparse.iterations > 0

    def test_grounded_substrate_terminal(self):
        g = self._substrate_g()
        macro = SubstrateMacromodel(["dig", "ana", "0"], dense=g)
        ckt = Circuit()
        ckt.add_voltage_source("dig", "0", 1.0)
        ckt.add_resistor("ana", "0", 1e4)
        ckt.add_substrate(macro)
        sol = MNASolver(ckt).solve_dense()
        assert 0 < sol.voltage("ana") < 1.0

    def test_apply_selects_model(self):
        g = self._substrate_g()
        rep = SparsifiedConductance(sparse.eye(3).tocsr(), sparse.csr_matrix(g))
        macro = SubstrateMacromodel(["a", "b", "c"], dense=g, sparsified=rep)
        v = np.array([1.0, 0.5, -0.25])
        assert np.allclose(macro.apply(v, use_sparsified=True), macro.apply(v, use_sparsified=False))
