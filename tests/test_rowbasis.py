"""Tests for the multilevel row-basis representation (Section 4.3)."""

import numpy as np
import pytest

from repro import CountingSolver, DenseMatrixSolver
from repro.geometry import two_square_clusters
from repro.analysis import max_relative_error
from repro.core.rowbasis import MultilevelRowBasis, interaction_singular_values


class TestInteractionSVD:
    """Figure 4-3: well-separated interactions are numerically low-rank."""

    def test_separated_block_decays_faster_than_self_block(self, small_g, small_hierarchy):
        hier = small_hierarchy
        finest = hier.squares_at_level(hier.max_level)
        src = finest[0]
        # find a well-separated square on the same level
        far = None
        for cand in finest[::-1]:
            if not hier.are_local(src, cand):
                far = cand
                break
        s_self = interaction_singular_values(small_g, src.contact_indices, src.contact_indices)
        s_far = interaction_singular_values(small_g, src.contact_indices, far.contact_indices)
        # normalised decay: the separated block loses orders of magnitude quickly
        if s_far.size > 1 and s_self.size > 1:
            assert s_far[-1] / s_far[0] < s_self[-1] / s_self[0]

    def test_two_cluster_example_rank_deficiency(self, small_profile):
        """The 2-cluster layout of Fig. 4-2/4-3: separated block is near rank-deficient."""
        from repro import EigenfunctionSolver, extract_dense

        layout = two_square_clusters(size=64.0, n_per_cluster=9, separation_cells=3)
        solver = EigenfunctionSolver(
            layout,
            small_profile.__class__.two_layer_example(size=64.0, resistive_bottom=True),
            max_panels=64,
        )
        g = extract_dense(solver, symmetrize=True)
        src = np.arange(9)
        dst = np.arange(9, 18)
        s_self = interaction_singular_values(g, src, src)
        s_far = interaction_singular_values(g, src, dst)
        assert s_far[3] / s_far[0] < 1e-2
        assert s_self[3] / s_self[0] > 1e-2


class TestRowBasisRepresentation:
    @pytest.fixture(scope="class")
    def built(self, small_hierarchy, small_g, small_layout):
        counting = CountingSolver(DenseMatrixSolver(small_g, small_layout))
        rb = MultilevelRowBasis(small_hierarchy, max_rank=6, seed=1)
        rb.build(counting)
        return rb, counting

    def test_apply_accuracy(self, built, small_g):
        rb, _ = built
        approx = rb.to_dense()
        assert max_relative_error(approx, small_g) < 0.10

    def test_apply_matches_apply_block(self, built, rng):
        rb, _ = built
        v = rng.standard_normal(rb.hierarchy.layout.n_contacts)
        assert np.allclose(rb.apply(v), rb.apply_block(v[:, None])[:, 0])

    def test_rank_capped(self, built):
        rb, _ = built
        assert all(data.rank <= 6 for data in rb.data.values())

    def test_storage_smaller_than_dense(self, built, small_g):
        rb, _ = built
        assert rb.storage_nonzeros() < 4 * small_g.size  # loose bound at this tiny size

    def test_solve_count_recorded(self, built):
        rb, counting = built
        assert rb.n_solves == counting.solve_count
        assert rb.n_solves > 0

    def test_apply_before_build_raises(self, small_hierarchy):
        rb = MultilevelRowBasis(small_hierarchy)
        with pytest.raises(RuntimeError):
            rb.apply(np.zeros(small_hierarchy.layout.n_contacts))

    def test_row_basis_orthonormal(self, built):
        rb, _ = built
        for data in rb.data.values():
            if data.rank:
                gram = data.v.T @ data.v
                assert np.allclose(gram, np.eye(data.rank), atol=1e-10)

    def test_linearity_of_apply(self, built, rng):
        rb, _ = built
        n = rb.hierarchy.layout.n_contacts
        v1, v2 = rng.standard_normal(n), rng.standard_normal(n)
        lhs = rb.apply(2.0 * v1 - 0.5 * v2)
        rhs = 2.0 * rb.apply(v1) - 0.5 * rb.apply(v2)
        assert np.allclose(lhs, rhs, rtol=1e-10, atol=1e-12)
