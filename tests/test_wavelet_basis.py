"""Tests for the multilevel vanishing-moment basis (Section 3.4)."""

import numpy as np
import pytest

from repro.core.moments import contact_moment_matrix
from repro.core.wavelet_basis import WaveletBasis
from repro.geometry import SquareHierarchy, alternating_size_grid, irregular_same_size, regular_grid


@pytest.fixture(scope="module")
def basis(small_hier=None):
    layout = regular_grid(n_side=8, size=128.0, fill=0.5)
    hier = SquareHierarchy(layout, max_level=3)
    return WaveletBasis(hier, order=2)


class TestStructure:
    def test_q_is_square_and_orthogonal(self, basis):
        assert basis.check_completeness()
        assert basis.check_orthogonality() < 1e-10

    def test_column_count_matches_contacts(self, basis):
        assert basis.n_columns == basis.hierarchy.layout.n_contacts

    def test_nonvanishing_count_bounded_by_moments(self, basis):
        for sb in basis.squares.values():
            assert sb.n_nonvanishing <= basis.n_moments

    def test_root_v_columns_exist(self, basis):
        assert basis.root_v_columns().size > 0

    def test_column_lookup_covers_all_columns(self, basis):
        total = basis.root_v_columns().size
        for key in basis.squares:
            total += basis.w_columns(key).size
        assert total == basis.n_columns

    def test_column_supports_respect_squares(self, basis):
        q = basis.q_matrix.tocsc()
        hier = basis.hierarchy
        for idx, col in enumerate(basis.columns):
            if col.kind != "W":
                continue
            sq = hier.get(col.square_key)
            support = q.indices[q.indptr[idx]: q.indptr[idx + 1]]
            assert set(support) <= set(sq.contact_indices)


class TestVanishingMoments:
    def test_w_columns_have_vanishing_moments(self, basis):
        """Every W basis function has all moments of order <= p equal to zero."""
        hier = basis.hierarchy
        layout = hier.layout
        for key, sb in basis.squares.items():
            if sb.n_vanishing == 0:
                continue
            sq = hier.get(key)
            center = sq.center(hier.size_x, hier.size_y)
            m = contact_moment_matrix(layout, sb.contact_indices, center, 2)
            residual = m @ sb.W
            scale = np.abs(m).max() + 1e-30
            assert np.abs(residual).max() < 1e-8 * scale

    def test_v_columns_orthonormal(self, basis):
        for sb in basis.squares.values():
            if sb.n_nonvanishing:
                gram = sb.V.T @ sb.V
                assert np.allclose(gram, np.eye(sb.n_nonvanishing), atol=1e-10)

    def test_v_and_w_orthogonal(self, basis):
        for sb in basis.squares.values():
            if sb.n_nonvanishing and sb.n_vanishing:
                assert np.abs(sb.V.T @ sb.W).max() < 1e-10


class TestDifferentLayouts:
    @pytest.mark.parametrize("factory", [
        lambda: irregular_same_size(n_side=8, size=128.0, seed=2),
        lambda: alternating_size_grid(n_side=8, size=128.0),
    ])
    def test_orthogonal_complete_for_irregular_layouts(self, factory):
        layout = factory()
        hier = SquareHierarchy(layout, max_level=3)
        basis = WaveletBasis(hier, order=2)
        assert basis.check_completeness()
        assert basis.check_orthogonality() < 1e-9

    def test_order_zero_basis(self):
        layout = regular_grid(n_side=8, size=128.0)
        hier = SquareHierarchy(layout, max_level=3)
        basis = WaveletBasis(hier, order=0)
        assert basis.check_completeness()
        assert basis.check_orthogonality() < 1e-10
        # with p=0 each 4-contact square yields 3 vanishing vectors (Figure 3-2)
        finest_counts = [
            basis.squares[sq.key].n_nonvanishing
            for sq in hier.squares_at_level(hier.max_level)
        ]
        assert max(finest_counts) <= 1
