"""Tests for the adaptive solver-dispatch layer.

Covers the policy's routing decisions (small / wide / floating blocks, forced
paths, ceilings), the new bordered Schur-complement direct path for floating
backplanes (equivalence with single-RHS MINRES including the gauge constant
``c``), solve-accounting invariance across paths, and the separated
iterative/direct solve statistics.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import (
    CountingSolver,
    DispatchPolicy,
    EigenfunctionSolver,
    SolveCostModel,
    SolveStats,
    SubstrateProfile,
    extract_dense,
    regular_grid,
    resolve_fft_workers,
)


@pytest.fixture(scope="module")
def tiny_layout():
    return regular_grid(n_side=4, size=64.0, fill=0.5)


def _profile(grounded: bool) -> SubstrateProfile:
    return SubstrateProfile.two_layer_example(size=64.0, grounded_backplane=grounded)


def _solver(layout, grounded=True, **kwargs) -> EigenfunctionSolver:
    kwargs.setdefault("max_panels", 32)
    kwargs.setdefault("rtol", 1e-10)
    return EigenfunctionSolver(layout, _profile(grounded), **kwargs)


# ------------------------------------------------------------------ policy unit
def test_policy_narrow_block_goes_iterative():
    policy = DispatchPolicy()
    d = policy.choose(n_panels=1024, n_rhs=1, grid_points=4096, grounded=True)
    assert d.path == "iterative"


def test_policy_wide_block_goes_direct():
    policy = DispatchPolicy()
    d = policy.choose(n_panels=1024, n_rhs=256, grid_points=4096, grounded=True)
    assert d.path == "direct"
    assert d.direct_cost is not None and d.direct_cost <= d.iterative_cost


def test_policy_floating_crossover_is_earlier_than_grounded():
    """MINRES needs more iterations than CG, so the direct path should win
    for narrower floating blocks than grounded ones."""
    policy = DispatchPolicy()

    def crossover(grounded: bool) -> int:
        for k in range(1, 2049):
            if (
                policy.choose(
                    n_panels=1024, n_rhs=k, grid_points=4096, grounded=grounded
                ).path
                == "direct"
            ):
                return k
        return 2049

    assert crossover(grounded=False) < crossover(grounded=True)


def test_policy_cached_factor_prefers_direct_even_for_one_rhs():
    policy = DispatchPolicy()
    d = policy.choose(
        n_panels=1024, n_rhs=1, grid_points=4096, grounded=True, factor_cached=True
    )
    assert d.path == "direct"
    assert d.reason == "cached factor"


def test_policy_panel_ceiling_and_failure_force_iterative():
    # above the dense ceiling, a wide block now lands on the tiled tier...
    policy = DispatchPolicy(max_direct_panels=100)
    assert (
        policy.choose(n_panels=101, n_rhs=512, grid_points=4096, grounded=True).path
        == "tiled"
    )
    # ...unless the tiled tier is disabled, which restores pure iterative
    policy = DispatchPolicy(max_direct_panels=100, max_tiled_panels=0)
    assert (
        policy.choose(n_panels=101, n_rhs=512, grid_points=4096, grounded=True).path
        == "iterative"
    )
    # above *both* ceilings only the iterative path remains
    policy = DispatchPolicy(max_direct_panels=100, max_tiled_panels=200)
    assert (
        policy.choose(n_panels=201, n_rhs=512, grid_points=4096, grounded=True).path
        == "iterative"
    )
    policy = DispatchPolicy()
    d = policy.choose(
        n_panels=64, n_rhs=512, grid_points=4096, grounded=True, factor_failed=True
    )
    assert d.path == "iterative"
    # a failed A_cc Cholesky latches the tiled tier too (same matrix)
    policy = DispatchPolicy(max_direct_panels=10)
    d = policy.choose(
        n_panels=64, n_rhs=512, grid_points=4096, grounded=True, factor_failed=True
    )
    assert d.path == "iterative"
    # disabling both factored paths forces iterative everywhere
    policy = DispatchPolicy(max_direct_panels=0, max_tiled_panels=0)
    assert (
        policy.choose(n_panels=64, n_rhs=512, grid_points=4096, grounded=True).path
        == "iterative"
    )


def test_policy_force_path_overrides_model_but_not_feasibility():
    forced = DispatchPolicy(force_path="direct")
    assert forced.choose(n_panels=64, n_rhs=1, grid_points=4096, grounded=True).path == "direct"
    forced_it = DispatchPolicy(force_path="iterative")
    assert (
        forced_it.choose(n_panels=64, n_rhs=512, grid_points=4096, grounded=True).path
        == "iterative"
    )
    # a forced direct path cannot conjure a factorisation that is impossible
    capped = DispatchPolicy(force_path="direct", max_direct_panels=10)
    d = capped.choose(n_panels=64, n_rhs=512, grid_points=4096, grounded=True)
    assert d.path == "iterative"
    with pytest.raises(ValueError):
        DispatchPolicy(force_path="cholesky")


def test_policy_auto_tune_probe_runs_once_and_keeps_sane_ratio():
    policy = DispatchPolicy(auto_tune=True)
    ratio = policy.auto_tune_probe()
    assert 1.0 <= ratio <= 100.0
    assert policy.cost_model.fft_unit == ratio
    policy.cost_model.fft_unit = -123.0  # marker: a second probe must not overwrite
    assert policy.auto_tune_probe() == -123.0


def test_cost_model_monotone_in_rhs_width():
    model = SolveCostModel()
    narrow = model.iterative_cost(1024, 8, 4096, grounded=True)
    wide = model.iterative_cost(1024, 64, 4096, grounded=True)
    assert wide > narrow
    cached = model.direct_cost(1024, 8, 4096, factor_cached=True, grounded=True)
    fresh = model.direct_cost(1024, 8, 4096, factor_cached=False, grounded=True)
    assert cached < fresh


def test_resolve_fft_workers():
    assert resolve_fft_workers(1) is None
    assert resolve_fft_workers(4) == 4
    assert resolve_fft_workers(-1) == -1
    with pytest.raises(ValueError):
        resolve_fft_workers(0)
    resolved = resolve_fft_workers(None)
    assert resolved is None or (isinstance(resolved, int) and resolved > 1)


# ------------------------------------------------------- solver-level routing
def test_solver_records_dispatch_decision(tiny_layout):
    solver = _solver(tiny_layout)
    v = np.eye(tiny_layout.n_contacts)
    solver.solve_many(v)
    assert solver.last_dispatch is not None
    assert solver.last_dispatch.path in ("direct", "iterative")


def test_forced_paths_agree_with_sequential(tiny_layout):
    rng = np.random.default_rng(0)
    v = rng.standard_normal((tiny_layout.n_contacts, 8))
    for grounded in (True, False):
        reference = _solver(tiny_layout, grounded)
        seq = np.column_stack(
            [reference.solve_currents(v[:, j]) for j in range(v.shape[1])]
        )
        scale = np.abs(seq).max()
        for path in ("direct", "iterative"):
            solver = _solver(
                tiny_layout, grounded, dispatch=DispatchPolicy(force_path=path)
            )
            out = solver.solve_many(v)
            assert solver.last_dispatch.path == path
            assert np.allclose(out, seq, rtol=0.0, atol=1e-8 * scale), (
                grounded,
                path,
            )


def test_direct_path_chunks_wide_blocks(tiny_layout):
    """A block much wider than max_batch is served in max_batch-sized chunks
    on the direct path too (the RHS gather never materialises full width)."""
    solver = _solver(
        tiny_layout, max_batch=3, dispatch=DispatchPolicy(force_path="direct")
    )
    rng = np.random.default_rng(1)
    v = rng.standard_normal((tiny_layout.n_contacts, 11))
    out = solver.solve_many(v)
    assert solver.stats.n_direct_solves == 11
    seq = np.column_stack(
        [_solver(tiny_layout).solve_currents(v[:, j]) for j in range(11)]
    )
    assert np.allclose(out, seq, rtol=0.0, atol=1e-8 * np.abs(seq).max())


def test_direct_factorisation_failure_warns_and_falls_back(tiny_layout, monkeypatch):
    solver = _solver(tiny_layout, dispatch=DispatchPolicy(force_path="direct"))

    from scipy.linalg import LinAlgError

    def boom() -> None:
        raise LinAlgError("synthetic factorisation failure")

    monkeypatch.setattr(solver, "_ensure_direct_factor", boom)
    v = np.eye(tiny_layout.n_contacts)
    with pytest.warns(RuntimeWarning, match="falling back to the iterative path"):
        out = solver.solve_many(v)
    # the block was still solved — by the iterative engine
    assert solver.stats.n_iterative_solves == tiny_layout.n_contacts
    assert solver.stats.n_direct_solves == 0
    assert solver._direct_failed
    assert solver.last_dispatch.path == "iterative"
    g_ref = extract_dense(_solver(tiny_layout))
    assert np.allclose(out, g_ref, rtol=0.0, atol=1e-8 * np.abs(g_ref).max())
    # subsequent blocks skip the doomed factorisation without warning
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        solver.solve_many(v[:, :2])


# ------------------------------------------- floating bordered direct path
def test_floating_bordered_direct_matches_minres_with_gauge(tiny_layout):
    """The Schur-complement direct solve must reproduce the single-RHS MINRES
    solution *and* the gauge constant ``c`` of the bordered system."""
    rng = np.random.default_rng(3)
    v = rng.standard_normal((tiny_layout.n_contacts, 5))

    seq = _solver(tiny_layout, grounded=False)
    gauges_seq = np.empty(v.shape[1])
    currents_seq = np.empty_like(v)
    for j in range(v.shape[1]):
        currents_seq[:, j] = seq.solve_currents(v[:, j])
        gauges_seq[j] = seq.last_gauge_constants[0]

    direct = _solver(
        tiny_layout, grounded=False, dispatch=DispatchPolicy(force_path="direct")
    )
    currents_direct = direct.solve_many(v)
    assert direct._direct_factor[0] in ("schur", "bordered")
    assert direct.stats.n_direct_solves == v.shape[1]

    scale = np.abs(currents_seq).max()
    assert np.allclose(currents_direct, currents_seq, rtol=0.0, atol=1e-8 * scale)
    gauge_scale = np.abs(gauges_seq).max()
    assert np.allclose(
        direct.last_gauge_constants, gauges_seq, rtol=0.0, atol=1e-7 * gauge_scale
    )

    # the batch-major MINRES block path reports the same gauge constants too
    iterative = _solver(
        tiny_layout, grounded=False, dispatch=DispatchPolicy(force_path="iterative")
    )
    iterative.solve_many(v)
    assert np.allclose(
        iterative.last_gauge_constants, gauges_seq, rtol=0.0, atol=1e-7 * gauge_scale
    )


def test_floating_gauge_constants_accumulate_across_chunks(tiny_layout):
    """Regression: an iterative block wider than max_batch must report one
    gauge constant per column, not just the final chunk's."""
    rng = np.random.default_rng(8)
    v = rng.standard_normal((tiny_layout.n_contacts, 11))
    seq = _solver(tiny_layout, grounded=False)
    gauges_seq = np.empty(11)
    for j in range(11):
        seq.solve_currents(v[:, j])
        gauges_seq[j] = seq.last_gauge_constants[0]
    chunked = _solver(
        tiny_layout,
        grounded=False,
        max_batch=3,
        dispatch=DispatchPolicy(force_path="iterative"),
    )
    chunked.solve_many(v)
    assert chunked.last_gauge_constants.shape == (11,)
    scale = np.abs(gauges_seq).max()
    assert np.allclose(
        chunked.last_gauge_constants, gauges_seq, rtol=0.0, atol=1e-7 * scale
    )


def test_floating_gauge_constant_satisfies_bordered_system(tiny_layout):
    """A q + c 1 = v on the contact panels, and 1' q = 0 (charge neutrality)."""
    solver = _solver(
        tiny_layout, grounded=False, dispatch=DispatchPolicy(force_path="direct")
    )
    rng = np.random.default_rng(4)
    v = rng.standard_normal((tiny_layout.n_contacts, 3))
    solver.solve_many(v)
    # reconstruct panel currents from the factor to check the raw system
    owner = solver.grid.panel_to_contact[solver.grid.all_contact_panels]
    v_panel = v[owner]
    kind, *factor = solver._direct_factor
    assert kind == "schur"
    from scipy.linalg import cho_solve

    chol, w, s = factor
    q0 = cho_solve(chol, v_panel)
    c = q0.sum(axis=0) / s
    q = q0 - w[:, None] * c
    residual = solver.operator.apply_contact_panels(q) + c[None, :] - v_panel
    assert np.abs(residual).max() < 1e-8 * np.abs(v_panel).max()
    assert np.abs(q.sum(axis=0)).max() < 1e-8 * np.abs(q).max()
    assert np.allclose(c, solver.last_gauge_constants)


def test_floating_extraction_properties_direct_path(tiny_layout):
    """Dense extraction through the bordered direct path keeps the Section 2.4
    structure: symmetric, zero row sums (floating rank deficiency)."""
    solver = _solver(
        tiny_layout, grounded=False, dispatch=DispatchPolicy(force_path="direct")
    )
    g = extract_dense(solver)
    scale = np.abs(g).max()
    assert np.abs(g - g.T).max() < 1e-8 * scale
    assert np.abs(g.sum(axis=1)).max() < 1e-6 * scale


# ------------------------------------------------------- accounting invariance
@pytest.mark.parametrize("path", ["direct", "iterative"])
@pytest.mark.parametrize("grounded", [True, False], ids=["grounded", "floating"])
def test_counting_solver_attribution_invariant_across_paths(
    tiny_layout, grounded, path
):
    solver = _solver(tiny_layout, grounded, dispatch=DispatchPolicy(force_path=path))
    counting = CountingSolver(solver)
    extract_dense(counting)
    assert counting.solve_count == tiny_layout.n_contacts
    counting.solve_many(np.eye(tiny_layout.n_contacts)[:, :5])
    assert counting.solve_count == tiny_layout.n_contacts + 5


# ------------------------------------------------------------ solve statistics
def test_solve_stats_separate_direct_from_iterative():
    stats = SolveStats()
    stats.record(10)
    stats.record(14)
    stats.record_direct(100)
    # the direct solves must not dilute the Krylov iteration mean
    assert stats.mean_iterations == 12.0
    assert stats.n_iterative_solves == 2
    assert stats.n_direct_solves == 100
    assert stats.n_solves == 102
    d = stats.as_dict()
    assert d["mean_iterations"] == 12.0
    assert d["n_direct_solves"] == 100


def test_mixed_workload_mean_iterations_regression(tiny_layout):
    """Regression: a wide direct block followed by an iterative solve must
    report the iterative solve's true iteration count, not a mean dragged
    toward zero by the zero-iteration direct solves."""
    solver = _solver(tiny_layout, dispatch=DispatchPolicy(force_path="direct"))
    solver.solve_many(np.eye(tiny_layout.n_contacts))  # all direct
    assert solver.mean_iterations_per_solve() == 0.0  # no iterative solves yet
    solver.solve_currents(np.ones(tiny_layout.n_contacts))  # one CG solve
    iters = solver.stats.iterations_per_solve[-1]
    assert iters > 0
    assert solver.mean_iterations_per_solve() == float(iters)
    assert solver.stats.n_direct_solves == tiny_layout.n_contacts
    assert solver.stats.n_solves == tiny_layout.n_contacts + 1


def test_grounded_tiled_crossover_matches_pr4_measurement():
    """Pin the PR-5 recalibration: at the PR-4 measurement point (ncp=4096,
    k=1024 columns, 128x128 panel grid, grounded) the tiled engine measured
    3.7-4.1s against 5.6+s iterative, so the model must route the block to
    the tiled tier — the pre-recalibration constants (fft_unit=12,
    tiled_io_unit=4) called iterative cheaper here."""
    policy = DispatchPolicy(max_direct_panels=2048)
    d = policy.choose(
        n_panels=4096, n_rhs=1024, grid_points=128 * 128, grounded=True
    )
    assert d.path == "tiled"
    # the modeled tiled/iterative ratio must sit near the measured ~4.0/5.6
    assert 0.5 < d.direct_cost / d.iterative_cost < 0.9
    # sanity: the old constants really did misroute this block
    old = DispatchPolicy(
        max_direct_panels=2048,
        cost_model=SolveCostModel(fft_unit=12.0, tiled_io_unit=4.0),
    )
    assert old.choose(
        n_panels=4096, n_rhs=1024, grid_points=128 * 128, grounded=True
    ).path == "iterative"
