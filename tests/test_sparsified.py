"""Tests for the SparsifiedConductance container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import sparse
from scipy.stats import ortho_group

from repro.core.sparsified import SparsifiedConductance


def make_rep(n=24, seed=0, method="test"):
    rng = np.random.default_rng(seed)
    q = ortho_group.rvs(n, random_state=seed)
    gw = rng.standard_normal((n, n))
    gw = 0.5 * (gw + gw.T)
    return SparsifiedConductance(sparse.csr_matrix(q), sparse.csr_matrix(gw), n_solves=10, method=method), q, gw


class TestBasics:
    def test_apply_matches_dense(self, rng):
        rep, q, gw = make_rep()
        v = rng.standard_normal(24)
        assert np.allclose(rep.apply(v), q @ gw @ q.T @ v)

    def test_to_dense(self):
        rep, q, gw = make_rep()
        assert np.allclose(rep.to_dense(), q @ gw @ q.T)

    def test_matmat(self, rng):
        rep, q, gw = make_rep()
        block = rng.standard_normal((24, 3))
        assert np.allclose(rep.matmat(block), q @ gw @ q.T @ block)

    def test_sparsity_factors(self):
        rep, _, _ = make_rep()
        assert rep.sparsity_factor() == pytest.approx(1.0, rel=0.01)
        assert rep.solve_reduction_factor() == pytest.approx(2.4)

    def test_shape_validation(self):
        q = sparse.eye(4).tocsr()
        gw = sparse.eye(3).tocsr()
        with pytest.raises(ValueError):
            SparsifiedConductance(q, gw)

    def test_summary_keys(self):
        rep, _, _ = make_rep()
        s = rep.summary()
        assert {"sparsity_factor", "n_solves", "nnz_gw"} <= set(s)


class TestThresholding:
    def test_threshold_drops_small_entries(self):
        rep, _, gw = make_rep()
        cutoff = np.median(np.abs(gw))
        rept = rep.threshold(cutoff)
        kept = rept.gw.toarray()
        assert np.all((np.abs(kept) >= cutoff) | (kept == 0.0))
        assert rept.nnz_gw < rep.nnz_gw

    def test_threshold_to_sparsity_reaches_target(self):
        rep, _, _ = make_rep(n=32)
        target = 4.0
        rept = rep.threshold_to_sparsity(target)
        assert rept.sparsity_factor() >= 0.8 * target

    def test_threshold_noop_if_already_sparse(self):
        q = sparse.eye(8).tocsr()
        gw = sparse.eye(8).tocsr()
        rep = SparsifiedConductance(q, gw)
        rept = rep.threshold_to_sparsity(2.0)
        assert rept.nnz_gw == rep.nnz_gw

    def test_threshold_fraction(self):
        rep, _, _ = make_rep(n=16)
        rept = rep.threshold_fraction_of_nnz(0.25)
        assert rept.nnz_gw <= int(0.3 * rep.nnz_gw)
        with pytest.raises(ValueError):
            rep.threshold_fraction_of_nnz(0.0)

    @settings(max_examples=20, deadline=None)
    @given(target=st.floats(min_value=1.5, max_value=20.0))
    def test_property_threshold_error_bounded_by_dropped_mass(self, target):
        """Thresholding only removes entries, so the dense error is bounded by what was dropped."""
        rep, _, gw = make_rep(n=20, seed=3)
        rept = rep.threshold_to_sparsity(target)
        dropped = rep.gw.toarray() - rept.gw.toarray()
        err = np.linalg.norm(rep.to_dense() - rept.to_dense())
        assert err <= np.linalg.norm(dropped) + 1e-9
